//! End-to-end benchmarks: the compiler pipeline itself (profile +
//! classify + transform) and whole-program execution per configuration.
//! Wall-clock numbers here depend on the host's core count; the figure
//! binaries report host-independent simulated cycles instead.

use criterion::{criterion_group, criterion_main, Criterion};
use privateer::pipeline::{privatize, PipelineConfig};
use privateer_bench::{run_privateer, run_sequential, Scale};
use privateer_workloads::dijkstra;
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    let p = dijkstra::Params::train();
    let m = dijkstra::build(&p);
    c.bench_function("pipeline_privatize_dijkstra_train", |b| {
        b.iter(|| {
            let r = privatize(&m, &PipelineConfig::default()).unwrap();
            black_box(r.reports.len());
        });
    });
}

fn bench_execution(c: &mut Criterion) {
    let wl = &privateer_bench::workloads()[1]; // dijkstra
    let m = wl.build(Scale::Train);
    let mut group = c.benchmark_group("dijkstra_train_execution");
    group.sample_size(10);
    group.bench_function("sequential", |b| {
        b.iter(|| black_box(run_sequential(&m).insts));
    });
    group.bench_function("privateer_4_workers", |b| {
        b.iter(|| black_box(run_privateer(&m, 4, 0.0).sim_time()));
    });
    group.finish();
}

criterion_group!(benches, bench_pipeline, bench_execution);
criterion_main!(benches);
