//! Microbenchmarks of the runtime primitives the paper's overheads hinge
//! on: shadow-metadata transitions (the per-byte privacy check), COW page
//! forking (worker replication), checkpoint merging, and the supporting
//! data structures.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use privateer_ir::Heap;
use privateer_profile::IntervalMap;
use privateer_runtime::checkpoint::{
    collect_contribution, merge_lane, CheckpointMerge, Contribution, DeltaTracker,
    ReferenceCheckpointMerge,
};
use privateer_runtime::shadow::Access;
use privateer_runtime::worker::WorkerRuntime;
use privateer_vm::{AddressSpace, RegionAllocator, RuntimeIface};
use std::hint::black_box;
use std::sync::{mpsc, Arc};

fn bench_shadow_transitions(c: &mut Criterion) {
    // The fast-phase privacy check: one Table 2 transition per byte.
    c.bench_function("privacy_check_64B_write_then_read", |b| {
        let addr = Heap::Private.base() + 0x4000;
        b.iter_batched(
            || (WorkerRuntime::new(0, 0.0, 0), AddressSpace::new()),
            |(mut rt, mut mem)| {
                rt.begin_iteration(0, 0).unwrap();
                rt.private_write(addr, 64, &mut mem).unwrap();
                rt.private_read(addr, 64, &mut mem).unwrap();
                black_box(mem.read_u8(addr));
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_private_write_validation(c: &mut Criterion) {
    // Steady-state `private_write` validation of a 64-byte aligned span
    // (the privatization "kill" pattern): the word-granular fast path
    // versus the per-byte reference it replaced. Shadow metadata is
    // pre-seeded old-write so both sides measure validation, not page
    // materialization.
    let addr = Heap::Private.base() + 0x4000;
    let setup = || {
        let mut rt = WorkerRuntime::new(0, 0.0, 0);
        let mut mem = AddressSpace::new();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(addr, 64, &mut mem).unwrap();
        rt.end_iteration().unwrap();
        WorkerRuntime::normalize_shadow(&mut mem);
        rt.begin_iteration(1, 1).unwrap();
        (rt, mem)
    };
    let mut g = c.benchmark_group("private_write_validation_64B");
    g.bench_function("swar", |b| {
        let (mut rt, mut mem) = setup();
        b.iter(|| {
            rt.private_write(black_box(addr), 64, &mut mem).unwrap();
            black_box(&mem);
        });
    });
    g.bench_function("bytewise", |b| {
        let (mut rt, mut mem) = setup();
        b.iter(|| {
            rt.private_access_bytewise(Access::Write, black_box(addr), 64, &mut mem)
                .unwrap();
            black_box(&mem);
        });
    });
    g.finish();
}

fn bench_telemetry_disabled_overhead(c: &mut Criterion) {
    // The disabled-overhead contract (see docs/observability.md): a hot
    // `private_write` loop through the full `RuntimeIface` wrapper — whose
    // disabled `WorkerTelemetry` handle reduces to one predictable branch
    // per call — versus the same validation with the wrapper (timing,
    // counters, telemetry) compiled out of the loop entirely. The CI
    // `trace-smoke` job runs this group and enforces a < 3% budget on the
    // gap between `disabled` and `compiled_out`.
    let addr = Heap::Private.base() + 0x4000;
    let setup = || {
        let mut rt = WorkerRuntime::new(0, 0.0, 0);
        let mut mem = AddressSpace::new();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(addr, 64, &mut mem).unwrap();
        rt.end_iteration().unwrap();
        WorkerRuntime::normalize_shadow(&mut mem);
        rt.begin_iteration(1, 1).unwrap();
        (rt, mem)
    };
    let mut g = c.benchmark_group("telemetry_disabled_overhead_64B");
    g.bench_function("disabled", |b| {
        let (mut rt, mut mem) = setup();
        b.iter(|| {
            rt.private_write(black_box(addr), 64, &mut mem).unwrap();
            black_box(&mem);
        });
    });
    g.bench_function("compiled_out", |b| {
        let (mut rt, mut mem) = setup();
        b.iter(|| {
            // The `private_write` wrapper body with only the telemetry
            // call removed — identical timing and stats accounting — so
            // the pair isolates exactly what a disabled handle adds.
            let t0 = std::time::Instant::now();
            let r = rt.private_access(Access::Write, black_box(addr), 64, &mut mem);
            rt.stats.priv_write_ns += t0.elapsed().as_nanos() as u64;
            rt.stats.priv_write_bytes += 64;
            rt.stats.priv_write_calls += 1;
            r.unwrap();
            black_box(&mem);
        });
    });
    g.finish();
}

fn bench_cow_fork(c: &mut Criterion) {
    // Worker replication: fork a populated space, then dirty one page.
    let mut parent = AddressSpace::new();
    for p in 0..256u64 {
        parent.write_u64(Heap::Private.base() + p * 4096, p);
    }
    c.bench_function("cow_fork_256_pages_dirty_1", |b| {
        b.iter(|| {
            let mut child = parent.fork();
            child.write_u64(Heap::Private.base() + 42 * 4096, 7);
            black_box(child.page_count());
        });
    });
}

fn bench_checkpoint_merge(c: &mut Criterion) {
    // One worker's contribution of 16 written pages merged and committed.
    c.bench_function("checkpoint_merge_16_pages", |b| {
        b.iter_batched(
            || {
                let mut rt = WorkerRuntime::new(0, 0.0, 0);
                let mut mem = AddressSpace::new();
                rt.begin_iteration(0, 0).unwrap();
                for p in 0..16u64 {
                    let a = Heap::Private.base() + 0x1000 + p * 4096;
                    rt.private_write(a, 256, &mut mem).unwrap();
                    mem.write_bytes(a, &[0xAB; 256]);
                }
                rt.end_iteration().unwrap();
                let contrib = collect_contribution(0, 0, &mem, &[], vec![]);
                (contrib, AddressSpace::new())
            },
            |(contrib, mut committed)| {
                let mut merge = CheckpointMerge::new(0);
                merge.add(contrib, &committed).unwrap();
                merge.commit(&mut committed);
                black_box(committed.page_count());
            },
            BatchSize::SmallInput,
        );
    });
}

fn bench_multi_period_checkpoint(c: &mut Criterion) {
    // The whole checkpoint path over a growing-footprint span: 8 periods,
    // each dirtying 16 *fresh* pages (256 bytes written per page), so the
    // cumulative footprint reaches 128 pages. The fast path — delta
    // contributions merged page-granularly — reships only the 16 pages
    // dirtied per period; the reference path reships the whole footprint
    // every period and merges through per-address hash containers, going
    // quadratic in span length.
    const PERIODS: u64 = 8;
    const PAGES_PER_PERIOD: u64 = 16;

    fn dirty_period(rt: &mut WorkerRuntime, mem: &mut AddressSpace, p: u64) {
        rt.begin_iteration(p as i64, 0).unwrap();
        for q in 0..PAGES_PER_PERIOD {
            let a = Heap::Private.base() + 0x1000 + (p * PAGES_PER_PERIOD + q) * 4096;
            rt.private_write(a, 256, mem).unwrap();
            mem.write_bytes(a, &[0xCD; 256]);
        }
        rt.end_iteration().unwrap();
    }

    let mut g = c.benchmark_group("multi_period_checkpoint_8x16_pages");
    g.bench_function("delta_dense", |b| {
        b.iter(|| {
            let mut rt = WorkerRuntime::new(0, 0.0, 0);
            let mut mem = AddressSpace::new();
            let mut tracker = DeltaTracker::new();
            let mut committed = AddressSpace::new();
            let mut shipped = 0usize;
            for p in 0..PERIODS {
                dirty_period(&mut rt, &mut mem, p);
                let contrib = tracker.collect(0, p, &mut mem, &[], vec![]);
                shipped += contrib.shadow_pages.len() + contrib.priv_pages.len();
                let mut merge = CheckpointMerge::new(0);
                merge.add(contrib, &committed).unwrap();
                merge.commit(&mut committed);
            }
            black_box(shipped);
        });
    });
    g.bench_function("cumulative_reference", |b| {
        b.iter(|| {
            let mut rt = WorkerRuntime::new(0, 0.0, 0);
            let mut mem = AddressSpace::new();
            let mut committed = AddressSpace::new();
            let mut shipped = 0usize;
            for p in 0..PERIODS {
                dirty_period(&mut rt, &mut mem, p);
                let contrib = collect_contribution(0, p, &mem, &[], vec![]);
                WorkerRuntime::normalize_shadow(&mut mem);
                shipped += contrib.shadow_pages.len() + contrib.priv_pages.len();
                let mut merge = ReferenceCheckpointMerge::new(0);
                merge.add(contrib, &committed).unwrap();
                merge.commit(&mut committed);
            }
            black_box(shipped);
        });
    });
    g.finish();
}

fn bench_merge_lanes(c: &mut Criterion) {
    // The sharded phase-2 merge (`EngineConfig::merge_lanes`): 8 periods,
    // each contributing 16 fully-written pages, merged serially versus
    // across 4 page-sharded lanes on a persistent pool — the same
    // shard-by-page-index scheme and persistent-thread structure as the
    // engine's merge-lane pool, so the pair measures exactly what the
    // engine's lane count buys per period.
    const PERIODS: u64 = 8;
    const PAGES_PER_PERIOD: u64 = 16;
    const LANES: usize = 4;

    fn contributions(lanes: usize) -> Vec<Contribution> {
        let mut rt = WorkerRuntime::new(0, 0.0, 0);
        let mut mem = AddressSpace::new();
        let mut tracker = DeltaTracker::with_lanes(lanes);
        let mut out = Vec::new();
        for p in 0..PERIODS {
            rt.begin_iteration(p as i64, 0).unwrap();
            for q in 0..PAGES_PER_PERIOD {
                let a = Heap::Private.base() + 0x1000 + (p * PAGES_PER_PERIOD + q) * 4096;
                rt.private_write(a, 4096, &mut mem).unwrap();
                mem.write_bytes(a, &[0xEF; 4096]);
            }
            rt.end_iteration().unwrap();
            out.push(tracker.collect(0, p, &mut mem, &[], vec![]));
        }
        out
    }

    let mut g = c.benchmark_group("merge_lanes_8x16_pages");
    g.bench_function("lanes_1", |b| {
        let contribs = contributions(1);
        b.iter(|| {
            let mut committed = AddressSpace::new();
            for contrib in &contribs {
                let mut merge = CheckpointMerge::new(0);
                merge_lane(&mut merge, std::slice::from_ref(contrib), 0, 1, &committed).unwrap();
                merge.commit(&mut committed);
            }
            black_box(committed.page_count());
        });
    });
    g.bench_function("lanes_4", |b| {
        let contribs: Vec<Arc<Contribution>> =
            contributions(LANES).into_iter().map(Arc::new).collect();
        let (res_tx, res_rx) = mpsc::channel::<(usize, CheckpointMerge)>();
        let mut txs = Vec::new();
        let mut handles = Vec::new();
        for lane in 0..LANES {
            let (tx, rx) = mpsc::channel::<(Arc<Contribution>, Arc<AddressSpace>)>();
            let res_tx = res_tx.clone();
            txs.push(tx);
            handles.push(std::thread::spawn(move || {
                for (contrib, committed) in rx.iter() {
                    let mut merge = CheckpointMerge::new(0);
                    merge_lane(
                        &mut merge,
                        std::slice::from_ref(contrib.as_ref()),
                        lane,
                        LANES,
                        &committed,
                    )
                    .unwrap();
                    res_tx.send((lane, merge)).unwrap();
                }
            }));
        }
        b.iter(|| {
            let mut committed = AddressSpace::new();
            for contrib in &contribs {
                let snap = Arc::new(committed.fork());
                for tx in &txs {
                    tx.send((contrib.clone(), snap.clone())).unwrap();
                }
                let mut merges: Vec<(usize, CheckpointMerge)> =
                    (0..LANES).map(|_| res_rx.recv().unwrap()).collect();
                merges.sort_by_key(|(l, _)| *l);
                for (_, merge) in merges {
                    merge.commit(&mut committed);
                }
            }
            black_box(committed.page_count());
        });
        drop(txs);
        for h in handles {
            h.join().unwrap();
        }
    });
    g.finish();
}

fn bench_interval_map(c: &mut Criterion) {
    // The pointer-to-object profiler's core structure.
    c.bench_function("interval_map_insert_query_1k", |b| {
        b.iter(|| {
            let mut m = IntervalMap::new();
            for i in 0..1000u64 {
                m.insert(i * 64, i * 64 + 48, i);
            }
            let mut hits = 0u64;
            for i in 0..1000u64 {
                if m.get(i * 64 + 16).is_some() {
                    hits += 1;
                }
            }
            black_box(hits);
        });
    });
}

fn bench_allocator(c: &mut Criterion) {
    c.bench_function("region_allocator_alloc_free_1k", |b| {
        b.iter(|| {
            let mut a = RegionAllocator::new(0x1000, 0x100_0000);
            let ptrs: Vec<u64> = (0..1000).map(|_| a.alloc(48).unwrap()).collect();
            for p in ptrs {
                a.free(p).unwrap();
            }
            black_box(a.live_count);
        });
    });
}

criterion_group!(
    benches,
    bench_shadow_transitions,
    bench_private_write_validation,
    bench_telemetry_disabled_overhead,
    bench_cow_fork,
    bench_checkpoint_merge,
    bench_multi_period_checkpoint,
    bench_merge_lanes,
    bench_interval_map,
    bench_allocator
);
criterion_main!(benches);
