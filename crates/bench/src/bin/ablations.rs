//! Ablations of the design choices DESIGN.md calls out:
//!
//! 1. checkpoint period (the paper's "collect checkpoints only after a
//!    large number of iterations" policy, §5.2) — with and without
//!    misspeculation;
//! 2. value prediction on/off (what §6.1 says dijkstra and swaptions
//!    need);
//! 3. control speculation on/off;
//! 4. compile-time separation-check elision (§4.5 "other checks are
//!    proved successful at compile time and are elided").

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_bench::{run_sequential, workloads, Scale};
use privateer_runtime::{EngineConfig, MainRuntime};
use privateer_vm::{load_module, Interp, NopHooks};

fn speedup_with(
    module: &privateer_ir::Module,
    seq_insts: u64,
    workers: usize,
    period: u64,
    inject: f64,
) -> f64 {
    let result = privatize(module, &PipelineConfig::default()).expect("pipeline");
    let image = load_module(&result.module);
    let cfg = EngineConfig {
        workers,
        checkpoint_period: period,
        inject_rate: inject,
        inject_seed: 0xab1,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(
        &result.module,
        &image,
        NopHooks,
        MainRuntime::new(&image, cfg),
    );
    interp.run_main().expect("run");
    seq_insts as f64 / (interp.stats.insts + interp.rt.stats.sim.total) as f64
}

fn main() {
    println!("Ablation 1 — checkpoint period (dijkstra, 8 workers)\n");
    println!(
        "{:<10}{:>14}{:>22}",
        "period", "no misspec", "5% injected misspec"
    );
    let wl = &workloads()[1];
    let module = wl.build(Scale::Bench);
    let seq = run_sequential(&module);
    for period in [2u64, 4, 8, 16, 32, 64, 128] {
        let clean = speedup_with(&module, seq.insts, 8, period, 0.0);
        let dirty = speedup_with(&module, seq.insts, 8, period, 0.05);
        println!("{period:<10}{clean:>13.2}x{dirty:>21.2}x");
    }
    println!("\n  short periods pay merge overhead every few iterations; long");
    println!("  periods discard more work per misspeculation (§5.2).\n");

    println!("Ablation 2 — value prediction on/off (loops selected)\n");
    println!("{:<14}{:>10}{:>10}", "program", "with VP", "without");
    for wl in workloads() {
        let module = wl.build(Scale::Train);
        let on = privatize(&module, &PipelineConfig::default()).unwrap();
        let off = privatize(
            &module,
            &PipelineConfig {
                enable_value_prediction: false,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        println!(
            "{:<14}{:>10}{:>10}",
            wl.name,
            on.reports.len(),
            off.reports.len()
        );
    }
    println!("\n  dijkstra and swaptions lose their hot loop without value");
    println!("  prediction — the work-list/scratch-flag flow dependence blocks");
    println!("  privatization (§6.1).\n");

    println!("Ablation 3 — control speculation on/off (cold blocks removed)\n");
    println!("{:<14}{:>10}{:>10}", "program", "with CS", "without");
    for wl in workloads() {
        let module = wl.build(Scale::Train);
        let on = privatize(&module, &PipelineConfig::default()).unwrap();
        let off = privatize(
            &module,
            &PipelineConfig {
                enable_control_speculation: false,
                ..PipelineConfig::default()
            },
        )
        .unwrap();
        let blocks = |r: &privateer::pipeline::Privatized| {
            r.reports
                .iter()
                .map(|x| x.control_spec_blocks)
                .sum::<usize>()
        };
        println!("{:<14}{:>10}{:>10}", wl.name, blocks(&on), blocks(&off));
    }

    println!("\nAblation 4 — separation checks: inserted vs elided (§4.5)\n");
    println!(
        "{:<14}{:>10}{:>10}{:>12}{:>12}",
        "program", "inserted", "elided", "priv reads", "priv writes"
    );
    for wl in workloads() {
        let module = wl.build(Scale::Train);
        let r = privatize(&module, &PipelineConfig::default()).unwrap();
        let c = r.reports[0].checks;
        println!(
            "{:<14}{:>10}{:>10}{:>12}{:>12}",
            wl.name, c.separation, c.elided, c.privacy_reads, c.privacy_writes
        );
    }
    println!("\n  pointers provably rooted in the right heap (globals, h_alloc");
    println!("  results, and GEPs of either) never pay a runtime check.");
}
