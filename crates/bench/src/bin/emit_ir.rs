//! Emit one of the evaluated workloads as textual IR (consumable by the
//! `privc` driver).
//!
//! ```console
//! $ cargo run -p privateer-bench --bin emit_ir -- dijkstra > dijkstra.ir
//! $ cargo run -p privateer --bin privc -- dijkstra.ir --run --workers 8
//! ```

use privateer_bench::{workloads, Scale};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_default();
    let scale = match std::env::args().nth(2).as_deref() {
        Some("bench") => Scale::Bench,
        _ => Scale::Train,
    };
    let all = workloads();
    match all
        .iter()
        .find(|w| w.name.contains(&name) && !name.is_empty())
    {
        Some(w) => print!("{}", privateer_ir::printer::print_module(&w.build(scale))),
        None => {
            eprintln!("usage: emit_ir <name> [train|bench]");
            eprintln!(
                "names: {}",
                all.iter().map(|w| w.name).collect::<Vec<_>>().join(", ")
            );
            std::process::exit(2);
        }
    }
}
