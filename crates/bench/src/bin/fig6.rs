//! Figure 6: whole-program speedup of the fully automatically
//! parallelized code vs best sequential execution, for 1..24 workers.

use privateer_bench::{geomean, run_privateer, run_sequential, workloads, Scale, WORKER_COUNTS};

fn main() {
    println!("Figure 6 — whole-program speedup over best sequential execution");
    println!("(simulated cycles; see crates/bench/src/lib.rs for the timing model)\n");
    print!("{:<14}", "program");
    for w in WORKER_COUNTS {
        print!("{w:>8}");
    }
    println!();

    let mut per_worker_speedups: Vec<Vec<f64>> = vec![Vec::new(); WORKER_COUNTS.len()];
    for wl in workloads() {
        let module = wl.build(Scale::Bench);
        let seq = run_sequential(&module);
        assert_eq!(
            seq.out,
            wl.reference(Scale::Bench),
            "{}: bad sequential output",
            wl.name
        );
        print!("{:<14}", wl.name);
        for (i, &workers) in WORKER_COUNTS.iter().enumerate() {
            let par = run_privateer(&module, workers, 0.0);
            assert_eq!(
                par.out, seq.out,
                "{}: bad parallel output @{workers}",
                wl.name
            );
            let speedup = seq.insts as f64 / par.sim_time() as f64;
            per_worker_speedups[i].push(speedup);
            print!("{speedup:>8.2}");
        }
        println!();
    }
    print!("{:<14}", "geomean");
    for col in &per_worker_speedups {
        print!("{:>8.2}", geomean(col));
    }
    println!();
    println!("\npaper: geomean 11.4x at 24 workers on a 24-core Xeon X7460");
}
