//! Figure 7: the enabling effect of Privateer at 24 worker processes —
//! speculative privatization vs the non-speculative DOALL-only baseline.

use privateer_bench::{run_doall_only, run_privateer, run_sequential, workloads, Scale};

fn main() {
    const W: usize = 24;
    println!("Figure 7 — enabling effect of Privateer at {W} workers");
    println!("(simulated cycles)\n");
    println!(
        "{:<14}{:>12}{:>14}{:>18}",
        "program", "privateer", "doall-only", "static loops found"
    );
    for wl in workloads() {
        let module = wl.build(Scale::Bench);
        let seq = run_sequential(&module);
        let par = run_privateer(&module, W, 0.0);
        assert_eq!(par.out, seq.out, "{}: privateer diverged", wl.name);
        let da = run_doall_only(&module, W);
        assert_eq!(da.out, seq.out, "{}: doall-only diverged", wl.name);
        let sp = seq.insts as f64 / par.sim_time() as f64;
        let sd = seq.insts as f64 / da.sim_time() as f64;
        println!(
            "{:<14}{sp:>11.2}x{sd:>13.2}x{:>18}",
            wl.name, da.parallelized
        );
    }
    println!("\npaper: DOALL-only ~0.93x geomean (slowdown on alvinn, nothing on");
    println!("dijkstra/enc-md5/swaptions, inner loop only on blackscholes);");
    println!("Privateer 11.4x geomean.");
}
