//! Figure 8: breakdown of parallel-execution overheads at 4..24 workers,
//! normalized to total computational capacity (workers × duration).

use privateer_bench::{run_privateer, workloads, Scale};

fn main() {
    println!("Figure 8 — overhead breakdown (% of computational capacity)");
    println!("(simulated cycles)\n");
    println!(
        "{:<14}{:>8}{:>9}{:>11}{:>12}{:>12}{:>12}",
        "program", "workers", "useful", "priv read", "priv write", "checkpoint", "spawn/join"
    );
    for wl in workloads() {
        let module = wl.build(Scale::Bench);
        for workers in [4, 8, 12, 16, 20, 24] {
            let par = run_privateer(&module, workers, 0.0);
            let (u, pr, pw, ck, sj) = par.stats.sim.breakdown();
            println!(
                "{:<14}{workers:>8}{:>8.1}%{:>10.1}%{:>11.1}%{:>11.1}%{:>11.1}%",
                wl.name,
                u * 100.0,
                pr * 100.0,
                pw * 100.0,
                ck * 100.0,
                sj * 100.0
            );
        }
        println!();
    }
    println!("paper: most capacity is useful work; privacy validation is the");
    println!("largest validation overhead and roughly constant in worker count;");
    println!("alvinn and dijkstra lose noticeable capacity to spawn/join.");
}
