//! Figure 9: performance degradation with injected misspeculation.

use privateer_bench::{run_privateer, run_sequential, workloads, Scale};

fn main() {
    // Rates as a fraction of iterations (the paper sweeps 0.01%..1% with
    // thousands of iterations; our loops run hundreds, so the sweep is
    // shifted to keep the expected number of misspeculations comparable).
    const RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.05, 0.1];
    println!("Figure 9 — speedup degradation under injected misspeculation");
    println!("(24 workers, simulated cycles)\n");
    print!("{:<14}", "program");
    for r in RATES {
        print!("{:>9.2}%", r * 100.0);
    }
    println!();
    for wl in workloads() {
        let module = wl.build(Scale::Bench);
        let seq = run_sequential(&module);
        print!("{:<14}", wl.name);
        for rate in RATES {
            let par = run_privateer(&module, 24, rate);
            assert_eq!(par.out, seq.out, "{}: diverged at rate {rate}", wl.name);
            let speedup = seq.insts as f64 / par.sim_time() as f64;
            print!("{speedup:>10.2}");
        }
        println!();
    }
    println!("\npaper: four of five programs lose half their speedup at a 0.1%");
    println!("misspeculation rate — high-confidence speculation is required.");
}
