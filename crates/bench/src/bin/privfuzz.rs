//! `privfuzz` — the differential workload fuzzer for the speculative
//! engine.
//!
//! Generates seeded random transformed loops and runs each through the
//! full execution-mode matrix ([`privateer_fuzz::oracle`]): sequential
//! baseline, the speculative engine at every requested worker ×
//! merge-lane combination, the reference-merge differential mode, and
//! seeded virtual-scheduler interleavings. The first divergence is
//! shrunk to a minimal case and written as a repro file replayable with
//! `--replay`.
//!
//! ```text
//! privfuzz --seed 42 --cases 500
//! privfuzz --replay fuzz-failures/privfuzz-42-17.case
//! ```

use privateer_fuzz::{oracle, run_seeded, CaseSpec, OracleConfig};
use std::process::ExitCode;

struct Options {
    seed: u64,
    cases: u64,
    workers: Vec<usize>,
    lanes: Vec<usize>,
    period: u64,
    schedule_seeds: u64,
    out_dir: String,
    replay: Option<String>,
}

const USAGE: &str = "\
usage: privfuzz [options]
  --seed N           campaign seed (default: 1)
  --cases N          generated cases to run (default: 200)
  --workers A,B,..   engine worker counts to cross (default: 2,5)
  --lanes A,B,..     merge-lane counts to cross (default: 1,4)
  --period K         checkpoint period in iterations (default: 4)
  --schedule-seeds N virtual-scheduler interleavings per case (default: 2)
  --out DIR          directory for repro files on failure (default: .)
  --replay FILE      re-check one repro file instead of generating
";

fn parse_list(flag: &str, s: &str) -> Result<Vec<usize>, String> {
    let v: Result<Vec<usize>, _> = s.split(',').map(str::parse).collect();
    match v {
        Ok(v) if !v.is_empty() && v.iter().all(|&x| x > 0) => Ok(v),
        _ => Err(format!(
            "{flag}: expected a comma-separated list of positive integers"
        )),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        seed: 1,
        cases: 200,
        workers: vec![2, 5],
        lanes: vec![1, 4],
        period: 4,
        schedule_seeds: 2,
        out_dir: ".".to_string(),
        replay: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--seed" => {
                opts.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--cases" => {
                opts.cases = value("--cases")?
                    .parse()
                    .map_err(|e| format!("--cases: {e}"))?
            }
            "--workers" => opts.workers = parse_list("--workers", &value("--workers")?)?,
            "--lanes" => opts.lanes = parse_list("--lanes", &value("--lanes")?)?,
            "--period" => {
                opts.period = value("--period")?
                    .parse()
                    .map_err(|e| format!("--period: {e}"))?;
                if opts.period == 0 {
                    return Err("--period must be positive".to_string());
                }
            }
            "--schedule-seeds" => {
                opts.schedule_seeds = value("--schedule-seeds")?
                    .parse()
                    .map_err(|e| format!("--schedule-seeds: {e}"))?
            }
            "--out" => opts.out_dir = value("--out")?,
            "--replay" => opts.replay = Some(value("--replay")?),
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("privfuzz: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let oc = OracleConfig {
        workers: opts.workers.clone(),
        lanes: opts.lanes.clone(),
        checkpoint_period: opts.period,
        schedule_seeds: opts.schedule_seeds,
    };

    if let Some(path) = &opts.replay {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("privfuzz: cannot read {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let spec = match CaseSpec::from_text(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("privfuzz: bad repro file {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        return match oracle::check_case(&spec, &oc) {
            Ok(report) => {
                println!(
                    "replay {path}: PASS ({} misspec(s){})",
                    report.misspecs,
                    if report.seq_trapped {
                        ", genuine trap"
                    } else {
                        ""
                    }
                );
                ExitCode::SUCCESS
            }
            Err(f) => {
                eprintln!("replay {path}: FAIL {f}");
                ExitCode::FAILURE
            }
        };
    }

    println!(
        "privfuzz: seed {} · {} cases · workers {:?} × lanes {:?} · k={} · {} schedule seed(s)",
        opts.seed, opts.cases, opts.workers, opts.lanes, opts.period, opts.schedule_seeds
    );
    let summary = run_seeded(opts.seed, opts.cases, &oc);
    println!(
        "privfuzz: {} case(s) run, {} with misspeculation, {} with genuine traps",
        summary.cases, summary.cases_with_misspec, summary.cases_trapped
    );
    match summary.failure {
        None => {
            println!("privfuzz: PASS");
            ExitCode::SUCCESS
        }
        Some(f) => {
            eprintln!("privfuzz: case {} FAILED: {}", f.index, f.failure);
            let _ = std::fs::create_dir_all(&opts.out_dir);
            let orig = format!("{}/privfuzz-{}-{}.case", opts.out_dir, opts.seed, f.index);
            let min = format!(
                "{}/privfuzz-{}-{}.min.case",
                opts.out_dir, opts.seed, f.index
            );
            for (path, spec) in [(&orig, &f.spec), (&min, &f.shrunk)] {
                let mut body = format!(
                    "# privfuzz repro: seed {} case {} — {}\n",
                    opts.seed, f.index, f.failure
                );
                body.push_str(&spec.to_text());
                if let Err(e) = std::fs::write(path, body) {
                    eprintln!("privfuzz: cannot write {path}: {e}");
                }
            }
            eprintln!("privfuzz: repro written to {orig}\nprivfuzz: shrunk repro: {min}");
            eprintln!("privfuzz: replay with `privfuzz --replay {min}`");
            ExitCode::FAILURE
        }
    }
}
