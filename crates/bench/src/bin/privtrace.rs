//! `privtrace` — run a workload under the speculative engine with tracing
//! enabled, write the capture as Chrome `trace_event` JSON (loadable in
//! `chrome://tracing` / Perfetto, one named track per worker), and print a
//! per-phase time breakdown.
//!
//! ```text
//! privtrace --workload dijkstra --workers 4 --trace trace.json
//! ```

use privateer_bench::{run_privateer_with_telemetry, workloads, Scale};
use privateer_telemetry::{chrome_trace, json_lines, Telemetry};
use std::process::ExitCode;

struct Options {
    workload: String,
    workers: usize,
    inject: f64,
    scale: Scale,
    trace_path: Option<String>,
    jsonl_path: Option<String>,
}

const USAGE: &str = "\
usage: privtrace [options]
  --workload NAME    workload to run (default: dijkstra; --list to see all)
  --workers N        worker threads (default: 4)
  --inject RATE      injected misspeculation rate per iteration (default: 0)
  --scale SCALE      input scale, `train` or `bench` (default: train)
  --trace FILE       write Chrome trace_event JSON to FILE
  --jsonl FILE       write the capture as JSON lines to FILE
  --list             list workloads and exit
";

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        workload: "dijkstra".to_string(),
        workers: 4,
        inject: 0.0,
        scale: Scale::Train,
        trace_path: None,
        jsonl_path: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next()
                .ok_or_else(|| format!("{flag} requires a value"))
        };
        match arg.as_str() {
            "--workload" => opts.workload = value("--workload")?,
            "--workers" => {
                opts.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--inject" => {
                opts.inject = value("--inject")?
                    .parse()
                    .map_err(|e| format!("--inject: {e}"))?
            }
            "--scale" => {
                opts.scale = match value("--scale")?.as_str() {
                    "train" => Scale::Train,
                    "bench" => Scale::Bench,
                    other => return Err(format!("--scale: unknown scale `{other}`")),
                }
            }
            "--trace" => opts.trace_path = Some(value("--trace")?),
            "--jsonl" => opts.jsonl_path = Some(value("--jsonl")?),
            "--list" => {
                for w in workloads() {
                    println!("{}", w.name);
                }
                std::process::exit(0);
            }
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(e) => {
            eprintln!("privtrace: {e}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let all = workloads();
    let Some(wl) = all.iter().find(|w| w.name == opts.workload) else {
        eprintln!(
            "privtrace: unknown workload `{}` (try --list)",
            opts.workload
        );
        return ExitCode::from(2);
    };

    let module = wl.build(opts.scale);
    let tel = Telemetry::enabled();
    let run = run_privateer_with_telemetry(&module, opts.workers, opts.inject, tel.clone());
    let trace = tel.trace();

    let ok = run.out == wl.reference(opts.scale);
    println!(
        "{}: {} workers, {:.1} ms wall, {} misspec(s), {} iterations recovered — output {}",
        wl.name,
        opts.workers,
        run.wall.as_secs_f64() * 1e3,
        run.stats.misspecs,
        run.stats.recovered_iters,
        if ok { "matches reference" } else { "DIVERGED" },
    );

    // Per-phase time breakdown. Spans nest (parallel ⊃ iteration ⊃
    // priv_read/priv_write; checkpoint work splits into package/normalize
    // on the workers and merge/commit on the engine), so the percentages
    // are relative to the parallel-span wall plus recovery wall — the
    // denominators of the paper's Figure 8.
    let totals = trace.phase_totals();
    let total_of = |name: &str| {
        totals
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, t)| t)
    };
    let denom = (total_of("parallel") + total_of("recovery")).max(1) as f64;
    println!(
        "\nphase breakdown ({} events captured):",
        trace.events.len()
    );
    println!("  {:<12} {:>12} {:>8}", "phase", "total", "share");
    for phase in [
        "parallel",
        "iteration",
        "priv_read",
        "priv_write",
        "package",
        "normalize",
        "merge",
        "merge_lane",
        "commit",
        "recovery",
    ] {
        let t = total_of(phase);
        if t == 0 && !matches!(phase, "parallel" | "recovery") {
            continue;
        }
        println!(
            "  {:<12} {:>9.3} ms {:>7.2}%",
            phase,
            t as f64 / 1e6,
            t as f64 / denom * 100.0,
        );
    }
    if trace.dropped > 0 {
        println!("  ({} events dropped to ring overflow)", trace.dropped);
    }

    println!("\nmetrics:");
    for (name, snap) in &trace.metrics {
        println!("  {name:<28} {snap:?}");
    }

    if let Some(path) = &opts.trace_path {
        if let Err(e) = std::fs::write(path, chrome_trace(&trace)) {
            eprintln!("privtrace: writing {path}: {e}");
            return ExitCode::from(1);
        }
        println!("\nChrome trace written to {path} (open in chrome://tracing or Perfetto)");
    }
    if let Some(path) = &opts.jsonl_path {
        if let Err(e) = std::fs::write(path, json_lines(&trace)) {
            eprintln!("privtrace: writing {path}: {e}");
            return ExitCode::from(1);
        }
        println!("JSON lines written to {path}");
    }

    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}
