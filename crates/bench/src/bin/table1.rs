//! Table 1: comparison of Privateer with prior privatization and
//! reduction schemes — regenerated as an *applicability matrix* by
//! actually running each implemented scheme against each evaluated
//! program's hot loop.

use privateer::baseline::{doall_only, lrpd_applicable};
use privateer::pipeline::{privatize, PipelineConfig};
use privateer_bench::{workloads, Scale};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::loops::LoopInfo;
use privateer_ir::{CmpOp, Module, Type, Value};
use privateer_vm::load_module;

/// A FORTRAN-flavoured affine array kernel — the programs prior work *was*
/// built for — as a control row: every scheme should handle it.
fn array_kernel() -> Module {
    let mut m = Module::new("array-kernel");
    let a = m.add_global("a", 8 * 64);
    let mut b = FunctionBuilder::new("main", vec![], None);
    let pre = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (i, phi) = b.phi(Type::I64);
    b.add_phi_incoming(phi, pre, Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, i, Value::const_i64(64));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let slot = b.gep(Value::Global(a), i, 8, 0);
    let v = b.mul(Type::I64, i, i);
    b.store(Type::I64, v, slot);
    let i2 = b.add(Type::I64, i, Value::const_i64(1));
    b.add_phi_incoming(phi, body, i2);
    b.br(header);
    b.switch_to(exit);
    let s = b.gep(Value::Global(a), Value::const_i64(63), 8, 0);
    let v = b.load(Type::I64, s);
    b.print_i64(v);
    b.ret(None);
    m.add_function(b.finish());
    m
}

fn main() {
    println!("Table 1 — applicability on the evaluated programs");
    println!("(Privateer = this system; LRPD = array-only shadow test;");
    println!(" static DOALL = non-speculative affine analysis)\n");
    println!(
        "{:<14}{:>12}{:>14}{:>16}",
        "program", "privateer", "array LRPD", "static DOALL"
    );

    let mut rows: Vec<(String, Module)> = workloads()
        .into_iter()
        .map(|wl| (wl.name.to_string(), wl.build(Scale::Train)))
        .collect();
    rows.push(("array-kernel".into(), array_kernel()));
    for (name, module) in rows {
        // Privateer: does the full pipeline select the hot loop?
        let piv = privatize(&module, &PipelineConfig::default())
            .map(|r| !r.reports.is_empty())
            .unwrap_or(false);

        // Find the hottest loop for the prior-work tests.
        let image = load_module(&module);
        let (profile, _) = privateer_profile::profile_module(&module, &image).unwrap();
        let (hot, _) = profile.loops_by_weight()[0];
        let li = LoopInfo::compute(module.func(hot.0));
        let lp = li.get(hot.1);

        // Array-only LRPD: applicable to the hot loop at all?
        let lrpd = lrpd_applicable(&module, hot.0, lp).is_ok();

        // Static DOALL: does it prove the *hot* loop (not merely some
        // trivial init loop)?
        let st = doall_only(&module)
            .parallelized
            .iter()
            .any(|&(f, l)| (f, l) == hot);

        let mark = |b: bool| if b { "yes" } else { "no" };
        println!(
            "{:<14}{:>12}{:>14}{:>16}",
            name,
            mark(piv),
            mark(lrpd),
            mark(st)
        );
    }

    println!("\nCapability summary (cf. the paper's Table 1):");
    println!("  Privateer   : fully automatic; pointers + dynamic allocation;");
    println!("                speculative privatization criterion; heap-separation");
    println!("                memory layout; speculative reductions.");
    println!("  array LRPD  : speculative criterion, but layout limited to");
    println!("                statically named arrays — fails on linked structures,");
    println!("                dynamic allocation, and pointers loaded from memory.");
    println!("  static DOALL: no speculation; both criterion and layout limited by");
    println!("                static analysis — fails wherever may-alias or");
    println!("                non-affine subscripts appear.");
}
