//! Table 3: details of privatized and parallelized programs — dynamic
//! invocation/checkpoint counts, private bytes read and written, static
//! objects per heap, and the extra transformations applied.

use privateer_bench::{run_privateer, workloads, Scale};

fn main() {
    println!("Table 3 — details of privatized and parallelized programs");
    println!("(8 workers, checkpoint period 16)\n");
    println!(
        "{:<14}{:>7}{:>8}{:>12}{:>12}  {:>3}{:>4}{:>4}{:>4}{:>4}  extras",
        "program", "invoc", "checkpt", "priv R", "priv W", "Pri", "SL", "RO", "Rdx", "Unr"
    );
    for wl in workloads() {
        let module = wl.build(Scale::Bench);
        let par = run_privateer(&module, 8, 0.0);
        let r = &par.reports[0];
        let [ro, pri, rdx, sl, unr] = r.heap_counts;
        let mut extras = Vec::new();
        if r.value_predicted {
            extras.push("Value");
        }
        if r.control_spec_blocks > 0 {
            extras.push("Control");
        }
        if r.does_io {
            extras.push("I/O");
        }
        let extras = if extras.is_empty() {
            "-".to_string()
        } else {
            extras.join(", ")
        };
        println!(
            "{:<14}{:>7}{:>8}{:>12}{:>12}  {:>3}{:>4}{:>4}{:>4}{:>4}  {}",
            wl.name,
            par.stats.invocations,
            par.stats.checkpoints,
            human(par.stats.priv_read_bytes),
            human(par.stats.priv_write_bytes),
            pri,
            sl,
            ro,
            rdx,
            unr,
            extras
        );
    }
    println!("\npaper's corresponding rows (24-core testbed, full-size inputs):");
    println!("  052.alvinn   200 invoc, 2600 ckpt, 8.2GB R / 300MB W, 4 Pri 0 SL 4 RO 3 Rdx, -");
    println!(
        "  dijkstra     1 invoc, 5 ckpt, 84.9GB R / 56.7GB W, 10 Pri 3 SL 11 RO, Value+Control+I/O"
    );
    println!("  blackscholes 1 invoc, 5 ckpt, 0B R / 4.0GB W, 1 Pri 0 SL 9 RO, Value");
    println!("  swaptions    1 invoc, 17 ckpt, 288KB R / 169KB W, 2 Pri 15 SL 5 RO, Value+Control");
    println!("  enc-md5      1 invoc, 5 ckpt, 25.5GB R / 30.8GB W, 2 Pri 1 SL 4 RO, Control+I/O");
}

fn human(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1}MB", bytes as f64 / (1 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1}KB", bytes as f64 / (1 << 10) as f64)
    } else {
        format!("{bytes}B")
    }
}
