#![warn(missing_docs)]
//! # privateer-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§6). Binaries:
//!
//! | binary | regenerates |
//! |--------|-------------|
//! | `fig6` | whole-program speedup vs workers, per program + geomean |
//! | `fig7` | Privateer vs DOALL-only at max workers |
//! | `fig8` | overhead breakdown vs workers |
//! | `fig9` | speedup degradation under injected misspeculation |
//! | `table1` | applicability matrix vs prior schemes |
//! | `table3` | dynamic statistics per program |
//!
//! ## Timing model
//!
//! The paper reports wall-clock speedups on a 24-core Xeon. This
//! reproduction executes on a simulated substrate whose host may have any
//! number of cores, so speedups are computed from the engine's
//! *simulated-cycle* model (`privateer_runtime::model`): deterministic,
//! host-independent, and preserving the paper's shape conclusions (who
//! wins, by roughly what factor, where the overheads sit). Wall-clock
//! numbers are also collected and printed for reference.

use privateer::baseline::{doall_only, DoallOnly};
use privateer::pipeline::{privatize, LoopReport, PipelineConfig};
use privateer_ir::Module;
use privateer_runtime::{EngineConfig, EngineStats, MainRuntime, UncheckedDoallRuntime};
use privateer_telemetry::Telemetry;
use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};
use privateer_workloads::{alvinn, blackscholes, dijkstra, md5, swaptions};
use std::time::{Duration, Instant};

/// Input scale for harness runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small (fast runs; profiling-sized).
    Train,
    /// The evaluation scale used by the figure binaries.
    Bench,
}

/// One evaluated program.
pub struct Workload {
    /// Program name as in the paper.
    pub name: &'static str,
    builder: Box<dyn Fn(Scale) -> Module>,
    reference: Box<dyn Fn(Scale) -> Vec<u8>>,
}

impl Workload {
    /// Build the IR module at `scale`.
    pub fn build(&self, scale: Scale) -> Module {
        (self.builder)(scale)
    }

    /// The expected output at `scale`.
    pub fn reference(&self, scale: Scale) -> Vec<u8> {
        (self.reference)(scale)
    }
}

/// The five programs of Table 3.
pub fn workloads() -> Vec<Workload> {
    fn dj(s: Scale) -> dijkstra::Params {
        match s {
            Scale::Train => dijkstra::Params::train(),
            Scale::Bench => dijkstra::Params { n: 96, seed: 12 },
        }
    }
    fn bs(s: Scale) -> blackscholes::Params {
        match s {
            Scale::Train => blackscholes::Params::train(),
            Scale::Bench => blackscholes::Params {
                options: 512,
                runs: 32,
                seed: 22,
            },
        }
    }
    fn sw(s: Scale) -> swaptions::Params {
        match s {
            Scale::Train => swaptions::Params::train(),
            Scale::Bench => swaptions::Params {
                swaptions: 96,
                trials: 16,
                steps: 24,
                seed: 52,
            },
        }
    }
    fn al(s: Scale) -> alvinn::Params {
        match s {
            Scale::Train => alvinn::Params::train(),
            Scale::Bench => alvinn::Params {
                inputs: 16,
                hidden: 10,
                outputs: 4,
                examples: 160,
                epochs: 10,
                seed: 32,
            },
        }
    }
    fn m5(s: Scale) -> md5::Params {
        match s {
            Scale::Train => md5::Params::train(),
            Scale::Bench => md5::Params {
                messages: 160,
                msg_len: 120,
                seed: 42,
            },
        }
    }
    vec![
        Workload {
            name: "052.alvinn",
            builder: Box::new(|s| alvinn::build(&al(s))),
            reference: Box::new(|s| alvinn::reference_output(&al(s))),
        },
        Workload {
            name: "dijkstra",
            builder: Box::new(|s| dijkstra::build(&dj(s))),
            reference: Box::new(|s| dijkstra::reference_output(&dj(s))),
        },
        Workload {
            name: "blackscholes",
            builder: Box::new(|s| blackscholes::build(&bs(s))),
            reference: Box::new(|s| blackscholes::reference_output(&bs(s))),
        },
        Workload {
            name: "swaptions",
            builder: Box::new(|s| swaptions::build(&sw(s))),
            reference: Box::new(|s| swaptions::reference_output(&sw(s))),
        },
        Workload {
            name: "enc-md5",
            builder: Box::new(|s| md5::build(&m5(s))),
            reference: Box::new(|s| md5::reference_output(&m5(s))),
        },
    ]
}

/// Result of the best-sequential baseline run (the original module).
#[derive(Debug, Clone)]
pub struct SeqRun {
    /// Instructions executed (the simulated-time denominator).
    pub insts: u64,
    /// Wall time.
    pub wall: Duration,
    /// Program output.
    pub out: Vec<u8>,
}

/// Run the unmodified sequential program.
pub fn run_sequential(module: &Module) -> SeqRun {
    let image = load_module(module);
    let mut interp = Interp::new(module, &image, NopHooks, BasicRuntime::strict());
    let t0 = Instant::now();
    interp.run_main().expect("sequential run");
    SeqRun {
        insts: interp.stats.insts,
        wall: t0.elapsed(),
        out: interp.rt.take_output(),
    }
}

/// Result of a speculative parallel run.
#[derive(Debug, Clone)]
pub struct PrivRun {
    /// Main-thread instructions (sequential portions).
    pub main_insts: u64,
    /// Engine statistics (including the simulated-cycle model).
    pub stats: EngineStats,
    /// Wall time.
    pub wall: Duration,
    /// Program output.
    pub out: Vec<u8>,
    /// Per-loop transformation reports.
    pub reports: Vec<LoopReport>,
}

impl PrivRun {
    /// Simulated whole-program parallel time.
    pub fn sim_time(&self) -> u64 {
        self.main_insts + self.stats.sim.total
    }
}

/// Privatize `module` (full pipeline) and run it under the speculative
/// engine.
///
/// # Panics
///
/// Panics if the pipeline or the run fails — harness programs want loud
/// failures.
pub fn run_privateer(module: &Module, workers: usize, inject_rate: f64) -> PrivRun {
    run_privateer_with_telemetry(module, workers, inject_rate, Telemetry::disabled())
}

/// [`run_privateer`] with an explicit telemetry handle — pass
/// [`Telemetry::enabled`] (and keep a clone) to capture a trace of the
/// run, as the `privtrace` binary does.
///
/// # Panics
///
/// Panics if the pipeline or the run fails.
pub fn run_privateer_with_telemetry(
    module: &Module,
    workers: usize,
    inject_rate: f64,
    tel: Telemetry,
) -> PrivRun {
    let result = privatize(module, &PipelineConfig::default()).expect("pipeline");
    let image = load_module(&result.module);
    let cfg = EngineConfig {
        workers,
        checkpoint_period: 16,
        inject_rate,
        inject_seed: 0xf19,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(
        &result.module,
        &image,
        NopHooks,
        MainRuntime::with_telemetry(&image, cfg, tel),
    );
    let t0 = Instant::now();
    interp.run_main().expect("parallel run");
    let wall = t0.elapsed();
    let out = interp.rt.take_output();
    PrivRun {
        main_insts: interp.stats.insts,
        stats: interp.rt.stats,
        wall,
        out,
        reports: result.reports,
    }
}

/// Result of a DOALL-only (non-speculative) run.
#[derive(Debug, Clone)]
pub struct DoallRun {
    /// Main-thread instructions.
    pub main_insts: u64,
    /// Simulated parallel-region cycles.
    pub sim_total: u64,
    /// Loops the static analysis managed to parallelize.
    pub parallelized: usize,
    /// Program output.
    pub out: Vec<u8>,
}

impl DoallRun {
    /// Simulated whole-program time.
    pub fn sim_time(&self) -> u64 {
        self.main_insts + self.sim_total
    }
}

/// Transform with the static-only baseline and run unchecked.
///
/// # Panics
///
/// Panics if the run fails.
pub fn run_doall_only(module: &Module, workers: usize) -> DoallRun {
    let DoallOnly {
        module: tm,
        parallelized,
        ..
    } = doall_only(module);
    let image = load_module(&tm);
    let mut interp = Interp::new(
        &tm,
        &image,
        NopHooks,
        UncheckedDoallRuntime::new(&image, workers),
    );
    interp.run_main().expect("DOALL-only run");
    DoallRun {
        main_insts: interp.stats.insts,
        sim_total: interp.rt.stats.sim.total,
        parallelized: parallelized.len(),
        out: interp.rt.take_output(),
    }
}

/// Geometric mean.
pub fn geomean(values: &[f64]) -> f64 {
    let ln_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (ln_sum / values.len().max(1) as f64).exp()
}

/// Standard worker counts swept by the figures (the paper's x-axis).
pub const WORKER_COUNTS: [usize; 7] = [1, 2, 4, 8, 12, 16, 24];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0, 1.0]) - 2.0).abs() < 1e-9);
        assert!((geomean(&[8.0]) - 8.0).abs() < 1e-9);
    }

    #[test]
    fn harness_runs_one_workload_end_to_end() {
        let w = &workloads()[1]; // dijkstra
        let m = w.build(Scale::Train);
        let seq = run_sequential(&m);
        assert_eq!(seq.out, w.reference(Scale::Train));
        let par = run_privateer(&m, 4, 0.0);
        assert_eq!(par.out, seq.out);
        assert!(par.sim_time() > 0);
        // With 4 workers the hot loop should show simulated speedup.
        let speedup = seq.insts as f64 / par.sim_time() as f64;
        assert!(speedup > 1.2, "simulated speedup {speedup}");
    }
}
