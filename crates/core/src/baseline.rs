//! The comparison systems: the non-speculative static-analysis DOALL
//! baseline (Figure 7's "DOALL-only") and an array-only LRPD applicability
//! test (Table 1's prior-work row).

use crate::outline::{check_outlineable, outline_loop};
use privateer_ir::analysis::affine::{cross_iteration_test, AffineCtx, DepTest};
use privateer_ir::analysis::pointsto::PointsTo;
use privateer_ir::counted::{match_counted_loop, CountedLoop};
use privateer_ir::loops::{LoopId, LoopInfo};
use privateer_ir::{FuncId, InstKind, Module, PlanEntry, Value};
use std::collections::BTreeSet;
use std::fmt;

/// Why static analysis rejects a loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticReject(pub String);

impl fmt::Display for StaticReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "static DOALL rejected: {}", self.0)
    }
}

fn reject<T>(msg: impl Into<String>) -> Result<T, StaticReject> {
    Err(StaticReject(msg.into()))
}

/// Prove (or fail to prove) that a counted loop is DOALL-legal using only
/// static analysis: no calls, no allocation, no I/O, and every store
/// provably independent of every other access across iterations (affine
/// subscript tests plus points-to disjointness).
///
/// This is deliberately about as strong as the analyses prior array-based
/// systems relied on — the paper's point is that such analysis fails on
/// pointer-based programs.
///
/// # Errors
///
/// Describes the first reason the proof fails.
pub fn prove_static_doall(
    module: &Module,
    pts: &PointsTo,
    func: FuncId,
    cl: &CountedLoop,
    lp: &privateer_ir::loops::Loop,
) -> Result<(), StaticReject> {
    let f = module.func(func);
    check_outlineable(f, cl, lp).map_err(|e| StaticReject(e.to_string()))?;

    // Collect loop accesses; reject anything static analysis cannot see
    // through.
    let mut accesses: Vec<(Value, u32, bool)> = Vec::new(); // (ptr, size, is_store)
    for &bb in &lp.blocks {
        if bb == cl.header {
            continue;
        }
        for &i in &f.block(bb).insts {
            match &f.inst(i).kind {
                InstKind::Load(ty, p) => accesses.push((*p, ty.size(), false)),
                InstKind::Store(ty, _, p) => accesses.push((*p, ty.size(), true)),
                InstKind::Call(..) => return reject("loop contains a call"),
                InstKind::Malloc(_) | InstKind::Alloca { .. } | InstKind::Free(_) => {
                    return reject("loop allocates memory")
                }
                InstKind::CallIntrinsic(which, _) => {
                    use privateer_ir::Intrinsic::*;
                    match which {
                        Sqrt | Exp | Log | FAbs => {}
                        _ => return reject(format!("loop contains intrinsic {}", which.name())),
                    }
                }
                _ => {}
            }
        }
    }

    let ctx = AffineCtx {
        func: f,
        loop_blocks: &lp.blocks,
        iv: cl.iv,
    };
    for &(sp, ssize, s_store) in &accesses {
        if !s_store {
            continue;
        }
        // Every store is tested against every access *including itself*:
        // the same store in two different iterations is an output
        // dependence.
        for &(ap, asize, _) in &accesses {
            // Different objects: fine.
            if !pts.may_alias(func, sp, ap) {
                continue;
            }
            let (Some(a), Some(b)) = (ctx.affine_addr(sp), ctx.affine_addr(ap)) else {
                return reject("non-affine subscript on a may-aliasing access");
            };
            if a.base != b.base {
                // May alias, but we cannot relate the two bases.
                return reject("may-aliasing accesses with different bases");
            }
            match cross_iteration_test(&a.lin, ssize, &b.lin, asize) {
                DepTest::NoCrossIterationDep => {}
                DepTest::MayDep => return reject("possible cross-iteration dependence on a store"),
            }
        }
    }
    Ok(())
}

/// Outcome of transforming a module with the DOALL-only baseline.
#[derive(Debug)]
pub struct DoallOnly {
    /// The transformed module (unchecked parallel plans installed).
    pub module: Module,
    /// The loops that were proven and outlined.
    pub parallelized: Vec<(FuncId, LoopId)>,
    /// Hot-loop candidates rejected by static analysis, with reasons.
    pub rejected: Vec<(FuncId, LoopId, String)>,
}

/// Transform every provable loop for the non-speculative engine
/// (`privateer_runtime::UncheckedDoallRuntime`). Outer loops are preferred;
/// nested or simultaneously active loops are skipped.
pub fn doall_only(input: &Module) -> DoallOnly {
    let mut module = input.clone();
    let pts = PointsTo::analyze(&module);
    let mut parallelized = Vec::new();
    let mut rejected = Vec::new();

    // Candidate loops, outermost (largest) first, per function. Chosen
    // loops are remembered by header block: outlining earlier loops in the
    // same function invalidates loop ids but not block ids.
    let mut chosen: Vec<(FuncId, LoopId, privateer_ir::BlockId)> = Vec::new();
    for f in module.func_ids().collect::<Vec<_>>() {
        let li = LoopInfo::compute(module.func(f));
        let mut loops: Vec<(LoopId, usize)> =
            li.iter().map(|(id, lp)| (id, lp.blocks.len())).collect();
        loops.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        for (l, _) in loops {
            // Skip loops nested inside an already chosen loop.
            let lp = li.get(l);
            let overlaps = chosen.iter().any(|&(cf, cl, _)| {
                cf == f && {
                    let other = li.get(cl);
                    other.blocks.intersection(&lp.blocks).next().is_some()
                }
            });
            if overlaps {
                continue;
            }
            let Some(counted) = match_counted_loop(module.func(f), l, lp) else {
                rejected.push((f, l, "not a counted loop".into()));
                continue;
            };
            match prove_static_doall(&module, &pts, f, &counted, lp) {
                Ok(()) => chosen.push((f, l, lp.header)),
                Err(e) => rejected.push((f, l, e.0)),
            }
        }
    }

    for (f, orig_l, header) in chosen {
        let li = LoopInfo::compute(module.func(f));
        let Some(l) = li.loop_with_header(header) else {
            rejected.push((f, orig_l, "loop vanished during transformation".into()));
            continue;
        };
        let lp = li.get(l).clone();
        let counted = match_counted_loop(module.func(f), l, &lp).expect("still canonical");
        let plan_index = module.plans.len() as u32;
        match outline_loop(&mut module, f, &counted, &lp, plan_index) {
            Ok(out) => {
                module.plans.push(PlanEntry {
                    body: out.body,
                    recovery: out.recovery,
                });
                parallelized.push((f, orig_l));
            }
            Err(e) => rejected.push((f, orig_l, e.to_string())),
        }
    }

    DoallOnly {
        module,
        parallelized,
        rejected,
    }
}

/// Array-only LRPD applicability (Table 1): the LRPD test instruments
/// statically identified *arrays* with shadow arrays. It is inapplicable
/// when the loop traffics in pointers it loaded from memory, allocates
/// dynamically, or follows linked structures.
///
/// # Errors
///
/// Describes why the loop is outside LRPD's model.
pub fn lrpd_applicable(
    module: &Module,
    func: FuncId,
    lp: &privateer_ir::loops::Loop,
) -> Result<(), StaticReject> {
    // The whole dynamic region matters: follow calls too.
    let region = crate::footprint::Region::compute(
        module,
        func,
        // Region::compute re-derives LoopInfo; find this loop's id.
        LoopInfo::compute(module.func(func))
            .iter()
            .find(|(_, l)| l.header == lp.header)
            .map(|(id, _)| id)
            .expect("loop exists"),
    );
    let mut funcs: BTreeSet<FuncId> = region.callees.clone();
    funcs.insert(func);
    for site in region.sites(module) {
        let inst = module.func(site.0).inst(site.1);
        match &inst.kind {
            InstKind::Malloc(_) | InstKind::Free(_) => {
                return reject("dynamic allocation in the loop (LRPD handles arrays only)")
            }
            InstKind::CallIntrinsic(privateer_ir::Intrinsic::HAlloc(_), _) => {
                return reject("dynamic allocation in the loop (LRPD handles arrays only)")
            }
            InstKind::Load(ty, _) if ty.is_ptr() => {
                return reject("pointer loaded from memory (linked data structure)")
            }
            InstKind::Store(ty, _, _) if ty.is_ptr() => {
                return reject("pointer stored to memory (linked data structure)")
            }
            _ => {}
        }
    }
    // Every access must be rooted at a statically named array (a global).
    for site in region.sites(module) {
        let f = module.func(site.0);
        let ptr = match f.inst(site.1).kind {
            InstKind::Load(_, p) => p,
            InstKind::Store(_, _, p) => p,
            _ => continue,
        };
        let mut cur = ptr;
        let rooted = loop {
            match cur {
                Value::Global(_) => break true,
                Value::Inst(id) => match &f.inst(id).kind {
                    InstKind::Gep { base, .. } => cur = *base,
                    _ => break false,
                },
                _ => break false,
            }
        };
        if !rooted {
            return reject("access not rooted at a statically named array");
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::{CmpOp, Type};
    use privateer_runtime::UncheckedDoallRuntime;
    use privateer_vm::{load_module, Interp, NopHooks};

    /// for i in 0..n { a[i] = a[i] * 2 } — provable.
    fn affine_loop() -> Module {
        let mut m = Module::new("aff");
        let a = m.add_global_init(
            "a",
            8 * 16,
            privateer_ir::GlobalInit::I64s((1..=16).collect()),
        );
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(16));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let slot = b.gep(Value::Global(a), i, 8, 0);
        let v = b.load(Type::I64, slot);
        let v2 = b.mul(Type::I64, v, Value::const_i64(2));
        b.store(Type::I64, v2, slot);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        let s = b.gep(Value::Global(a), Value::const_i64(15), 8, 0);
        let v = b.load(Type::I64, s);
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    /// for i in 1..n { a[i] = a[i-1] } — carried dependence.
    fn carried_loop() -> Module {
        let mut m = Module::new("car");
        let a = m.add_global("a", 8 * 16);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(1));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(16));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let prev = b.gep(Value::Global(a), i, 8, -8);
        let v = b.load(Type::I64, prev);
        let slot = b.gep(Value::Global(a), i, 8, 0);
        b.store(Type::I64, v, slot);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn proves_affine_and_rejects_carried() {
        let m = affine_loop();
        let result = doall_only(&m);
        assert_eq!(result.parallelized.len(), 1);

        let m = carried_loop();
        let result = doall_only(&m);
        assert!(result.parallelized.is_empty());
        assert!(result
            .rejected
            .iter()
            .any(|(_, _, r)| r.contains("dependence")));
    }

    #[test]
    fn doall_only_executes_correctly() {
        let m = affine_loop();
        let result = doall_only(&m);
        let image = load_module(&result.module);
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            UncheckedDoallRuntime::new(&image, 4),
        );
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), b"32\n");
    }

    #[test]
    fn rejects_loop_with_malloc() {
        let mut m = Module::new("mal");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(4));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let p = b.malloc(Value::const_i64(8));
        b.store(Type::I64, i, p);
        b.free(p);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        let result = doall_only(&m);
        assert!(result.parallelized.is_empty());
        assert!(result
            .rejected
            .iter()
            .any(|(_, _, r)| r.contains("allocates")));
    }

    #[test]
    fn lrpd_array_yes_pointers_no() {
        let m = affine_loop();
        let main = m.main().unwrap();
        let li = LoopInfo::compute(m.func(main));
        let (_, lp) = li.iter().next().unwrap();
        lrpd_applicable(&m, main, lp).unwrap();

        // A loop storing pointers (a linked list) is outside LRPD's model.
        let mut m2 = Module::new("list");
        let head = m2.add_global("head", 8);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(4));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let n = b.malloc(Value::const_i64(16));
        let old = b.load(Type::Ptr, Value::Global(head));
        b.store(Type::Ptr, old, n);
        b.store(Type::Ptr, n, Value::Global(head));
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let main2 = m2.add_function(b.finish());
        let li2 = LoopInfo::compute(m2.func(main2));
        let (_, lp2) = li2.iter().next().unwrap();
        assert!(lrpd_applicable(&m2, main2, lp2).is_err());
    }
}
