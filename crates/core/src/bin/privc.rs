//! `privc` — the Privateer driver.
//!
//! Reads a textual `privateer-ir` module, runs the fully automatic
//! speculative privatization pipeline, and either prints the transformed
//! module or executes it under the speculative DOALL engine.
//!
//! ```console
//! $ privc program.ir                 # transform and print the module
//! $ privc program.ir --run           # transform, run in parallel, print output
//! $ privc program.ir --run --workers 8 --inject 0.01
//! $ privc program.ir --report        # classification report only
//! $ privc program.ir --sequential    # run the original, untransformed
//! ```

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::{parser, printer};
use privateer_runtime::{EngineConfig, MainRuntime};
use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};
use std::process::ExitCode;

struct Options {
    input: String,
    run: bool,
    sequential: bool,
    report: bool,
    workers: usize,
    checkpoint_period: u64,
    inject: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: privc <input.ir> [--run] [--sequential] [--report]\n\
         \x20            [--workers N] [--checkpoint K] [--inject RATE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut args = std::env::args().skip(1);
    let mut opts = Options {
        input: String::new(),
        run: false,
        sequential: false,
        report: false,
        workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
        checkpoint_period: 16,
        inject: 0.0,
    };
    while let Some(a) = args.next() {
        match a.as_str() {
            "--run" => opts.run = true,
            "--sequential" => opts.sequential = true,
            "--report" => opts.report = true,
            "--workers" => {
                opts.workers = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--checkpoint" => {
                opts.checkpoint_period = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--inject" => {
                opts.inject = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .parse()
                    .unwrap_or_else(|_| usage())
            }
            "--help" | "-h" => usage(),
            other if opts.input.is_empty() && !other.starts_with('-') => {
                opts.input = other.to_string()
            }
            _ => usage(),
        }
    }
    if opts.input.is_empty() {
        usage();
    }
    opts
}

fn main() -> ExitCode {
    let opts = parse_args();
    let text = match std::fs::read_to_string(&opts.input) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("privc: cannot read {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    let module = match parser::parse(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("privc: parse error in {}: {e}", opts.input);
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = privateer_ir::verify::verify_module(&module) {
        eprintln!("privc: input does not verify: {e}");
        return ExitCode::FAILURE;
    }

    if opts.sequential {
        let image = load_module(&module);
        let mut interp = Interp::new(&module, &image, NopHooks, BasicRuntime::strict());
        if let Err(e) = interp.run_main() {
            eprintln!("privc: sequential execution trapped: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", String::from_utf8_lossy(interp.rt.output_bytes()));
        eprintln!("[privc] {} instructions", interp.stats.insts);
        return ExitCode::SUCCESS;
    }

    let result = match privatize(&module, &PipelineConfig::default()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("privc: pipeline failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    for r in &result.reports {
        eprintln!(
            "[privc] parallelized loop in `{}`: {} read-only, {} private, {} redux, \
             {} short-lived objects; checks: {} sep (+{} elided), {} priv-read, {} priv-write{}{}{}",
            r.function,
            r.heap_counts[0],
            r.heap_counts[1],
            r.heap_counts[2],
            r.heap_counts[3],
            r.checks.separation,
            r.checks.elided,
            r.checks.privacy_reads,
            r.checks.privacy_writes,
            if r.value_predicted { "; value prediction" } else { "" },
            if r.control_spec_blocks > 0 { "; control speculation" } else { "" },
            if r.does_io { "; deferred I/O" } else { "" },
        );
    }
    for (lp, why) in &result.rejected {
        eprintln!("[privc] rejected loop {}/{:?}: {why}", lp.0, lp.1);
    }
    if opts.report {
        return ExitCode::SUCCESS;
    }

    if opts.run {
        let image = load_module(&result.module);
        let cfg = EngineConfig {
            workers: opts.workers,
            checkpoint_period: opts.checkpoint_period,
            inject_rate: opts.inject,
            inject_seed: 0xc11,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            MainRuntime::new(&image, cfg),
        );
        if let Err(e) = interp.run_main() {
            eprintln!("privc: parallel execution trapped: {e}");
            return ExitCode::FAILURE;
        }
        print!("{}", String::from_utf8_lossy(interp.rt.output_bytes()));
        let s = &interp.rt.stats;
        eprintln!(
            "[privc] {} workers, {} invocations, {} checkpoints, {} misspeculations, \
             {} iterations recovered; simulated parallel time {} cycles",
            opts.workers,
            s.invocations,
            s.checkpoints,
            s.misspecs,
            s.recovered_iters,
            interp.stats.insts + s.sim.total,
        );
    } else {
        print!("{}", printer::print_module(&result.module));
    }
    ExitCode::SUCCESS
}
