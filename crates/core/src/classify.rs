//! Object classification and heap assignment: Algorithm 1 of the paper.

use crate::footprint::{get_footprint, site_footprint, Footprint, Region};
use privateer_ir::{Heap, Module, ReduxOp};
use privateer_profile::{CallSite, ObjectName, Profile};
use std::collections::{BTreeMap, BTreeSet};

/// The five-way partition of a loop's memory footprint (§4.2, Figure 4).
#[derive(Debug, Clone, Default)]
pub struct HeapAssignment {
    /// Objects allocated and freed within single iterations.
    pub short_lived: BTreeSet<ObjectName>,
    /// Reduction objects with their operator.
    pub redux: BTreeMap<ObjectName, ReduxOp>,
    /// Objects carrying real cross-iteration flow dependences.
    pub unrestricted: BTreeSet<ObjectName>,
    /// Privatizable written objects.
    pub private: BTreeSet<ObjectName>,
    /// Objects only read.
    pub read_only: BTreeSet<ObjectName>,
}

impl HeapAssignment {
    /// The heap of `object`, if it is classified.
    pub fn heap_of(&self, object: &ObjectName) -> Option<Heap> {
        if self.short_lived.contains(object) {
            Some(Heap::ShortLived)
        } else if self.redux.contains_key(object) {
            Some(Heap::Redux)
        } else if self.unrestricted.contains(object) {
            Some(Heap::Unrestricted)
        } else if self.private.contains(object) {
            Some(Heap::Private)
        } else if self.read_only.contains(object) {
            Some(Heap::ReadOnly)
        } else {
            None
        }
    }

    /// All classified objects with their heaps.
    pub fn iter(&self) -> impl Iterator<Item = (&ObjectName, Heap)> {
        self.short_lived
            .iter()
            .map(|o| (o, Heap::ShortLived))
            .chain(self.redux.keys().map(|o| (o, Heap::Redux)))
            .chain(self.unrestricted.iter().map(|o| (o, Heap::Unrestricted)))
            .chain(self.private.iter().map(|o| (o, Heap::Private)))
            .chain(self.read_only.iter().map(|o| (o, Heap::ReadOnly)))
    }

    /// Count of objects per heap, in `Heap::ALL` order (Table 3's
    /// "Static Allocation Sites" row).
    pub fn counts(&self) -> [usize; 5] {
        [
            self.read_only.len(),
            self.private.len(),
            self.redux.len(),
            self.short_lived.len(),
            self.unrestricted.len(),
        ]
    }

    /// Whether the assignment permits DOALL parallelization: no
    /// unrestricted objects remain.
    pub fn is_parallelizable(&self) -> bool {
        self.unrestricted.is_empty()
    }
}

/// Classify the footprint of one loop (Algorithm 1).
///
/// `ignored_deps` names profiled cross-iteration flow dependences that a
/// later speculation (value prediction) will remove; they do not force
/// objects into the unrestricted heap.
pub fn classify(
    module: &Module,
    region: &Region,
    profile: &Profile,
    ignored_deps: &BTreeSet<(CallSite, CallSite)>,
) -> (HeapAssignment, Footprint) {
    let fp = get_footprint(module, region, profile);
    let lp = (region.func, region.loop_id);
    let mut a = HeapAssignment::default();

    // Short-lived: objects in the footprint whose every instance allocated
    // under this loop died within its iteration.
    for o in fp.write.union(&fp.read) {
        if profile.is_short_lived(o, lp) {
            a.short_lived.insert(o.clone());
        }
    }

    // Reduction objects (single associative-commutative operator, not
    // accessed otherwise).
    for (o, &op) in &fp.redux {
        if !fp.read.contains(o) && !fp.write.contains(o) && !a.short_lived.contains(o) {
            a.redux.insert(o.clone(), op);
        }
    }

    // Unrestricted: objects through which profiled cross-iteration flow
    // dependences pass, unless already short-lived or reduction.
    for (&(src, dst), _info) in profile.deps_of(lp) {
        if ignored_deps.contains(&(src, dst)) {
            continue;
        }
        // Only dependences whose endpoints are in this region constrain it.
        if !region.contains(src) || !region.contains(dst) {
            continue;
        }
        let (_, wa, xa) = site_footprint(module, profile, src, &fp);
        let (rb, _, xb) = site_footprint(module, profile, dst, &fp);
        let srcs: BTreeSet<&ObjectName> = wa.union(&xa).copied().collect();
        let dsts: BTreeSet<&ObjectName> = rb.union(&xb).copied().collect();
        for o in srcs.intersection(&dsts) {
            if !a.short_lived.contains(*o) && !a.redux.contains_key(*o) {
                a.unrestricted.insert((*o).clone());
            }
        }
    }

    // Private: everything else written. Read-only: everything else read.
    for o in &fp.write {
        if !a.short_lived.contains(o) && !a.unrestricted.contains(o) && !a.redux.contains_key(o) {
            a.private.insert(o.clone());
        }
    }
    for o in &fp.read {
        if !a.short_lived.contains(o)
            && !a.unrestricted.contains(o)
            && !a.redux.contains_key(o)
            && !a.private.contains(o)
        {
            a.read_only.insert(o.clone());
        }
    }
    (a, fp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::{BinOp, CmpOp, Type, Value};
    use privateer_profile::profile_module;
    use privateer_vm::load_module;

    /// The motivating pattern (paper Figure 2/4, miniaturized):
    ///
    /// * `work` — written then read each iteration (private);
    /// * `adj` — only read (read-only);
    /// * `acc` — `+=` reduction;
    /// * list nodes — malloc/free within the iteration (short-lived);
    /// * `carried` — genuine cross-iteration flow (unrestricted).
    fn figure2_like() -> Module {
        let mut m = Module::new("fig2");
        let work = m.add_global("work", 64);
        let adj = m.add_global_init("adj", 64, privateer_ir::GlobalInit::I64s(vec![1; 8]));
        let acc = m.add_global("acc", 8);
        let carried = m.add_global("carried", 8);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(8));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        // work[i%8] = adj[i%8] (write work, read adj)
        let idx = b.bin(BinOp::SRem, Type::I64, i, Value::const_i64(8));
        let wslot = b.gep(Value::Global(work), idx, 8, 0);
        let aslot = b.gep(Value::Global(adj), idx, 8, 0);
        let av = b.load(Type::I64, aslot);
        b.store(Type::I64, av, wslot);
        let wv = b.load(Type::I64, wslot);
        // acc += wv
        let a0 = b.load(Type::I64, Value::Global(acc));
        let a1 = b.add(Type::I64, a0, wv);
        b.store(Type::I64, a1, Value::Global(acc));
        // node = malloc; *node = i; free(node)
        let p = b.malloc(Value::const_i64(8));
        b.store(Type::I64, i, p);
        b.free(p);
        // carried = carried + 1 ... but read via a *different* pointer so
        // it is not a syntactic reduction pair: copy through a temp shape.
        let cv = b.load(Type::I64, Value::Global(carried));
        let cslot = b.gep(Value::Global(carried), Value::const_i64(0), 0, 0);
        let c1 = b.sub(Type::I64, cv, Value::const_i64(-1));
        b.store(Type::I64, c1, cslot);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        privateer_ir::verify::verify_module(&m).unwrap();
        m
    }

    fn classify_figure2() -> (Module, HeapAssignment) {
        let m = figure2_like();
        let image = load_module(&m);
        let (profile, _) = profile_module(&m, &image).unwrap();
        let main = m.main().unwrap();
        let li = privateer_ir::loops::LoopInfo::compute(m.func(main));
        let (lid, _) = li.iter().next().unwrap();
        let region = Region::compute(&m, main, lid);
        let (a, _) = classify(&m, &region, &profile, &BTreeSet::new());
        (m, a)
    }

    #[test]
    fn five_way_partition_matches_figure4() {
        let (m, a) = classify_figure2();
        let name = |s: &str| ObjectName::Global(m.global_by_name(s).unwrap());
        assert_eq!(a.heap_of(&name("work")), Some(Heap::Private));
        assert_eq!(a.heap_of(&name("adj")), Some(Heap::ReadOnly));
        assert_eq!(a.heap_of(&name("acc")), Some(Heap::Redux));
        assert_eq!(a.heap_of(&name("carried")), Some(Heap::Unrestricted));
        assert!(a
            .short_lived
            .iter()
            .any(|o| matches!(o, ObjectName::Site { .. })));
        assert!(!a.is_parallelizable());
        assert_eq!(a.counts().iter().sum::<usize>(), 5);
    }

    #[test]
    fn ignoring_the_dep_privatizes_the_carrier() {
        // With the carried dependence speculated away (value prediction),
        // `carried` becomes private and the loop is parallelizable.
        let m = figure2_like();
        let image = load_module(&m);
        let (profile, _) = profile_module(&m, &image).unwrap();
        let main = m.main().unwrap();
        let li = privateer_ir::loops::LoopInfo::compute(m.func(main));
        let (lid, _) = li.iter().next().unwrap();
        let region = Region::compute(&m, main, lid);
        let all_deps: BTreeSet<_> = profile
            .deps_of((main, lid))
            .map(|(&pair, _)| pair)
            .collect();
        let (a, _) = classify(&m, &region, &profile, &all_deps);
        let carried = ObjectName::Global(m.global_by_name("carried").unwrap());
        assert_eq!(a.heap_of(&carried), Some(Heap::Private));
        assert!(a.is_parallelizable());
    }
}
