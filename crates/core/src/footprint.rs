//! Loop footprints: Algorithm 2 of the paper (`getFootprint`).
//!
//! The footprint of a loop is the set of memory-object names its region —
//! the loop blocks plus everything reachable through calls — reads,
//! writes, and updates through reduction patterns. Object sets come from
//! the pointer-to-object profile; reduction patterns are recognized
//! syntactically (a load feeding an associative-commutative operator whose
//! result stores back through the same pointer).

use privateer_ir::callgraph::CallGraph;
use privateer_ir::loops::LoopId;
use privateer_ir::{BinOp, FuncId, InstId, InstKind, Module, ReduxOp, Type, Value};
use privateer_profile::{CallSite, ObjectName, Profile};
use std::collections::{BTreeMap, BTreeSet};

/// All instructions of a loop's dynamic region: the loop blocks plus every
/// function reachable from calls within them.
#[derive(Debug, Clone)]
pub struct Region {
    /// The loop's function.
    pub func: FuncId,
    /// The loop.
    pub loop_id: LoopId,
    /// Instructions in the loop blocks themselves.
    pub loop_insts: BTreeSet<CallSite>,
    /// Functions wholly inside the region (reachable via calls).
    pub callees: BTreeSet<FuncId>,
}

impl Region {
    /// Compute the region of `loop_id` in `func`.
    pub fn compute(module: &Module, func: FuncId, loop_id: LoopId) -> Region {
        let li = privateer_ir::loops::LoopInfo::compute(module.func(func));
        let lp = li.get(loop_id);
        let cg = CallGraph::new(module);
        let mut loop_insts = BTreeSet::new();
        let mut roots = BTreeSet::new();
        for &bb in &lp.blocks {
            for &i in &module.func(func).block(bb).insts {
                loop_insts.insert((func, i));
                if let InstKind::Call(callee, _) = module.func(func).inst(i).kind {
                    roots.insert(callee);
                }
            }
        }
        let callees = cg.reachable_from(roots);
        Region {
            func,
            loop_id,
            loop_insts,
            callees,
        }
    }

    /// Iterate over every instruction site in the region.
    pub fn sites<'a>(&'a self, module: &'a Module) -> impl Iterator<Item = CallSite> + 'a {
        self.loop_insts.iter().copied().chain(
            self.callees
                .iter()
                .flat_map(move |&f| module.func(f).inst_ids_in_order().map(move |(_, i)| (f, i))),
        )
    }

    /// Whether an instruction site belongs to the region.
    pub fn contains(&self, site: CallSite) -> bool {
        self.loop_insts.contains(&site) || self.callees.contains(&site.0)
    }
}

/// The three object footprints of Algorithm 2, plus the recognized
/// reduction operator per object.
#[derive(Debug, Clone, Default)]
pub struct Footprint {
    /// Objects read by non-reduction loads.
    pub read: BTreeSet<ObjectName>,
    /// Objects written by non-reduction stores.
    pub write: BTreeSet<ObjectName>,
    /// Objects accessed only through reduction update pairs, with their
    /// operator. Objects updated by *conflicting* operators are demoted to
    /// plain read+write (the criterion requires a single operator).
    pub redux: BTreeMap<ObjectName, ReduxOp>,
    /// The (load, store) instruction pairs forming reduction updates.
    pub redux_pairs: BTreeSet<(CallSite, CallSite)>,
}

/// Map an IR binop at a type to a runtime reduction operator.
///
/// Only 8-byte element types participate (the runtime merges reduction
/// heaps in 8-byte elements).
pub fn redux_op_for(op: BinOp, ty: Type) -> Option<ReduxOp> {
    match (op, ty) {
        (BinOp::Add, Type::I64) => Some(ReduxOp::SumI64),
        (BinOp::FAdd, Type::F64) => Some(ReduxOp::SumF64),
        _ => None,
    }
}

/// Recognize the reduction stores of one function: `store ty (op (load ty p) x), p`.
///
/// Returns `(load_site, store_site, op)` triples.
fn reduction_pairs(module: &Module, f: FuncId) -> Vec<(InstId, InstId, ReduxOp)> {
    let func = module.func(f);
    // Is `cand` a load of `ty` through `ptr`? Returns its id.
    let load_through = |cand: Value, ty: Type, ptr: Value| -> Option<InstId> {
        let lid = cand.as_inst()?;
        match func.inst(lid).kind {
            InstKind::Load(lty, lptr) if lty == ty && lptr == ptr => Some(lid),
            _ => None,
        }
    };
    let mut out = Vec::new();
    for (_, sid) in func.inst_ids_in_order() {
        let InstKind::Store(ty, val, ptr) = func.inst(sid).kind else {
            continue;
        };
        let Some(def_id) = val.as_inst() else {
            continue;
        };
        match func.inst(def_id).kind {
            // `store (op (load p) x), p` — sum-style reductions.
            InstKind::Bin(op, a, b) => {
                let Some(rop) = redux_op_for(op, ty) else {
                    continue;
                };
                for cand in [a, b] {
                    if let Some(lid) = load_through(cand, ty, ptr) {
                        out.push((lid, sid, rop));
                        break;
                    }
                }
            }
            // `store (select (cmp x, load p) …), p` — min/max reductions:
            // one select arm is the old value, the condition compares the
            // new value against it.
            InstKind::Select(sty, cond, tv, ev) if sty == ty => {
                let Some(cid) = cond.as_inst() else { continue };
                let (is_f, pred, ca, cb) = match func.inst(cid).kind {
                    InstKind::Icmp(p, a, b) => (false, p, a, b),
                    InstKind::Fcmp(p, a, b) => (true, p, a, b),
                    _ => continue,
                };
                // Identify the old-value load among the compare operands
                // and select arms.
                let old = [ca, cb, tv, ev]
                    .into_iter()
                    .find_map(|v| load_through(v, ty, ptr));
                let Some(lid) = old else { continue };
                let old_v = Value::Inst(lid);
                // The select must choose between the candidate and the old
                // value.
                if !((tv == old_v) ^ (ev == old_v)) {
                    continue;
                }
                let new_v = if tv == old_v { ev } else { tv };
                // Normalize: does the taken arm keep the minimum or the
                // maximum? `select (new < old), new, old` is a min;
                // flipped operands or arms invert it.
                use privateer_ir::CmpOp::*;
                let keeps_smaller_when_true = match (pred, ca == new_v) {
                    (Lt | Le, true) => Some(true),
                    (Gt | Ge, true) => Some(false),
                    (Lt | Le, false) if cb == new_v => Some(false),
                    (Gt | Ge, false) if cb == new_v => Some(true),
                    _ => None,
                };
                let Some(keeps_smaller) = keeps_smaller_when_true else {
                    continue;
                };
                // `tv == new_v` means the true arm takes the candidate.
                let takes_new_when_true = tv == new_v;
                let is_min = keeps_smaller == takes_new_when_true;
                let rop = match (is_f, is_min, ty) {
                    (false, true, Type::I64) => ReduxOp::MinI64,
                    (false, false, Type::I64) => ReduxOp::MaxI64,
                    (true, true, Type::F64) => ReduxOp::MinF64,
                    (true, false, Type::F64) => ReduxOp::MaxF64,
                    _ => continue,
                };
                out.push((lid, sid, rop));
            }
            _ => {}
        }
    }
    out
}

/// Algorithm 2: compute the read/write/reduction footprints of a region.
pub fn get_footprint(module: &Module, region: &Region, profile: &Profile) -> Footprint {
    let mut fp = Footprint::default();

    // Reduction pairs, per function touched by the region.
    let mut funcs: BTreeSet<FuncId> = region.callees.clone();
    funcs.insert(region.func);
    let mut redux_loads: BTreeSet<CallSite> = BTreeSet::new();
    let mut redux_stores: BTreeSet<CallSite> = BTreeSet::new();
    let mut pair_ops: Vec<(CallSite, CallSite, ReduxOp)> = Vec::new();
    for &f in &funcs {
        for (lid, sid, op) in reduction_pairs(module, f) {
            // Both halves must be in the region (for the loop function,
            // inside the loop blocks).
            if region.contains((f, lid)) && region.contains((f, sid)) {
                redux_loads.insert((f, lid));
                redux_stores.insert((f, sid));
                pair_ops.push(((f, lid), (f, sid), op));
            }
        }
    }

    // Accumulate object sets.
    let mut redux_objs: BTreeMap<ObjectName, BTreeSet<ReduxOp>> = BTreeMap::new();
    for site in region.sites(module) {
        let inst = module.func(site.0).inst(site.1);
        let Some(objects) = profile.objects_at(site) else {
            continue;
        };
        match inst.kind {
            InstKind::Load(..) => {
                if redux_loads.contains(&site) {
                    for o in objects {
                        redux_objs.entry(o.clone()).or_default();
                    }
                } else {
                    fp.read.extend(objects.iter().cloned());
                }
            }
            InstKind::Store(..) => {
                if redux_stores.contains(&site) {
                    for o in objects {
                        redux_objs.entry(o.clone()).or_default();
                    }
                } else {
                    fp.write.extend(objects.iter().cloned());
                }
            }
            _ => {}
        }
    }
    for (l, s, op) in &pair_ops {
        for site in [l, s] {
            if let Some(objects) = profile.objects_at(*site) {
                for o in objects {
                    redux_objs.entry(o.clone()).or_default().insert(*op);
                }
            }
        }
        fp.redux_pairs.insert((*l, *s));
    }

    // Objects with exactly one operator are reduction candidates; others
    // (ambiguous operator) demote to plain read+write.
    for (obj, ops) in redux_objs {
        if ops.len() == 1 {
            fp.redux
                .insert(obj, ops.into_iter().next().expect("one op"));
        } else {
            fp.read.insert(obj.clone());
            fp.write.insert(obj);
        }
    }
    fp
}

/// The objects an individual instruction touches, split by access kind —
/// `getFootprint(a)` for a single operation, used when refining dependences.
pub fn site_footprint<'p>(
    module: &Module,
    profile: &'p Profile,
    site: CallSite,
    fp: &Footprint,
) -> (
    BTreeSet<&'p ObjectName>,
    BTreeSet<&'p ObjectName>,
    BTreeSet<&'p ObjectName>,
) {
    let mut read = BTreeSet::new();
    let mut write = BTreeSet::new();
    let mut redux = BTreeSet::new();
    let Some(objects) = profile.objects_at(site) else {
        return (read, write, redux);
    };
    let is_redux_site = fp.redux_pairs.iter().any(|(l, s)| *l == site || *s == site);
    let inst = module.func(site.0).inst(site.1);
    for o in objects {
        if is_redux_site {
            redux.insert(o);
        } else {
            match inst.kind {
                InstKind::Load(..) => {
                    read.insert(o);
                }
                InstKind::Store(..) => {
                    write.insert(o);
                }
                _ => {}
            }
        }
    }
    (read, write, redux)
}

/// Whether a value is a compile-time constant address expression (used by
/// callers when deciding if a check can be elided).
pub fn is_static_pointer(v: Value) -> bool {
    matches!(v, Value::Global(_) | Value::Null)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::{CmpOp, GlobalInit};
    use privateer_profile::profile_module;
    use privateer_vm::load_module;

    /// for i in 0..5 { table[i%4] = i; acc += i as f64; tmp = malloc; free }
    fn program() -> Module {
        let mut m = Module::new("fp");
        let table = m.add_global("table", 32);
        let acc = m.add_global_init("acc", 8, GlobalInit::F64s(vec![0.0]));
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(5));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let idx = b.bin(BinOp::SRem, Type::I64, i, Value::const_i64(4));
        let slot = b.gep(Value::Global(table), idx, 8, 0);
        b.store(Type::I64, i, slot);
        // Reduction: acc += (f64)i.
        let fi = b.sitofp(i);
        let a = b.load(Type::F64, Value::Global(acc));
        let a2 = b.fadd(a, fi);
        b.store(Type::F64, a2, Value::Global(acc));
        // Short-lived temp.
        let p = b.malloc(Value::const_i64(8));
        b.store(Type::I64, i, p);
        let v = b.load(Type::I64, p);
        b.free(p);
        let i2 = b.add(Type::I64, i, v);
        let i3 = b.sub(Type::I64, i2, v);
        let i4 = b.add(Type::I64, i3, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i4);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn footprint_classifies_access_kinds() {
        let m = program();
        privateer_ir::verify::verify_module(&m).unwrap();
        let image = load_module(&m);
        let (profile, _) = profile_module(&m, &image).unwrap();
        let main = m.main().unwrap();
        let li = privateer_ir::loops::LoopInfo::compute(m.func(main));
        let (lid, _) = li.iter().next().unwrap();
        let region = Region::compute(&m, main, lid);
        let fp = get_footprint(&m, &region, &profile);

        let table = ObjectName::Global(m.global_by_name("table").unwrap());
        let acc = ObjectName::Global(m.global_by_name("acc").unwrap());
        assert!(fp.write.contains(&table));
        assert!(!fp.read.contains(&table));
        assert_eq!(fp.redux.get(&acc), Some(&ReduxOp::SumF64));
        assert!(!fp.read.contains(&acc) && !fp.write.contains(&acc));
        // The malloc'd temp is read and written (not a reduction).
        assert!(fp
            .write
            .iter()
            .any(|o| matches!(o, ObjectName::Site { .. })));
        assert!(fp.read.iter().any(|o| matches!(o, ObjectName::Site { .. })));
        assert_eq!(fp.redux_pairs.len(), 1);
    }

    #[test]
    fn region_includes_callees() {
        let mut m = Module::new("r");
        let callee_id = FuncId::new(0);
        let mut h = FunctionBuilder::new("helper", vec![], None);
        h.ret(None);
        m.add_function(h.finish());
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(3));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        b.call(callee_id, vec![], None);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let main = m.add_function(b.finish());
        let li = privateer_ir::loops::LoopInfo::compute(m.func(main));
        let (lid, _) = li.iter().next().unwrap();
        let region = Region::compute(&m, main, lid);
        assert!(region.callees.contains(&callee_id));
        assert!(region.contains((callee_id, InstId::new(0))));
    }

    /// Select-based min/max updates are recognized with the right
    /// operator, in all four shapes.
    #[test]
    fn min_max_select_patterns_recognized() {
        use privateer_ir::CmpOp;
        // (cmp operands flipped?, arms flipped?, pred, expected op)
        let cases = [
            (false, false, CmpOp::Lt, ReduxOp::MinI64), // select(x<old, x, old)
            (false, true, CmpOp::Lt, ReduxOp::MaxI64),  // select(x<old, old, x)
            (true, false, CmpOp::Lt, ReduxOp::MaxI64),  // select(old<x, x, old)
            (false, false, CmpOp::Gt, ReduxOp::MaxI64), // select(x>old, x, old)
        ];
        for (flip_ops, flip_arms, pred, want) in cases {
            let mut m = Module::new("t");
            let g = m.add_global("cell", 8);
            let mut b = FunctionBuilder::new("main", vec![Type::I64], None);
            let x = b.param(0);
            let old = b.load(Type::I64, Value::Global(g));
            let c = if flip_ops {
                b.icmp(pred, old, x)
            } else {
                b.icmp(pred, x, old)
            };
            let sel = if flip_arms {
                b.select(Type::I64, c, old, x)
            } else {
                b.select(Type::I64, c, x, old)
            };
            b.store(Type::I64, sel, Value::Global(g));
            b.ret(None);
            let f = m.add_function(b.finish());
            let pairs = reduction_pairs(&m, f);
            assert_eq!(pairs.len(), 1, "flip_ops={flip_ops} flip_arms={flip_arms}");
            assert_eq!(
                pairs[0].2, want,
                "flip_ops={flip_ops} flip_arms={flip_arms}"
            );
        }
    }

    /// A select between two fresh values (not a min/max update) is not a
    /// reduction.
    #[test]
    fn non_update_select_not_recognized() {
        let mut m = Module::new("t");
        let g = m.add_global("cell", 8);
        let mut b = FunctionBuilder::new("main", vec![Type::I64, Type::I64], None);
        let x = b.param(0);
        let y = b.param(1);
        let old = b.load(Type::I64, Value::Global(g));
        let c = b.icmp(privateer_ir::CmpOp::Lt, x, old);
        // Chooses between x and y — the old value is not an arm.
        let sel = b.select(Type::I64, c, x, y);
        b.store(Type::I64, sel, Value::Global(g));
        b.ret(None);
        let f = m.add_function(b.finish());
        assert!(reduction_pairs(&m, f).is_empty());
    }

    #[test]
    fn redux_op_mapping() {
        assert_eq!(redux_op_for(BinOp::Add, Type::I64), Some(ReduxOp::SumI64));
        assert_eq!(redux_op_for(BinOp::FAdd, Type::F64), Some(ReduxOp::SumF64));
        assert_eq!(redux_op_for(BinOp::Add, Type::I32), None);
        assert_eq!(redux_op_for(BinOp::Sub, Type::I64), None);
    }
}
