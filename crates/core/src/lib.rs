#![warn(missing_docs)]
//! # privateer
//!
//! The Privateer compiler (PLDI 2012, "Speculative Separation for
//! Privatization and Reductions"): fully automatic speculative
//! privatization and reduction of dynamic, pointer-linked data structures,
//! enabling DOALL parallelization.
//!
//! Pipeline (paper Figure 3):
//!
//! 1. profile (`privateer-profile`);
//! 2. [`footprint`] — Algorithm 2, loop footprints and reduction
//!    recognition;
//! 3. [`classify`] — Algorithm 1, the five-heap assignment;
//! 4. [`select`] — hot-loop selection under compatibility constraints;
//! 5. [`transform`] — replace allocation (§4.4), outline ([`outline`]),
//!    insert separation (§4.5) and privacy (§4.6) checks, value-prediction
//!    re-materialization, control speculation;
//! 6. execution under the `privateer-runtime` engine.
//!
//! [`pipeline::privatize`] runs the whole thing; [`baseline`] holds the
//! non-speculative comparison systems (static DOALL, array-only LRPD).

pub mod baseline;
pub mod classify;
pub mod footprint;
pub mod outline;
pub mod pipeline;
pub mod select;
pub mod transform;

pub use classify::HeapAssignment;
pub use footprint::{Footprint, Region};
pub use pipeline::{privatize, LoopReport, PipelineConfig, PipelineError, Privatized};
