//! Loop-body outlining for DOALL parallelization.
//!
//! The selected counted loop's body is extracted into `fn body(iter: i64)`
//! (twice: a speculative copy that later receives checks, and a recovery
//! copy that stays unchecked), and the loop in the original function is
//! replaced by a `parallel_invoke(lo, hi)` followed by the final
//! induction-variable value.

use privateer_ir::counted::CountedLoop;
use privateer_ir::loops::Loop;
use privateer_ir::{
    BinOp, BlockId, CmpOp, FuncId, Function, Inst, InstId, InstKind, Intrinsic, Module, Term, Type,
    Value,
};
use std::collections::BTreeMap;
use std::fmt;

/// Why a loop cannot be outlined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OutlineError(pub String);

impl fmt::Display for OutlineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot outline loop: {}", self.0)
    }
}

impl std::error::Error for OutlineError {}

fn err<T>(msg: impl Into<String>) -> Result<T, OutlineError> {
    Err(OutlineError(msg.into()))
}

/// The artifacts of outlining one loop.
#[derive(Debug, Clone)]
pub struct OutlinedLoop {
    /// The speculative body function (receives checks later).
    pub body: FuncId,
    /// The recovery body function (stays unchecked).
    pub recovery: FuncId,
    /// Original-function instruction ids → body-function instruction ids.
    pub inst_map: BTreeMap<InstId, InstId>,
    /// Original-function block ids → body-function block ids.
    pub block_map: BTreeMap<BlockId, BlockId>,
    /// The block in the original function that now performs the invoke.
    pub invoke_block: BlockId,
    /// Loop bounds, valid at the invoke block.
    pub lo: Value,
    /// Exclusive upper bound.
    pub hi: Value,
}

/// Validate that the loop has the shape outlining supports.
///
/// # Errors
///
/// Rejects loops with side exits, `ret` inside the body, SSA values
/// flowing in from the enclosing function (other than the induction
/// variable) or out of the loop, or non-trivial header blocks.
pub fn check_outlineable(func: &Function, cl: &CountedLoop, lp: &Loop) -> Result<(), OutlineError> {
    if cl.into_loop == cl.header {
        return err("single-block loop where the header is the body");
    }
    // The only exit edge must be the header's.
    for &bb in &lp.blocks {
        if bb == cl.header {
            continue;
        }
        match &func.block(bb).term {
            Term::Ret(_) => return err(format!("return inside loop at {bb}")),
            Term::Unreachable => return err(format!("unreachable inside loop at {bb}")),
            t => {
                for s in t.successors() {
                    if !lp.contains(s) {
                        return err(format!("side exit from {bb} to {s}"));
                    }
                }
            }
        }
    }
    // The header may hold only the IV phi and the bound comparison.
    for &i in &func.block(cl.header).insts {
        if i == cl.iv || i == cl.cmp {
            continue;
        }
        return err(format!("header contains extra instruction %{}", i.index()));
    }

    // No SSA live-ins (other than the IV) and no live-outs.
    let in_loop = |id: InstId| {
        func.block_of(id)
            .map(|bb| lp.contains(bb) && bb != cl.header)
            .unwrap_or(false)
    };
    for &bb in &lp.blocks {
        if bb == cl.header {
            continue;
        }
        let check_value = |v: Value| -> Result<(), OutlineError> {
            match v {
                Value::Param(n) => err(format!("loop body uses enclosing parameter %arg{n}")),
                Value::Inst(id) if id == cl.iv => Ok(()),
                Value::Inst(id) if !in_loop(id) => {
                    err(format!("loop body uses outside value %{}", id.index()))
                }
                _ => Ok(()),
            }
        };
        let mut bad = None;
        for &i in &func.block(bb).insts {
            func.inst(i).for_each_operand(|v| {
                if bad.is_none() {
                    if let Err(e) = check_value(v) {
                        bad = Some(e);
                    }
                }
            });
        }
        func.block(bb).term.for_each_operand(|v| {
            if bad.is_none() {
                if let Err(e) = check_value(v) {
                    bad = Some(e);
                }
            }
        });
        if let Some(e) = bad {
            return Err(e);
        }
    }
    // Live-outs: any use outside the loop of a value defined inside.
    for bb in func.block_ids() {
        if lp.contains(bb) {
            continue;
        }
        let mut bad = None;
        let mut check_use = |v: Value| {
            if let Value::Inst(id) = v {
                if in_loop(id) && bad.is_none() {
                    bad = Some(OutlineError(format!(
                        "value %{} defined in loop is used outside",
                        id.index()
                    )));
                }
            }
        };
        for &i in &func.block(bb).insts {
            func.inst(i).for_each_operand(&mut check_use);
        }
        func.block(bb).term.for_each_operand(&mut check_use);
        if let Some(e) = bad {
            return Err(e);
        }
    }
    Ok(())
}

/// Clone the loop body into a fresh `fn name(iter: i64)`.
fn clone_body(
    func: &Function,
    cl: &CountedLoop,
    lp: &Loop,
    name: &str,
) -> (
    Function,
    BTreeMap<InstId, InstId>,
    BTreeMap<BlockId, BlockId>,
) {
    let mut body = Function::new(name, vec![Type::I64], None);
    // bb0 (entry) branches to the cloned into_loop block; phis with an
    // incoming edge from the old header are remapped to bb0.
    let entry = body.entry();

    // Allocate blocks: into_loop first, then remaining loop blocks, then
    // the return block.
    let mut block_map: BTreeMap<BlockId, BlockId> = BTreeMap::new();
    block_map.insert(cl.into_loop, body.add_block());
    for &bb in &lp.blocks {
        if bb != cl.header && bb != cl.into_loop {
            block_map.insert(bb, body.add_block());
        }
    }
    let ret_block = body.add_block();
    body.block_mut(ret_block).term = Term::Ret(None);
    body.block_mut(entry).term = Term::Br(block_map[&cl.into_loop]);

    // First pass: allocate instruction ids.
    let mut inst_map: BTreeMap<InstId, InstId> = BTreeMap::new();
    for (&old_bb, &new_bb) in &block_map {
        for &i in &func.block(old_bb).insts {
            let new_id = body.add_inst(func.inst(i).clone());
            body.block_mut(new_bb).insts.push(new_id);
            inst_map.insert(i, new_id);
        }
    }

    // Second pass: remap operands, phi predecessors, and terminators.
    let remap_value = |v: Value| -> Value {
        match v {
            Value::Inst(id) if id == cl.iv => Value::Param(0),
            Value::Inst(id) => inst_map.get(&id).map(|&n| Value::Inst(n)).unwrap_or(v),
            other => other,
        }
    };
    let remap_block = |bb: BlockId| -> BlockId {
        if bb == cl.header {
            entry
        } else {
            block_map.get(&bb).copied().unwrap_or(bb)
        }
    };
    for &new_id in inst_map.values() {
        let inst = body.inst_mut(new_id);
        inst.map_operands(remap_value);
        if let InstKind::Phi(_, incoming) = &mut inst.kind {
            for (pred, _) in incoming {
                *pred = remap_block(*pred);
            }
        }
    }
    for (&old_bb, &new_bb) in &block_map {
        let mut term = func.block(old_bb).term.clone();
        term.map_operands(remap_value);
        term.map_successors(|s| {
            if s == cl.header {
                ret_block
            } else {
                remap_block(s)
            }
        });
        body.block_mut(new_bb).term = term;
    }
    (body, inst_map, block_map)
}

/// Outline `cl` from `func_id`, rewrite the original function to invoke
/// plan `plan_index`, and register the two body functions.
///
/// The caller must push the corresponding [`privateer_ir::PlanEntry`]
/// (`plans[plan_index]`) afterwards.
///
/// # Errors
///
/// See [`check_outlineable`].
pub fn outline_loop(
    module: &mut Module,
    func_id: FuncId,
    cl: &CountedLoop,
    lp: &Loop,
    plan_index: u32,
) -> Result<OutlinedLoop, OutlineError> {
    let func = module.func(func_id);
    check_outlineable(func, cl, lp)?;

    let base_name = format!("{}.loop{}", func.name, cl.loop_id.index());
    let (body_fn, inst_map, block_map) = clone_body(func, cl, lp, &format!("{base_name}.body"));
    let mut recovery_fn = body_fn.clone();
    recovery_fn.name = format!("{base_name}.recovery");
    let (lo, hi, step) = (cl.lo, cl.hi, cl.step);

    let body = module.add_function(body_fn);
    let recovery = module.add_function(recovery_fn);

    // Rewrite the original function.
    let func = module.func_mut(func_id);

    // The preheader is the unique non-latch predecessor in the IV phi.
    let InstKind::Phi(_, incoming) = &func.inst(cl.iv).kind else {
        return err("induction variable is not a phi");
    };
    let preheader = incoming
        .iter()
        .map(|&(p, _)| p)
        .find(|&p| p != cl.latch)
        .ok_or_else(|| OutlineError("no preheader edge".into()))?;

    // Build the invoke block.
    let invoke_block = func.add_block();
    let push = |func: &mut Function, kind: InstKind, ty: Option<Type>| -> InstId {
        let id = func.add_inst(Inst { kind, ty });
        func.block_mut(invoke_block).insts.push(id);
        id
    };
    push(
        func,
        InstKind::CallIntrinsic(Intrinsic::ParallelInvoke(plan_index), vec![lo, hi]),
        None,
    );
    // Final IV value: lo + ceil(max(hi-lo,0)/step)*step.
    let d = push(func, InstKind::Bin(BinOp::Sub, hi, lo), Some(Type::I64));
    let pos = push(
        func,
        InstKind::Icmp(CmpOp::Gt, Value::Inst(d), Value::const_i64(0)),
        Some(Type::I1),
    );
    let dmax = push(
        func,
        InstKind::Select(
            Type::I64,
            Value::Inst(pos),
            Value::Inst(d),
            Value::const_i64(0),
        ),
        Some(Type::I64),
    );
    let final_iv = if step == 1 {
        let f = push(
            func,
            InstKind::Bin(BinOp::Add, lo, Value::Inst(dmax)),
            Some(Type::I64),
        );
        Value::Inst(f)
    } else {
        let num = push(
            func,
            InstKind::Bin(BinOp::Add, Value::Inst(dmax), Value::const_i64(step - 1)),
            Some(Type::I64),
        );
        let q = push(
            func,
            InstKind::Bin(BinOp::SDiv, Value::Inst(num), Value::const_i64(step)),
            Some(Type::I64),
        );
        let scaled = push(
            func,
            InstKind::Bin(BinOp::Mul, Value::Inst(q), Value::const_i64(step)),
            Some(Type::I64),
        );
        let f = push(
            func,
            InstKind::Bin(BinOp::Add, lo, Value::Inst(scaled)),
            Some(Type::I64),
        );
        Value::Inst(f)
    };
    func.block_mut(invoke_block).term = Term::Br(cl.exit);

    // Reroute the preheader to the invoke block.
    func.block_mut(preheader).term.map_successors(
        |s| {
            if s == cl.header {
                invoke_block
            } else {
                s
            }
        },
    );

    // Replace uses of the IV outside the loop with the final value, and
    // retarget exit phis' header edges to the invoke block.
    let loop_blocks: Vec<BlockId> = lp.blocks.iter().copied().collect();
    for bb in func.block_ids().collect::<Vec<_>>() {
        if loop_blocks.contains(&bb) {
            continue;
        }
        let remap = |v: Value| if v == Value::Inst(cl.iv) { final_iv } else { v };
        let insts = func.block(bb).insts.clone();
        for i in insts {
            // Skip the invoke block's own final-IV computation.
            if bb == invoke_block {
                continue;
            }
            let inst = func.inst_mut(i);
            inst.map_operands(remap);
            if let InstKind::Phi(_, incoming) = &mut inst.kind {
                for (pred, _) in incoming {
                    if *pred == cl.header {
                        *pred = invoke_block;
                    }
                }
            }
        }
        if bb != invoke_block {
            func.block_mut(bb).term.map_operands(remap);
        }
    }

    // Clear the loop blocks.
    for &bb in &loop_blocks {
        let block = func.block_mut(bb);
        block.insts.clear();
        block.term = Term::Unreachable;
    }

    Ok(OutlinedLoop {
        body,
        recovery,
        inst_map,
        block_map,
        invoke_block,
        lo,
        hi,
    })
}

/// Insert `inst` into `block` immediately before position `pos`.
pub fn insert_at(func: &mut Function, block: BlockId, pos: usize, inst: Inst) -> InstId {
    let id = func.add_inst(inst);
    func.block_mut(block).insts.insert(pos, id);
    id
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::counted::match_counted_loop;
    use privateer_ir::loops::LoopInfo;
    use privateer_ir::verify::verify_module;
    use privateer_ir::{GlobalId, PlanEntry};
    use privateer_runtime::SequentialPlanRuntime;
    use privateer_vm::{load_module, Interp, NopHooks};

    /// for i in 2..n { table[i] = i*i } ; print(i_final); print(table[5])
    fn build(n: i64) -> (Module, GlobalId) {
        let mut m = Module::new("o");
        let table = m.add_global("table", 1024);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(2));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(n));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let sq = b.mul(Type::I64, i, i);
        let slot = b.gep(Value::Global(table), i, 8, 0);
        b.store(Type::I64, sq, slot);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.print_i64(i); // the IV's final value is observable
        let s5 = b.gep(Value::Global(table), Value::const_i64(5), 8, 0);
        let v = b.load(Type::I64, s5);
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        (m, table)
    }

    fn outline_first_loop(m: &mut Module) -> OutlinedLoop {
        let main = m.main().unwrap();
        let li = LoopInfo::compute(m.func(main));
        // Pick the outermost loop.
        let (lid, lp) = li.iter().find(|(_, l)| l.depth == 1).unwrap();
        let cl = match_counted_loop(m.func(main), lid, lp).unwrap();
        let lp = lp.clone();
        let out = outline_loop(m, main, &cl, &lp, 0).unwrap();
        m.plans.push(PlanEntry {
            body: out.body,
            recovery: out.recovery,
        });
        out
    }

    #[test]
    fn outlined_module_verifies_and_runs() {
        let (mut m, _) = build(10);
        verify_module(&m).unwrap();
        let out = outline_first_loop(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}"));
        assert_eq!(m.func(out.body).params, vec![Type::I64]);
        // Execute sequentially through the plan runtime.
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, SequentialPlanRuntime::new(&image));
        interp.run_main().unwrap();
        // Final IV = 10, table[5] = 25.
        assert_eq!(interp.rt.take_output(), b"10\n25\n");
    }

    #[test]
    fn zero_trip_loop_final_iv_is_lo() {
        let (mut m, _) = build(0); // 2..0: never runs
        outline_first_loop(&mut m);
        verify_module(&m).unwrap();
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, SequentialPlanRuntime::new(&image));
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), b"2\n0\n");
    }

    #[test]
    fn rejects_live_outs() {
        // A value computed in the loop is used after it.
        let mut m = Module::new("lo");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(4));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let sq = b.mul(Type::I64, i, i);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.print_i64(sq); // live-out!
        b.ret(None);
        let main = m.add_function(b.finish());
        let li = LoopInfo::compute(m.func(main));
        let (lid, lp) = li.iter().next().unwrap();
        let cl = match_counted_loop(m.func(main), lid, lp).unwrap();
        let e = check_outlineable(m.func(main), &cl, lp).unwrap_err();
        assert!(e.0.contains("used outside"), "{e}");
    }

    #[test]
    fn rejects_ssa_live_ins() {
        // The loop body uses a value computed before the loop.
        let mut m = Module::new("li");
        let g = m.add_global("g", 8);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let pre = b.load(Type::I64, Value::Global(g));
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(4));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s = b.add(Type::I64, i, pre); // live-in!
        let slot = b.gep(Value::Global(g), Value::const_i64(0), 0, 0);
        b.store(Type::I64, s, slot);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let main = m.add_function(b.finish());
        let li = LoopInfo::compute(m.func(main));
        let (lid, lp) = li.iter().next().unwrap();
        let cl = match_counted_loop(m.func(main), lid, lp).unwrap();
        let e = check_outlineable(m.func(main), &cl, lp).unwrap_err();
        assert!(e.0.contains("outside value"), "{e}");
    }

    #[test]
    fn outlines_nested_inner_loop_body() {
        // Outer loop whose body contains an inner counted loop (phis whose
        // predecessors include the outer header).
        let mut m = Module::new("nest");
        let g = m.add_global("g", 8 * 64);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let oh = b.new_block();
        let ih = b.new_block();
        let ib = b.new_block();
        let ol = b.new_block();
        let exit = b.new_block();
        b.br(oh);
        b.switch_to(oh);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(8));
        b.cond_br(c, ih, exit);
        b.switch_to(ih);
        let (j, j_phi) = b.phi(Type::I64);
        b.add_phi_incoming(j_phi, oh, Value::const_i64(0));
        let cj = b.icmp(CmpOp::Lt, j, Value::const_i64(8));
        b.cond_br(cj, ib, ol);
        b.switch_to(ib);
        let prod = b.mul(Type::I64, i, j);
        let idx = b.mul(Type::I64, i, Value::const_i64(8));
        let idx2 = b.add(Type::I64, idx, j);
        let slot = b.gep(Value::Global(g), idx2, 8, 0);
        b.store(Type::I64, prod, slot);
        let j2 = b.add(Type::I64, j, Value::const_i64(1));
        b.add_phi_incoming(j_phi, ib, j2);
        b.br(ih);
        b.switch_to(ol);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, ol, i2);
        b.br(oh);
        b.switch_to(exit);
        let s = b.gep(Value::Global(g), Value::const_i64(61), 8, 0);
        let v = b.load(Type::I64, s);
        b.print_i64(v); // g[7*8+5] = 35
        b.ret(None);
        m.add_function(b.finish());
        verify_module(&m).unwrap();

        let out = outline_first_loop(&mut m);
        verify_module(&m).unwrap_or_else(|e| panic!("{e}"));
        assert!(m.func(out.body).blocks.len() >= 4);
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, SequentialPlanRuntime::new(&image));
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), b"35\n");
    }
}
