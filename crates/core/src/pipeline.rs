//! The end-to-end Privateer pipeline (paper Figure 3): profile →
//! classify → select → transform.

use crate::classify::classify;
use crate::footprint::Region;
use crate::outline::{check_outlineable, outline_loop};
use crate::select::{select, Candidate};
use crate::transform::{
    access_heaps, apply_control_speculation, insert_checks, insert_value_predictions,
    replace_allocation, CheckStats, PlacementMap, TransformError, ValuePrediction,
};
use privateer_ir::counted::match_counted_loop;
use privateer_ir::loops::LoopInfo;
use privateer_ir::verify::{verify_module, VerifyError};
use privateer_ir::{BlockId, FuncId, Inst, InstKind, Intrinsic, Module, PlanEntry, Value};
use privateer_profile::{BoundaryValueProfiler, CallSite, LoopRef, ObjectName, Profile};
use privateer_vm::interp::{load_module, Interp, ProgramImage};
use privateer_vm::{BasicRuntime, Trap};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// Pipeline tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct PipelineConfig {
    /// A loop is "hot" if its inclusive weight is at least this fraction
    /// of all executed instructions.
    pub hot_weight_frac: f64,
    /// Examine at most this many hot loops.
    pub max_candidates: usize,
    /// Attempt value-prediction speculation for blocking dependences.
    pub enable_value_prediction: bool,
    /// Replace never-executed blocks of selected bodies with `misspec()`.
    pub enable_control_speculation: bool,
    /// Give up on value prediction when the dependent footprint exceeds
    /// this many bytes.
    pub max_predicted_bytes: usize,
}

impl Default for PipelineConfig {
    fn default() -> PipelineConfig {
        PipelineConfig {
            hot_weight_frac: 0.05,
            max_candidates: 16,
            enable_value_prediction: true,
            enable_control_speculation: true,
            max_predicted_bytes: 64,
        }
    }
}

/// Why the pipeline failed outright.
#[derive(Debug)]
pub enum PipelineError {
    /// The profiling run trapped.
    Profile(Trap),
    /// A transformation pass failed.
    Transform(TransformError),
    /// The transformed module does not verify (a pipeline bug).
    Verify(VerifyError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Profile(t) => write!(f, "profiling failed: {t}"),
            PipelineError::Transform(e) => write!(f, "{e}"),
            PipelineError::Verify(e) => write!(f, "transformed module is ill-formed: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

/// What happened to one selected loop (feeds Table 3).
#[derive(Debug, Clone)]
pub struct LoopReport {
    /// The loop.
    pub lp: LoopRef,
    /// Name of the enclosing function.
    pub function: String,
    /// Objects per heap `[read-only, private, redux, short-lived,
    /// unrestricted]`.
    pub heap_counts: [usize; 5],
    /// Whether value-prediction speculation was required.
    pub value_predicted: bool,
    /// Blocks removed by control speculation.
    pub control_spec_blocks: usize,
    /// Whether the region performs (deferred) I/O.
    pub does_io: bool,
    /// Check-insertion counters.
    pub checks: CheckStats,
}

/// The pipeline's product.
#[derive(Debug)]
pub struct Privatized {
    /// The transformed module (parallel regions installed).
    pub module: Module,
    /// One report per selected loop, in plan order.
    pub reports: Vec<LoopReport>,
    /// Hot loops that were considered and rejected, with reasons.
    pub rejected: Vec<(LoopRef, String)>,
}

/// Map a raw profiled address to `(global, offset)` if it falls inside a
/// global.
fn addr_to_global(module: &Module, image: &ProgramImage, addr: u64) -> Option<(usize, u64)> {
    for (idx, g) in module.globals.iter().enumerate() {
        let base = image.global_addrs[idx];
        if addr >= base && addr < base + g.size {
            return Some((idx, addr - base));
        }
    }
    None
}

/// Cluster sorted byte addresses into maximal consecutive runs.
fn runs(addrs: &BTreeSet<u64>) -> Vec<(u64, u32)> {
    let mut out: Vec<(u64, u32)> = Vec::new();
    for &a in addrs {
        match out.last_mut() {
            Some((start, len)) if *start + *len as u64 == a => *len += 1,
            _ => out.push((a, 1)),
        }
    }
    out
}

/// Attempt value-prediction speculation for the blocking dependences of a
/// loop: profile the dependent bytes at iteration boundaries and, if they
/// are stable, predict them.
#[allow(clippy::type_complexity)]
fn try_value_prediction(
    module: &Module,
    image: &ProgramImage,
    profile: &Profile,
    lp: LoopRef,
    region: &Region,
    cfg: &PipelineConfig,
) -> Result<Option<(Vec<ValuePrediction>, BTreeSet<(CallSite, CallSite)>)>, String> {
    // Collect the dependences inside the region and their byte footprint.
    let mut dep_set: BTreeSet<(CallSite, CallSite)> = BTreeSet::new();
    let mut bytes: BTreeSet<u64> = BTreeSet::new();
    for (&(src, dst), info) in profile.deps_of(lp) {
        if !region.contains(src) || !region.contains(dst) {
            continue;
        }
        if info.addrs_overflow || info.addrs.is_empty() {
            return Err("dependent footprint too large for value prediction".into());
        }
        dep_set.insert((src, dst));
        bytes.extend(info.addrs.iter().copied());
    }
    if dep_set.is_empty() {
        return Ok(None);
    }
    if bytes.len() > cfg.max_predicted_bytes {
        return Err(format!(
            "dependent footprint of {} bytes exceeds the prediction budget",
            bytes.len()
        ));
    }
    // The transform can only re-materialize statically named locations.
    for &a in &bytes {
        if addr_to_global(module, image, a).is_none() {
            return Err("dependence flows through dynamic storage".into());
        }
    }

    // Second profiling pass: sample the bytes at iteration boundaries.
    let targets = runs(&bytes);
    let profiler = BoundaryValueProfiler::new(lp, targets.iter().copied());
    let mut interp = Interp::new(module, image, profiler, BasicRuntime::strict());
    interp
        .run_main()
        .map_err(|t| format!("boundary profiling failed: {t}"))?;
    let preds = interp.hooks.predictions_by_addr();
    if preds.len() != targets.len() {
        return Err("dependent values are not stable at iteration boundaries".into());
    }

    let mut out = Vec::new();
    for (addr, p) in preds {
        let (g, offset) = addr_to_global(module, image, addr).expect("checked above");
        out.push(ValuePrediction {
            global: privateer_ir::GlobalId::new(g),
            offset,
            bytes: p.bytes,
        });
    }
    Ok(Some((out, dep_set)))
}

/// Does the region perform I/O that actually executes? (Prints on
/// never-executed paths are removed by control speculation and do not
/// count — e.g. error paths.)
fn region_does_io(module: &Module, region: &Region, profile: &Profile) -> bool {
    region.sites(module).any(|(f, i)| {
        let is_print = matches!(
            module.func(f).inst(i).kind,
            InstKind::CallIntrinsic(
                Intrinsic::PrintI64
                    | Intrinsic::PrintF64
                    | Intrinsic::PrintStr
                    | Intrinsic::PrintChar,
                _
            )
        );
        is_print
            && module
                .func(f)
                .block_of(i)
                .is_some_and(|bb| !profile.block_unexecuted(f, bb))
    })
}

/// Run the full Privateer pipeline on `module`.
///
/// # Errors
///
/// Fails if profiling traps, a transformation pass on a *selected* loop
/// fails, or the result does not verify. Loops that merely cannot be
/// handled are reported in [`Privatized::rejected`], not errors.
pub fn privatize(input: &Module, cfg: &PipelineConfig) -> Result<Privatized, PipelineError> {
    let mut module = input.clone();
    let image = load_module(&module);
    let (profile, _out) =
        privateer_profile::profile_module(&module, &image).map_err(PipelineError::Profile)?;

    // Hot loops by inclusive weight.
    let min_weight = (profile.total_insts as f64 * cfg.hot_weight_frac) as u64;
    let hot: Vec<(LoopRef, u64)> = profile
        .loops_by_weight()
        .into_iter()
        .filter(|(_, s)| s.weight >= min_weight.max(1))
        .take(cfg.max_candidates)
        .map(|(lp, s)| (lp, s.weight))
        .collect();

    let mut rejected: Vec<(LoopRef, String)> = Vec::new();
    let mut candidates: Vec<Candidate> = Vec::new();

    for (lp, weight) in hot {
        let (f, l) = lp;
        let li = LoopInfo::compute(module.func(f));
        let natural = li.get(l);
        let Some(counted) = match_counted_loop(module.func(f), l, natural) else {
            rejected.push((lp, "not a canonical counted loop".into()));
            continue;
        };
        if let Err(e) = check_outlineable(module.func(f), &counted, natural) {
            rejected.push((lp, e.to_string()));
            continue;
        }
        let region = Region::compute(&module, f, l);
        let (mut assignment, footprint) = classify(&module, &region, &profile, &BTreeSet::new());

        let mut predictions = Vec::new();
        let mut predicted_deps = BTreeSet::new();
        if !assignment.is_parallelizable() && cfg.enable_value_prediction {
            match try_value_prediction(&module, &image, &profile, lp, &region, cfg) {
                Ok(Some((preds, deps))) => {
                    let (a2, _) = classify(&module, &region, &profile, &deps);
                    if a2.is_parallelizable() {
                        assignment = a2;
                        predictions = preds;
                        predicted_deps = deps;
                    }
                }
                Ok(None) => {}
                Err(why) => {
                    rejected.push((lp, format!("value prediction inapplicable: {why}")));
                    continue;
                }
            }
        }
        if !assignment.is_parallelizable() {
            rejected.push((lp, "cross-iteration flow dependences remain".into()));
            continue;
        }
        // Reduction objects must be statically named (globals) so the
        // runtime can be told their address before the invocation.
        if assignment
            .redux
            .keys()
            .any(|o| !matches!(o, ObjectName::Global(_)))
        {
            rejected.push((lp, "reduction object is dynamically allocated".into()));
            continue;
        }
        // Every access must expect a single heap (the separation property
        // is per-pointer).
        let mut tentative = PlacementMap::default();
        if let Err(e) = tentative.merge(&assignment) {
            rejected.push((lp, e.to_string()));
            continue;
        }
        let mut funcs: Vec<FuncId> = region.callees.iter().copied().collect();
        funcs.push(f);
        let heaps = access_heaps(&module, &profile, &tentative, funcs);
        if let Some((site, hs)) = heaps
            .iter()
            .find(|(site, hs)| hs.len() > 1 && region.contains(**site))
        {
            rejected.push((
                lp,
                format!("access {}:{} spans heaps {hs:?}", site.0, site.1),
            ));
            continue;
        }

        candidates.push(Candidate {
            lp,
            counted,
            region,
            assignment,
            footprint,
            predictions,
            predicted_deps,
            weight,
        });
    }

    let (chosen, placement) = select(candidates);

    // §4.4: replace allocation, module-wide, before outlining so the
    // cloned bodies inherit the heap allocation sites.
    replace_allocation(&mut module, &placement, &profile).map_err(PipelineError::Transform)?;

    let mut reports = Vec::new();
    let mut instrumented: BTreeSet<FuncId> = BTreeSet::new();
    for cand in &chosen {
        let (f, _) = cand.lp;
        let plan_index = module.plans.len() as u32;
        // Re-derive the loop by header block: outlining an earlier loop in
        // the same function invalidates loop ids but not block ids.
        let li = LoopInfo::compute(module.func(f));
        let l = li
            .loop_with_header(cand.counted.header)
            .expect("selected loop still present");
        let natural = li.get(l).clone();
        // Access→heap expectations must be read off the *intact* function:
        // outlining clears the loop blocks.
        let callee_heaps = access_heaps(
            &module,
            &profile,
            &placement,
            cand.region.callees.iter().copied(),
        );
        let orig_heaps = access_heaps(&module, &profile, &placement, [f]);
        let outlined = outline_loop(&mut module, f, &cand.counted, &natural, plan_index)
            .map_err(|e| PipelineError::Transform(TransformError(e.0)))?;
        module.plans.push(PlanEntry {
            body: outlined.body,
            recovery: outlined.recovery,
        });

        // Reduction registrations precede the invoke.
        for (reg_pos, (obj, &op)) in cand.assignment.redux.iter().enumerate() {
            let ObjectName::Global(g) = obj else {
                unreachable!("checked during candidacy")
            };
            let size = module.global(*g).size;
            let func = module.func_mut(f);
            let reg = func.add_inst(Inst {
                kind: InstKind::CallIntrinsic(
                    Intrinsic::ReduxRegister(op),
                    vec![Value::Global(*g), Value::const_i64(size as i64)],
                ),
                ty: None,
            });
            func.block_mut(outlined.invoke_block)
                .insts
                .insert(reg_pos, reg);
        }

        // Expected heaps per access: body sites translate through the
        // outline instruction map; callee sites keep their ids.
        let mut expected: BTreeMap<CallSite, BTreeSet<privateer_ir::Heap>> = BTreeMap::new();
        for (site, hs) in callee_heaps {
            expected.insert(site, hs);
        }
        for (site, hs) in orig_heaps {
            if let Some(&new_id) = outlined.inst_map.get(&site.1) {
                expected.insert((outlined.body, new_id), hs);
            }
        }

        // Instrument the body plus any not-yet-instrumented callees.
        let mut to_instrument: Vec<FuncId> = vec![outlined.body];
        for &callee in &cand.region.callees {
            if instrumented.insert(callee) {
                to_instrument.push(callee);
            }
        }
        let checks = insert_checks(&mut module, &expected, &placement, to_instrument)
            .map_err(PipelineError::Transform)?;

        insert_value_predictions(&mut module, outlined.body, &cand.predictions)
            .map_err(PipelineError::Transform)?;

        let mut control_spec_blocks = 0;
        if cfg.enable_control_speculation {
            let cold: Vec<BlockId> = outlined
                .block_map
                .iter()
                .filter(|(&old, _)| profile.block_unexecuted(f, old))
                .map(|(_, &new)| new)
                .collect();
            control_spec_blocks = apply_control_speculation(&mut module, outlined.body, &cold);
        }

        reports.push(LoopReport {
            lp: cand.lp,
            function: input.func(f).name.clone(),
            heap_counts: cand.assignment.counts(),
            value_predicted: !cand.predictions.is_empty(),
            control_spec_blocks,
            does_io: region_does_io(input, &cand.region, &profile),
            checks,
        });
    }

    verify_module(&module).map_err(PipelineError::Verify)?;
    Ok(Privatized {
        module,
        reports,
        rejected,
    })
}
