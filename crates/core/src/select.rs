//! Loop selection (§4.3): pick the hottest compatible set of
//! parallelizable loops.

use crate::classify::HeapAssignment;
use crate::footprint::{Footprint, Region};
use crate::transform::{PlacementMap, ValuePrediction};
use privateer_ir::counted::CountedLoop;
use privateer_profile::{CallSite, LoopRef};
use std::collections::BTreeSet;

/// A hot loop that classification found parallelizable, with everything
/// the transformation needs.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The loop.
    pub lp: LoopRef,
    /// Its canonical counted form.
    pub counted: CountedLoop,
    /// The loop's region.
    pub region: Region,
    /// The heap assignment.
    pub assignment: HeapAssignment,
    /// The loop's footprint.
    pub footprint: Footprint,
    /// Value predictions enabling the assignment (may be empty).
    pub predictions: Vec<ValuePrediction>,
    /// Profiled dependences removed by those predictions.
    pub predicted_deps: BTreeSet<(CallSite, CallSite)>,
    /// Hotness weight (instructions executed while active).
    pub weight: u64,
}

/// Whether two candidate loops may be simultaneously active: one's region
/// reaches the other's function (nesting through calls), or they overlap
/// within one function.
pub fn may_be_simultaneously_active(a: &Candidate, b: &Candidate) -> bool {
    if a.region.callees.contains(&b.lp.0) || b.region.callees.contains(&a.lp.0) {
        return true;
    }
    if a.lp.0 == b.lp.0 {
        // Same function: nested or overlapping block sets conflict.
        let sa: BTreeSet<_> = a.region.loop_insts.iter().collect();
        let sb: BTreeSet<_> = b.region.loop_insts.iter().collect();
        return sa.intersection(&sb).next().is_some();
    }
    false
}

/// Greedy selection by hotness: take the heaviest loops whose heap
/// assignments agree on every shared object and which are never
/// simultaneously active. Returns the chosen candidates and the merged
/// placement.
pub fn select(mut candidates: Vec<Candidate>) -> (Vec<Candidate>, PlacementMap) {
    candidates.sort_by(|a, b| b.weight.cmp(&a.weight).then(a.lp.cmp(&b.lp)));
    let mut chosen: Vec<Candidate> = Vec::new();
    let mut placement = PlacementMap::default();
    for cand in candidates {
        if !cand.assignment.is_parallelizable() {
            continue;
        }
        if chosen
            .iter()
            .any(|c| may_be_simultaneously_active(c, &cand))
        {
            continue;
        }
        let mut tentative = placement.clone();
        if tentative.merge(&cand.assignment).is_err() {
            continue; // incompatible heap assignment (§4.3)
        }
        placement = tentative;
        chosen.push(cand);
    }
    (chosen, placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::loops::LoopId;
    use privateer_ir::{BlockId, FuncId, Heap, InstId};
    use privateer_profile::ObjectName;

    fn candidate(func: usize, weight: u64, objs: &[(usize, Heap)]) -> Candidate {
        let mut assignment = HeapAssignment::default();
        for &(g, h) in objs {
            let name = ObjectName::Global(privateer_ir::GlobalId::new(g));
            match h {
                Heap::Private => {
                    assignment.private.insert(name);
                }
                Heap::ReadOnly => {
                    assignment.read_only.insert(name);
                }
                Heap::ShortLived => {
                    assignment.short_lived.insert(name);
                }
                Heap::Unrestricted => {
                    assignment.unrestricted.insert(name);
                }
                Heap::Redux => {
                    assignment.redux.insert(name, privateer_ir::ReduxOp::SumI64);
                }
            }
        }
        Candidate {
            lp: (FuncId::new(func), LoopId::new(0)),
            counted: CountedLoop {
                loop_id: LoopId::new(0),
                header: BlockId::new(1),
                latch: BlockId::new(2),
                iv: InstId::new(0),
                lo: privateer_ir::Value::const_i64(0),
                hi: privateer_ir::Value::const_i64(10),
                step: 1,
                into_loop: BlockId::new(2),
                exit: BlockId::new(3),
                cmp: InstId::new(1),
            },
            region: Region {
                func: FuncId::new(func),
                loop_id: LoopId::new(0),
                loop_insts: BTreeSet::new(),
                callees: BTreeSet::new(),
            },
            assignment,
            footprint: Footprint::default(),
            predictions: vec![],
            predicted_deps: BTreeSet::new(),
            weight,
        }
    }

    #[test]
    fn prefers_heavier_loops() {
        let a = candidate(0, 100, &[(0, Heap::Private)]);
        let b = candidate(1, 900, &[(0, Heap::ReadOnly)]);
        // Conflicting assignment for global 0: only the heavier survives.
        let (chosen, _) = select(vec![a, b]);
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].lp.0, FuncId::new(1));
    }

    #[test]
    fn compatible_loops_both_selected() {
        let a = candidate(0, 100, &[(0, Heap::Private)]);
        let b = candidate(1, 900, &[(0, Heap::Private), (1, Heap::ReadOnly)]);
        let (chosen, placement) = select(vec![a, b]);
        assert_eq!(chosen.len(), 2);
        assert_eq!(
            placement.globals.get(&privateer_ir::GlobalId::new(0)),
            Some(&Heap::Private)
        );
    }

    #[test]
    fn unparallelizable_skipped() {
        let a = candidate(0, 100, &[(0, Heap::Unrestricted)]);
        let (chosen, _) = select(vec![a]);
        assert!(chosen.is_empty());
    }

    #[test]
    fn nested_via_calls_conflict() {
        let mut a = candidate(0, 100, &[]);
        let b = candidate(1, 900, &[]);
        a.region.callees.insert(FuncId::new(1)); // a's loop calls b's function
        let (chosen, _) = select(vec![a, b]);
        assert_eq!(chosen.len(), 1);
        assert_eq!(chosen[0].lp.0, FuncId::new(1)); // heavier one wins
    }
}
