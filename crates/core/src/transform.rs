//! The Privateer transformation passes over a module with a chosen heap
//! assignment: replace allocation (§4.4), insert separation checks (§4.5)
//! and privacy checks (§4.6), value-prediction re-materialization and
//! validation, and control speculation.

use crate::classify::HeapAssignment;
use privateer_ir::cfg::Cfg;
use privateer_ir::dom::DomTree;
use privateer_ir::{
    BlockId, FuncId, Function, GlobalId, Heap, Inst, InstId, InstKind, Intrinsic, Module, Term,
    Type, Value,
};
use privateer_profile::{CallSite, ObjectName, Profile};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A transformation failure (the loop should not have been selected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransformError(pub String);

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "transformation failed: {}", self.0)
    }
}

impl std::error::Error for TransformError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TransformError> {
    Err(TransformError(msg.into()))
}

/// The module-wide object→heap map derived from (possibly several) loops'
/// heap assignments: globals and allocation sites each get one heap.
#[derive(Debug, Clone, Default)]
pub struct PlacementMap {
    /// Heap of each classified global.
    pub globals: BTreeMap<GlobalId, Heap>,
    /// Heap of each classified allocation site (all context names of the
    /// site must agree).
    pub sites: BTreeMap<CallSite, Heap>,
}

impl PlacementMap {
    /// Fold a loop's assignment into the map. On failure `self` is left
    /// unchanged.
    ///
    /// # Errors
    ///
    /// Fails if an object would be assigned two different heaps — the
    /// selection compatibility rule of §4.3.
    pub fn merge(&mut self, assignment: &HeapAssignment) -> Result<(), TransformError> {
        let mut tentative = self.clone();
        tentative.merge_in_place(assignment)?;
        *self = tentative;
        Ok(())
    }

    fn merge_in_place(&mut self, assignment: &HeapAssignment) -> Result<(), TransformError> {
        for (obj, heap) in assignment.iter() {
            match obj {
                ObjectName::Global(g) => {
                    if let Some(prev) = self.globals.insert(*g, heap) {
                        if prev != heap {
                            return err(format!("global {g} assigned both {prev} and {heap}"));
                        }
                    }
                }
                ObjectName::Site { site, .. } => {
                    if let Some(prev) = self.sites.insert(*site, heap) {
                        if prev != heap {
                            return err(format!(
                                "allocation site {}:{} assigned both {prev} and {heap}",
                                site.0, site.1
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// The heap of an object name under this placement.
    pub fn heap_of(&self, obj: &ObjectName) -> Option<Heap> {
        match obj {
            ObjectName::Global(g) => self.globals.get(g).copied(),
            ObjectName::Site { site, .. } => self.sites.get(site).copied(),
        }
    }
}

/// §4.4 Replace Allocation: retarget globals, allocation sites and free
/// sites into their logical heaps, module-wide.
///
/// # Errors
///
/// Fails when a `free` releases objects spanning several heaps, or a
/// "site" is not actually an allocation.
pub fn replace_allocation(
    module: &mut Module,
    placement: &PlacementMap,
    profile: &Profile,
) -> Result<(), TransformError> {
    for (&g, &heap) in &placement.globals {
        module.global_mut(g).heap = Some(heap);
    }
    for (&(f, i), &heap) in &placement.sites {
        let kind = module.func(f).inst(i).kind.clone();
        match kind {
            InstKind::Malloc(size) => {
                module.func_mut(f).inst_mut(i).kind =
                    InstKind::CallIntrinsic(Intrinsic::HAlloc(heap), vec![size]);
            }
            InstKind::Alloca { size, .. } => {
                let size_v = Value::const_i64(size as i64);
                module.func_mut(f).inst_mut(i).kind =
                    InstKind::CallIntrinsic(Intrinsic::HAlloc(heap), vec![size_v]);
                insert_alloca_frees(module.func_mut(f), i, heap);
            }
            InstKind::CallIntrinsic(Intrinsic::HAlloc(h), _) if h == heap => {}
            other => {
                return err(format!(
                    "allocation site {f}:{i} is not an allocation ({other:?})"
                ))
            }
        }
    }
    // Retarget frees whose objects all live in one heap.
    for f in module.func_ids() {
        let ids: Vec<InstId> = (0..module.func(f).insts.len()).map(InstId::new).collect();
        for i in ids {
            let InstKind::Free(ptr) = module.func(f).inst(i).kind else {
                continue;
            };
            let Some(objects) = profile.objects_at((f, i)) else {
                continue;
            };
            let heaps: BTreeSet<Option<Heap>> =
                objects.iter().map(|o| placement.heap_of(o)).collect();
            match heaps.into_iter().collect::<Vec<_>>().as_slice() {
                [Some(h)] => {
                    module.func_mut(f).inst_mut(i).kind =
                        InstKind::CallIntrinsic(Intrinsic::HFree(*h), vec![ptr]);
                }
                [None] => {}
                mixed => {
                    return err(format!(
                        "free at {f}:{i} releases objects from mixed heaps {mixed:?}"
                    ))
                }
            }
        }
    }
    Ok(())
}

/// Insert `h_dealloc` for a replaced alloca at every return it dominates
/// (paper: "a corresponding deallocation is inserted at all function
/// exits").
fn insert_alloca_frees(func: &mut Function, alloca: InstId, heap: Heap) {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);
    let Some(def_bb) = func.block_of(alloca) else {
        return;
    };
    let ret_blocks: Vec<BlockId> = func
        .block_ids()
        .filter(|&bb| matches!(func.block(bb).term, Term::Ret(_)) && dom.dominates(def_bb, bb))
        .collect();
    for bb in ret_blocks {
        let free = func.add_inst(Inst {
            kind: InstKind::CallIntrinsic(Intrinsic::HFree(heap), vec![Value::Inst(alloca)]),
            ty: None,
        });
        func.block_mut(bb).insts.push(free);
    }
}

/// Which heap(s) each access site is expected to touch, per the profile
/// and placement. Used both for check insertion and for the selection
/// sanity rule that one access never spans heaps.
pub fn access_heaps(
    module: &Module,
    profile: &Profile,
    placement: &PlacementMap,
    funcs: impl IntoIterator<Item = FuncId>,
) -> BTreeMap<CallSite, BTreeSet<Heap>> {
    let mut out = BTreeMap::new();
    for f in funcs {
        for (_, i) in module.func(f).inst_ids_in_order() {
            if !matches!(
                module.func(f).inst(i).kind,
                InstKind::Load(..) | InstKind::Store(..)
            ) {
                continue;
            }
            let Some(objects) = profile.objects_at((f, i)) else {
                continue;
            };
            let heaps: BTreeSet<Heap> = objects
                .iter()
                .filter_map(|o| placement.heap_of(o))
                .collect();
            if !heaps.is_empty() {
                out.insert((f, i), heaps);
            }
        }
    }
    out
}

/// Counters from check insertion.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckStats {
    /// `private_read` checks inserted.
    pub privacy_reads: usize,
    /// `private_write` checks inserted.
    pub privacy_writes: usize,
    /// `check_heap` checks inserted.
    pub separation: usize,
    /// Separation checks proved at compile time and elided.
    pub elided: usize,
}

/// §4.5 + §4.6: insert separation and privacy checks into `funcs`.
///
/// `expected` maps each access site to its expected heap(s). Separation
/// checks are attached to the *pointer definition* and elided when
/// provable (globals with the right placement, `h_alloc` results, and GEPs
/// thereof). Privacy checks precede each private access.
///
/// # Errors
///
/// Fails if any access expects more than one heap, or one pointer is used
/// against different heaps.
pub fn insert_checks(
    module: &mut Module,
    expected: &BTreeMap<CallSite, BTreeSet<Heap>>,
    placement: &PlacementMap,
    funcs: impl IntoIterator<Item = FuncId>,
) -> Result<CheckStats, TransformError> {
    let mut stats = CheckStats::default();
    for f in funcs {
        // Gather this function's accesses and their heaps.
        let mut pointer_heap: BTreeMap<Value, Heap> = BTreeMap::new();
        let mut privacy_points: Vec<(BlockId, InstId, Value, u32, bool)> = Vec::new();
        for bb in module.func(f).block_ids() {
            for &i in &module.func(f).block(bb).insts {
                let Some(heaps) = expected.get(&(f, i)) else {
                    continue;
                };
                if heaps.len() != 1 {
                    return err(format!(
                        "access {f}:{i} touches objects in several heaps: {heaps:?}"
                    ));
                }
                let heap = *heaps.iter().next().expect("one heap");
                let (ptr, size, is_store) = match module.func(f).inst(i).kind {
                    InstKind::Load(ty, p) => (p, ty.size(), false),
                    InstKind::Store(ty, _, p) => (p, ty.size(), true),
                    _ => continue,
                };
                if let Some(prev) = pointer_heap.insert(ptr, heap) {
                    if prev != heap {
                        return err(format!(
                            "pointer {ptr} used against both {prev} and {heap} in {f}"
                        ));
                    }
                }
                if heap == Heap::Private {
                    privacy_points.push((bb, i, ptr, size, is_store));
                }
            }
        }

        // Privacy checks: insert before each private access.
        for (bb, access, ptr, size, is_store) in privacy_points {
            let func = module.func_mut(f);
            let pos = func
                .block(bb)
                .insts
                .iter()
                .position(|&x| x == access)
                .expect("access is placed");
            let which = if is_store {
                Intrinsic::PrivateWrite
            } else {
                Intrinsic::PrivateRead
            };
            crate::outline::insert_at(
                func,
                bb,
                pos,
                Inst {
                    kind: InstKind::CallIntrinsic(which, vec![ptr, Value::const_i64(size as i64)]),
                    ty: None,
                },
            );
            if is_store {
                stats.privacy_writes += 1;
            } else {
                stats.privacy_reads += 1;
            }
        }

        // Separation checks at pointer definitions, with compile-time
        // elision.
        for (ptr, heap) in pointer_heap {
            if proves_heap(module.func(f), placement, ptr, heap) {
                stats.elided += 1;
                continue;
            }
            let check = Inst {
                kind: InstKind::CallIntrinsic(Intrinsic::CheckHeap(heap), vec![ptr]),
                ty: None,
            };
            let func = module.func_mut(f);
            match ptr {
                Value::Inst(def) => {
                    let Some(def_bb) = func.block_of(def) else {
                        return err(format!("pointer %{} is unplaced", def.index()));
                    };
                    let pos = func
                        .block(def_bb)
                        .insts
                        .iter()
                        .position(|&x| x == def)
                        .expect("definition is placed");
                    crate::outline::insert_at(func, def_bb, pos + 1, check);
                }
                _ => {
                    // Parameters and unproved constants: check at entry.
                    let entry = func.entry();
                    crate::outline::insert_at(func, entry, 0, check);
                }
            }
            stats.separation += 1;
        }
    }
    Ok(stats)
}

/// Can the compiler prove `ptr` stays within `heap`? (Globals placed
/// there, `h_alloc` results from there, and field/element arithmetic over
/// such pointers.)
fn proves_heap(func: &Function, placement: &PlacementMap, ptr: Value, heap: Heap) -> bool {
    let mut cur = ptr;
    for _ in 0..64 {
        match cur {
            Value::Global(g) => return placement.globals.get(&g) == Some(&heap),
            Value::Inst(id) => match &func.inst(id).kind {
                InstKind::CallIntrinsic(Intrinsic::HAlloc(h), _) => return *h == heap,
                InstKind::Gep { base, .. } => cur = *base,
                _ => return false,
            },
            _ => return false,
        }
    }
    false
}

/// A value prediction: `global + offset` holds `bytes` at the start of
/// every iteration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValuePrediction {
    /// The predicted global.
    pub global: GlobalId,
    /// Byte offset within it.
    pub offset: u64,
    /// The predicted bytes.
    pub bytes: Vec<u8>,
}

/// Insert value-prediction speculation into an outlined body:
/// re-materialize the predicted value at entry, and validate it before
/// returning (the paper's dijkstra transformation: the work list is
/// predicted empty at iteration boundaries, checked by `misspec()` guards
/// at the iteration end — Figure 2b lines 78–80).
///
/// # Errors
///
/// Fails if the body does not have exactly one return block.
pub fn insert_value_predictions(
    module: &mut Module,
    body: FuncId,
    predictions: &[ValuePrediction],
) -> Result<(), TransformError> {
    if predictions.is_empty() {
        return Ok(());
    }
    let func = module.func_mut(body);
    let entry = func.entry();
    let ret_blocks: Vec<BlockId> = func
        .block_ids()
        .filter(|&bb| matches!(func.block(bb).term, Term::Ret(_)))
        .collect();
    let [ret_block] = ret_blocks.as_slice() else {
        return err("outlined body must have exactly one return block");
    };
    let ret_block = *ret_block;

    for p in predictions {
        for (chunk_off, chunk) in chunks_of(&p.bytes) {
            let off = (p.offset + chunk_off) as i64;
            let (ty, cval) = chunk_const(&chunk);

            // Entry: address, privacy check, store of the predicted value.
            let addr = func.add_inst(Inst {
                kind: InstKind::Gep {
                    base: Value::Global(p.global),
                    index: Value::const_i64(0),
                    scale: 0,
                    disp: off,
                },
                ty: Some(Type::Ptr),
            });
            let pw = func.add_inst(Inst {
                kind: InstKind::CallIntrinsic(
                    Intrinsic::PrivateWrite,
                    vec![Value::Inst(addr), Value::const_i64(ty.size() as i64)],
                ),
                ty: None,
            });
            let st = func.add_inst(Inst {
                kind: InstKind::Store(ty, cval, Value::Inst(addr)),
                ty: None,
            });
            let block = func.block_mut(entry);
            block.insts.insert(0, st);
            block.insts.insert(0, pw);
            block.insts.insert(0, addr);

            // Return block: load and predict equality.
            let addr2 = func.add_inst(Inst {
                kind: InstKind::Gep {
                    base: Value::Global(p.global),
                    index: Value::const_i64(0),
                    scale: 0,
                    disp: off,
                },
                ty: Some(Type::Ptr),
            });
            let loaded = func.add_inst(Inst {
                kind: InstKind::Load(ty, Value::Inst(addr2)),
                ty: Some(ty),
            });
            let cmp = func.add_inst(Inst {
                kind: InstKind::Icmp(privateer_ir::CmpOp::Eq, Value::Inst(loaded), cval),
                ty: Some(Type::I1),
            });
            let predict = func.add_inst(Inst {
                kind: InstKind::CallIntrinsic(Intrinsic::Predict, vec![Value::Inst(cmp)]),
                ty: None,
            });
            let block = func.block_mut(ret_block);
            block.insts.push(addr2);
            block.insts.push(loaded);
            block.insts.push(cmp);
            block.insts.push(predict);
        }
    }
    Ok(())
}

/// Split predicted bytes into chunks the IR can load and store (8-byte
/// aligned runs, byte fallbacks).
fn chunks_of(bytes: &[u8]) -> Vec<(u64, Vec<u8>)> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        if off.is_multiple_of(8) && bytes.len() - off >= 8 {
            out.push((off as u64, bytes[off..off + 8].to_vec()));
            off += 8;
        } else {
            out.push((off as u64, vec![bytes[off]]));
            off += 1;
        }
    }
    out
}

fn chunk_const(chunk: &[u8]) -> (Type, Value) {
    if chunk.len() == 8 {
        let v = i64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
        (Type::I64, Value::const_i64(v))
    } else {
        (Type::I8, Value::const_i8(chunk[0] as i8))
    }
}

/// Control speculation: blocks of the outlined body that never executed
/// during profiling are replaced with `misspec()` (à la Chen/Mahlke/Hwu);
/// their dependences vanish from the optimistic view, and straying into
/// them at runtime triggers recovery.
pub fn apply_control_speculation(
    module: &mut Module,
    body: FuncId,
    cold_blocks: &[BlockId],
) -> usize {
    let func = module.func_mut(body);
    let mut n = 0;
    for &bb in cold_blocks {
        let mis = func.add_inst(Inst {
            kind: InstKind::CallIntrinsic(Intrinsic::Misspec, vec![]),
            ty: None,
        });
        let block = func.block_mut(bb);
        block.insts.clear();
        block.insts.push(mis);
        block.term = Term::Unreachable;
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::verify::verify_module;

    #[test]
    fn placement_merge_conflicts_detected() {
        let mut p = PlacementMap::default();
        let mut a = HeapAssignment::default();
        a.private.insert(ObjectName::Global(GlobalId::new(0)));
        p.merge(&a).unwrap();
        let mut b = HeapAssignment::default();
        b.read_only.insert(ObjectName::Global(GlobalId::new(0)));
        assert!(p.merge(&b).is_err());
        p.merge(&a).unwrap(); // same heap again is fine
    }

    #[test]
    fn proves_heap_through_geps() {
        let mut m = Module::new("t");
        let g = m.add_global("g", 64);
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], None);
        let e = b.gep(Value::Global(g), Value::const_i64(2), 8, 0);
        let e2 = b.gep(e, Value::const_i64(1), 8, 4);
        b.store(Type::I32, Value::const_i32(1), e2);
        let unk = b.param(0);
        b.store(Type::I32, Value::const_i32(1), unk);
        b.ret(None);
        let f = m.add_function(b.finish());
        let mut placement = PlacementMap::default();
        placement.globals.insert(g, Heap::Private);
        assert!(proves_heap(m.func(f), &placement, e2, Heap::Private));
        assert!(!proves_heap(m.func(f), &placement, e2, Heap::ReadOnly));
        assert!(!proves_heap(m.func(f), &placement, unk, Heap::Private));
    }

    #[test]
    fn value_prediction_shapes_verify() {
        let mut m = Module::new("t");
        let g = m.add_global("q", 16);
        m.global_mut(g).heap = Some(Heap::Private);
        let mut b = FunctionBuilder::new("body", vec![Type::I64], None);
        b.ret(None);
        let body = m.add_function(b.finish());
        insert_value_predictions(
            &mut m,
            body,
            &[ValuePrediction {
                global: g,
                offset: 0,
                bytes: vec![0; 16],
            }],
        )
        .unwrap();
        verify_module(&m).unwrap_or_else(|e| panic!("{e}"));
        let text = privateer_ir::printer::print_module(&m);
        assert_eq!(text.matches("intr predict").count(), 2, "{text}");
        assert_eq!(text.matches("intr private_write").count(), 2);
    }

    #[test]
    fn chunking_mixed_alignment() {
        let bytes = vec![1u8; 11];
        let chunks = chunks_of(&bytes);
        assert_eq!(chunks[0].1.len(), 8);
        assert_eq!(chunks.len(), 1 + 3);
        let total: usize = chunks.iter().map(|(_, c)| c.len()).sum();
        assert_eq!(total, 11);
    }

    #[test]
    fn control_speculation_replaces_blocks() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("body", vec![Type::I64], None);
        let cold = b.new_block();
        let warm = b.new_block();
        let c = b.icmp(privateer_ir::CmpOp::Lt, b.param(0), Value::const_i64(0));
        b.cond_br(c, cold, warm);
        b.switch_to(cold);
        b.print_i64(Value::const_i64(666));
        b.ret(None);
        b.switch_to(warm);
        b.ret(None);
        let body = m.add_function(b.finish());
        let n = apply_control_speculation(&mut m, body, &[cold]);
        assert_eq!(n, 1);
        verify_module(&m).unwrap();
        let text = privateer_ir::printer::print_function(&m, m.func(body));
        assert!(text.contains("intr misspec()"), "{text}");
        assert!(!text.contains("666"));
    }

    #[test]
    fn replace_allocation_rewrites_malloc_and_alloca() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(24));
        b.store(Type::I64, Value::const_i64(1), p);
        let a = b.alloca(16, "tmp");
        b.store(Type::I64, Value::const_i64(2), a);
        b.free(p);
        b.ret(None);
        let main = m.add_function(b.finish());
        let malloc_site = (main, p.as_inst().unwrap());
        let alloca_site = (main, a.as_inst().unwrap());

        let mut placement = PlacementMap::default();
        placement.sites.insert(malloc_site, Heap::ShortLived);
        placement.sites.insert(alloca_site, Heap::Private);

        // A minimal profile so the free retargets: it frees the malloc
        // object.
        let mut profile = Profile::default();
        let name = ObjectName::Site {
            site: malloc_site,
            path: vec![],
        };
        let free_site = (
            main,
            m.func(main)
                .inst_ids_in_order()
                .find(|&(_, i)| matches!(m.func(main).inst(i).kind, InstKind::Free(_)))
                .map(|(_, i)| i)
                .unwrap(),
        );
        profile
            .access_objects
            .insert(free_site, std::iter::once(name).collect());

        replace_allocation(&mut m, &placement, &profile).unwrap();
        verify_module(&m).unwrap_or_else(|e| panic!("{e}"));
        let text = privateer_ir::printer::print_function(&m, m.func(main));
        assert!(text.contains("h_alloc.short"), "{text}");
        assert!(text.contains("h_alloc.priv"), "{text}");
        assert!(text.contains("h_dealloc.short"), "{text}");
        // The alloca's balancing free at the return.
        assert!(text.contains("h_dealloc.priv"), "{text}");
        assert!(!text.contains(" malloc "), "{text}");
    }
}
