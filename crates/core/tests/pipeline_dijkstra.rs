//! The paper's headline flow, end to end and fully automatic: profile the
//! dijkstra kernel, classify its objects (Figure 4's heap assignment),
//! apply speculative privatization with value prediction, and run it in
//! parallel — output must match the sequential original.

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::Heap;
use privateer_runtime::{EngineConfig, MainRuntime, SequentialPlanRuntime};
use privateer_vm::{load_module, Interp, NopHooks};
use privateer_workloads::dijkstra;

fn params() -> dijkstra::Params {
    dijkstra::Params { n: 16, seed: 5 }
}

#[test]
fn dijkstra_privatizes_and_parallelizes() {
    let p = params();
    let m = dijkstra::build(&p);
    let expected = dijkstra::reference_output(&p);

    let result = privatize(&m, &PipelineConfig::default())
        .unwrap_or_else(|e| panic!("pipeline failed: {e}"));
    assert_eq!(
        result.reports.len(),
        1,
        "the hot outer loop must be selected; rejected: {:?}",
        result.rejected
    );
    let report = &result.reports[0];
    assert_eq!(report.function, "main");
    assert!(report.value_predicted, "Q head/tail need value prediction");
    assert!(report.does_io, "the loop prints (deferred I/O)");

    // The Figure 4 heap assignment: pathcost & Q private, adj read-only,
    // list nodes short-lived, nothing unrestricted.
    let [ro, privates, redux, short, unres] = report.heap_counts;
    assert_eq!(ro, 1, "adj is read-only");
    assert_eq!(privates, 2, "Q and pathcost are private");
    assert_eq!(redux, 0);
    assert!(short >= 1, "list nodes are short-lived");
    assert_eq!(unres, 0);

    // Globals were retargeted.
    let tm = &result.module;
    let q = tm.global_by_name("Q").unwrap();
    let pathcost = tm.global_by_name("pathcost").unwrap();
    let adj = tm.global_by_name("adj").unwrap();
    assert_eq!(tm.global(q).heap, Some(Heap::Private));
    assert_eq!(tm.global(pathcost).heap, Some(Heap::Private));
    assert_eq!(tm.global(adj).heap, Some(Heap::ReadOnly));

    // Sequential execution of the transformed module matches.
    let image = load_module(tm);
    let mut interp = Interp::new(tm, &image, NopHooks, SequentialPlanRuntime::new(&image));
    interp.run_main().unwrap();
    assert_eq!(
        interp.rt.take_output(),
        expected,
        "sequential transformed run diverged"
    );

    // Parallel execution matches, at several worker counts.
    for workers in [1, 2, 4] {
        let cfg = EngineConfig {
            workers,
            checkpoint_period: 4,
            inject_rate: 0.0,
            inject_seed: 1,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(tm, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp
            .run_main()
            .unwrap_or_else(|e| panic!("parallel run failed: {e}"));
        let out = interp.rt.take_output();
        assert_eq!(
            out,
            expected,
            "parallel output diverged at {workers} workers ({} misspecs: {:?})",
            interp.rt.stats.misspecs,
            interp
                .rt
                .events
                .iter()
                .filter(|e| matches!(
                    e.event,
                    privateer_runtime::EngineEvent::MisspecDetected { .. }
                ))
                .collect::<Vec<_>>()
        );
        assert_eq!(interp.rt.stats.misspecs, 0, "speculation must hold");
        assert!(interp.rt.stats.checkpoints > 0);
        assert!(interp.rt.stats.priv_read_bytes > 0);
        assert!(interp.rt.stats.priv_write_bytes > 0);
    }
}

#[test]
fn dijkstra_profile_is_input_stable() {
    // The paper notes profiling with a different input yields identical
    // code. Transform with the train input's profile, run on itself — and
    // the classification decisions must agree with a different seed's.
    let a = privatize(
        &dijkstra::build(&dijkstra::Params { n: 12, seed: 1 }),
        &PipelineConfig::default(),
    )
    .unwrap();
    let b = privatize(
        &dijkstra::build(&dijkstra::Params { n: 12, seed: 9 }),
        &PipelineConfig::default(),
    )
    .unwrap();
    assert_eq!(a.reports.len(), 1);
    assert_eq!(b.reports.len(), 1);
    assert_eq!(a.reports[0].heap_counts, b.reports[0].heap_counts);
    assert_eq!(a.reports[0].value_predicted, b.reports[0].value_predicted);
}

#[test]
fn dijkstra_parallel_with_injected_misspeculation() {
    let p = params();
    let m = dijkstra::build(&p);
    let expected = dijkstra::reference_output(&p);
    let result = privatize(&m, &PipelineConfig::default()).unwrap();
    let image = load_module(&result.module);
    let cfg = EngineConfig {
        workers: 4,
        checkpoint_period: 4,
        inject_rate: 0.25,
        inject_seed: 33,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(
        &result.module,
        &image,
        NopHooks,
        MainRuntime::new(&image, cfg),
    );
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), expected);
    assert!(interp.rt.stats.misspecs > 0);
    assert!(interp.rt.stats.recovered_iters > 0);
}
