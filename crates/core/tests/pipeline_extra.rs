//! Additional pipeline scenarios: multiple compatible hot loops in one
//! program, min/max reductions, zero-trip loops, and rejection paths.

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{BinOp, CmpOp, GlobalInit, Heap, Module, Type, Value};
use privateer_runtime::{EngineConfig, MainRuntime, SequentialPlanRuntime};
use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

/// Two independent hot loops, back to back, each reusing its own scratch
/// buffer: both must be selected into separate plans and both must
/// parallelize.
#[test]
fn two_compatible_hot_loops_both_selected() {
    let mut m = Module::new("two-loops");
    let buf_a = m.add_global("buf_a", 64);
    let buf_b = m.add_global("buf_b", 64);
    let mut b = FunctionBuilder::new("main", vec![], None);

    let emit_loop = |b: &mut FunctionBuilder, buf, n: i64, scale: i64| {
        let pre = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, phi) = b.phi(Type::I64);
        b.add_phi_incoming(phi, pre, Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(n));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        // Kill-then-use the scratch buffer.
        let mut j = 0i64;
        while j < 8 {
            let slot = b.gep(Value::Global(buf), Value::const_i64(j), 8, 0);
            let v = b.mul(Type::I64, i, Value::const_i64(scale + j));
            b.store(Type::I64, v, slot);
            j += 1;
        }
        let idx = b.bin(BinOp::SRem, Type::I64, i, Value::const_i64(8));
        let slot = b.gep(Value::Global(buf), idx, 8, 0);
        let v = b.load(Type::I64, slot);
        b.print_i64(v);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        let latch = b.current_block();
        b.add_phi_incoming(phi, latch, i2);
        b.br(header);
        b.switch_to(exit);
    };
    emit_loop(&mut b, buf_a, 40, 3);
    emit_loop(&mut b, buf_b, 40, 11);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    // Sequential reference.
    let image = load_module(&m);
    let mut seq = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
    seq.run_main().unwrap();
    let expected = seq.rt.take_output();

    // Lower the hotness bar so both (equally hot) loops qualify.
    let cfg = PipelineConfig {
        hot_weight_frac: 0.01,
        ..PipelineConfig::default()
    };
    let result = privatize(&m, &cfg).unwrap();
    assert_eq!(
        result.reports.len(),
        2,
        "both loops selected: {:?}",
        result.rejected
    );
    assert_eq!(result.module.plans.len(), 2);

    let image = load_module(&result.module);
    for workers in [1, 3] {
        let ecfg = EngineConfig {
            workers,
            checkpoint_period: 8,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            MainRuntime::new(&image, ecfg),
        );
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), expected);
        assert_eq!(interp.rt.stats.invocations, 2);
        assert_eq!(interp.rt.stats.misspecs, 0);
    }
}

/// Min and max reductions via the explicit runtime interface: the engine
/// expands to ±infinity identities and merges correctly.
#[test]
fn min_max_reductions_merge_correctly() {
    use privateer_ir::{Intrinsic, PlanEntry, ReduxOp};
    let mut m = Module::new("minmax");
    let lo = m.add_global_init("lo_cell", 8, GlobalInit::I64s(vec![i64::MAX]));
    let hi = m.add_global_init("hi_cell", 8, GlobalInit::I64s(vec![i64::MIN]));

    for name in ["body", "recovery"] {
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let iter = b.param(0);
        // A value that is non-monotonic in the iteration index.
        let x = b.bin(BinOp::Xor, Type::I64, iter, Value::const_i64(0x2B));
        let l = b.load(Type::I64, Value::Global(lo));
        let cl = b.icmp(CmpOp::Lt, x, l);
        let l2 = b.select(Type::I64, cl, x, l);
        b.store(Type::I64, l2, Value::Global(lo));
        let h = b.load(Type::I64, Value::Global(hi));
        let ch = b.icmp(CmpOp::Gt, x, h);
        let h2 = b.select(Type::I64, ch, x, h);
        b.store(Type::I64, h2, Value::Global(hi));
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });

    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ReduxRegister(ReduxOp::MinI64),
        vec![Value::Global(lo), Value::const_i64(8)],
    );
    b.intrinsic(
        Intrinsic::ReduxRegister(ReduxOp::MaxI64),
        vec![Value::Global(hi), Value::const_i64(8)],
    );
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(100)],
    );
    let l = b.load(Type::I64, Value::Global(lo));
    b.print_i64(l);
    let h = b.load(Type::I64, Value::Global(hi));
    b.print_i64(h);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    let image = load_module(&m);
    let mut seq = Interp::new(&m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    seq.run_main().unwrap();
    let expected = seq.rt.take_output();
    // Oracle: min/max of i^0x2B over 0..100.
    let vals: Vec<i64> = (0..100i64).map(|i| i ^ 0x2B).collect();
    let want = format!(
        "{}\n{}\n",
        vals.iter().min().unwrap(),
        vals.iter().max().unwrap()
    );
    assert_eq!(String::from_utf8_lossy(&expected), want);

    for workers in [2, 5] {
        let cfg = EngineConfig {
            workers,
            checkpoint_period: 7,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), expected, "workers {workers}");
    }
}

/// A hot loop whose bounds make it zero-trip at runtime: the pipeline may
/// or may not select it, but execution must be unaffected.
#[test]
fn zero_trip_parallel_region() {
    let mut m = Module::new("zt");
    let buf = m.add_global("buf", 32);
    m.global_mut(buf).heap = Some(Heap::Private);
    use privateer_ir::{Intrinsic, PlanEntry};
    for name in ["body", "recovery"] {
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        b.intrinsic(
            Intrinsic::PrivateWrite,
            vec![Value::Global(buf), Value::const_i64(8)],
        );
        b.store(Type::I64, b.param(0), Value::Global(buf));
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(5), Value::const_i64(5)],
    );
    let v = b.load(Type::I64, Value::Global(buf));
    b.print_i64(v);
    b.ret(None);
    m.add_function(b.finish());

    let image = load_module(&m);
    let mut interp = Interp::new(
        &m,
        &image,
        NopHooks,
        MainRuntime::new(
            &image,
            EngineConfig {
                workers: 3,
                ..EngineConfig::default()
            },
        ),
    );
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), b"0\n");
    assert_eq!(
        interp.rt.stats.invocations, 0,
        "zero-trip region never invokes"
    );
}

/// Rejection diagnostics name the obstruction.
#[test]
fn rejection_reasons_are_reported() {
    // A loop with a genuine, unpredictable cross-iteration dependence.
    let mut m = Module::new("rej");
    let cell = m.add_global("cell", 8);
    let mut b = FunctionBuilder::new("main", vec![], None);
    let pre = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (i, phi) = b.phi(Type::I64);
    b.add_phi_incoming(phi, pre, Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, i, Value::const_i64(50));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    // cell = cell * 3 + i  (accumulates; boundary values differ each
    // iteration so value prediction cannot rescue it; the *3 breaks the
    // reduction pattern).
    let v = b.load(Type::I64, Value::Global(cell));
    let t = b.mul(Type::I64, v, Value::const_i64(3));
    let t2 = b.add(Type::I64, t, i);
    b.store(Type::I64, t2, Value::Global(cell));
    let i2 = b.add(Type::I64, i, Value::const_i64(1));
    b.add_phi_incoming(phi, body, i2);
    b.br(header);
    b.switch_to(exit);
    let v = b.load(Type::I64, Value::Global(cell));
    b.print_i64(v);
    b.ret(None);
    m.add_function(b.finish());

    let result = privatize(&m, &PipelineConfig::default()).unwrap();
    assert!(result.reports.is_empty());
    assert!(
        result
            .rejected
            .iter()
            .any(|(_, why)| why.contains("not stable") || why.contains("flow dependences")),
        "{:?}",
        result.rejected
    );
    // And the untouched program still runs.
    let image = load_module(&result.module);
    let mut interp = Interp::new(&result.module, &image, NopHooks, BasicRuntime::strict());
    interp.run_main().unwrap();
}

/// Fully automatic min/max reduction: the classifier recognizes the
/// select-based update, assigns the cells to the reduction heap, and the
/// engine merges with the right identities.
#[test]
fn automatic_min_max_reduction_pipeline() {
    let mut m = Module::new("autominmax");
    let lo = m.add_global_init("lo_cell", 8, GlobalInit::I64s(vec![i64::MAX]));
    let hi = m.add_global_init("hi_cell", 8, GlobalInit::I64s(vec![i64::MIN]));
    let mut b = FunctionBuilder::new("main", vec![], None);
    let pre = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (i, phi) = b.phi(Type::I64);
    b.add_phi_incoming(phi, pre, Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, i, Value::const_i64(120));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let x = b.bin(BinOp::Xor, Type::I64, i, Value::const_i64(0x55));
    let l = b.load(Type::I64, Value::Global(lo));
    let cl = b.icmp(CmpOp::Lt, x, l);
    let l2 = b.select(Type::I64, cl, x, l);
    b.store(Type::I64, l2, Value::Global(lo));
    let h = b.load(Type::I64, Value::Global(hi));
    let ch = b.icmp(CmpOp::Gt, x, h);
    let h2 = b.select(Type::I64, ch, x, h);
    b.store(Type::I64, h2, Value::Global(hi));
    let i2 = b.add(Type::I64, i, Value::const_i64(1));
    b.add_phi_incoming(phi, body, i2);
    b.br(header);
    b.switch_to(exit);
    let l = b.load(Type::I64, Value::Global(lo));
    b.print_i64(l);
    let h = b.load(Type::I64, Value::Global(hi));
    b.print_i64(h);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    let image = load_module(&m);
    let mut seq = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
    seq.run_main().unwrap();
    let expected = seq.rt.take_output();

    let result = privatize(&m, &PipelineConfig::default()).unwrap();
    assert_eq!(result.reports.len(), 1, "{:?}", result.rejected);
    assert_eq!(
        result.reports[0].heap_counts[2], 2,
        "both cells are reductions"
    );

    let image = load_module(&result.module);
    for workers in [2, 4] {
        let cfg = EngineConfig {
            workers,
            checkpoint_period: 9,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            MainRuntime::new(&image, cfg),
        );
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), expected, "workers {workers}");
        assert_eq!(interp.rt.stats.misspecs, 0);
    }
}
