//! The paper's title claim covers *recursive* data structures. This test
//! builds a kernel whose every iteration constructs a binary tree through
//! a **recursive** function, folds it, and frees it recursively — the
//! nodes must classify as short-lived, the recursive callees must receive
//! checks, and parallel execution must be exact.

use privateer::pipeline::{privatize, PipelineConfig};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, FuncId, Module, Type, Value};
use privateer_runtime::{EngineConfig, MainRuntime};
use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

/// Node layout: { value: i64, left: ptr, right: ptr }.
const VAL: i64 = 0;
const LEFT: i64 = 8;
const RIGHT: i64 = 16;

/// fn build(depth, salt) -> ptr  — recursive tree construction.
/// fn fold(node) -> i64          — recursive sum.
/// fn drop_tree(node)            — recursive free.
/// main: for i in 0..N { t = build(3, i); print(fold(t)); drop_tree(t) }
fn tree_module(n: i64) -> Module {
    let mut m = Module::new("tree");
    let build_id = FuncId::new(0);
    let fold_id = FuncId::new(1);
    let drop_id = FuncId::new(2);

    // build(depth, salt)
    {
        let mut b = FunctionBuilder::new("build", vec![Type::I64, Type::I64], Some(Type::Ptr));
        let depth = b.param(0);
        let salt = b.param(1);
        let node = b.malloc(Value::const_i64(24));
        let vslot = b.gep_const(node, VAL);
        let v = b.add(Type::I64, depth, salt);
        b.store(Type::I64, v, vslot);
        let leaf = b.icmp(CmpOp::Le, depth, Value::const_i64(0));
        let leaf_bb = b.new_block();
        let rec_bb = b.new_block();
        b.cond_br(leaf, leaf_bb, rec_bb);
        b.switch_to(leaf_bb);
        let lslot = b.gep_const(node, LEFT);
        b.store(Type::Ptr, Value::Null, lslot);
        let rslot = b.gep_const(node, RIGHT);
        b.store(Type::Ptr, Value::Null, rslot);
        b.ret(Some(node));
        b.switch_to(rec_bb);
        let d2 = b.sub(Type::I64, depth, Value::const_i64(1));
        let s2 = b.mul(Type::I64, salt, Value::const_i64(3));
        let l = b.call(build_id, vec![d2, s2], Some(Type::Ptr)).unwrap();
        let s3 = b.add(Type::I64, s2, Value::const_i64(1));
        let r = b.call(build_id, vec![d2, s3], Some(Type::Ptr)).unwrap();
        let lslot = b.gep_const(node, LEFT);
        b.store(Type::Ptr, l, lslot);
        let rslot = b.gep_const(node, RIGHT);
        b.store(Type::Ptr, r, rslot);
        b.ret(Some(node));
        m.add_function(b.finish());
    }
    // fold(node)
    {
        let mut b = FunctionBuilder::new("fold", vec![Type::Ptr], Some(Type::I64));
        let node = b.param(0);
        let is_null = b.icmp(CmpOp::Eq, node, Value::Null);
        let null_bb = b.new_block();
        let rec_bb = b.new_block();
        b.cond_br(is_null, null_bb, rec_bb);
        b.switch_to(null_bb);
        b.ret(Some(Value::const_i64(0)));
        b.switch_to(rec_bb);
        let vslot = b.gep_const(node, VAL);
        let v = b.load(Type::I64, vslot);
        let lslot = b.gep_const(node, LEFT);
        let l = b.load(Type::Ptr, lslot);
        let ls = b.call(fold_id, vec![l], Some(Type::I64)).unwrap();
        let rslot = b.gep_const(node, RIGHT);
        let r = b.load(Type::Ptr, rslot);
        let rs = b.call(fold_id, vec![r], Some(Type::I64)).unwrap();
        let t = b.add(Type::I64, v, ls);
        let t2 = b.add(Type::I64, t, rs);
        b.ret(Some(t2));
        m.add_function(b.finish());
    }
    // drop_tree(node)
    {
        let mut b = FunctionBuilder::new("drop_tree", vec![Type::Ptr], None);
        let node = b.param(0);
        let is_null = b.icmp(CmpOp::Eq, node, Value::Null);
        let null_bb = b.new_block();
        let rec_bb = b.new_block();
        b.cond_br(is_null, null_bb, rec_bb);
        b.switch_to(null_bb);
        b.ret(None);
        b.switch_to(rec_bb);
        let lslot = b.gep_const(node, LEFT);
        let l = b.load(Type::Ptr, lslot);
        b.call(drop_id, vec![l], None);
        let rslot = b.gep_const(node, RIGHT);
        let r = b.load(Type::Ptr, rslot);
        b.call(drop_id, vec![r], None);
        b.free(node);
        b.ret(None);
        m.add_function(b.finish());
    }
    // main
    {
        let mut b = FunctionBuilder::new("main", vec![], None);
        let pre = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, phi) = b.phi(Type::I64);
        b.add_phi_incoming(phi, pre, Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(n));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let t = b
            .call(build_id, vec![Value::const_i64(3), i], Some(Type::Ptr))
            .unwrap();
        let s = b.call(fold_id, vec![t], Some(Type::I64)).unwrap();
        b.print_i64(s);
        b.call(drop_id, vec![t], None);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
    }
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

#[test]
fn recursive_trees_are_short_lived_and_parallelize() {
    let m = tree_module(30);
    let image = load_module(&m);
    let mut seq = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
    seq.run_main().unwrap();
    let expected = seq.rt.take_output();

    let result =
        privatize(&m, &PipelineConfig::default()).unwrap_or_else(|e| panic!("pipeline: {e}"));
    assert_eq!(result.reports.len(), 1, "{:?}", result.rejected);
    let r = &result.reports[0];
    // All tree nodes (one recursive allocation site, many dynamic
    // contexts) are short-lived; nothing is unrestricted.
    assert!(r.heap_counts[3] >= 1, "tree nodes short-lived: {r:?}");
    assert_eq!(r.heap_counts[4], 0);
    // The recursive callees carry separation checks on loaded child
    // pointers.
    assert!(r.checks.separation > 0, "{r:?}");

    let image = load_module(&result.module);
    for workers in [2, 4] {
        let cfg = EngineConfig {
            workers,
            checkpoint_period: 6,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(
            &result.module,
            &image,
            NopHooks,
            MainRuntime::new(&image, cfg),
        );
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), expected, "workers {workers}");
        assert_eq!(interp.rt.stats.misspecs, 0);
    }
}

#[test]
fn recursive_trees_survive_misspeculation() {
    let m = tree_module(24);
    let image = load_module(&m);
    let mut seq = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
    seq.run_main().unwrap();
    let expected = seq.rt.take_output();

    let result = privatize(&m, &PipelineConfig::default()).unwrap();
    let image = load_module(&result.module);
    let cfg = EngineConfig {
        workers: 3,
        checkpoint_period: 4,
        inject_rate: 0.25,
        inject_seed: 5,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(
        &result.module,
        &image,
        NopHooks,
        MainRuntime::new(&image, cfg),
    );
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), expected);
    assert!(interp.rt.stats.misspecs > 0);
}
