//! Seeded generation of random transformed loops.
//!
//! A [`CaseSpec`] is a tiny declarative program: a loop over `0..iters`
//! whose body is a sequence of [`Stmt`]s over a private cell buffer and
//! a reduction accumulator. [`CaseSpec::build_module`] lowers it to IR
//! twice — a speculative *body* carrying privatization/separation/
//! prediction checks and a check-free *recovery* — exactly the
//! body/recovery pairing the separation pass emits (paper §5), plus a
//! `main` that registers the reduction, runs `parallel_invoke`, and
//! prints the accumulator and every cell so the differential oracle
//! observes both output and committed memory.
//!
//! Generation is pure: [`CaseSpec::generate`]`(seed, index)` always
//! yields the same case, and [`CaseSpec::to_text`] /
//! [`CaseSpec::from_text`] round-trip a case through the repro-file
//! format the `privfuzz` CLI writes on failure.
//!
//! Several statement kinds *deliberately misspeculate* — cross-iteration
//! reads, failing predictions, wrong-heap pointers, leaked short-lived
//! objects — and one ([`Stmt::GenuineFault`]) is a genuine program error
//! that must fault identically under sequential and speculative
//! execution. The oracle never needs to know which is which: the
//! contract is byte-equality either way.

use crate::rng::Rng;
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{
    BinOp, CmpOp, GlobalId, GlobalInit, Heap, Intrinsic, Module, PlanEntry, ReduxOp, Type, Value,
};

/// One statement of a generated loop body.
///
/// `i` below is the iteration variable. All cell indices are reduced
/// modulo the case's cell count, so any parameter values form a valid
/// program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `cells[(i*stride + add) % cells] = i*mul + add` — the privatization
    /// workhorse: a per-iteration write with a `private_write` check.
    WriteCells {
        /// Cell-index stride per iteration.
        stride: u64,
        /// Cell-index offset (kept in `0..cells`).
        add: i64,
        /// Stored-value multiplier.
        mul: i64,
    },
    /// Read back `cells[(i*stride + add) % cells]` (guarded by
    /// `private_read`) and print it. The generator only emits this after
    /// a [`Stmt::WriteCells`] with the same `stride`/`add`, so the read
    /// is write-then-read safe; shrinking may break the pairing, which
    /// merely turns the case into an always-misspeculating one.
    ReadCellPrint {
        /// Must match a prior write's stride for a safe read.
        stride: u64,
        /// Must match a prior write's offset for a safe read.
        add: i64,
    },
    /// `if (i % modulus) < threshold { cells[cell % cells] = i*mul }` —
    /// a branchy write-only access (no flow dependence; last writer
    /// wins), stressing partially-dirty contributions.
    CondWrite {
        /// Branch period (≥ 1).
        modulus: i64,
        /// Write when `i % modulus` is below this.
        threshold: i64,
        /// Target cell.
        cell: u64,
        /// Stored-value multiplier.
        mul: i64,
    },
    /// `acc += i*mul + add` through plain loads/stores on the redux heap.
    Redux {
        /// Contribution multiplier.
        mul: i64,
        /// Contribution offset.
        add: i64,
    },
    /// `print(i*mul + add)` — deferred I/O that must retire in iteration
    /// order.
    PrintExpr {
        /// Multiplier.
        mul: i64,
        /// Offset.
        add: i64,
    },
    /// Allocate a short-lived node, chase it, print through it, free it.
    /// With `leak_at = Some(i)` the speculative body skips the free at
    /// iteration `i` (the recovery always frees), forcing a lifetime
    /// misspeculation.
    ShortLived {
        /// Iteration whose free the body skips, if any.
        leak_at: Option<i64>,
    },
    /// At iteration `at`, read `cells[(i + offset) % cells]` under a
    /// `private_read` check — a cross-iteration flow dependence the
    /// privacy check must catch (unless an earlier write this iteration
    /// happened to cover the cell, in which case it legitimately passes).
    CrossIterRead {
        /// Iteration performing the stale read.
        at: i64,
        /// Distance to the (usually unwritten) cell (≥ 1).
        offset: u64,
    },
    /// `predict(i != at)` — a value prediction that fails exactly once.
    PredictFail {
        /// Iteration at which the prediction is wrong.
        at: i64,
    },
    /// At iteration `at`, run `check_heap::<ShortLived>` on a pointer
    /// into the *private* heap — a separation violation. Other
    /// iterations pass a null pointer, which vacuously passes.
    WrongHeapCheck {
        /// Iteration handing the wrong-heap pointer to the check.
        at: i64,
    },
    /// `print(1 / (i - at))` — a genuine division-by-zero at iteration
    /// `at`, present in body *and* recovery: sequential and speculative
    /// runs must report the identical trap with identical partial output.
    GenuineFault {
        /// The faulting iteration.
        at: i64,
    },
}

/// A complete generated case: loop bounds, data-layout knobs, and the
/// statement list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSpec {
    /// Case name (embedded in the module name and repro files).
    pub name: String,
    /// Loop trip count; the loop runs `0..iters`.
    pub iters: i64,
    /// Number of 8-byte cells in the private buffer.
    pub cells: u64,
    /// Byte distance between consecutive cells: 8 packs the buffer into
    /// few pages, 4096 gives every cell its own page (multi-page
    /// contributions and sharded merges).
    pub pitch: u64,
    /// Initial value of the reduction accumulator.
    pub redux_init: i64,
    /// The loop body.
    pub stmts: Vec<Stmt>,
}

impl CaseSpec {
    /// Deterministically generate case number `index` of the stream
    /// seeded by `seed`.
    pub fn generate(seed: u64, index: u64) -> CaseSpec {
        // Decorrelate (seed, index) pairs: one splitmix step over the
        // mixed pair seeds the per-case stream.
        let mut r = Rng::new(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        r.next_u64();

        let iters = r.range(12, 49);
        let cells = 2 + r.below(11);
        let pitch = if r.chance(1, 4) { 4096 } else { 8 };
        let redux_init = r.range(-5, 50);
        let n_stmts = 2 + r.below(6);

        let mut stmts = Vec::new();
        let mut writes: Vec<(u64, i64)> = Vec::new();
        let mut faulted = false;
        for _ in 0..n_stmts {
            let roll = r.below(100);
            let stmt = match roll {
                0..=24 => {
                    let stride = 1 + r.below(4);
                    let add = r.range(0, cells as i64);
                    writes.push((stride, add));
                    Stmt::WriteCells {
                        stride,
                        add,
                        mul: r.range(-9, 10),
                    }
                }
                25..=39 if !writes.is_empty() => {
                    let (stride, add) = writes[r.below(writes.len() as u64) as usize];
                    Stmt::ReadCellPrint { stride, add }
                }
                25..=39 => Stmt::PrintExpr {
                    mul: r.range(-4, 5),
                    add: r.range(0, 100),
                },
                40..=51 => Stmt::CondWrite {
                    modulus: r.range(2, 7),
                    threshold: r.range(1, 4),
                    cell: r.below(cells),
                    mul: r.range(-9, 10),
                },
                52..=66 => Stmt::Redux {
                    mul: r.range(-3, 8),
                    add: r.range(-10, 11),
                },
                67..=76 => Stmt::PrintExpr {
                    mul: r.range(-4, 5),
                    add: r.range(0, 100),
                },
                77..=84 => Stmt::ShortLived {
                    leak_at: if r.chance(1, 3) {
                        Some(r.range(0, iters))
                    } else {
                        None
                    },
                },
                85..=89 => Stmt::CrossIterRead {
                    at: r.range(0, iters),
                    offset: 1 + r.below(cells - 1),
                },
                90..=93 => Stmt::PredictFail {
                    at: r.range(0, iters),
                },
                94..=96 => Stmt::WrongHeapCheck {
                    at: r.range(0, iters),
                },
                _ if !faulted => {
                    faulted = true;
                    // Fault late so several checkpoints commit first.
                    Stmt::GenuineFault {
                        at: r.range(iters / 2, iters),
                    }
                }
                _ => Stmt::Redux {
                    mul: r.range(-3, 8),
                    add: r.range(-10, 11),
                },
            };
            stmts.push(stmt);
        }

        CaseSpec {
            name: format!("case-{seed:x}-{index}"),
            iters,
            cells,
            pitch,
            redux_init,
            stmts,
        }
    }

    /// Lower the case to a verified IR module: `body`/`recovery` plan
    /// pair plus a `main` that registers the reduction, invokes the
    /// plan over `0..iters`, then prints the accumulator and every cell.
    pub fn build_module(&self) -> Module {
        let mut m = Module::new(&self.name);
        let buf = m.add_global("cells", self.cells * self.pitch);
        m.global_mut(buf).heap = Some(Heap::Private);
        let acc = m.add_global_init("acc", 8, GlobalInit::I64s(vec![self.redux_init]));
        m.global_mut(acc).heap = Some(Heap::Redux);

        for (name, checks) in [("body", true), ("recovery", false)] {
            let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
            let iter = b.param(0);
            for stmt in &self.stmts {
                self.emit_stmt(&mut b, checks, iter, buf, acc, stmt);
            }
            b.ret(None);
            m.add_function(b.finish());
        }
        let body = m.func_by_name("body").unwrap();
        let recovery = m.func_by_name("recovery").unwrap();
        m.plans.push(PlanEntry { body, recovery });

        let mut b = FunctionBuilder::new("main", vec![], None);
        b.intrinsic(
            Intrinsic::ReduxRegister(ReduxOp::SumI64),
            vec![Value::Global(acc), Value::const_i64(8)],
        );
        b.intrinsic(
            Intrinsic::ParallelInvoke(0),
            vec![Value::const_i64(0), Value::const_i64(self.iters)],
        );
        let a = b.load(Type::I64, Value::Global(acc));
        b.print_i64(a);
        for c in 0..self.cells {
            let slot = b.gep_const(Value::Global(buf), (c * self.pitch) as i64);
            let v = b.load(Type::I64, slot);
            b.print_i64(v);
        }
        b.ret(None);
        m.add_function(b.finish());
        privateer_ir::verify::verify_module(&m).expect("generated module verifies");
        m
    }

    /// `&cells[(expr) % cells]` for a dynamic index expression.
    fn cell_slot(&self, b: &mut FunctionBuilder, buf: GlobalId, index: Value) -> Value {
        let idx = b.bin(
            BinOp::SRem,
            Type::I64,
            index,
            Value::const_i64(self.cells as i64),
        );
        b.gep(Value::Global(buf), idx, self.pitch, 0)
    }

    fn emit_stmt(
        &self,
        b: &mut FunctionBuilder,
        checks: bool,
        iter: Value,
        buf: GlobalId,
        acc: GlobalId,
        stmt: &Stmt,
    ) {
        match *stmt {
            Stmt::WriteCells { stride, add, mul } => {
                let scaled = b.mul(Type::I64, iter, Value::const_i64(stride as i64));
                let idx = b.add(Type::I64, scaled, Value::const_i64(add));
                let slot = self.cell_slot(b, buf, idx);
                if checks {
                    b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
                }
                let v = b.mul(Type::I64, iter, Value::const_i64(mul));
                let v = b.add(Type::I64, v, Value::const_i64(add));
                b.store(Type::I64, v, slot);
            }
            Stmt::ReadCellPrint { stride, add } => {
                let scaled = b.mul(Type::I64, iter, Value::const_i64(stride as i64));
                let idx = b.add(Type::I64, scaled, Value::const_i64(add));
                let slot = self.cell_slot(b, buf, idx);
                if checks {
                    b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
                }
                let v = b.load(Type::I64, slot);
                b.print_i64(v);
            }
            Stmt::CondWrite {
                modulus,
                threshold,
                cell,
                mul,
            } => {
                let rem = b.bin(
                    BinOp::SRem,
                    Type::I64,
                    iter,
                    Value::const_i64(modulus.max(1)),
                );
                let c = b.icmp(CmpOp::Lt, rem, Value::const_i64(threshold));
                let then = b.new_block();
                let cont = b.new_block();
                b.cond_br(c, then, cont);
                b.switch_to(then);
                let slot = b.gep_const(
                    Value::Global(buf),
                    ((cell % self.cells) * self.pitch) as i64,
                );
                if checks {
                    b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
                }
                let v = b.mul(Type::I64, iter, Value::const_i64(mul));
                b.store(Type::I64, v, slot);
                b.br(cont);
                b.switch_to(cont);
            }
            Stmt::Redux { mul, add } => {
                let a = b.load(Type::I64, Value::Global(acc));
                let v = b.mul(Type::I64, iter, Value::const_i64(mul));
                let v = b.add(Type::I64, v, Value::const_i64(add));
                let a2 = b.add(Type::I64, a, v);
                b.store(Type::I64, a2, Value::Global(acc));
            }
            Stmt::PrintExpr { mul, add } => {
                let v = b.mul(Type::I64, iter, Value::const_i64(mul));
                let v = b.add(Type::I64, v, Value::const_i64(add));
                b.print_i64(v);
            }
            Stmt::ShortLived { leak_at } => {
                let p = b
                    .intrinsic(
                        Intrinsic::HAlloc(Heap::ShortLived),
                        vec![Value::const_i64(16)],
                    )
                    .unwrap();
                if checks {
                    b.intrinsic(Intrinsic::CheckHeap(Heap::ShortLived), vec![p]);
                }
                let v = b.mul(Type::I64, iter, Value::const_i64(3));
                let v = b.add(Type::I64, v, Value::const_i64(1));
                b.store(Type::I64, v, p);
                let back = b.load(Type::I64, p);
                b.print_i64(back);
                match leak_at {
                    Some(at) if checks => {
                        // The speculative body "loses" the free at `at`.
                        let is_at = b.icmp(CmpOp::Eq, iter, Value::const_i64(at));
                        let dofree = b.new_block();
                        let end = b.new_block();
                        b.cond_br(is_at, end, dofree);
                        b.switch_to(dofree);
                        b.intrinsic(Intrinsic::HFree(Heap::ShortLived), vec![p]);
                        b.br(end);
                        b.switch_to(end);
                    }
                    _ => {
                        b.intrinsic(Intrinsic::HFree(Heap::ShortLived), vec![p]);
                    }
                }
            }
            Stmt::CrossIterRead { at, offset } => {
                let c = b.icmp(CmpOp::Eq, iter, Value::const_i64(at));
                let then = b.new_block();
                let cont = b.new_block();
                b.cond_br(c, then, cont);
                b.switch_to(then);
                let idx = b.add(Type::I64, iter, Value::const_i64(offset as i64));
                let slot = self.cell_slot(b, buf, idx);
                if checks {
                    b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
                }
                let v = b.load(Type::I64, slot);
                b.print_i64(v);
                b.br(cont);
                b.switch_to(cont);
            }
            Stmt::PredictFail { at } => {
                if checks {
                    let ok = b.icmp(CmpOp::Ne, iter, Value::const_i64(at));
                    b.intrinsic(Intrinsic::Predict, vec![ok]);
                }
            }
            Stmt::WrongHeapCheck { at } => {
                if checks {
                    let c = b.icmp(CmpOp::Eq, iter, Value::const_i64(at));
                    let p = b.select(Type::Ptr, c, Value::Global(buf), Value::Null);
                    b.intrinsic(Intrinsic::CheckHeap(Heap::ShortLived), vec![p]);
                }
            }
            Stmt::GenuineFault { at } => {
                let d = b.sub(Type::I64, iter, Value::const_i64(at));
                let q = b.bin(BinOp::SDiv, Type::I64, Value::const_i64(1), d);
                b.print_i64(q);
            }
        }
    }

    /// Serialize to the `privfuzz-case v1` repro format (one line per
    /// field/statement; `#` comments and blank lines are ignored on
    /// read).
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        s.push_str("privfuzz-case v1\n");
        s.push_str(&format!("name {}\n", self.name));
        s.push_str(&format!("iters {}\n", self.iters));
        s.push_str(&format!("cells {}\n", self.cells));
        s.push_str(&format!("pitch {}\n", self.pitch));
        s.push_str(&format!("redux-init {}\n", self.redux_init));
        for st in &self.stmts {
            let line = match *st {
                Stmt::WriteCells { stride, add, mul } => {
                    format!("stmt write stride={stride} add={add} mul={mul}")
                }
                Stmt::ReadCellPrint { stride, add } => {
                    format!("stmt read stride={stride} add={add}")
                }
                Stmt::CondWrite {
                    modulus,
                    threshold,
                    cell,
                    mul,
                } => format!(
                    "stmt condwrite modulus={modulus} threshold={threshold} cell={cell} mul={mul}"
                ),
                Stmt::Redux { mul, add } => format!("stmt redux mul={mul} add={add}"),
                Stmt::PrintExpr { mul, add } => format!("stmt print mul={mul} add={add}"),
                Stmt::ShortLived { leak_at } => match leak_at {
                    Some(at) => format!("stmt shortlived leak_at={at}"),
                    None => "stmt shortlived leak_at=none".to_string(),
                },
                Stmt::CrossIterRead { at, offset } => {
                    format!("stmt crossread at={at} offset={offset}")
                }
                Stmt::PredictFail { at } => format!("stmt predictfail at={at}"),
                Stmt::WrongHeapCheck { at } => format!("stmt wrongheap at={at}"),
                Stmt::GenuineFault { at } => format!("stmt fault at={at}"),
            };
            s.push_str(&line);
            s.push('\n');
        }
        s
    }

    /// Parse the [`Self::to_text`] format. Returns a human-readable
    /// error naming the offending line.
    pub fn from_text(text: &str) -> Result<CaseSpec, String> {
        let mut lines = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'));
        match lines.next() {
            Some("privfuzz-case v1") => {}
            other => return Err(format!("bad header: {other:?}")),
        }
        let mut spec = CaseSpec {
            name: "replay".to_string(),
            iters: 16,
            cells: 4,
            pitch: 8,
            redux_init: 0,
            stmts: Vec::new(),
        };
        for line in lines {
            let mut words = line.split_whitespace();
            let key = words.next().unwrap_or("");
            let fields: Vec<&str> = words.collect();
            let kv = |name: &str| -> Result<i64, String> {
                fields
                    .iter()
                    .find_map(|f| f.strip_prefix(name)?.strip_prefix('='))
                    .ok_or_else(|| format!("missing {name}= in: {line}"))?
                    .parse()
                    .map_err(|e| format!("bad {name} in {line:?}: {e}"))
            };
            match key {
                "name" => spec.name = fields.first().unwrap_or(&"replay").to_string(),
                "iters" => spec.iters = parse_scalar(line, &fields)?,
                "cells" => spec.cells = parse_scalar(line, &fields)? as u64,
                "pitch" => spec.pitch = parse_scalar(line, &fields)? as u64,
                "redux-init" => spec.redux_init = parse_scalar(line, &fields)?,
                "stmt" => {
                    let stmt = match *fields.first().unwrap_or(&"") {
                        "write" => Stmt::WriteCells {
                            stride: kv("stride")? as u64,
                            add: kv("add")?,
                            mul: kv("mul")?,
                        },
                        "read" => Stmt::ReadCellPrint {
                            stride: kv("stride")? as u64,
                            add: kv("add")?,
                        },
                        "condwrite" => Stmt::CondWrite {
                            modulus: kv("modulus")?,
                            threshold: kv("threshold")?,
                            cell: kv("cell")? as u64,
                            mul: kv("mul")?,
                        },
                        "redux" => Stmt::Redux {
                            mul: kv("mul")?,
                            add: kv("add")?,
                        },
                        "print" => Stmt::PrintExpr {
                            mul: kv("mul")?,
                            add: kv("add")?,
                        },
                        "shortlived" => Stmt::ShortLived {
                            leak_at: match kv("leak_at") {
                                Ok(at) => Some(at),
                                Err(_) if line.contains("leak_at=none") => None,
                                Err(e) => return Err(e),
                            },
                        },
                        "crossread" => Stmt::CrossIterRead {
                            at: kv("at")?,
                            offset: kv("offset")? as u64,
                        },
                        "predictfail" => Stmt::PredictFail { at: kv("at")? },
                        "wrongheap" => Stmt::WrongHeapCheck { at: kv("at")? },
                        "fault" => Stmt::GenuineFault { at: kv("at")? },
                        other => return Err(format!("unknown stmt kind {other:?}")),
                    };
                    spec.stmts.push(stmt);
                }
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if spec.iters < 1 || spec.cells == 0 || spec.pitch == 0 {
            return Err("iters, cells and pitch must be positive".to_string());
        }
        Ok(spec)
    }
}

fn parse_scalar(line: &str, fields: &[&str]) -> Result<i64, String> {
    fields
        .first()
        .ok_or_else(|| format!("missing value in: {line}"))?
        .parse()
        .map_err(|e| format!("bad value in {line:?}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for idx in 0..20 {
            assert_eq!(CaseSpec::generate(42, idx), CaseSpec::generate(42, idx));
        }
        let distinct: std::collections::HashSet<String> = (0..20)
            .map(|i| CaseSpec::generate(42, i).to_text())
            .collect();
        assert!(distinct.len() > 15, "cases should differ across indices");
    }

    #[test]
    fn text_roundtrip_preserves_every_generated_case() {
        for idx in 0..200 {
            let spec = CaseSpec::generate(7, idx);
            let back = CaseSpec::from_text(&spec.to_text()).unwrap();
            assert_eq!(spec, back, "roundtrip of case {idx}");
        }
    }

    #[test]
    fn every_generated_case_builds_a_verified_module() {
        for idx in 0..100 {
            CaseSpec::generate(3, idx).build_module();
        }
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(CaseSpec::from_text("nonsense").is_err());
        assert!(CaseSpec::from_text("privfuzz-case v1\nstmt warp x=1").is_err());
        assert!(CaseSpec::from_text("privfuzz-case v1\nstmt write stride=1").is_err());
        assert!(CaseSpec::from_text("privfuzz-case v1\ncells 0").is_err());
        let ok = CaseSpec::from_text(
            "privfuzz-case v1\n# comment\nname t\niters 9\nstmt shortlived leak_at=none\n",
        )
        .unwrap();
        assert_eq!(ok.iters, 9);
        assert_eq!(ok.stmts, vec![Stmt::ShortLived { leak_at: None }]);
    }
}
