#![warn(missing_docs)]
//! # privateer-fuzz
//!
//! Differential workload fuzzing for the Privateer speculative engine.
//!
//! The engine's contract (paper §4.2–§5) is *observational equivalence*:
//! a speculatively parallelized loop must be byte-identical to its
//! sequential execution — output, committed memory, and the verdict on
//! genuine program errors — at any worker count, any checkpoint period,
//! any merge-lane count, and under any interleaving. This crate turns
//! that contract into a generator-driven oracle:
//!
//! * [`gen`] — a seeded generator of random transformed IR loops
//!   (privatization writes and reads, branchy conditional writes,
//!   reductions, deferred I/O, pointer-chasing short-lived allocations,
//!   and deliberate misspeculation: cross-iteration reads, failing
//!   predictions, wrong-heap pointers, lifetime leaks, genuine faults),
//!   with a text repro format for replay;
//! * [`oracle`] — runs one case through the sequential baseline and the
//!   speculative engine across a worker × merge-lane config matrix, the
//!   [`ReferenceCheckpointMerge`](privateer_runtime::checkpoint::ReferenceCheckpointMerge)
//!   differential mode, and seeded
//!   [`VirtualScheduler`](privateer_runtime::VirtualScheduler)
//!   interleavings, asserting byte-identical output, identical
//!   trap decisions, and conserved `EngineStats`/telemetry invariants —
//!   plus automatic test-case shrinking on failure;
//! * [`trace`] — the shared trace/packaging strategies used by the
//!   runtime's checkpoint proptests and reusable from fuzz harnesses;
//! * [`rng`] — the deterministic `splitmix64` generator everything is
//!   seeded with (same seed ⇒ same cases ⇒ same verdicts).
//!
//! The `privfuzz` CLI in `privateer-bench` drives [`oracle::run_seeded`]
//! from the command line; `docs/testing.md` documents how to run and
//! replay repro files.

pub mod gen;
pub mod oracle;
pub mod rng;
pub mod trace;

pub use gen::{CaseSpec, Stmt};
pub use oracle::{run_seeded, shrink, CaseFailure, OracleConfig, RunSummary};
pub use rng::Rng;
