//! The differential oracle: one generated case, every execution mode,
//! byte-for-byte agreement.
//!
//! For a [`CaseSpec`] the oracle runs:
//!
//! 1. the sequential baseline ([`SequentialPlanRuntime`]);
//! 2. the speculative engine at every worker × merge-lane combination in
//!    the [`OracleConfig`] matrix;
//! 3. the engine in [`EngineConfig::reference_merge`] mode, pitting the
//!    dense phase-2 fast path against the simple per-address reference
//!    merge inside the full pipeline;
//! 4. seeded [`VirtualScheduler::random_arrivals`] runs, so
//!    contribution-arrival interleavings free-running spans rarely
//!    produce are explored deterministically.
//!
//! Every speculative run must match the baseline's `Result` (genuine
//! traps included) and output bytes, and must satisfy the engine's
//! internal conservation laws (`check_run`): telemetry counters agree
//! with `EngineStats`, events are well-ordered, committed checkpoint
//! ranges are disjoint and in-bounds, and on success the committed and
//! recovered ranges exactly cover the iteration space.
//!
//! On failure, [`shrink`] greedily minimizes the case (drop a statement,
//! halve the trip count, shrink the buffer) while the failure
//! reproduces, and [`run_seeded`] packages everything into a
//! [`RunSummary`] the `privfuzz` CLI and CI smoke tests consume.

use crate::gen::CaseSpec;
use privateer_ir::Module;
use privateer_runtime::{
    EngineConfig, EngineEvent, MainRuntime, SequentialPlanRuntime, VirtualScheduler,
};
use privateer_telemetry::Telemetry;
use privateer_vm::{load_module, Interp, NopHooks};
use std::sync::Arc;

/// The execution-mode matrix a case is checked against.
#[derive(Debug, Clone)]
pub struct OracleConfig {
    /// Worker counts to run the engine at (≥ 1 entry).
    pub workers: Vec<usize>,
    /// Merge-lane counts to cross with every worker count.
    pub lanes: Vec<usize>,
    /// Checkpoint period in iterations.
    pub checkpoint_period: u64,
    /// Number of seeded random-arrival scheduler runs per case.
    pub schedule_seeds: u64,
}

impl Default for OracleConfig {
    fn default() -> OracleConfig {
        OracleConfig {
            workers: vec![2, 5],
            lanes: vec![1, 4],
            checkpoint_period: 4,
            schedule_seeds: 2,
        }
    }
}

/// Why a case failed the oracle.
#[derive(Debug, Clone)]
pub struct CaseFailure {
    /// The execution mode that diverged (e.g. `"workers=2 lanes=4"`).
    pub mode: String,
    /// What diverged.
    pub detail: String,
}

impl std::fmt::Display for CaseFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.mode, self.detail)
    }
}

/// Per-case observations (for run statistics, not correctness).
#[derive(Debug, Clone, Copy, Default)]
pub struct CaseReport {
    /// Misspeculations observed in the first engine configuration.
    pub misspecs: u64,
    /// Whether the sequential baseline ended in a trap (genuine fault).
    pub seq_trapped: bool,
}

/// Outcome of a [`run_seeded`] campaign.
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Cases executed (including the failing one, if any).
    pub cases: u64,
    /// Cases in which at least one misspeculation occurred.
    pub cases_with_misspec: u64,
    /// Cases whose sequential baseline trapped (genuine faults).
    pub cases_trapped: u64,
    /// The first failure, already shrunk, if any case diverged.
    pub failure: Option<FailureReport>,
}

/// A failing case, before and after shrinking.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Index of the failing case within the seeded stream.
    pub index: u64,
    /// The original generated case.
    pub spec: CaseSpec,
    /// The minimized case (still failing).
    pub shrunk: CaseSpec,
    /// The shrunk case's failure.
    pub failure: CaseFailure,
}

/// One speculative engine run: outcome, output, and the runtime handle
/// for stats/events inspection.
struct EngineRun {
    result: String,
    ok: bool,
    out: Vec<u8>,
    rt: MainRuntime,
    tel: Telemetry,
}

fn engine_run(m: &Module, cfg: EngineConfig, sched: Option<Arc<VirtualScheduler>>) -> EngineRun {
    let image = load_module(m);
    let tel = Telemetry::disabled();
    let mut rt = MainRuntime::with_telemetry(&image, cfg, tel.clone());
    if let Some(s) = sched {
        rt.set_schedule(s);
    }
    let mut interp = Interp::new(m, &image, NopHooks, rt);
    let res = interp.run_main();
    EngineRun {
        result: format!("{res:?}"),
        ok: res.is_ok(),
        out: interp.rt.take_output(),
        rt: interp.rt,
        tel,
    }
}

fn sequential_run(m: &Module) -> (String, Vec<u8>) {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    let res = interp.run_main();
    (format!("{res:?}"), interp.rt.take_output())
}

/// The engine's internal conservation laws, checked on one run.
///
/// `n` is the loop trip count; `ok` whether the run succeeded (coverage
/// is only exact on success — a genuine trap legitimately leaves the
/// tail of the iteration space unexecuted).
fn check_run(run: &EngineRun, n: i64) -> Result<(), String> {
    let stats = &run.rt.stats;
    let events = &run.rt.events;

    for w in events.windows(2) {
        if w[0].seq >= w[1].seq {
            return Err(format!(
                "event stamps not strictly ordered: {} then {}",
                w[0].seq, w[1].seq
            ));
        }
    }
    match events.first().map(|s| &s.event) {
        Some(&EngineEvent::Invoke { lo: 0, hi }) if hi == n => {}
        other => {
            return Err(format!(
                "first event must be Invoke{{0,{n}}}, got {other:?}"
            ))
        }
    }
    if run.ok
        && !matches!(
            events.last().map(|s| &s.event),
            Some(EngineEvent::InvokeDone)
        )
    {
        return Err("successful run must end with InvokeDone".to_string());
    }

    let reg = run.tel.registry();
    for (counter, stat, name) in [
        (
            reg.counter("engine.invocations").get(),
            stats.invocations,
            "invocations",
        ),
        (
            reg.counter("engine.misspecs").get(),
            stats.misspecs,
            "misspecs",
        ),
        (
            reg.counter("engine.checkpoints").get(),
            stats.checkpoints,
            "checkpoints",
        ),
        (
            reg.counter("recovery.iters").get(),
            stats.recovered_iters,
            "recovered_iters",
        ),
        (
            reg.counter("checkpoint.contrib_pages").get(),
            stats.contrib_pages,
            "contrib_pages",
        ),
        (
            reg.counter("checkpoint.squashed_pages").get(),
            stats.squashed_pages_dropped,
            "squashed_pages",
        ),
        (
            reg.counter("priv.fast_words").get(),
            stats.priv_fast_words,
            "priv_fast_words",
        ),
        (
            reg.counter("priv.slow_bytes").get(),
            stats.priv_slow_bytes,
            "priv_slow_bytes",
        ),
    ] {
        if counter != stat {
            return Err(format!(
                "metric/stat disagreement for {name}: counter {counter} != stat {stat}"
            ));
        }
    }

    let mut detected = 0u64;
    let mut recovered = 0u64;
    let mut last_end = i64::MIN;
    let mut covered = vec![false; n.max(0) as usize];
    for s in events {
        match s.event {
            EngineEvent::MisspecDetected { .. } => detected += 1,
            EngineEvent::Recovery { from, through } => {
                if from > through || from < 0 || through >= n {
                    return Err(format!("recovery range {from}..={through} out of [0,{n})"));
                }
                recovered += (through - from + 1) as u64;
                for i in from..=through {
                    covered[i as usize] = true;
                }
            }
            EngineEvent::CheckpointCommitted { base, end, .. } => {
                if base < last_end || base >= end || base < 0 || end > n {
                    return Err(format!(
                        "committed range {base}..{end} overlaps or escapes [0,{n}) \
                         (previous end {last_end})"
                    ));
                }
                last_end = end;
                for i in base..end {
                    covered[i as usize] = true;
                }
            }
            _ => {}
        }
    }
    if detected > stats.misspecs {
        return Err(format!(
            "{detected} MisspecDetected events but only {} misspecs counted",
            stats.misspecs
        ));
    }
    if recovered != stats.recovered_iters {
        return Err(format!(
            "Recovery events cover {recovered} iters, stats say {}",
            stats.recovered_iters
        ));
    }
    if run.ok {
        if let Some(hole) = covered.iter().position(|&c| !c) {
            return Err(format!(
                "iteration {hole} neither committed by a checkpoint nor recovered"
            ));
        }
        if stats.iters_speculative + stats.recovered_iters < n as u64 {
            return Err(format!(
                "only {} speculative + {} recovered iterations for a {n}-iteration loop",
                stats.iters_speculative, stats.recovered_iters
            ));
        }
    }
    Ok(())
}

fn compare(
    mode: &str,
    run: &EngineRun,
    seq_result: &str,
    seq_out: &[u8],
    n: i64,
) -> Result<(), CaseFailure> {
    let fail = |detail: String| {
        Err(CaseFailure {
            mode: mode.to_string(),
            detail,
        })
    };
    if run.result != seq_result {
        return fail(format!(
            "result diverged: sequential {seq_result}, engine {}",
            run.result
        ));
    }
    if run.out != seq_out {
        return fail(format!(
            "output diverged: sequential {} bytes {:?}, engine {} bytes {:?}",
            seq_out.len(),
            String::from_utf8_lossy(seq_out),
            run.out.len(),
            String::from_utf8_lossy(&run.out)
        ));
    }
    if let Err(detail) = check_run(run, n) {
        return fail(format!("invariant violated: {detail}"));
    }
    Ok(())
}

/// Run one case through the full differential matrix.
pub fn check_case(spec: &CaseSpec, oc: &OracleConfig) -> Result<CaseReport, CaseFailure> {
    let m = spec.build_module();
    let n = spec.iters;
    let (seq_result, seq_out) = sequential_run(&m);
    let mut report = CaseReport {
        seq_trapped: !seq_result.starts_with("Ok"),
        ..CaseReport::default()
    };

    let base_cfg = |workers: usize, lanes: usize| EngineConfig {
        workers,
        checkpoint_period: oc.checkpoint_period,
        merge_lanes: lanes,
        inject_rate: 0.0,
        inject_seed: 0,
        inject_merge_fault: None,
        reference_merge: false,
    };

    let mut first = true;
    for &w in &oc.workers {
        for &l in &oc.lanes {
            let run = engine_run(&m, base_cfg(w, l), None);
            if first {
                report.misspecs = run.rt.stats.misspecs;
                first = false;
            }
            compare(
                &format!("workers={w} lanes={l}"),
                &run,
                &seq_result,
                &seq_out,
                n,
            )?;
        }
    }

    let w0 = oc.workers.first().copied().unwrap_or(2);
    let run = engine_run(
        &m,
        EngineConfig {
            reference_merge: true,
            ..base_cfg(w0, 1)
        },
        None,
    );
    compare("reference-merge", &run, &seq_result, &seq_out, n)?;

    let periods = (n as u64 + oc.checkpoint_period - 1) / oc.checkpoint_period.max(1);
    for s in 0..oc.schedule_seeds {
        let sched = VirtualScheduler::random_arrivals(w0, periods, s);
        let run = engine_run(&m, base_cfg(w0, 1), Some(Arc::clone(&sched)));
        let mode = format!("schedule-seed={s}");
        if sched.timeouts() != 0 {
            return Err(CaseFailure {
                mode,
                detail: format!(
                    "virtual scheduler forced {} gate(s) by timeout — inconsistent script",
                    sched.timeouts()
                ),
            });
        }
        compare(&mode, &run, &seq_result, &seq_out, n)?;
    }
    Ok(report)
}

/// Greedily minimize a failing case: try dropping each statement, then
/// halving the trip count, shrinking the buffer, and zeroing the
/// accumulator, keeping any change under which [`check_case`] still
/// fails, until a fixpoint (or an attempt budget) is reached.
pub fn shrink(spec: &CaseSpec, oc: &OracleConfig) -> CaseSpec {
    let mut cur = spec.clone();
    let mut budget = 200u32;
    'outer: loop {
        let mut candidates: Vec<CaseSpec> = Vec::new();
        for i in 0..cur.stmts.len() {
            let mut c = cur.clone();
            c.stmts.remove(i);
            candidates.push(c);
        }
        if cur.iters > 4 {
            let mut c = cur.clone();
            c.iters /= 2;
            candidates.push(c);
        }
        if cur.cells > 2 {
            let mut c = cur.clone();
            c.cells = 2;
            candidates.push(c);
        }
        if cur.pitch > 8 {
            let mut c = cur.clone();
            c.pitch = 8;
            candidates.push(c);
        }
        if cur.redux_init != 0 {
            let mut c = cur.clone();
            c.redux_init = 0;
            candidates.push(c);
        }
        for cand in candidates {
            if budget == 0 {
                return cur;
            }
            budget -= 1;
            if check_case(&cand, oc).is_err() {
                cur = cand;
                continue 'outer;
            }
        }
        return cur;
    }
}

/// Run `cases` generated cases from the stream seeded by `seed`,
/// stopping (and shrinking) at the first failure.
pub fn run_seeded(seed: u64, cases: u64, oc: &OracleConfig) -> RunSummary {
    let mut summary = RunSummary {
        cases: 0,
        cases_with_misspec: 0,
        cases_trapped: 0,
        failure: None,
    };
    for index in 0..cases {
        let spec = CaseSpec::generate(seed, index);
        summary.cases += 1;
        match check_case(&spec, oc) {
            Ok(report) => {
                if report.misspecs > 0 {
                    summary.cases_with_misspec += 1;
                }
                if report.seq_trapped {
                    summary.cases_trapped += 1;
                }
            }
            Err(_) => {
                let shrunk = shrink(&spec, oc);
                let failure = check_case(&shrunk, oc).expect_err("shrink preserves failure");
                summary.failure = Some(FailureReport {
                    index,
                    spec,
                    shrunk,
                    failure,
                });
                return summary;
            }
        }
    }
    summary
}
