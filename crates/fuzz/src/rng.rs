//! The deterministic generator behind every seeded decision in this
//! crate: `splitmix64`, the same chain the runtime's injection hooks and
//! the proptest shim use. No platform dependence, no global state — a
//! `(seed, case index)` pair always expands to the identical case.

/// A seeded `splitmix64` stream.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// A stream seeded with `seed` (any value, including 0, is fine).
    pub fn new(seed: u64) -> Rng {
        Rng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }

    /// Uniform draw in `lo..hi` (`hi > lo`).
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + self.below((hi - lo).max(1) as u64) as i64
    }

    /// True with probability `num/den`.
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::new(8);
        assert_ne!(Rng::new(7).next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_draws_stay_in_range() {
        let mut r = Rng::new(0);
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
            let v = r.range(-3, 12);
            assert!((-3..12).contains(&v));
        }
        assert!(Rng::new(1).chance(10, 10));
        assert!(!Rng::new(1).chance(0, 10));
    }
}
