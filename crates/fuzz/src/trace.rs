//! Shared trace/packaging strategies for checkpoint differential tests.
//!
//! The runtime's `proptest_checkpoint` and `proptest_sharded_merge`
//! suites replay the same kind of random multi-worker access trace
//! through different merge pipelines; this module is the single home of
//! that machinery — the [`Op`] trace strategy, the per-worker replay
//! state ([`TraceWorker`]), the deterministic order shuffle, and the
//! contribution-packaging helpers ([`ascending`], [`Packaging`],
//! [`sharded_merge_round`]) — parameterized by [`TraceParams`] so each
//! suite keeps its own trace shape and the fuzz harness can reuse them
//! against generated footprints.

use privateer_ir::Heap;
use privateer_runtime::checkpoint::{
    merge_lane, CheckpointMerge, Contribution, DeltaTracker, LaneTrap,
};
use privateer_runtime::shadow;
use privateer_runtime::worker::WorkerRuntime;
use privateer_vm::{AddressSpace, RuntimeIface, Trap};
use proptest::prelude::*;

/// The shape of a generated trace: worker count, checkpoint periods,
/// iterations per period, and the footprint anchor offsets accesses pick
/// from (relative to the trace's base address).
#[derive(Debug, Clone, Copy)]
pub struct TraceParams {
    /// Workers replaying the trace.
    pub workers: usize,
    /// Checkpoint periods simulated.
    pub periods: u64,
    /// Iterations per checkpoint period.
    pub k: u64,
    /// Footprint anchors (byte offsets from the trace base).
    pub slots: &'static [u64],
}

/// One private-heap access of a generated trace.
#[derive(Debug, Clone)]
pub struct Op {
    /// Worker performing the access.
    pub worker: usize,
    /// Checkpoint period it falls in.
    pub period: u64,
    /// Position within the period; the op runs at iteration
    /// `period·k + pos·workers + worker`.
    pub pos: u64,
    /// Index into [`TraceParams::slots`].
    pub slot: usize,
    /// Access size in bytes (1..=8).
    pub size: u64,
    /// Write (`true`) or read (`false`).
    pub is_write: bool,
    /// Fill byte for writes.
    pub val: u8,
}

/// Strategy for one [`Op`] of a `params`-shaped trace.
pub fn op_strategy(params: TraceParams) -> impl Strategy<Value = Op> {
    (
        0..params.workers,
        0..params.periods,
        0..params.k / params.workers as u64,
        0..params.slots.len(),
        1u64..=8,
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(worker, period, pos, slot, size, is_write, val)| Op {
            worker,
            period,
            pos,
            slot,
            size,
            is_write,
            val,
        })
}

/// One worker's state across a simulated span: its runtime, private
/// address space, delta tracker, and current iteration.
pub struct TraceWorker {
    /// The worker's speculative runtime (phase-1 checks).
    pub rt: WorkerRuntime,
    /// The worker's forked address space.
    pub mem: AddressSpace,
    /// Delta-contribution tracker.
    pub tracker: DeltaTracker,
    /// Iteration currently being replayed (`-1` before the first op).
    pub cur_iter: i64,
}

impl TraceWorker {
    /// Fresh state for worker `w`, packaging contributions pre-bucketed
    /// for `bucket_lanes` merge lanes (1 = the unbucketed canonical
    /// form).
    pub fn fresh(w: usize, bucket_lanes: usize) -> TraceWorker {
        TraceWorker {
            rt: WorkerRuntime::new(w, 0.0, 0),
            mem: AddressSpace::new(),
            tracker: DeltaTracker::with_lanes(bucket_lanes),
            cur_iter: -1,
        }
    }

    /// Replay one op at `base`: advance to the op's iteration if needed,
    /// then perform the checked access. A phase-1 trap squashes the
    /// access; partial shadow marks it already made are legitimate merge
    /// input.
    pub fn apply(&mut self, op: &Op, params: TraceParams, base: u64) {
        let iter =
            (op.period * params.k + op.pos * params.workers as u64) as i64 + op.worker as i64;
        if iter != self.cur_iter {
            self.cur_iter = iter;
            self.rt
                .begin_iteration(iter, (iter as u64) % params.k)
                .unwrap();
        }
        let addr = base + params.slots[op.slot];
        if op.is_write {
            if self.rt.private_write(addr, op.size, &mut self.mem).is_ok() {
                self.mem.fill(addr, op.size, op.val);
            }
        } else {
            let _ = self.rt.private_read(addr, op.size, &mut self.mem);
        }
    }
}

/// A deterministic seeded shuffle of `0..n` (trap choice is
/// order-dependent, so differential pipelines must share one order — but
/// any order must agree).
pub fn shuffled_order(n: usize, seed: u64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..n).collect();
    let mut s = seed;
    for i in (1..n).rev() {
        s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
        order.swap(i, (s % (i as u64 + 1)) as usize);
    }
    order
}

/// The private heap's address range, for committed-state comparisons.
pub fn priv_range() -> (u64, u64) {
    let lo = Heap::Private.base();
    (lo, lo + privateer_runtime::heaps::HEAP_SPAN)
}

/// Pages of a contribution that actually carry phase-2 content (any
/// shadow byte above old-write).
pub fn touched_shadow_pages(c: &Contribution) -> Vec<u64> {
    c.shadow_pages
        .iter()
        .filter(|(_, p)| p.iter().any(|&b| b > shadow::OLD_WRITE))
        .map(|&(base, _)| base)
        .collect()
}

/// The canonical (single-lane) packaging of a contribution: pages in
/// ascending base order, one bucket — what a `merge_lanes = 1` worker
/// would have shipped.
pub fn ascending(c: &Contribution) -> Contribution {
    let mut c = c.clone();
    c.shadow_pages.sort_by_key(|&(b, _)| b);
    c.priv_pages.sort_by_key(|&(b, _)| b);
    c.shadow_lane_starts = vec![0, c.shadow_pages.len()];
    c.priv_lane_starts = vec![0, c.priv_pages.len()];
    c
}

/// How a sharded pipeline's contributions get their lane buckets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Packaging {
    /// The worker's tracker bucketed for the merge's lane count.
    Prebucketed,
    /// Packaged unbucketed, re-bucketed via [`Contribution::rebucket`].
    Rebucketed,
    /// Bucketed for a *different* lane count: the merge must fall back
    /// to filtering pages on the fly.
    Mismatched,
}

/// The engine's coordinator rule: merge every lane to completion, then
/// the globally-first trap is the minimal (contribution index, byte
/// address) key across lanes.
pub fn sharded_merge_round(
    contribs: &[Contribution],
    lanes: usize,
    committed: &AddressSpace,
) -> Result<Vec<CheckpointMerge>, Trap> {
    let mut merges = Vec::new();
    let mut first: Option<((usize, u64), LaneTrap)> = None;
    for lane in 0..lanes {
        let mut merge = CheckpointMerge::new(0);
        if let Err((idx, lt)) = merge_lane(&mut merge, contribs, lane, lanes, committed) {
            let key = (idx, lt.addr);
            if first.as_ref().is_none_or(|(k, _)| key < *k) {
                first = Some((key, lt));
            }
        }
        merges.push(merge);
    }
    match first {
        Some((_, lt)) => Err(lt.trap),
        None => Ok(merges),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::test_runner::TestRng;

    const P: TraceParams = TraceParams {
        workers: 4,
        periods: 3,
        k: 16,
        slots: &[0xff0, 0x1002, 0x10, 0x2040],
    };

    #[test]
    fn op_strategy_respects_params() {
        let strat = op_strategy(P);
        let mut rng = TestRng::new(99);
        for _ in 0..200 {
            let op = strat.generate(&mut rng);
            assert!(op.worker < P.workers);
            assert!(op.period < P.periods);
            assert!(op.pos < P.k / P.workers as u64);
            assert!(op.slot < P.slots.len());
            assert!((1..=8).contains(&op.size));
        }
    }

    #[test]
    fn shuffled_order_is_a_seeded_permutation() {
        for seed in 0..8u64 {
            let a = shuffled_order(7, seed);
            assert_eq!(a, shuffled_order(7, seed));
            let mut sorted = a.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..7).collect::<Vec<_>>());
        }
        assert_ne!(shuffled_order(7, 1), shuffled_order(7, 2));
    }

    #[test]
    fn ascending_canonicalizes_buckets() {
        let mut w = TraceWorker::fresh(0, 4);
        w.rt.begin_iteration(0, 0).unwrap();
        let base = Heap::Private.base() + 0x4000;
        for off in [0x3000u64, 0x10, 0x1002] {
            w.rt.private_write(base + off, 8, &mut w.mem).unwrap();
            w.mem.fill(base + off, 8, 7);
        }
        let c = w.tracker.collect(0, 0, &mut w.mem, &[], vec![]);
        let a = ascending(&c);
        assert_eq!(a.shadow_lane_starts, vec![0, a.shadow_pages.len()]);
        assert!(a.shadow_pages.windows(2).all(|p| p[0].0 < p[1].0));
        assert!(a.priv_pages.windows(2).all(|p| p[0].0 < p[1].0));
    }
}
