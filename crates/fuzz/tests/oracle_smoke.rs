//! Tier-1 smoke coverage for the differential oracle: a seeded batch of
//! generated cases must pass the full execution-mode matrix, the stream
//! must be interesting (misspeculations and genuine traps both occur),
//! and the campaign must be reproducible seed-for-seed.
//!
//! The CI `fuzz-smoke` job and the manual extended budget run the same
//! oracle through the `privfuzz` binary with larger case counts.

use privateer_fuzz::{run_seeded, CaseSpec, OracleConfig};

const SEED: u64 = 0xC0FFEE;
const CASES: u64 = 40;

#[test]
fn seeded_batch_passes_the_differential_oracle() {
    let summary = run_seeded(SEED, CASES, &OracleConfig::default());
    if let Some(f) = &summary.failure {
        panic!(
            "case {} failed: {}\nshrunk repro:\n{}",
            f.index,
            f.failure,
            f.shrunk.to_text()
        );
    }
    assert_eq!(summary.cases, CASES);
    assert!(
        summary.cases_with_misspec > 0,
        "a {CASES}-case batch should provoke at least one misspeculation"
    );
}

#[test]
fn campaign_is_reproducible() {
    let oc = OracleConfig {
        schedule_seeds: 1,
        ..OracleConfig::default()
    };
    let a = run_seeded(7, 10, &oc);
    let b = run_seeded(7, 10, &oc);
    assert_eq!(a.cases, b.cases);
    assert_eq!(a.cases_with_misspec, b.cases_with_misspec);
    assert_eq!(a.cases_trapped, b.cases_trapped);
    assert!(a.failure.is_none() && b.failure.is_none());
}

#[test]
fn genuine_faults_verdict_matches_sequential() {
    // A hand-written case with a genuine division-by-zero: the oracle
    // accepts it because sequential and speculative agree on the trap
    // and on the partial output.
    let spec = CaseSpec::from_text(
        "privfuzz-case v1\n\
         name fault-repro\n\
         iters 24\n\
         cells 4\n\
         stmt write stride=1 add=0 mul=3\n\
         stmt print mul=2 add=1\n\
         stmt fault at=17\n",
    )
    .unwrap();
    privateer_fuzz::oracle::check_case(&spec, &OracleConfig::default())
        .expect("identical genuine faults must pass the oracle");
}

#[test]
fn deliberate_misspeculation_patterns_pass() {
    for stmt in [
        "stmt crossread at=9 offset=2",
        "stmt predictfail at=11",
        "stmt wrongheap at=6",
        "stmt shortlived leak_at=13",
    ] {
        let spec = CaseSpec::from_text(&format!(
            "privfuzz-case v1\n\
             name misspec-repro\n\
             iters 20\n\
             cells 5\n\
             stmt write stride=1 add=1 mul=7\n\
             stmt read stride=1 add=1\n\
             stmt redux mul=2 add=-1\n\
             {stmt}\n"
        ))
        .unwrap();
        let report = privateer_fuzz::oracle::check_case(&spec, &OracleConfig::default())
            .unwrap_or_else(|f| panic!("{stmt}: {f}"));
        assert!(report.misspecs > 0, "{stmt} should misspeculate");
    }
}
