//! Static memory analyses.
//!
//! These power the *non-speculative* baseline (the paper's "DOALL-only"
//! configuration, Figure 7) and let the Privateer transformation elide
//! checks it can prove at compile time (§4.5).

pub mod affine;
pub mod pointsto;

pub use affine::{AffineAddr, AffineBase};
pub use pointsto::{AbstractObject, PointsTo};
