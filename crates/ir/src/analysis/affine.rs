//! Affine (linear) address expressions relative to a loop induction
//! variable.
//!
//! The classic array-dependence machinery (ZIV/strong-SIV subscript tests)
//! needs addresses of the form `base + a·iv + Σ cᵢ·symᵢ + k` where the
//! `symᵢ` are loop-invariant. This module recovers that form from GEP
//! chains. It powers the non-speculative DOALL baseline and, within
//! Privateer, the elision of provably redundant separation checks.

use crate::func::{BlockId, Function, InstId};
use crate::inst::{BinOp, CastOp, InstKind};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// The root of an address expression: a pointer not produced by address
/// arithmetic inside the loop.
pub type AffineBase = Value;

/// A linear integer expression `iv_coeff·iv + Σ coeff·sym + konst`, with all
/// `sym` loop-invariant.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct LinExpr {
    /// Coefficient of the loop induction variable.
    pub iv_coeff: i64,
    /// Constant term.
    pub konst: i64,
    /// Loop-invariant symbolic terms and their coefficients.
    pub syms: BTreeMap<Value, i64>,
}

impl LinExpr {
    fn constant(k: i64) -> LinExpr {
        LinExpr {
            konst: k,
            ..LinExpr::default()
        }
    }

    fn sym(v: Value) -> LinExpr {
        let mut syms = BTreeMap::new();
        syms.insert(v, 1);
        LinExpr {
            syms,
            ..LinExpr::default()
        }
    }

    fn iv() -> LinExpr {
        LinExpr {
            iv_coeff: 1,
            ..LinExpr::default()
        }
    }

    fn add(mut self, other: &LinExpr) -> LinExpr {
        self.iv_coeff += other.iv_coeff;
        self.konst += other.konst;
        for (&s, &c) in &other.syms {
            let e = self.syms.entry(s).or_insert(0);
            *e += c;
            if *e == 0 {
                self.syms.remove(&s);
            }
        }
        self
    }

    fn neg(mut self) -> LinExpr {
        self.iv_coeff = -self.iv_coeff;
        self.konst = -self.konst;
        for c in self.syms.values_mut() {
            *c = -*c;
        }
        self
    }

    fn scale(mut self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::default();
        }
        self.iv_coeff *= k;
        self.konst *= k;
        for c in self.syms.values_mut() {
            *c *= k;
        }
        self
    }

    /// Whether the symbolic parts (everything except the constant) of the
    /// two expressions are identical.
    pub fn same_shape(&self, other: &LinExpr) -> bool {
        self.iv_coeff == other.iv_coeff && self.syms == other.syms
    }
}

/// An address decomposed as `base + lin`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AffineAddr {
    /// The root pointer (loop-invariant or a fixed object address).
    pub base: AffineBase,
    /// The linear byte offset from `base`.
    pub lin: LinExpr,
}

/// Context for affine analysis: the loop body and its induction variable.
#[derive(Debug, Clone)]
pub struct AffineCtx<'a> {
    /// Function being analyzed.
    pub func: &'a Function,
    /// Blocks of the loop.
    pub loop_blocks: &'a BTreeSet<BlockId>,
    /// The induction-variable phi.
    pub iv: InstId,
}

impl AffineCtx<'_> {
    fn defined_in_loop(&self, v: Value) -> bool {
        match v {
            Value::Inst(i) => self
                .func
                .block_of(i)
                .is_some_and(|bb| self.loop_blocks.contains(&bb)),
            _ => false,
        }
    }

    /// Decompose an integer value into a linear expression in the induction
    /// variable, if possible.
    pub fn linearize(&self, v: Value) -> Option<LinExpr> {
        self.linearize_depth(v, 0)
    }

    fn linearize_depth(&self, v: Value, depth: u32) -> Option<LinExpr> {
        if depth > 32 {
            return None;
        }
        if let Value::ConstInt(k, _) = v {
            return Some(LinExpr::constant(k));
        }
        if v == Value::Inst(self.iv) {
            return Some(LinExpr::iv());
        }
        if !self.defined_in_loop(v) {
            // Loop-invariant: a symbol.
            return Some(LinExpr::sym(v));
        }
        let Value::Inst(id) = v else { return None };
        match &self.func.inst(id).kind {
            InstKind::Bin(BinOp::Add, a, b) => {
                let a = self.linearize_depth(*a, depth + 1)?;
                let b = self.linearize_depth(*b, depth + 1)?;
                Some(a.add(&b))
            }
            InstKind::Bin(BinOp::Sub, a, b) => {
                let a = self.linearize_depth(*a, depth + 1)?;
                let b = self.linearize_depth(*b, depth + 1)?;
                Some(a.add(&b.neg()))
            }
            InstKind::Bin(BinOp::Mul, a, b) => {
                let la = self.linearize_depth(*a, depth + 1)?;
                let lb = self.linearize_depth(*b, depth + 1)?;
                if let Value::ConstInt(k, _) = *b {
                    return Some(la.scale(k));
                }
                if let Value::ConstInt(k, _) = *a {
                    return Some(lb.scale(k));
                }
                None
            }
            // Width changes are treated as the identity; the baseline
            // accepts the (documented) assumption that subscripts do not
            // wrap.
            InstKind::Cast(CastOp::Sext | CastOp::Zext | CastOp::Trunc, x, _) => {
                self.linearize_depth(*x, depth + 1)
            }
            _ => None,
        }
    }

    /// Decompose a pointer value into base + linear offset, if possible.
    pub fn affine_addr(&self, ptr: Value) -> Option<AffineAddr> {
        self.affine_addr_depth(ptr, 0)
    }

    fn affine_addr_depth(&self, ptr: Value, depth: u32) -> Option<AffineAddr> {
        if depth > 32 {
            return None;
        }
        if !self.defined_in_loop(ptr) {
            return Some(AffineAddr {
                base: ptr,
                lin: LinExpr::default(),
            });
        }
        let Value::Inst(id) = ptr else {
            return Some(AffineAddr {
                base: ptr,
                lin: LinExpr::default(),
            });
        };
        match &self.func.inst(id).kind {
            InstKind::Gep {
                base,
                index,
                scale,
                disp,
            } => {
                let inner = self.affine_addr_depth(*base, depth + 1)?;
                let idx = self.linearize_depth(*index, depth + 1)?;
                let lin = inner
                    .lin
                    .add(&idx.scale(*scale as i64))
                    .add(&LinExpr::constant(*disp));
                Some(AffineAddr {
                    base: inner.base,
                    lin,
                })
            }
            _ => None,
        }
    }
}

/// Result of a cross-iteration overlap test between two affine accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepTest {
    /// Provably no overlap between *different* iterations.
    NoCrossIterationDep,
    /// Overlap between different iterations is possible (or unprovable).
    MayDep,
}

/// Strong-SIV style test: can accesses `a` (of `a_size` bytes) and `b` (of
/// `b_size` bytes) with the same base touch a common byte in *different*
/// iterations?
///
/// Requires both linear forms to have identical symbolic parts. The test is
/// conservative: any doubt answers [`DepTest::MayDep`].
pub fn cross_iteration_test(a: &LinExpr, a_size: u32, b: &LinExpr, b_size: u32) -> DepTest {
    if !a.same_shape(b) {
        // Differing symbolic coefficients — can't reason.
        return DepTest::MayDep;
    }
    let coeff = a.iv_coeff;
    if coeff == 0 {
        // Same (symbolic) address in every iteration: if the ranges overlap
        // at all, they overlap across iterations.
        let delta = (b.konst - a.konst).unsigned_abs();
        let reach = if b.konst >= a.konst { a_size } else { b_size };
        return if delta < reach as u64 {
            DepTest::MayDep
        } else {
            DepTest::NoCrossIterationDep
        };
    }
    // Access in iteration i: [base + coeff·i + k, +size). For iterations
    // i ≠ j, the byte ranges are disjoint when |coeff·(i−j) + (k_b−k_a)|
    // ≥ max reach, which holds for all i ≠ j when the stride dominates the
    // footprint: |coeff| ≥ offset-spread + max size.
    let spread = (a.konst - b.konst).unsigned_abs();
    let max_size = a_size.max(b_size) as u64;
    if coeff.unsigned_abs() >= spread + max_size {
        DepTest::NoCrossIterationDep
    } else {
        DepTest::MayDep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::cfg::Cfg;
    use crate::dom::DomTree;
    use crate::inst::CmpOp;
    use crate::loops::LoopInfo;
    use crate::types::Type;

    /// Build `for i in 0..n { a[i] = a[i] + t[k] }` and return the pieces.
    fn build() -> (Function, InstId, BTreeSet<BlockId>, Value, Value) {
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr, Type::I64, Type::I64], None);
        let arr = b.param(0);
        let n = b.param(1);
        let k = b.param(2);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let ai = b.gep(arr, i, 8, 0);
        let off = b.gep(arr, k, 8, 16);
        let v = b.load(Type::I64, ai);
        b.store(Type::I64, v, ai);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let li = LoopInfo::new(&f, &cfg, &dom);
        let (_, l) = li.iter().next().unwrap();
        (f.clone(), i_phi, l.blocks.clone(), ai, off)
    }

    #[test]
    fn gep_of_iv_is_affine() {
        let (f, iv, blocks, ai, _) = build();
        let ctx = AffineCtx {
            func: &f,
            loop_blocks: &blocks,
            iv,
        };
        let a = ctx.affine_addr(ai).unwrap();
        assert_eq!(a.base, Value::Param(0));
        assert_eq!(a.lin.iv_coeff, 8);
        assert_eq!(a.lin.konst, 0);
        assert!(a.lin.syms.is_empty());
    }

    #[test]
    fn symbolic_offset_kept() {
        let (f, iv, blocks, _, off) = build();
        let ctx = AffineCtx {
            func: &f,
            loop_blocks: &blocks,
            iv,
        };
        let a = ctx.affine_addr(off).unwrap();
        assert_eq!(a.lin.iv_coeff, 0);
        assert_eq!(a.lin.konst, 16);
        assert_eq!(a.lin.syms.get(&Value::Param(2)), Some(&8));
    }

    #[test]
    fn strong_siv_no_dep() {
        // a[i] vs a[i]: 8-byte stride, 8-byte access -> no cross-iter dep.
        let e = LinExpr {
            iv_coeff: 8,
            konst: 0,
            syms: BTreeMap::new(),
        };
        assert_eq!(
            cross_iteration_test(&e, 8, &e, 8),
            DepTest::NoCrossIterationDep
        );
    }

    #[test]
    fn overlapping_window_dep() {
        // a[i] vs a[i+1] (same coeff, offsets differ by one element):
        // iteration i writes what iteration i+1 reads.
        let w = LinExpr {
            iv_coeff: 8,
            konst: 0,
            syms: BTreeMap::new(),
        };
        let r = LinExpr {
            iv_coeff: 8,
            konst: 8,
            syms: BTreeMap::new(),
        };
        assert_eq!(cross_iteration_test(&w, 8, &r, 8), DepTest::MayDep);
    }

    #[test]
    fn loop_invariant_address_dep() {
        let e = LinExpr::constant(0);
        assert_eq!(cross_iteration_test(&e, 8, &e, 8), DepTest::MayDep);
        let far = LinExpr::constant(64);
        assert_eq!(
            cross_iteration_test(&e, 8, &far, 8),
            DepTest::NoCrossIterationDep
        );
    }

    #[test]
    fn mismatched_symbols_are_may_dep() {
        let mut a = LinExpr::constant(0);
        a.syms.insert(Value::Param(1), 4);
        let b = LinExpr::constant(0);
        assert_eq!(cross_iteration_test(&a, 4, &b, 4), DepTest::MayDep);
    }

    #[test]
    fn linexpr_algebra() {
        let a = LinExpr::iv().scale(4).add(&LinExpr::constant(12));
        assert_eq!(a.iv_coeff, 4);
        assert_eq!(a.konst, 12);
        let b = a.clone().add(&a.clone().neg());
        assert_eq!(b, LinExpr::default());
    }
}
