//! Flow-insensitive, field-insensitive, inclusion-based points-to analysis
//! (Andersen-style), whole-module.
//!
//! This is deliberately a *weak* analysis: the paper's central claim is that
//! static analysis alone cannot determine memory layout for programs with
//! pointers and dynamic allocation (§1, Table 1), so the non-speculative
//! baseline must live with results of roughly this strength.

use crate::func::{FuncId, InstId};
use crate::inst::{CastOp, InstKind, Intrinsic};
use crate::module::{GlobalId, Module};
use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet};

/// A static name for a set of runtime memory objects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbstractObject {
    /// A module-level global variable.
    Global(GlobalId),
    /// All objects allocated by one static allocation site.
    Site(FuncId, InstId),
}

/// A points-to set: either a finite set of abstract objects, or "anything"
/// (after an `inttoptr` whose source the analysis cannot trace).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PtSet {
    /// `true` means the pointer may reference any object.
    pub unknown: bool,
    /// Known possible targets.
    pub objects: BTreeSet<AbstractObject>,
}

impl PtSet {
    fn union_from(&mut self, other: &PtSet) -> bool {
        let mut changed = false;
        if other.unknown && !self.unknown {
            self.unknown = true;
            changed = true;
        }
        for &o in &other.objects {
            changed |= self.objects.insert(o);
        }
        changed
    }

    /// Whether the two sets may share an object.
    pub fn may_overlap(&self, other: &PtSet) -> bool {
        if self.unknown || other.unknown {
            return true;
        }
        self.objects.intersection(&other.objects).next().is_some()
    }
}

/// An SSA pointer variable, module-wide.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
enum Var {
    Inst(FuncId, InstId),
    Param(FuncId, u32),
    Ret(FuncId),
}

/// The result of the analysis: query points-to sets of pointers.
#[derive(Debug, Clone)]
pub struct PointsTo {
    vars: BTreeMap<Var, PtSet>,
    heap: BTreeMap<AbstractObject, PtSet>,
    all_objects: BTreeSet<AbstractObject>,
}

impl PointsTo {
    /// Run the analysis on `module`.
    pub fn analyze(module: &Module) -> PointsTo {
        let mut a = PointsTo {
            vars: BTreeMap::new(),
            heap: BTreeMap::new(),
            all_objects: BTreeSet::new(),
        };
        for g in module.global_ids() {
            a.all_objects.insert(AbstractObject::Global(g));
        }
        for f in module.func_ids() {
            for (i, inst) in module.func(f).insts.iter().enumerate() {
                if inst.is_allocation() {
                    a.all_objects
                        .insert(AbstractObject::Site(f, InstId::new(i)));
                }
            }
        }

        // Iterate constraint application to a fixpoint.
        let mut changed = true;
        while changed {
            changed = false;
            for f in module.func_ids() {
                let func = module.func(f);
                for (idx, inst) in func.insts.iter().enumerate() {
                    let id = InstId::new(idx);
                    let target = Var::Inst(f, id);
                    match &inst.kind {
                        InstKind::Alloca { .. } | InstKind::Malloc(_) => {
                            changed |= a.add_object(target, AbstractObject::Site(f, id));
                        }
                        InstKind::CallIntrinsic(Intrinsic::HAlloc(_), _) => {
                            changed |= a.add_object(target, AbstractObject::Site(f, id));
                        }
                        InstKind::Gep { base, .. } => {
                            changed |= a.flow_value(f, *base, target);
                        }
                        InstKind::Cast(op, v, _) => match op {
                            CastOp::IntToPtr => changed |= a.set_unknown(target),
                            CastOp::PtrToInt | CastOp::Bitcast => {
                                changed |= a.flow_value(f, *v, target)
                            }
                            _ => {}
                        },
                        InstKind::Phi(_, incoming) => {
                            for (_, v) in incoming {
                                changed |= a.flow_value(f, *v, target);
                            }
                        }
                        InstKind::Select(_, _, t, e) => {
                            changed |= a.flow_value(f, *t, target);
                            changed |= a.flow_value(f, *e, target);
                        }
                        InstKind::Load(_, addr) => {
                            // result ⊇ ⋃ heap(o) for o in pts(addr)
                            let addr_set = a.value_set(f, *addr);
                            let mut acc = PtSet::default();
                            if addr_set.unknown {
                                acc.unknown = true;
                            }
                            for o in &addr_set.objects {
                                if let Some(h) = a.heap.get(o) {
                                    acc.union_from(&h.clone());
                                }
                            }
                            changed |= a.var_union(target, &acc);
                        }
                        InstKind::Store(_, val, addr) => {
                            let val_set = a.value_set(f, *val);
                            let addr_set = a.value_set(f, *addr);
                            if addr_set.unknown {
                                // A store through an unknown pointer may hit
                                // any object.
                                for o in a.all_objects.clone() {
                                    changed |= a.heap_union(o, &val_set);
                                }
                            }
                            for o in addr_set.objects.clone() {
                                changed |= a.heap_union(o, &val_set);
                            }
                        }
                        InstKind::Call(callee, args) => {
                            for (n, &arg) in args.iter().enumerate() {
                                changed |= a.flow_value(f, arg, Var::Param(*callee, n as u32));
                            }
                            let ret = a.vars.get(&Var::Ret(*callee)).cloned().unwrap_or_default();
                            changed |= a.var_union(target, &ret);
                        }
                        _ => {}
                    }
                }
                // Returned pointers flow into Ret(f).
                for bb in func.block_ids() {
                    if let crate::inst::Term::Ret(Some(v)) = func.block(bb).term {
                        changed |= a.flow_value(f, v, Var::Ret(f));
                    }
                }
            }
        }
        a
    }

    fn add_object(&mut self, var: Var, obj: AbstractObject) -> bool {
        self.vars.entry(var).or_default().objects.insert(obj)
    }

    fn set_unknown(&mut self, var: Var) -> bool {
        let e = self.vars.entry(var).or_default();
        if e.unknown {
            false
        } else {
            e.unknown = true;
            true
        }
    }

    fn var_union(&mut self, var: Var, set: &PtSet) -> bool {
        self.vars.entry(var).or_default().union_from(set)
    }

    fn heap_union(&mut self, obj: AbstractObject, set: &PtSet) -> bool {
        self.heap.entry(obj).or_default().union_from(set)
    }

    fn flow_value(&mut self, f: FuncId, v: Value, target: Var) -> bool {
        let set = self.value_set(f, v);
        self.var_union(target, &set)
    }

    fn value_set(&self, f: FuncId, v: Value) -> PtSet {
        match v {
            Value::Global(g) => PtSet {
                unknown: false,
                objects: BTreeSet::from([AbstractObject::Global(g)]),
            },
            Value::Inst(i) => self.vars.get(&Var::Inst(f, i)).cloned().unwrap_or_default(),
            Value::Param(n) => self
                .vars
                .get(&Var::Param(f, n))
                .cloned()
                .unwrap_or_default(),
            Value::ConstInt(..) | Value::ConstF64(_) | Value::Null => PtSet::default(),
        }
    }

    /// The points-to set of `v` evaluated in function `f`.
    pub fn points_to(&self, f: FuncId, v: Value) -> PtSet {
        self.value_set(f, v)
    }

    /// Whether two pointer values may alias (may reference a common object).
    pub fn may_alias(&self, f: FuncId, a: Value, b: Value) -> bool {
        self.points_to(f, a).may_overlap(&self.points_to(f, b))
    }

    /// Every abstract object in the module.
    pub fn all_objects(&self) -> &BTreeSet<AbstractObject> {
        &self.all_objects
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;

    #[test]
    fn distinct_mallocs_do_not_alias() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(8));
        let q = b.malloc(Value::const_i64(8));
        b.store(Type::I64, Value::const_i64(1), p);
        b.store(Type::I64, Value::const_i64(2), q);
        b.ret(None);
        let f = m.add_function(b.finish());
        let pts = PointsTo::analyze(&m);
        assert!(!pts.may_alias(f, p, q));
        assert!(pts.may_alias(f, p, p));
    }

    #[test]
    fn phi_merges_targets() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I64], None);
        let p = b.malloc(Value::const_i64(8));
        let q = b.malloc(Value::const_i64(8));
        let t = b.new_block();
        let e = b.new_block();
        let j = b.new_block();
        let c = b.icmp(crate::inst::CmpOp::Lt, b.param(0), Value::const_i64(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(j);
        b.switch_to(e);
        b.br(j);
        b.switch_to(j);
        let (r, phi) = b.phi(Type::Ptr);
        b.add_phi_incoming(phi, t, p);
        b.add_phi_incoming(phi, e, q);
        b.store(Type::I64, Value::const_i64(0), r);
        b.ret(None);
        let f = m.add_function(b.finish());
        let pts = PointsTo::analyze(&m);
        assert!(pts.may_alias(f, r, p));
        assert!(pts.may_alias(f, r, q));
    }

    #[test]
    fn heap_indirection_tracked() {
        // store p into *cell; load *cell must alias p.
        let mut m = Module::new("t");
        let cell = m.add_global("cell", 8);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(8));
        b.store(Type::Ptr, p, Value::Global(cell));
        let r = b.load(Type::Ptr, Value::Global(cell));
        b.store(Type::I64, Value::const_i64(0), r);
        b.ret(None);
        let f = m.add_function(b.finish());
        let pts = PointsTo::analyze(&m);
        assert!(pts.may_alias(f, r, p));
        assert!(!pts.may_alias(f, r, Value::Global(cell)));
    }

    #[test]
    fn inttoptr_is_unknown() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I64], None);
        let p = b.cast(crate::inst::CastOp::IntToPtr, b.param(0), Type::Ptr);
        let q = b.malloc(Value::const_i64(8));
        b.store(Type::I64, Value::const_i64(0), p);
        b.store(Type::I64, Value::const_i64(0), q);
        b.ret(None);
        let f = m.add_function(b.finish());
        let pts = PointsTo::analyze(&m);
        assert!(pts.points_to(f, p).unknown);
        assert!(pts.may_alias(f, p, q));
    }

    #[test]
    fn interprocedural_param_and_ret() {
        let mut m = Module::new("t");
        // id(ptr) -> ptr
        let mut idb = FunctionBuilder::new("id", vec![Type::Ptr], Some(Type::Ptr));
        let arg = idb.param(0);
        idb.ret(Some(arg));
        let id = m.add_function(idb.finish());

        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(8));
        let q = b.call(id, vec![p], Some(Type::Ptr)).unwrap();
        let other = b.malloc(Value::const_i64(8));
        b.store(Type::I64, Value::const_i64(0), q);
        b.store(Type::I64, Value::const_i64(0), other);
        b.ret(None);
        let f = m.add_function(b.finish());
        let pts = PointsTo::analyze(&m);
        assert!(pts.may_alias(f, q, p));
        assert!(!pts.may_alias(f, q, other));
    }

    #[test]
    fn gep_preserves_target() {
        let mut m = Module::new("t");
        let g = m.add_global("arr", 400);
        let mut b = FunctionBuilder::new("main", vec![Type::I64], None);
        let e = b.gep(Value::Global(g), b.param(0), 4, 0);
        b.store(Type::I32, Value::const_i32(1), e);
        b.ret(None);
        let f = m.add_function(b.finish());
        let pts = PointsTo::analyze(&m);
        assert!(pts.may_alias(f, e, Value::Global(g)));
    }
}
