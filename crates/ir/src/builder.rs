//! Programmatic IR construction.

use crate::func::{BlockId, FuncId, Function, InstId};
use crate::inst::{BinOp, CastOp, CmpOp, Inst, InstKind, Intrinsic, Term};
use crate::types::Type;
use crate::value::Value;

/// Builds a [`Function`] one instruction at a time.
///
/// The builder maintains a *current block*; instruction emitters append to
/// it. Each block must be finished with exactly one terminator
/// ([`ret`](Self::ret), [`br`](Self::br), [`cond_br`](Self::cond_br)) before
/// the function is [`finish`](Self::finish)ed.
///
/// # Example
///
/// ```
/// use privateer_ir::builder::FunctionBuilder;
/// use privateer_ir::{CmpOp, Type, Value};
///
/// // fn count(n: i64) -> i64 { let mut i = 0; while i < n { i += 1 } i }
/// let mut b = FunctionBuilder::new("count", vec![Type::I64], Some(Type::I64));
/// let n = b.param(0);
/// let header = b.new_block();
/// let body = b.new_block();
/// let exit = b.new_block();
/// b.br(header);
///
/// b.switch_to(header);
/// let (i, i_phi) = b.phi(Type::I64);
/// b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
/// let cond = b.icmp(CmpOp::Lt, i, n);
/// b.cond_br(cond, body, exit);
///
/// b.switch_to(body);
/// let next = b.add(Type::I64, i, Value::const_i64(1));
/// b.add_phi_incoming(i_phi, body, next);
/// b.br(header);
///
/// b.switch_to(exit);
/// b.ret(Some(i));
/// let func = b.finish();
/// assert_eq!(func.name, "count");
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    cur: BlockId,
}

impl FunctionBuilder {
    /// Start building a function. The current block is the entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Option<Type>) -> FunctionBuilder {
        let func = Function::new(name, params, ret);
        let cur = func.entry();
        FunctionBuilder { func, cur }
    }

    /// Finish and return the function.
    ///
    /// The result is *not* verified; run [`crate::verify::verify_function`]
    /// if the construction is not trusted.
    pub fn finish(self) -> Function {
        self.func
    }

    /// The entry block id.
    pub fn entry_block(&self) -> BlockId {
        self.func.entry()
    }

    /// The block currently being appended to.
    pub fn current_block(&self) -> BlockId {
        self.cur
    }

    /// Value of the `n`-th parameter.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    pub fn param(&self, n: usize) -> Value {
        assert!(n < self.func.params.len(), "parameter index out of range");
        Value::Param(n as u32)
    }

    /// Create a new, empty block (does not switch to it).
    pub fn new_block(&mut self) -> BlockId {
        self.func.add_block()
    }

    /// Make `bb` the current block.
    pub fn switch_to(&mut self, bb: BlockId) {
        self.cur = bb;
    }

    fn emit(&mut self, kind: InstKind, ty: Option<Type>) -> InstId {
        let id = self.func.add_inst(Inst { kind, ty });
        self.func.block_mut(self.cur).insts.push(id);
        id
    }

    fn emit_value(&mut self, kind: InstKind, ty: Type) -> Value {
        Value::Inst(self.emit(kind, Some(ty)))
    }

    /// Emit a binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Type, a: Value, b: Value) -> Value {
        self.emit_value(InstKind::Bin(op, a, b), ty)
    }

    /// `a + b`.
    pub fn add(&mut self, ty: Type, a: Value, b: Value) -> Value {
        self.bin(BinOp::Add, ty, a, b)
    }

    /// `a - b`.
    pub fn sub(&mut self, ty: Type, a: Value, b: Value) -> Value {
        self.bin(BinOp::Sub, ty, a, b)
    }

    /// `a * b`.
    pub fn mul(&mut self, ty: Type, a: Value, b: Value) -> Value {
        self.bin(BinOp::Mul, ty, a, b)
    }

    /// Float `a + b`.
    pub fn fadd(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::FAdd, Type::F64, a, b)
    }

    /// Float `a - b`.
    pub fn fsub(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::FSub, Type::F64, a, b)
    }

    /// Float `a * b`.
    pub fn fmul(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::FMul, Type::F64, a, b)
    }

    /// Float `a / b`.
    pub fn fdiv(&mut self, a: Value, b: Value) -> Value {
        self.bin(BinOp::FDiv, Type::F64, a, b)
    }

    /// Signed integer comparison producing `i1`.
    pub fn icmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.emit_value(InstKind::Icmp(op, a, b), Type::I1)
    }

    /// Ordered float comparison producing `i1`.
    pub fn fcmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.emit_value(InstKind::Fcmp(op, a, b), Type::I1)
    }

    /// Emit a cast.
    pub fn cast(&mut self, op: CastOp, v: Value, to: Type) -> Value {
        self.emit_value(InstKind::Cast(op, v, to), to)
    }

    /// Sign-extend to `to`.
    pub fn sext(&mut self, v: Value, to: Type) -> Value {
        self.cast(CastOp::Sext, v, to)
    }

    /// Zero-extend to `to`.
    pub fn zext(&mut self, v: Value, to: Type) -> Value {
        self.cast(CastOp::Zext, v, to)
    }

    /// Truncate to `to`.
    pub fn trunc(&mut self, v: Value, to: Type) -> Value {
        self.cast(CastOp::Trunc, v, to)
    }

    /// Signed int → float.
    pub fn sitofp(&mut self, v: Value) -> Value {
        self.cast(CastOp::SiToFp, v, Type::F64)
    }

    /// Float → signed int (toward zero).
    pub fn fptosi(&mut self, v: Value, to: Type) -> Value {
        self.cast(CastOp::FpToSi, v, to)
    }

    /// `load ty, ptr`.
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.emit_value(InstKind::Load(ty, ptr), ty)
    }

    /// `store ty val, ptr`.
    pub fn store(&mut self, ty: Type, val: Value, ptr: Value) {
        self.emit(InstKind::Store(ty, val, ptr), None);
    }

    /// A named stack slot of `size` bytes.
    pub fn alloca(&mut self, size: u64, name: impl Into<String>) -> Value {
        self.emit_value(
            InstKind::Alloca {
                size,
                name: name.into(),
            },
            Type::Ptr,
        )
    }

    /// `malloc(size)`.
    pub fn malloc(&mut self, size: Value) -> Value {
        self.emit_value(InstKind::Malloc(size), Type::Ptr)
    }

    /// `free(ptr)`.
    pub fn free(&mut self, ptr: Value) {
        self.emit(InstKind::Free(ptr), None);
    }

    /// Address arithmetic: `base + index * scale + disp`.
    pub fn gep(&mut self, base: Value, index: Value, scale: u64, disp: i64) -> Value {
        self.emit_value(
            InstKind::Gep {
                base,
                index,
                scale,
                disp,
            },
            Type::Ptr,
        )
    }

    /// `base + disp` (constant field offset).
    pub fn gep_const(&mut self, base: Value, disp: i64) -> Value {
        self.gep(base, Value::const_i64(0), 0, disp)
    }

    /// Direct call. `ret` must match the callee's return type (the verifier
    /// checks this once the module is assembled).
    pub fn call(&mut self, callee: FuncId, args: Vec<Value>, ret: Option<Type>) -> Option<Value> {
        let id = self.emit(InstKind::Call(callee, args), ret);
        ret.map(|_| Value::Inst(id))
    }

    /// Call an intrinsic.
    pub fn intrinsic(&mut self, which: Intrinsic, args: Vec<Value>) -> Option<Value> {
        let ty = which.result_type();
        let id = self.emit(InstKind::CallIntrinsic(which, args), ty);
        ty.map(|_| Value::Inst(id))
    }

    /// `print_i64(v)`.
    pub fn print_i64(&mut self, v: Value) {
        self.intrinsic(Intrinsic::PrintI64, vec![v]);
    }

    /// `print_f64(v)`.
    pub fn print_f64(&mut self, v: Value) {
        self.intrinsic(Intrinsic::PrintF64, vec![v]);
    }

    /// `print_str(ptr, len)`.
    pub fn print_str(&mut self, ptr: Value, len: Value) {
        self.intrinsic(Intrinsic::PrintStr, vec![ptr, len]);
    }

    /// Create a phi in the *current* block (inserted before non-phi
    /// instructions). Incoming values are added later with
    /// [`add_phi_incoming`](Self::add_phi_incoming).
    pub fn phi(&mut self, ty: Type) -> (Value, InstId) {
        let id = self.func.add_inst(Inst {
            kind: InstKind::Phi(ty, Vec::new()),
            ty: Some(ty),
        });
        // Keep phis grouped at the front of the block.
        let block = self.func.block(self.cur);
        let pos = block
            .insts
            .iter()
            .position(|&i| !matches!(self.func.insts[i.index()].kind, InstKind::Phi(..)))
            .unwrap_or(block.insts.len());
        self.func.block_mut(self.cur).insts.insert(pos, id);
        (Value::Inst(id), id)
    }

    /// Add an incoming `(pred, value)` edge to a phi created by
    /// [`phi`](Self::phi).
    ///
    /// # Panics
    ///
    /// Panics if `phi` does not name a phi instruction.
    pub fn add_phi_incoming(&mut self, phi: InstId, pred: BlockId, value: Value) {
        match &mut self.func.inst_mut(phi).kind {
            InstKind::Phi(_, incoming) => incoming.push((pred, value)),
            other => panic!("add_phi_incoming on non-phi {other:?}"),
        }
    }

    /// `select cond, then, else`.
    pub fn select(&mut self, ty: Type, cond: Value, t: Value, e: Value) -> Value {
        self.emit_value(InstKind::Select(ty, cond, t, e), ty)
    }

    /// Terminate the current block with a return.
    pub fn ret(&mut self, v: Option<Value>) {
        self.func.block_mut(self.cur).term = Term::Ret(v);
    }

    /// Terminate the current block with an unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.func.block_mut(self.cur).term = Term::Br(target);
    }

    /// Terminate the current block with a conditional branch.
    pub fn cond_br(&mut self, cond: Value, then_bb: BlockId, else_bb: BlockId) {
        self.func.block_mut(self.cur).term = Term::CondBr(cond, then_bb, else_bb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;
    use crate::Module;

    #[test]
    fn straight_line() {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], Some(Type::I64));
        let p = b.param(0);
        let x = b.add(Type::I64, p, Value::const_i64(2));
        let y = b.mul(Type::I64, x, x);
        b.ret(Some(y));
        let f = b.finish();
        assert_eq!(f.blocks.len(), 1);
        assert_eq!(f.insts.len(), 2);
        assert!(matches!(f.block(f.entry()).term, Term::Ret(Some(_))));
    }

    #[test]
    fn phis_stay_in_front() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let bb = b.new_block();
        b.br(bb);
        b.switch_to(bb);
        let x = b.add(Type::I64, Value::const_i64(1), Value::const_i64(2));
        let (_, phi) = b.phi(Type::I64);
        b.add_phi_incoming(phi, b.entry_block(), Value::const_i64(0));
        b.add_phi_incoming(phi, bb, x);
        b.br(bb);
        let f = b.finish();
        let first = f.block(bb).insts[0];
        assert!(matches!(f.inst(first).kind, InstKind::Phi(..)));
    }

    #[test]
    fn doc_loop_verifies() {
        let mut b = FunctionBuilder::new("count", vec![Type::I64], Some(Type::I64));
        let n = b.param(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let cond = b.icmp(CmpOp::Lt, i, n);
        b.cond_br(cond, body, exit);
        b.switch_to(body);
        let next = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, next);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let m = Module::new("t");
        verify_function(&m, &f).unwrap();
    }

    #[test]
    #[should_panic(expected = "parameter index out of range")]
    fn bad_param_panics() {
        let b = FunctionBuilder::new("f", vec![], None);
        let _ = b.param(0);
    }
}
