//! Call-graph construction and queries.

use crate::func::FuncId;
use crate::inst::InstKind;
use crate::module::Module;
use std::collections::BTreeSet;

/// The static call graph of a module (direct calls only — the IR has no
/// indirect calls).
#[derive(Debug, Clone)]
pub struct CallGraph {
    callees: Vec<BTreeSet<FuncId>>,
    callers: Vec<BTreeSet<FuncId>>,
}

impl CallGraph {
    /// Build the call graph of `module`.
    pub fn new(module: &Module) -> CallGraph {
        let n = module.functions.len();
        let mut callees = vec![BTreeSet::new(); n];
        let mut callers = vec![BTreeSet::new(); n];
        for f in module.func_ids() {
            for inst in &module.func(f).insts {
                if let InstKind::Call(callee, _) = inst.kind {
                    callees[f.index()].insert(callee);
                    callers[callee.index()].insert(f);
                }
            }
        }
        CallGraph { callees, callers }
    }

    /// Functions directly called by `f`.
    pub fn callees(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callees[f.index()]
    }

    /// Functions that directly call `f`.
    pub fn callers(&self, f: FuncId) -> &BTreeSet<FuncId> {
        &self.callers[f.index()]
    }

    /// All functions reachable from `roots` (inclusive), following call
    /// edges.
    pub fn reachable_from(&self, roots: impl IntoIterator<Item = FuncId>) -> BTreeSet<FuncId> {
        let mut seen: BTreeSet<FuncId> = BTreeSet::new();
        let mut stack: Vec<FuncId> = roots.into_iter().collect();
        while let Some(f) = stack.pop() {
            if seen.insert(f) {
                stack.extend(self.callees(f).iter().copied());
            }
        }
        seen
    }

    /// Whether `f` can (transitively) call itself.
    pub fn is_recursive(&self, f: FuncId) -> bool {
        let mut seen = BTreeSet::new();
        let mut stack: Vec<FuncId> = self.callees(f).iter().copied().collect();
        while let Some(g) = stack.pop() {
            if g == f {
                return true;
            }
            if seen.insert(g) {
                stack.extend(self.callees(g).iter().copied());
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::func::Function;

    fn call_only(name: &str, callee: Option<FuncId>) -> Function {
        let mut b = FunctionBuilder::new(name, vec![], None);
        if let Some(c) = callee {
            b.call(c, vec![], None);
        }
        b.ret(None);
        b.finish()
    }

    #[test]
    fn chain() {
        let mut m = Module::new("t");
        // Pre-assign ids: f0 calls f1, f1 calls f2, f2 leaf.
        let f0 = m.add_function(call_only("a", Some(FuncId::new(1))));
        let f1 = m.add_function(call_only("b", Some(FuncId::new(2))));
        let f2 = m.add_function(call_only("c", None));
        let cg = CallGraph::new(&m);
        assert!(cg.callees(f0).contains(&f1));
        assert!(cg.callers(f2).contains(&f1));
        let reach = cg.reachable_from([f0]);
        assert_eq!(reach.len(), 3);
        assert!(!cg.is_recursive(f0));
    }

    #[test]
    fn recursion_detected() {
        let mut m = Module::new("t");
        let f0 = m.add_function(call_only("a", Some(FuncId::new(1))));
        let f1 = m.add_function(call_only("b", Some(FuncId::new(0))));
        let cg = CallGraph::new(&m);
        assert!(cg.is_recursive(f0));
        assert!(cg.is_recursive(f1));
    }

    #[test]
    fn leaf_reachability_is_self() {
        let mut m = Module::new("t");
        let f = m.add_function(call_only("leaf", None));
        let cg = CallGraph::new(&m);
        assert_eq!(cg.reachable_from([f]).len(), 1);
    }
}
