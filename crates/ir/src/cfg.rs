//! Control-flow graph queries: successors, predecessors, traversal orders.

use crate::func::{BlockId, Function};

/// Precomputed CFG adjacency for a function.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<BlockId>>,
    succs: Vec<Vec<BlockId>>,
    rpo: Vec<BlockId>,
    rpo_index: Vec<Option<usize>>,
}

impl Cfg {
    /// Compute the CFG of `func`.
    pub fn new(func: &Function) -> Cfg {
        let n = func.blocks.len();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for bb in func.block_ids() {
            for s in func.block(bb).term.successors() {
                succs[bb.index()].push(s);
                preds[s.index()].push(bb);
            }
        }

        // Reverse postorder via iterative DFS from the entry.
        let mut rpo = Vec::with_capacity(n);
        let mut state = vec![0u8; n]; // 0 unvisited, 1 on stack, 2 done
        let mut stack: Vec<(BlockId, usize)> = vec![(func.entry(), 0)];
        state[func.entry().index()] = 1;
        while let Some(&(bb, next)) = stack.last() {
            let s = &succs[bb.index()];
            if next < s.len() {
                let child = s[next];
                stack.last_mut().expect("stack is non-empty").1 += 1;
                if state[child.index()] == 0 {
                    state[child.index()] = 1;
                    stack.push((child, 0));
                }
            } else {
                state[bb.index()] = 2;
                rpo.push(bb);
                stack.pop();
            }
        }
        rpo.reverse();

        let mut rpo_index = vec![None; n];
        for (i, &bb) in rpo.iter().enumerate() {
            rpo_index[bb.index()] = Some(i);
        }

        Cfg {
            preds,
            succs,
            rpo,
            rpo_index,
        }
    }

    /// Predecessors of `bb`.
    pub fn preds(&self, bb: BlockId) -> &[BlockId] {
        &self.preds[bb.index()]
    }

    /// Successors of `bb`.
    pub fn succs(&self, bb: BlockId) -> &[BlockId] {
        &self.succs[bb.index()]
    }

    /// Blocks in reverse postorder (entry first). Unreachable blocks are
    /// omitted.
    pub fn rpo(&self) -> &[BlockId] {
        &self.rpo
    }

    /// Position of `bb` in the reverse postorder, or `None` if unreachable.
    pub fn rpo_index(&self, bb: BlockId) -> Option<usize> {
        self.rpo_index[bb.index()]
    }

    /// Whether `bb` is reachable from the entry.
    pub fn is_reachable(&self, bb: BlockId) -> bool {
        self.rpo_index(bb).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;
    use crate::CmpOp;

    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", vec![Type::I64], None);
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        let c = b.icmp(CmpOp::Lt, b.param(0), Value::const_i64(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn diamond_adjacency() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        let entry = f.entry();
        assert_eq!(cfg.succs(entry).len(), 2);
        assert_eq!(cfg.preds(BlockId::new(3)).len(), 2);
        assert_eq!(cfg.preds(entry).len(), 0);
    }

    #[test]
    fn rpo_starts_at_entry_and_join_is_last() {
        let f = diamond();
        let cfg = Cfg::new(&f);
        assert_eq!(cfg.rpo()[0], f.entry());
        assert_eq!(*cfg.rpo().last().unwrap(), BlockId::new(3));
        assert_eq!(cfg.rpo().len(), 4);
    }

    #[test]
    fn unreachable_blocks_omitted() {
        let mut b = FunctionBuilder::new("u", vec![], None);
        let dead = b.new_block();
        b.ret(None);
        b.switch_to(dead);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        assert!(cfg.is_reachable(f.entry()));
        assert!(!cfg.is_reachable(dead));
        assert_eq!(cfg.rpo().len(), 1);
    }
}
