//! Matching of canonical counted loops (`for i in lo..hi`).
//!
//! DOALL parallelization distributes iterations of a counted loop across
//! workers, so the transformation must first recognize the loop's induction
//! variable, bounds and step. The accepted shape is the one the
//! [`crate::builder`] produces for counted loops:
//!
//! ```text
//! header:
//!   iv = phi [preheader: lo], [latch: iv.next]
//!   c  = icmp lt iv, hi          ; hi loop-invariant
//!   condbr c, <into loop>, exit
//! ...
//! latch:
//!   iv.next = add iv, step        ; step a positive constant
//!   br header
//! ```

use crate::func::{BlockId, Function, InstId};
use crate::inst::{BinOp, CmpOp, InstKind, Term};
use crate::loops::{Loop, LoopId};
use crate::value::Value;

/// A matched counted loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountedLoop {
    /// The loop this shape was matched on.
    pub loop_id: LoopId,
    /// The loop header.
    pub header: BlockId,
    /// The single latch block.
    pub latch: BlockId,
    /// The induction-variable phi (defined in the header).
    pub iv: InstId,
    /// Initial induction value (loop-invariant).
    pub lo: Value,
    /// Exclusive upper bound (loop-invariant).
    pub hi: Value,
    /// Constant positive step.
    pub step: i64,
    /// The block control enters when the loop continues.
    pub into_loop: BlockId,
    /// The block control leaves to when the loop finishes.
    pub exit: BlockId,
    /// The comparison instruction in the header.
    pub cmp: InstId,
}

impl CountedLoop {
    /// Trip count if both bounds are constants.
    pub fn const_trip_count(&self) -> Option<i64> {
        match (self.lo, self.hi) {
            (Value::ConstInt(lo, _), Value::ConstInt(hi, _)) => {
                Some(((hi - lo).max(0) + self.step - 1) / self.step)
            }
            _ => None,
        }
    }
}

fn defined_outside(
    func: &Function,
    blocks: &std::collections::BTreeSet<BlockId>,
    v: Value,
) -> bool {
    match v {
        Value::Inst(i) => func.block_of(i).is_none_or(|bb| !blocks.contains(&bb)),
        _ => true,
    }
}

/// Try to match `lp` as a canonical counted loop.
///
/// Returns `None` when the loop has multiple latches, a non-canonical
/// induction pattern, a loop-variant bound, or a non-constant / non-positive
/// step.
pub fn match_counted_loop(func: &Function, loop_id: LoopId, lp: &Loop) -> Option<CountedLoop> {
    if lp.latches.len() != 1 {
        return None;
    }
    let latch = lp.latches[0];
    let header = lp.header;

    // Header terminator: condbr (icmp lt iv, hi), into_loop, exit.
    let Term::CondBr(cond, then_bb, else_bb) = func.block(header).term else {
        return None;
    };
    let cmp = cond.as_inst()?;
    let InstKind::Icmp(pred, lhs, rhs) = func.inst(cmp).kind else {
        return None;
    };

    // Normalize to `iv < hi` continuing into the loop.
    let (iv_val, hi, into_loop, exit) = match pred {
        CmpOp::Lt if lp.contains(then_bb) && !lp.contains(else_bb) => (lhs, rhs, then_bb, else_bb),
        CmpOp::Ge if lp.contains(else_bb) && !lp.contains(then_bb) => (lhs, rhs, else_bb, then_bb),
        _ => return None,
    };
    let iv = iv_val.as_inst()?;

    // The IV must be a phi in the header with exactly the preheader and
    // latch incoming edges.
    if func.block_of(iv) != Some(header) {
        return None;
    }
    let InstKind::Phi(_, ref incoming) = func.inst(iv).kind else {
        return None;
    };
    if incoming.len() != 2 {
        return None;
    }
    let (mut lo, mut next) = (None, None);
    for &(pred_bb, v) in incoming {
        if pred_bb == latch {
            next = Some(v);
        } else if !lp.contains(pred_bb) {
            lo = Some(v);
        }
    }
    let (lo, next) = (lo?, next?);

    // iv.next = add iv, step.
    let next_id = next.as_inst()?;
    let InstKind::Bin(BinOp::Add, a, b) = func.inst(next_id).kind else {
        return None;
    };
    let step = if a == Value::Inst(iv) {
        b.as_int()?
    } else if b == Value::Inst(iv) {
        a.as_int()?
    } else {
        return None;
    };
    if step <= 0 {
        return None;
    }

    // Bounds must be loop-invariant.
    if !defined_outside(func, &lp.blocks, lo) || !defined_outside(func, &lp.blocks, hi) {
        return None;
    }

    Some(CountedLoop {
        loop_id,
        header,
        latch,
        iv,
        lo,
        hi,
        step,
        into_loop,
        exit,
        cmp,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::loops::LoopInfo;
    use crate::types::Type;

    fn simple_loop(step: i64) -> Function {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], None);
        let n = b.param(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(Type::I64, i, Value::const_i64(step));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn matches_canonical() {
        let f = simple_loop(1);
        let li = LoopInfo::compute(&f);
        let (id, lp) = li.iter().next().unwrap();
        let c = match_counted_loop(&f, id, lp).unwrap();
        assert_eq!(c.lo, Value::const_i64(0));
        assert_eq!(c.hi, Value::Param(0));
        assert_eq!(c.step, 1);
        assert_eq!(c.header, BlockId::new(1));
        assert_eq!(c.latch, BlockId::new(2));
        assert_eq!(c.exit, BlockId::new(3));
    }

    #[test]
    fn rejects_nonpositive_step() {
        let f = simple_loop(-1);
        let li = LoopInfo::compute(&f);
        let (id, lp) = li.iter().next().unwrap();
        assert!(match_counted_loop(&f, id, lp).is_none());
    }

    #[test]
    fn const_trip_count() {
        let mut b = FunctionBuilder::new("f", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(2));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(11));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(Type::I64, i, Value::const_i64(3));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let li = LoopInfo::compute(&f);
        let (id, lp) = li.iter().next().unwrap();
        let cl = match_counted_loop(&f, id, lp).unwrap();
        assert_eq!(cl.const_trip_count(), Some(3)); // i = 2, 5, 8
    }

    #[test]
    fn ge_form_accepted() {
        // condbr (icmp ge i, n), exit, body — the inverted encoding.
        let mut b = FunctionBuilder::new("f", vec![Type::I64], None);
        let n = b.param(0);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Ge, i, n);
        b.cond_br(c, exit, body);
        b.switch_to(body);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let li = LoopInfo::compute(&f);
        let (id, lp) = li.iter().next().unwrap();
        let cl = match_counted_loop(&f, id, lp).unwrap();
        assert_eq!(cl.into_loop, body);
        assert_eq!(cl.exit, exit);
    }

    #[test]
    fn rejects_loop_variant_bound() {
        // hi is recomputed inside the loop.
        let mut b = FunctionBuilder::new("f", vec![Type::Ptr], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let hi = b.load(Type::I64, b.param(0)); // defined in the loop
        let c = b.icmp(CmpOp::Lt, i, hi);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let li = LoopInfo::compute(&f);
        let (id, lp) = li.iter().next().unwrap();
        assert!(match_counted_loop(&f, id, lp).is_none());
    }
}
