//! Dominator tree construction (Cooper–Harvey–Kennedy algorithm).

use crate::cfg::Cfg;
use crate::func::{BlockId, Function};

/// The dominator tree of a function's CFG.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator of each block (`idom[entry] == entry`);
    /// `None` for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<Option<usize>>,
}

impl DomTree {
    /// Compute dominators using the iterative algorithm of Cooper, Harvey
    /// and Kennedy ("A Simple, Fast Dominance Algorithm").
    pub fn new(func: &Function, cfg: &Cfg) -> DomTree {
        let n = func.blocks.len();
        let entry = func.entry();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[entry.index()] = Some(entry);

        let rpo = cfg.rpo();
        let rpo_index: Vec<Option<usize>> =
            (0..n).map(|i| cfg.rpo_index(BlockId::new(i))).collect();

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            let idx = |x: BlockId| rpo_index[x.index()].expect("reachable block");
            while a != b {
                while idx(a) > idx(b) {
                    a = idom[a.index()].expect("processed block");
                }
                while idx(b) > idx(a) {
                    b = idom[b.index()].expect("processed block");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &bb in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in cfg.preds(bb) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[bb.index()] != Some(ni) {
                        idom[bb.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        DomTree { idom, rpo_index }
    }

    /// Immediate dominator of `bb` (`None` for the entry and for unreachable
    /// blocks).
    pub fn idom(&self, bb: BlockId) -> Option<BlockId> {
        match self.idom[bb.index()] {
            Some(d) if d != bb => Some(d),
            _ => None,
        }
    }

    /// Whether `a` dominates `b` (reflexively).
    ///
    /// Unreachable blocks dominate nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if self.rpo_index[a.index()].is_none() || self.rpo_index[b.index()].is_none() {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;
    use crate::CmpOp;

    /// entry -> {t, e} -> join -> exit; plus a loop join -> t.
    fn build() -> (Function, Cfg, DomTree) {
        let mut b = FunctionBuilder::new("f", vec![Type::I64], None);
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        let exit = b.new_block();
        let c = b.icmp(CmpOp::Lt, b.param(0), Value::const_i64(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        let c2 = b.icmp(CmpOp::Gt, b.param(0), Value::const_i64(10));
        b.cond_br(c2, t, exit);
        b.switch_to(exit);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::new(&f);
        let dt = DomTree::new(&f, &cfg);
        (f, cfg, dt)
    }

    #[test]
    fn entry_dominates_all() {
        let (f, cfg, dt) = build();
        for bb in f.block_ids() {
            if cfg.is_reachable(bb) {
                assert!(dt.dominates(f.entry(), bb));
            }
        }
    }

    #[test]
    fn join_idom_is_entry() {
        // join has preds t and e, whose common dominator is the entry.
        let (f, _, dt) = build();
        assert_eq!(dt.idom(BlockId::new(3)), Some(f.entry()));
        assert_eq!(dt.idom(f.entry()), None);
    }

    #[test]
    fn branch_sides_do_not_dominate_each_other() {
        let (_, _, dt) = build();
        assert!(!dt.dominates(BlockId::new(1), BlockId::new(2)));
        assert!(!dt.dominates(BlockId::new(2), BlockId::new(1)));
        // join dominates exit.
        assert!(dt.dominates(BlockId::new(3), BlockId::new(4)));
        // t does not dominate join (e also reaches it).
        assert!(!dt.dominates(BlockId::new(1), BlockId::new(3)));
    }

    #[test]
    fn reflexive() {
        let (f, _, dt) = build();
        assert!(dt.dominates(f.entry(), f.entry()));
    }
}
