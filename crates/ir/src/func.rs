//! Functions, basic blocks and their identifiers.

use crate::inst::{Inst, Term};
use crate::types::Type;
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Create an id from a raw index.
            pub fn new(index: usize) -> $name {
                $name(u32::try_from(index).expect("id index overflows u32"))
            }

            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a function within a [`crate::Module`].
    FuncId,
    "fn"
);
id_type!(
    /// Identifies a basic block within a [`Function`].
    BlockId,
    "bb"
);
id_type!(
    /// Identifies an instruction within a [`Function`]'s arena.
    ///
    /// Instruction *order* is given by block instruction lists, not by id;
    /// passes append new instructions to the arena and splice their ids into
    /// block lists.
    InstId,
    "%"
);

/// A basic block: an ordered list of instruction ids plus a terminator.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Instructions in execution order (ids into the function's arena).
    pub insts: Vec<InstId>,
    /// The block terminator.
    pub term: Term,
}

impl Block {
    /// An empty block ending in `unreachable` (a placeholder terminator that
    /// builders overwrite).
    pub fn new() -> Block {
        Block {
            insts: Vec::new(),
            term: Term::Unreachable,
        }
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::new()
    }
}

/// A function: parameters, a return type, and a CFG of basic blocks over an
/// instruction arena.
///
/// Block 0 is the entry block. Instructions live in [`Function::insts`] and
/// are referenced by id from block lists; an instruction id appears in at
/// most one block list (the [`crate::verify`] pass enforces this).
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    /// Function name (unique within a module).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type, or `None` for `void`.
    pub ret: Option<Type>,
    /// Basic blocks; `BlockId` indexes this vector. Block 0 is the entry.
    pub blocks: Vec<Block>,
    /// Instruction arena; `InstId` indexes this vector.
    pub insts: Vec<Inst>,
}

impl Function {
    /// Create an empty function with a single (empty) entry block.
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret: Option<Type>) -> Function {
        Function {
            name: name.into(),
            params,
            ret,
            blocks: vec![Block::new()],
            insts: Vec::new(),
        }
    }

    /// The entry block id.
    pub fn entry(&self) -> BlockId {
        BlockId::new(0)
    }

    /// Borrow an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this function's arena.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.index()]
    }

    /// Mutably borrow an instruction.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this function's arena.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        &mut self.insts[id.index()]
    }

    /// Borrow a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// Mutably borrow a block.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        &mut self.blocks[id.index()]
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self) -> BlockId {
        self.blocks.push(Block::new());
        BlockId::new(self.blocks.len() - 1)
    }

    /// Append an instruction to the arena (not yet placed in any block).
    pub fn add_inst(&mut self, inst: Inst) -> InstId {
        self.insts.push(inst);
        InstId::new(self.insts.len() - 1)
    }

    /// Iterate over all block ids in index order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> {
        (0..self.blocks.len()).map(BlockId::new)
    }

    /// Iterate over `(block, inst)` pairs in layout order.
    pub fn inst_ids_in_order(&self) -> impl Iterator<Item = (BlockId, InstId)> + '_ {
        self.block_ids()
            .flat_map(move |bb| self.block(bb).insts.iter().map(move |&i| (bb, i)))
    }

    /// The block containing instruction `id`, if it is placed in a block.
    pub fn block_of(&self, id: InstId) -> Option<BlockId> {
        self.block_ids()
            .find(|&bb| self.block(bb).insts.contains(&id))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, InstKind};
    use crate::value::Value;

    #[test]
    fn ids_display() {
        assert_eq!(FuncId::new(3).to_string(), "fn3");
        assert_eq!(BlockId::new(0).to_string(), "bb0");
        assert_eq!(InstId::new(7).to_string(), "%7");
        assert_eq!(FuncId::new(9).index(), 9);
    }

    #[test]
    fn function_layout() {
        let mut f = Function::new("f", vec![Type::I64], None);
        assert_eq!(f.entry(), BlockId::new(0));
        let b1 = f.add_block();
        assert_eq!(b1, BlockId::new(1));
        let i = f.add_inst(Inst {
            kind: InstKind::Malloc(Value::const_i64(8)),
            ty: Some(Type::Ptr),
        });
        f.block_mut(b1).insts.push(i);
        assert_eq!(f.block_of(i), Some(b1));
        let placed: Vec<_> = f.inst_ids_in_order().collect();
        assert_eq!(placed, vec![(b1, i)]);
    }

    #[test]
    fn unplaced_inst_has_no_block() {
        let mut f = Function::new("f", vec![], None);
        let i = f.add_inst(Inst {
            kind: InstKind::Malloc(Value::const_i64(1)),
            ty: Some(Type::Ptr),
        });
        assert_eq!(f.block_of(i), None);
    }
}
