//! Instructions, operators, intrinsics and block terminators.

use crate::func::{BlockId, FuncId};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

pub use crate::func::InstId;

/// Bit position of the 3-bit logical-heap tag inside a simulated virtual
/// address (the paper hides the tag in bits 44–46 of the address).
pub const HEAP_TAG_SHIFT: u32 = 44;

/// Mask selecting the 3-bit heap tag after shifting by [`HEAP_TAG_SHIFT`].
pub const HEAP_TAG_MASK: u64 = 0b111;

/// Tag of the shadow (metadata) heap. It differs from the private heap's tag
/// by exactly one bit so the metadata address for a private byte is computed
/// with a single bit-wise OR (`addr | SHADOW_BIT`).
pub const SHADOW_TAG: u64 = 0b011;

/// The address bit that turns a private-heap address into the corresponding
/// shadow-heap address.
pub const SHADOW_BIT: u64 = 1 << HEAP_TAG_SHIFT;

/// A logical heap with restricted access semantics (§4.2 of the paper).
///
/// Every memory object a selected loop touches is speculatively assigned to
/// one of these heaps; objects are allocated within the heap's fixed address
/// range so that separation can be validated by inspecting pointer bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Heap {
    /// Objects only read inside the loop.
    ReadOnly,
    /// Objects written, but never carrying a cross-iteration flow dependence
    /// (the privatization criterion). Replicated per worker.
    Private,
    /// Objects updated only by a single associative, commutative operator
    /// (the reduction criterion). Expanded per worker and merged.
    Redux,
    /// Objects allocated and freed within a single iteration.
    ShortLived,
    /// Objects with real cross-iteration dependences; not privatizable.
    Unrestricted,
}

impl Heap {
    /// All heaps, in classification order.
    pub const ALL: [Heap; 5] = [
        Heap::ReadOnly,
        Heap::Private,
        Heap::Redux,
        Heap::ShortLived,
        Heap::Unrestricted,
    ];

    /// The 3-bit address tag of this heap.
    ///
    /// The private heap's tag (`0b010`) and the shadow heap's tag
    /// ([`SHADOW_TAG`] = `0b011`) differ by one bit.
    ///
    /// ```
    /// use privateer_ir::inst::{Heap, SHADOW_TAG};
    /// assert_eq!(Heap::Private.tag() | 1, SHADOW_TAG);
    /// ```
    pub fn tag(self) -> u64 {
        match self {
            Heap::ReadOnly => 0b001,
            Heap::Private => 0b010,
            // 0b011 is the shadow heap, runtime-internal.
            Heap::Redux => 0b100,
            Heap::ShortLived => 0b101,
            Heap::Unrestricted => 0b110,
        }
    }

    /// Base simulated virtual address of this heap's 16 TB range.
    pub fn base(self) -> u64 {
        self.tag() << HEAP_TAG_SHIFT
    }

    /// The heap whose range contains `addr`, if any.
    ///
    /// ```
    /// use privateer_ir::Heap;
    /// let p = Heap::Private.base() + 0x40;
    /// assert_eq!(Heap::of_addr(p), Some(Heap::Private));
    /// assert_eq!(Heap::of_addr(0x1000), None);
    /// ```
    pub fn of_addr(addr: u64) -> Option<Heap> {
        match (addr >> HEAP_TAG_SHIFT) & HEAP_TAG_MASK {
            0b001 => Some(Heap::ReadOnly),
            0b010 => Some(Heap::Private),
            0b100 => Some(Heap::Redux),
            0b101 => Some(Heap::ShortLived),
            0b110 => Some(Heap::Unrestricted),
            _ => None,
        }
    }

    /// Whether `addr` carries this heap's tag.
    pub fn contains(self, addr: u64) -> bool {
        (addr >> HEAP_TAG_SHIFT) & HEAP_TAG_MASK == self.tag()
    }

    /// Short lower-case name used by the printer and parser.
    pub fn name(self) -> &'static str {
        match self {
            Heap::ReadOnly => "ro",
            Heap::Private => "priv",
            Heap::Redux => "redux",
            Heap::ShortLived => "short",
            Heap::Unrestricted => "unres",
        }
    }

    /// Parse a heap from its short [`name`](Heap::name).
    pub fn from_name(s: &str) -> Option<Heap> {
        Heap::ALL.into_iter().find(|h| h.name() == s)
    }
}

impl fmt::Display for Heap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A binary arithmetic or bitwise operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are the standard two's-complement / IEEE operators
pub enum BinOp {
    Add,
    Sub,
    Mul,
    SDiv,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
    FAdd,
    FSub,
    FMul,
    FDiv,
}

impl BinOp {
    /// Whether the operator works on floats (the `F*` family).
    pub fn is_float(self) -> bool {
        matches!(self, BinOp::FAdd | BinOp::FSub | BinOp::FMul | BinOp::FDiv)
    }

    /// Whether the operator is associative and commutative, and therefore a
    /// candidate reduction operator (§3, Reduction Criterion).
    ///
    /// Floating-point addition and multiplication are only approximately
    /// associative; the paper (following LRPD) treats them as reduction
    /// operators anyway, and so do we.
    pub fn is_reduction_candidate(self) -> bool {
        matches!(
            self,
            BinOp::Add
                | BinOp::Mul
                | BinOp::And
                | BinOp::Or
                | BinOp::Xor
                | BinOp::FAdd
                | BinOp::FMul
        )
    }

    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::SDiv => "sdiv",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
            BinOp::FAdd => "fadd",
            BinOp::FSub => "fsub",
            BinOp::FMul => "fmul",
            BinOp::FDiv => "fdiv",
        }
    }

    /// Parse a mnemonic back into an operator.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        use BinOp::*;
        let all = [
            Add, Sub, Mul, SDiv, SRem, And, Or, Xor, Shl, LShr, AShr, FAdd, FSub, FMul, FDiv,
        ];
        all.into_iter().find(|op| op.mnemonic() == s)
    }
}

/// A comparison predicate (used by both integer and float compares; integer
/// comparisons are signed).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // the variants are the standard signed/ordered predicates
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Parse a mnemonic back into a predicate.
    pub fn from_mnemonic(s: &str) -> Option<CmpOp> {
        use CmpOp::*;
        [Eq, Ne, Lt, Le, Gt, Ge]
            .into_iter()
            .find(|op| op.mnemonic() == s)
    }

    /// Evaluate the predicate over a three-way ordering.
    pub fn eval(self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::Ne => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::Le => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::Ge => ord != Less,
        }
    }
}

/// A value-conversion operator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Zero-extend a narrower integer to a wider one.
    Zext,
    /// Sign-extend a narrower integer to a wider one.
    Sext,
    /// Truncate a wider integer to a narrower one.
    Trunc,
    /// Signed integer to float.
    SiToFp,
    /// Float to signed integer (toward zero).
    FpToSi,
    /// Reinterpret a pointer as `i64`.
    PtrToInt,
    /// Reinterpret an `i64` as a pointer.
    IntToPtr,
    /// Reinterpret bits between `i64` and `f64`.
    Bitcast,
}

impl CastOp {
    /// Textual mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::SiToFp => "sitofp",
            CastOp::FpToSi => "fptosi",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
            CastOp::Bitcast => "bitcast",
        }
    }

    /// Parse a mnemonic back into an operator.
    pub fn from_mnemonic(s: &str) -> Option<CastOp> {
        use CastOp::*;
        [
            Zext, Sext, Trunc, SiToFp, FpToSi, PtrToInt, IntToPtr, Bitcast,
        ]
        .into_iter()
        .find(|op| op.mnemonic() == s)
    }
}

/// An associative, commutative reduction operator over 8-byte elements
/// (the Reduction Criterion, §3).
///
/// Floating-point sum/min/max are treated as reductions, as in LRPD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ReduxOp {
    /// `i64` addition (identity 0).
    SumI64,
    /// `f64` addition (identity 0.0).
    SumF64,
    /// `i64` minimum (identity `i64::MAX`).
    MinI64,
    /// `i64` maximum (identity `i64::MIN`).
    MaxI64,
    /// `f64` minimum (identity `+inf`).
    MinF64,
    /// `f64` maximum (identity `-inf`).
    MaxF64,
}

impl ReduxOp {
    /// All operators.
    pub const ALL: [ReduxOp; 6] = [
        ReduxOp::SumI64,
        ReduxOp::SumF64,
        ReduxOp::MinI64,
        ReduxOp::MaxI64,
        ReduxOp::MinF64,
        ReduxOp::MaxF64,
    ];

    /// The identity element, as its little-endian byte image.
    pub fn identity_bytes(self) -> [u8; 8] {
        match self {
            ReduxOp::SumI64 => 0i64.to_le_bytes(),
            ReduxOp::SumF64 => 0f64.to_le_bytes(),
            ReduxOp::MinI64 => i64::MAX.to_le_bytes(),
            ReduxOp::MaxI64 => i64::MIN.to_le_bytes(),
            ReduxOp::MinF64 => f64::INFINITY.to_le_bytes(),
            ReduxOp::MaxF64 => f64::NEG_INFINITY.to_le_bytes(),
        }
    }

    /// Combine two 8-byte element images.
    pub fn combine(self, a: [u8; 8], b: [u8; 8]) -> [u8; 8] {
        match self {
            ReduxOp::SumI64 => i64::from_le_bytes(a)
                .wrapping_add(i64::from_le_bytes(b))
                .to_le_bytes(),
            ReduxOp::SumF64 => (f64::from_le_bytes(a) + f64::from_le_bytes(b)).to_le_bytes(),
            ReduxOp::MinI64 => i64::from_le_bytes(a)
                .min(i64::from_le_bytes(b))
                .to_le_bytes(),
            ReduxOp::MaxI64 => i64::from_le_bytes(a)
                .max(i64::from_le_bytes(b))
                .to_le_bytes(),
            ReduxOp::MinF64 => f64::from_le_bytes(a)
                .min(f64::from_le_bytes(b))
                .to_le_bytes(),
            ReduxOp::MaxF64 => f64::from_le_bytes(a)
                .max(f64::from_le_bytes(b))
                .to_le_bytes(),
        }
    }

    /// Short name used by the printer and parser.
    pub fn name(self) -> &'static str {
        match self {
            ReduxOp::SumI64 => "sum_i64",
            ReduxOp::SumF64 => "sum_f64",
            ReduxOp::MinI64 => "min_i64",
            ReduxOp::MaxI64 => "max_i64",
            ReduxOp::MinF64 => "min_f64",
            ReduxOp::MaxF64 => "max_f64",
        }
    }

    /// Parse a short name.
    pub fn from_name(s: &str) -> Option<ReduxOp> {
        ReduxOp::ALL.into_iter().find(|op| op.name() == s)
    }
}

impl fmt::Display for ReduxOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Built-in operations with runtime support.
///
/// The checking intrinsics (`CheckHeap`, `PrivateRead`, `PrivateWrite`,
/// `Predict`, `Misspec`) are inserted by the Privateer transformation
/// (§4.5–4.6) and validated by the runtime system (§5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Intrinsic {
    /// `print_i64(v)` — write a decimal integer to program output.
    PrintI64,
    /// `print_f64(v)` — write a float to program output.
    PrintF64,
    /// `print_str(ptr, len)` — write `len` bytes from memory to output.
    PrintStr,
    /// `print_char(v)` — write a single byte to output.
    PrintChar,
    /// `h_alloc(size) -> ptr` — allocate from the given logical heap (§4.4).
    HAlloc(Heap),
    /// `h_dealloc(ptr)` — free into the given logical heap (§4.4).
    HFree(Heap),
    /// `check_heap(ptr)` — separation check: misspeculate unless `ptr`
    /// carries the heap's tag (§4.5). Null pointers pass (they name no
    /// object, so separation is vacuous).
    CheckHeap(Heap),
    /// `private_read(ptr, size)` — privacy check before a load (§4.6).
    PrivateRead,
    /// `private_write(ptr, size)` — privacy check before a store (§4.6).
    PrivateWrite,
    /// `predict(cond)` — value-prediction check: misspeculate if `cond` is
    /// false (§6.1, e.g. "the work list is empty on loop entry").
    Predict,
    /// `misspec()` — unconditionally report misspeculation.
    Misspec,
    /// `redux_register(ptr, size)` — declare `[ptr, ptr+size)` a reduction
    /// object updated only by the given operator; the runtime initializes
    /// worker copies to the identity and merges at checkpoints (§3.2).
    ReduxRegister(ReduxOp),
    /// `parallel_invoke(lo, hi)` — execute plan *n* (see
    /// [`crate::module::Module::plans`]): run the outlined loop body for
    /// iterations `lo..hi` under the speculative DOALL engine (§5).
    ParallelInvoke(u32),
    /// `sqrt(f64) -> f64`.
    Sqrt,
    /// `exp(f64) -> f64`.
    Exp,
    /// `log(f64) -> f64`.
    Log,
    /// `fabs(f64) -> f64`.
    FAbs,
}

impl Intrinsic {
    /// Number of arguments the intrinsic takes.
    pub fn arity(self) -> usize {
        match self {
            Intrinsic::PrintI64
            | Intrinsic::PrintF64
            | Intrinsic::PrintChar
            | Intrinsic::HAlloc(_)
            | Intrinsic::HFree(_)
            | Intrinsic::CheckHeap(_)
            | Intrinsic::Predict
            | Intrinsic::Sqrt
            | Intrinsic::Exp
            | Intrinsic::Log
            | Intrinsic::FAbs => 1,
            Intrinsic::PrintStr
            | Intrinsic::PrivateRead
            | Intrinsic::PrivateWrite
            | Intrinsic::ReduxRegister(_)
            | Intrinsic::ParallelInvoke(_) => 2,
            Intrinsic::Misspec => 0,
        }
    }

    /// The intrinsic's result type, if it produces a value.
    pub fn result_type(self) -> Option<Type> {
        match self {
            Intrinsic::HAlloc(_) => Some(Type::Ptr),
            Intrinsic::Sqrt | Intrinsic::Exp | Intrinsic::Log | Intrinsic::FAbs => Some(Type::F64),
            _ => None,
        }
    }

    /// Textual name (heap-parameterized intrinsics encode the heap).
    pub fn name(self) -> String {
        match self {
            Intrinsic::PrintI64 => "print_i64".into(),
            Intrinsic::PrintF64 => "print_f64".into(),
            Intrinsic::PrintStr => "print_str".into(),
            Intrinsic::PrintChar => "print_char".into(),
            Intrinsic::HAlloc(h) => format!("h_alloc.{h}"),
            Intrinsic::HFree(h) => format!("h_dealloc.{h}"),
            Intrinsic::CheckHeap(h) => format!("check_heap.{h}"),
            Intrinsic::PrivateRead => "private_read".into(),
            Intrinsic::PrivateWrite => "private_write".into(),
            Intrinsic::Predict => "predict".into(),
            Intrinsic::Misspec => "misspec".into(),
            Intrinsic::ReduxRegister(op) => format!("redux_register.{op}"),
            Intrinsic::ParallelInvoke(n) => format!("parallel_invoke.{n}"),
            Intrinsic::Sqrt => "sqrt".into(),
            Intrinsic::Exp => "exp".into(),
            Intrinsic::Log => "log".into(),
            Intrinsic::FAbs => "fabs".into(),
        }
    }

    /// Parse an intrinsic from its [`name`](Intrinsic::name).
    pub fn from_name(s: &str) -> Option<Intrinsic> {
        if let Some((head, tail)) = s.split_once('.') {
            return match head {
                "h_alloc" => Some(Intrinsic::HAlloc(Heap::from_name(tail)?)),
                "h_dealloc" => Some(Intrinsic::HFree(Heap::from_name(tail)?)),
                "check_heap" => Some(Intrinsic::CheckHeap(Heap::from_name(tail)?)),
                "redux_register" => Some(Intrinsic::ReduxRegister(ReduxOp::from_name(tail)?)),
                "parallel_invoke" => Some(Intrinsic::ParallelInvoke(tail.parse().ok()?)),
                _ => None,
            };
        }
        match s {
            "print_i64" => Some(Intrinsic::PrintI64),
            "print_f64" => Some(Intrinsic::PrintF64),
            "print_str" => Some(Intrinsic::PrintStr),
            "print_char" => Some(Intrinsic::PrintChar),
            "private_read" => Some(Intrinsic::PrivateRead),
            "private_write" => Some(Intrinsic::PrivateWrite),
            "predict" => Some(Intrinsic::Predict),
            "misspec" => Some(Intrinsic::Misspec),
            "sqrt" => Some(Intrinsic::Sqrt),
            "exp" => Some(Intrinsic::Exp),
            "log" => Some(Intrinsic::Log),
            "fabs" => Some(Intrinsic::FAbs),
            _ => None,
        }
    }
}

/// The operation performed by an instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum InstKind {
    /// Binary arithmetic: `bin op, a, b`.
    Bin(BinOp, Value, Value),
    /// Integer/pointer comparison producing `i1`.
    Icmp(CmpOp, Value, Value),
    /// Float comparison producing `i1` (ordered; any NaN operand yields
    /// `false` except for `Ne`, which yields `true`).
    Fcmp(CmpOp, Value, Value),
    /// Type conversion.
    Cast(CastOp, Value, Type),
    /// `load ty, ptr`.
    Load(Type, Value),
    /// `store ty val, ptr`.
    Store(Type, Value, Value),
    /// A named stack slot of fixed byte size, live for the enclosing call.
    Alloca {
        /// Slot size in bytes.
        size: u64,
        /// Source-level name (for profiling and diagnostics).
        name: String,
    },
    /// `malloc(size) -> ptr` from the general (untagged) heap.
    Malloc(Value),
    /// `free(ptr)` into the general heap.
    Free(Value),
    /// Address arithmetic: `base + index * scale + disp`.
    Gep {
        /// The base pointer.
        base: Value,
        /// The (i64) element index.
        index: Value,
        /// Bytes per element.
        scale: u64,
        /// Constant byte displacement (field offset).
        disp: i64,
    },
    /// Direct call.
    Call(FuncId, Vec<Value>),
    /// Call to a built-in with runtime support.
    CallIntrinsic(Intrinsic, Vec<Value>),
    /// SSA phi node; one incoming value per predecessor block.
    Phi(Type, Vec<(BlockId, Value)>),
    /// `select cond, then, else`.
    Select(Type, Value, Value, Value),
}

/// An instruction: an [`InstKind`] plus its result type (if it produces one).
#[derive(Debug, Clone, PartialEq)]
pub struct Inst {
    /// The operation.
    pub kind: InstKind,
    /// Result type; `None` for instructions used only for effect.
    pub ty: Option<Type>,
}

impl Inst {
    /// Visit every operand [`Value`].
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match &self.kind {
            InstKind::Bin(_, a, b) | InstKind::Icmp(_, a, b) | InstKind::Fcmp(_, a, b) => {
                f(*a);
                f(*b);
            }
            InstKind::Cast(_, v, _)
            | InstKind::Load(_, v)
            | InstKind::Free(v)
            | InstKind::Malloc(v) => f(*v),
            InstKind::Store(_, v, p) => {
                f(*v);
                f(*p);
            }
            InstKind::Alloca { .. } => {}
            InstKind::Gep { base, index, .. } => {
                f(*base);
                f(*index);
            }
            InstKind::Call(_, args) | InstKind::CallIntrinsic(_, args) => {
                for a in args {
                    f(*a);
                }
            }
            InstKind::Phi(_, incoming) => {
                for (_, v) in incoming {
                    f(*v);
                }
            }
            InstKind::Select(_, c, t, e) => {
                f(*c);
                f(*t);
                f(*e);
            }
        }
    }

    /// Rewrite every operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match &mut self.kind {
            InstKind::Bin(_, a, b) | InstKind::Icmp(_, a, b) | InstKind::Fcmp(_, a, b) => {
                *a = f(*a);
                *b = f(*b);
            }
            InstKind::Cast(_, v, _)
            | InstKind::Load(_, v)
            | InstKind::Free(v)
            | InstKind::Malloc(v) => *v = f(*v),
            InstKind::Store(_, v, p) => {
                *v = f(*v);
                *p = f(*p);
            }
            InstKind::Alloca { .. } => {}
            InstKind::Gep { base, index, .. } => {
                *base = f(*base);
                *index = f(*index);
            }
            InstKind::Call(_, args) | InstKind::CallIntrinsic(_, args) => {
                for a in args {
                    *a = f(*a);
                }
            }
            InstKind::Phi(_, incoming) => {
                for (_, v) in incoming {
                    *v = f(*v);
                }
            }
            InstKind::Select(_, c, t, e) => {
                *c = f(*c);
                *t = f(*t);
                *e = f(*e);
            }
        }
    }

    /// Whether this instruction reads or writes memory (including calls,
    /// which may do so transitively).
    pub fn touches_memory(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Load(..)
                | InstKind::Store(..)
                | InstKind::Malloc(..)
                | InstKind::Free(..)
                | InstKind::Call(..)
                | InstKind::CallIntrinsic(..)
        )
    }

    /// Whether this is an allocation site (alloca, malloc or `h_alloc`).
    pub fn is_allocation(&self) -> bool {
        matches!(
            self.kind,
            InstKind::Alloca { .. }
                | InstKind::Malloc(..)
                | InstKind::CallIntrinsic(Intrinsic::HAlloc(_), _)
        )
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// Return from the function, optionally with a value.
    Ret(Option<Value>),
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` value.
    CondBr(Value, BlockId, BlockId),
    /// Control never reaches here.
    Unreachable,
}

impl Term {
    /// Successor blocks of this terminator.
    pub fn successors(&self) -> impl Iterator<Item = BlockId> + '_ {
        let slice: smallvec::SmallVecIter = match self {
            Term::Br(b) => smallvec::SmallVecIter::One(*b),
            Term::CondBr(_, t, e) => smallvec::SmallVecIter::Two(*t, *e),
            Term::Ret(_) | Term::Unreachable => smallvec::SmallVecIter::Zero,
        };
        slice
    }

    /// Visit every operand [`Value`].
    pub fn for_each_operand(&self, mut f: impl FnMut(Value)) {
        match self {
            Term::Ret(Some(v)) => f(*v),
            Term::CondBr(c, _, _) => f(*c),
            _ => {}
        }
    }

    /// Rewrite every operand in place.
    pub fn map_operands(&mut self, mut f: impl FnMut(Value) -> Value) {
        match self {
            Term::Ret(Some(v)) => *v = f(*v),
            Term::CondBr(c, _, _) => *c = f(*c),
            _ => {}
        }
    }

    /// Rewrite successor block ids in place.
    pub fn map_successors(&mut self, mut f: impl FnMut(BlockId) -> BlockId) {
        match self {
            Term::Br(b) => *b = f(*b),
            Term::CondBr(_, t, e) => {
                *t = f(*t);
                *e = f(*e);
            }
            _ => {}
        }
    }
}

/// A tiny inline iterator over at most two successors, avoiding allocation.
mod smallvec {
    use crate::func::BlockId;

    pub enum SmallVecIter {
        Zero,
        One(BlockId),
        Two(BlockId, BlockId),
    }

    impl Iterator for SmallVecIter {
        type Item = BlockId;

        fn next(&mut self) -> Option<BlockId> {
            match *self {
                SmallVecIter::Zero => None,
                SmallVecIter::One(a) => {
                    *self = SmallVecIter::Zero;
                    Some(a)
                }
                SmallVecIter::Two(a, b) => {
                    *self = SmallVecIter::One(b);
                    Some(a)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heap_tags_are_distinct_and_exclude_shadow() {
        let mut tags: Vec<u64> = Heap::ALL.iter().map(|h| h.tag()).collect();
        tags.sort_unstable();
        tags.dedup();
        assert_eq!(tags.len(), Heap::ALL.len());
        assert!(!tags.contains(&SHADOW_TAG));
    }

    #[test]
    fn shadow_is_one_bit_from_private() {
        assert_eq!(Heap::Private.tag() ^ SHADOW_TAG, 1);
        let private_addr = Heap::Private.base() + 0x1234;
        let shadow_addr = private_addr | SHADOW_BIT;
        assert_eq!((shadow_addr >> HEAP_TAG_SHIFT) & HEAP_TAG_MASK, SHADOW_TAG);
        // The offset within the heap is preserved.
        assert_eq!(shadow_addr & !(HEAP_TAG_MASK << HEAP_TAG_SHIFT), 0x1234);
    }

    #[test]
    fn heap_of_addr_round_trip() {
        for h in Heap::ALL {
            assert_eq!(Heap::of_addr(h.base() + 42), Some(h));
            assert!(h.contains(h.base()));
        }
        assert_eq!(Heap::of_addr(0), None);
    }

    #[test]
    fn heap_name_round_trip() {
        for h in Heap::ALL {
            assert_eq!(Heap::from_name(h.name()), Some(h));
        }
        assert_eq!(Heap::from_name("bogus"), None);
    }

    #[test]
    fn binop_mnemonic_round_trip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::SDiv,
            BinOp::SRem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
            BinOp::FAdd,
            BinOp::FSub,
            BinOp::FMul,
            BinOp::FDiv,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn reduction_candidates() {
        assert!(BinOp::Add.is_reduction_candidate());
        assert!(BinOp::FAdd.is_reduction_candidate());
        assert!(BinOp::FMul.is_reduction_candidate());
        assert!(!BinOp::Sub.is_reduction_candidate());
        assert!(!BinOp::SDiv.is_reduction_candidate());
    }

    #[test]
    fn cmp_eval() {
        use std::cmp::Ordering::*;
        assert!(CmpOp::Lt.eval(Less));
        assert!(!CmpOp::Lt.eval(Equal));
        assert!(CmpOp::Le.eval(Equal));
        assert!(CmpOp::Ge.eval(Greater));
        assert!(CmpOp::Ne.eval(Less));
        assert!(!CmpOp::Eq.eval(Greater));
    }

    #[test]
    fn intrinsic_name_round_trip() {
        let all = [
            Intrinsic::PrintI64,
            Intrinsic::PrintF64,
            Intrinsic::PrintStr,
            Intrinsic::PrintChar,
            Intrinsic::HAlloc(Heap::ShortLived),
            Intrinsic::HFree(Heap::Private),
            Intrinsic::CheckHeap(Heap::ReadOnly),
            Intrinsic::PrivateRead,
            Intrinsic::PrivateWrite,
            Intrinsic::Predict,
            Intrinsic::Misspec,
            Intrinsic::Sqrt,
            Intrinsic::Exp,
            Intrinsic::Log,
            Intrinsic::FAbs,
        ];
        for i in all {
            assert_eq!(Intrinsic::from_name(&i.name()), Some(i), "{}", i.name());
        }
    }

    #[test]
    fn term_successors() {
        let t = Term::CondBr(Value::const_bool(true), BlockId::new(1), BlockId::new(2));
        let succ: Vec<_> = t.successors().collect();
        assert_eq!(succ, vec![BlockId::new(1), BlockId::new(2)]);
        assert_eq!(Term::Ret(None).successors().count(), 0);
    }
}
