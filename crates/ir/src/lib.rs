#![warn(missing_docs)]
//! # privateer-ir
//!
//! A small SSA-style intermediate representation used by the Privateer
//! reproduction (PLDI 2012, "Speculative Separation for Privatization and
//! Reductions").
//!
//! The paper's artifact is a set of LLVM passes; this crate provides the
//! subset of compiler infrastructure those passes actually consume:
//!
//! * a typed, SSA-based IR with loads/stores, pointer arithmetic, dynamic
//!   allocation, calls and control flow ([`Module`], [`Function`], [`Inst`]);
//! * a [`builder::FunctionBuilder`] for constructing IR programmatically;
//! * a textual [`printer`] and round-tripping [`parser`];
//! * a structural and SSA [`verify`]-er;
//! * control-flow analyses: [`cfg`](mod@cfg), [`dom`]inators, natural [`loops`],
//!   a [`callgraph`];
//! * static memory analyses used by the non-speculative baseline:
//!   [`analysis::pointsto`] and [`analysis::affine`] subscripts;
//! * [`counted`] loop matching used by the DOALL transformation.
//!
//! # Example
//!
//! ```
//! use privateer_ir::{builder::FunctionBuilder, Module, Type, Value};
//!
//! let mut module = Module::new("demo");
//! let mut b = FunctionBuilder::new("add1", vec![Type::I64], Some(Type::I64));
//! let p = b.param(0);
//! let one = Value::const_i64(1);
//! let sum = b.add(Type::I64, p, one);
//! b.ret(Some(sum));
//! let func = b.finish();
//! module.add_function(func);
//! privateer_ir::verify::verify_module(&module).unwrap();
//! ```

pub mod analysis;
pub mod builder;
pub mod callgraph;
pub mod cfg;
pub mod counted;
pub mod dom;
pub mod func;
pub mod inst;
pub mod loops;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod value;
pub mod verify;

pub use func::{Block, BlockId, FuncId, Function};
pub use inst::{BinOp, CastOp, CmpOp, Heap, Inst, InstId, InstKind, Intrinsic, ReduxOp, Term};
pub use module::{Global, GlobalId, GlobalInit, Module, PlanEntry};
pub use types::Type;
pub use value::Value;
