//! Natural-loop detection and the loop nest.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::func::{BlockId, Function};
use std::collections::BTreeSet;
use std::fmt;

/// Identifies a loop within a function's [`LoopInfo`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LoopId(u32);

impl LoopId {
    /// Create an id from a raw index.
    pub fn new(index: usize) -> LoopId {
        LoopId(u32::try_from(index).expect("loop index overflows u32"))
    }

    /// The raw index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LoopId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "loop{}", self.0)
    }
}

/// A natural loop: a header plus the set of blocks on paths from the header
/// to its back edges.
#[derive(Debug, Clone)]
pub struct Loop {
    /// The loop header (target of the back edges, dominates the body).
    pub header: BlockId,
    /// All blocks of the loop, including the header.
    pub blocks: BTreeSet<BlockId>,
    /// Sources of back edges into the header (latch blocks).
    pub latches: Vec<BlockId>,
    /// Enclosing loop, if any.
    pub parent: Option<LoopId>,
    /// Nesting depth; outermost loops have depth 1.
    pub depth: u32,
}

impl Loop {
    /// Whether `bb` belongs to this loop.
    pub fn contains(&self, bb: BlockId) -> bool {
        self.blocks.contains(&bb)
    }

    /// Blocks outside the loop that the loop can branch to.
    pub fn exit_targets(&self, func: &Function) -> BTreeSet<BlockId> {
        let mut out = BTreeSet::new();
        for &bb in &self.blocks {
            for s in func.block(bb).term.successors() {
                if !self.blocks.contains(&s) {
                    out.insert(s);
                }
            }
        }
        out
    }
}

/// All natural loops of a function, with nesting resolved.
///
/// Loops sharing a header are merged (as LLVM does). Irreducible control
/// flow is not detected as loops.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    loops: Vec<Loop>,
    /// Innermost loop of each block, if any.
    innermost: Vec<Option<LoopId>>,
}

impl LoopInfo {
    /// Detect loops in `func`.
    pub fn new(func: &Function, cfg: &Cfg, dom: &DomTree) -> LoopInfo {
        // 1. Find back edges a -> h (h dominates a), grouped by header.
        let mut by_header: Vec<(BlockId, Vec<BlockId>)> = Vec::new();
        for &bb in cfg.rpo() {
            for s in func.block(bb).term.successors() {
                if dom.dominates(s, bb) {
                    match by_header.iter_mut().find(|(h, _)| *h == s) {
                        Some((_, latches)) => latches.push(bb),
                        None => by_header.push((s, vec![bb])),
                    }
                }
            }
        }

        // 2. For each header, collect the natural loop body: reverse
        // reachability from the latches, stopping at the header.
        let mut loops: Vec<Loop> = Vec::new();
        for (header, latches) in by_header {
            let mut blocks = BTreeSet::new();
            blocks.insert(header);
            let mut stack: Vec<BlockId> = latches.clone();
            while let Some(bb) = stack.pop() {
                if blocks.insert(bb) {
                    for &p in cfg.preds(bb) {
                        // Unreachable predecessors are not part of any
                        // path from the header and must not join the loop.
                        if cfg.is_reachable(p) {
                            stack.push(p);
                        }
                    }
                }
            }
            loops.push(Loop {
                header,
                blocks,
                latches,
                parent: None,
                depth: 0,
            });
        }

        // 3. Resolve nesting: the parent of loop L is the smallest loop
        // strictly containing L's header other than L itself.
        let ids: Vec<LoopId> = (0..loops.len()).map(LoopId::new).collect();
        for &l in &ids {
            let header = loops[l.index()].header;
            let mut best: Option<LoopId> = None;
            for &m in &ids {
                if m == l || !loops[m.index()].contains(header) {
                    continue;
                }
                // m strictly contains l (distinct headers => superset).
                if loops[m.index()].header == header {
                    continue;
                }
                best = match best {
                    None => Some(m),
                    Some(b) if loops[m.index()].blocks.len() < loops[b.index()].blocks.len() => {
                        Some(m)
                    }
                    other => other,
                };
            }
            loops[l.index()].parent = best;
        }
        for i in 0..loops.len() {
            let mut depth = 1;
            let mut cur = loops[i].parent;
            while let Some(p) = cur {
                depth += 1;
                cur = loops[p.index()].parent;
            }
            loops[i].depth = depth;
        }

        // 4. Innermost loop per block: the containing loop of greatest depth.
        let mut innermost: Vec<Option<LoopId>> = vec![None; func.blocks.len()];
        for &l in &ids {
            for &bb in &loops[l.index()].blocks {
                innermost[bb.index()] = match innermost[bb.index()] {
                    None => Some(l),
                    Some(prev) if loops[l.index()].depth > loops[prev.index()].depth => Some(l),
                    other => other,
                };
            }
        }

        LoopInfo { loops, innermost }
    }

    /// Convenience constructor computing the CFG and dominators internally.
    pub fn compute(func: &Function) -> LoopInfo {
        let cfg = Cfg::new(func);
        let dom = DomTree::new(func, &cfg);
        LoopInfo::new(func, &cfg, &dom)
    }

    /// Borrow a loop.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn get(&self, id: LoopId) -> &Loop {
        &self.loops[id.index()]
    }

    /// Number of loops found.
    pub fn len(&self) -> usize {
        self.loops.len()
    }

    /// Whether the function has no loops.
    pub fn is_empty(&self) -> bool {
        self.loops.is_empty()
    }

    /// Iterate over `(id, loop)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (LoopId, &Loop)> {
        self.loops
            .iter()
            .enumerate()
            .map(|(i, l)| (LoopId::new(i), l))
    }

    /// The innermost loop containing `bb`, if any.
    pub fn innermost(&self, bb: BlockId) -> Option<LoopId> {
        self.innermost[bb.index()]
    }

    /// The loop whose header is `bb`, if any.
    pub fn loop_with_header(&self, bb: BlockId) -> Option<LoopId> {
        self.loops
            .iter()
            .position(|l| l.header == bb)
            .map(LoopId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::types::Type;
    use crate::value::Value;
    use crate::CmpOp;

    /// Build a classic doubly-nested counted loop.
    fn nested() -> Function {
        let mut b = FunctionBuilder::new("n", vec![Type::I64], None);
        let oh = b.new_block(); // outer header
        let ih = b.new_block(); // inner header
        let ib = b.new_block(); // inner body
        let ol = b.new_block(); // outer latch
        let exit = b.new_block();
        let n = b.param(0);
        b.br(oh);

        b.switch_to(oh);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, n);
        b.cond_br(c, ih, exit);

        b.switch_to(ih);
        let (j, j_phi) = b.phi(Type::I64);
        b.add_phi_incoming(j_phi, oh, Value::const_i64(0));
        let c2 = b.icmp(CmpOp::Lt, j, n);
        b.cond_br(c2, ib, ol);

        b.switch_to(ib);
        let j2 = b.add(Type::I64, j, Value::const_i64(1));
        b.add_phi_incoming(j_phi, ib, j2);
        b.br(ih);

        b.switch_to(ol);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, ol, i2);
        b.br(oh);

        b.switch_to(exit);
        b.ret(None);
        b.finish()
    }

    #[test]
    fn finds_two_nested_loops() {
        let f = nested();
        let li = LoopInfo::compute(&f);
        assert_eq!(li.len(), 2);
        let outer = li.loop_with_header(BlockId::new(1)).unwrap();
        let inner = li.loop_with_header(BlockId::new(2)).unwrap();
        assert_eq!(li.get(outer).depth, 1);
        assert_eq!(li.get(inner).depth, 2);
        assert_eq!(li.get(inner).parent, Some(outer));
        assert!(li.get(outer).blocks.is_superset(&li.get(inner).blocks));
    }

    #[test]
    fn innermost_assignment() {
        let f = nested();
        let li = LoopInfo::compute(&f);
        let outer = li.loop_with_header(BlockId::new(1)).unwrap();
        let inner = li.loop_with_header(BlockId::new(2)).unwrap();
        assert_eq!(li.innermost(BlockId::new(3)), Some(inner)); // inner body
        assert_eq!(li.innermost(BlockId::new(4)), Some(outer)); // outer latch
        assert_eq!(li.innermost(BlockId::new(0)), None); // entry
        assert_eq!(li.innermost(BlockId::new(5)), None); // exit
    }

    #[test]
    fn exit_targets() {
        let f = nested();
        let li = LoopInfo::compute(&f);
        let outer = li.loop_with_header(BlockId::new(1)).unwrap();
        let exits = li.get(outer).exit_targets(&f);
        assert_eq!(exits.into_iter().collect::<Vec<_>>(), vec![BlockId::new(5)]);
    }

    #[test]
    fn no_loops_in_straight_line() {
        let mut b = FunctionBuilder::new("s", vec![], None);
        b.ret(None);
        let f = b.finish();
        assert!(LoopInfo::compute(&f).is_empty());
    }
}
