//! Modules and global variables.

use crate::func::{FuncId, Function};
use crate::inst::Heap;
use std::fmt;

macro_rules! id_type {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(u32);

        impl $name {
            /// Create an id from a raw index.
            pub fn new(index: usize) -> $name {
                $name(u32::try_from(index).expect("id index overflows u32"))
            }

            /// The raw index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifies a global variable within a [`Module`].
    GlobalId,
    "@g"
);

/// Initial contents of a global variable.
#[derive(Debug, Clone, PartialEq)]
pub enum GlobalInit {
    /// Zero-initialized.
    Zero,
    /// Raw bytes (padded with zeros to the global's size).
    Bytes(Vec<u8>),
    /// Little-endian `i64` values.
    I64s(Vec<i64>),
    /// Little-endian `i32` values.
    I32s(Vec<i32>),
    /// Little-endian `f64` values.
    F64s(Vec<f64>),
}

impl GlobalInit {
    /// Render the initializer to bytes, padded/truncated to `size`.
    pub fn to_bytes(&self, size: u64) -> Vec<u8> {
        let mut out = match self {
            GlobalInit::Zero => Vec::new(),
            GlobalInit::Bytes(b) => b.clone(),
            GlobalInit::I64s(vs) => vs.iter().flat_map(|v| v.to_le_bytes()).collect(),
            GlobalInit::I32s(vs) => vs.iter().flat_map(|v| v.to_le_bytes()).collect(),
            GlobalInit::F64s(vs) => vs.iter().flat_map(|v| v.to_le_bytes()).collect(),
        };
        out.resize(size as usize, 0);
        out
    }
}

/// A module-level global variable.
///
/// Globals are memory objects with static names — the profiler assigns them
/// names directly (§4.1). The Privateer replace-allocation pass (§4.4)
/// retargets a global into a logical heap by setting [`Global::heap`]; the
/// loader then places its storage inside that heap's address range (the
/// paper does the same with a pre-`main` initializer).
#[derive(Debug, Clone, PartialEq)]
pub struct Global {
    /// Symbolic name (unique within the module).
    pub name: String,
    /// Size in bytes.
    pub size: u64,
    /// Initial contents.
    pub init: GlobalInit,
    /// Logical heap this global is assigned to, if any. `None` places it in
    /// ordinary (untagged) global storage.
    pub heap: Option<Heap>,
}

/// A parallel-invocation plan: the target of a
/// [`crate::inst::Intrinsic::ParallelInvoke`] intrinsic.
///
/// The Privateer transformation outlines each selected loop's body into a
/// function `fn body(iter: i64)` and records it here; the speculative DOALL
/// engine (crate `privateer-runtime`) distributes `body(lo..hi)` across
/// workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanEntry {
    /// The outlined speculative loop body, `fn(i64) -> void`, with
    /// separation/privacy/prediction checks.
    pub body: FuncId,
    /// The outlined *non-speculative* body used for sequential recovery
    /// (§5.3): allocation replacement only, no checks, no value-prediction
    /// re-materialization.
    pub recovery: FuncId,
}

/// A whole program: functions plus globals.
///
/// By convention execution starts at the function named `main`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Module {
    /// Module name (for diagnostics).
    pub name: String,
    /// Functions; `FuncId` indexes this vector.
    pub functions: Vec<Function>,
    /// Globals; `GlobalId` indexes this vector.
    pub globals: Vec<Global>,
    /// Parallel-invocation plans, indexed by the `ParallelInvoke` payload.
    pub plans: Vec<PlanEntry>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            functions: Vec::new(),
            globals: Vec::new(),
            plans: Vec::new(),
        }
    }

    /// Add a function, returning its id.
    pub fn add_function(&mut self, f: Function) -> FuncId {
        self.functions.push(f);
        FuncId::new(self.functions.len() - 1)
    }

    /// Add a zero-initialized global of `size` bytes.
    pub fn add_global(&mut self, name: impl Into<String>, size: u64) -> GlobalId {
        self.add_global_init(name, size, GlobalInit::Zero)
    }

    /// Add a global with explicit initial contents.
    pub fn add_global_init(
        &mut self,
        name: impl Into<String>,
        size: u64,
        init: GlobalInit,
    ) -> GlobalId {
        self.globals.push(Global {
            name: name.into(),
            size,
            init,
            heap: None,
        });
        GlobalId::new(self.globals.len() - 1)
    }

    /// Borrow a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Mutably borrow a function.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn func_mut(&mut self, id: FuncId) -> &mut Function {
        &mut self.functions[id.index()]
    }

    /// Borrow a global.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global(&self, id: GlobalId) -> &Global {
        &self.globals[id.index()]
    }

    /// Mutably borrow a global.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn global_mut(&mut self, id: GlobalId) -> &mut Global {
        &mut self.globals[id.index()]
    }

    /// Look up a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(FuncId::new)
    }

    /// Look up a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(GlobalId::new)
    }

    /// The entry function (`main`), if present.
    pub fn main(&self) -> Option<FuncId> {
        self.func_by_name("main")
    }

    /// Iterate over all function ids.
    pub fn func_ids(&self) -> impl Iterator<Item = FuncId> {
        (0..self.functions.len()).map(FuncId::new)
    }

    /// Iterate over all global ids.
    pub fn global_ids(&self) -> impl Iterator<Item = GlobalId> {
        (0..self.globals.len()).map(GlobalId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type;

    #[test]
    fn lookup_by_name() {
        let mut m = Module::new("t");
        let f = m.add_function(Function::new("main", vec![], None));
        let g = m.add_global("table", 64);
        assert_eq!(m.func_by_name("main"), Some(f));
        assert_eq!(m.main(), Some(f));
        assert_eq!(m.global_by_name("table"), Some(g));
        assert_eq!(m.global_by_name("nope"), None);
        assert_eq!(m.global(g).size, 64);
        assert_eq!(m.global(g).heap, None);
    }

    #[test]
    fn global_init_bytes() {
        assert_eq!(GlobalInit::Zero.to_bytes(4), vec![0, 0, 0, 0]);
        assert_eq!(
            GlobalInit::I32s(vec![1, -1]).to_bytes(8),
            vec![1, 0, 0, 0, 255, 255, 255, 255]
        );
        // Truncation and padding.
        assert_eq!(GlobalInit::Bytes(vec![9, 9, 9]).to_bytes(2), vec![9, 9]);
        assert_eq!(GlobalInit::Bytes(vec![7]).to_bytes(3), vec![7, 0, 0]);
        let f = GlobalInit::F64s(vec![1.0]).to_bytes(8);
        assert_eq!(f64::from_le_bytes(f.try_into().unwrap()), 1.0);
    }

    #[test]
    fn function_signature_kept() {
        let mut m = Module::new("t");
        let f = m.add_function(Function::new(
            "f",
            vec![Type::I64, Type::Ptr],
            Some(Type::F64),
        ));
        assert_eq!(m.func(f).params, vec![Type::I64, Type::Ptr]);
        assert_eq!(m.func(f).ret, Some(Type::F64));
    }
}
