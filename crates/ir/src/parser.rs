//! Parser for the textual form produced by [`crate::printer`].
//!
//! The format is line-oriented; `;` starts a comment. See the printer for
//! the grammar. The parser guarantees `print(parse(text))` is identical to
//! `print` of the original module when `text` was produced by the printer.

use crate::func::{BlockId, Function, InstId};
use crate::inst::{BinOp, CastOp, CmpOp, Heap, Inst, InstKind, Intrinsic, Term};
use crate::module::{GlobalInit, Module};
use crate::types::Type;
use crate::value::Value;
use std::fmt;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

type Result<T> = std::result::Result<T, ParseError>;

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a module from text.
///
/// # Errors
///
/// Returns a [`ParseError`] pointing at the first malformed line.
pub fn parse_module(text: &str) -> Result<Module> {
    let lines: Vec<(usize, &str)> = text
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let l = match l.find(';') {
                Some(pos) => &l[..pos],
                None => l,
            };
            (i + 1, l.trim())
        })
        .filter(|(_, l)| !l.is_empty())
        .collect();

    let mut module = Module::new("");
    let mut pos = 0;

    // Pass 1: headers. Scan for function signatures so calls resolve.
    let mut sigs: Vec<(String, Vec<Type>, Option<Type>)> = Vec::new();
    for &(ln, line) in &lines {
        if let Some(rest) = line.strip_prefix("fn ") {
            sigs.push(parse_signature(ln, rest)?);
        }
    }
    let func_by_name = |ln: usize, name: &str| -> Result<crate::func::FuncId> {
        sigs.iter()
            .position(|(n, _, _)| n == name)
            .map(crate::func::FuncId::new)
            .ok_or(ParseError {
                line: ln,
                msg: format!("call to unknown function \"{name}\""),
            })
    };

    // Pass 2: full parse.
    while pos < lines.len() {
        let (ln, line) = lines[pos];
        if let Some(rest) = line.strip_prefix("module ") {
            module.name = parse_quoted(ln, rest.trim())?.0.to_string();
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("global ") {
            module.globals.push(parse_global(ln, rest)?);
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("plan ") {
            let rest = rest.trim().trim_start_matches('@');
            let (name, tail) = parse_quoted(ln, rest)?;
            let body = func_by_name(ln, name)?;
            let tail = tail.trim();
            let Some(rec) = tail.strip_prefix("recovery ") else {
                return err(ln, "plan missing `recovery`");
            };
            let (rname, _) = parse_quoted(ln, rec.trim().trim_start_matches('@'))?;
            let recovery = func_by_name(ln, rname)?;
            module
                .plans
                .push(crate::module::PlanEntry { body, recovery });
            pos += 1;
        } else if let Some(rest) = line.strip_prefix("fn ") {
            let (name, params, ret) = parse_signature(ln, rest)?;
            let mut func = Function::new(name, params, ret);
            func.blocks.clear(); // blocks come from `bbN:` labels
            pos += 1;
            let mut cur: Option<BlockId> = None;
            loop {
                if pos >= lines.len() {
                    return err(ln, "unterminated function body");
                }
                let (iln, iline) = lines[pos];
                pos += 1;
                if iline == "}" {
                    break;
                }
                if let Some(label) = iline.strip_suffix(':') {
                    let id = parse_block_label(iln, label)?;
                    while func.blocks.len() <= id.index() {
                        func.add_block();
                    }
                    cur = Some(id);
                    continue;
                }
                let bb = match cur {
                    Some(b) => b,
                    None => return err(iln, "instruction outside any block"),
                };
                if let Some(term) = parse_terminator(iln, iline, &func_by_name)? {
                    func.block_mut(bb).term = term;
                    continue;
                }
                let inst = parse_inst(iln, iline, &func_by_name, func.insts.len())?;
                let id = func.add_inst(inst);
                func.block_mut(bb).insts.push(id);
            }
            if func.blocks.is_empty() {
                func.add_block();
            }
            module.functions.push(func);
        } else {
            return err(ln, format!("unexpected line `{line}`"));
        }
    }
    Ok(module)
}

/// Parse `"name"` returning the contents and the remainder after the close
/// quote.
fn parse_quoted(ln: usize, s: &str) -> Result<(&str, &str)> {
    let s = s.trim_start();
    let Some(body) = s.strip_prefix('"') else {
        return err(ln, format!("expected quoted string at `{s}`"));
    };
    match body.find('"') {
        Some(end) => Ok((&body[..end], &body[end + 1..])),
        None => err(ln, "unterminated string"),
    }
}

fn parse_type(ln: usize, s: &str) -> Result<Type> {
    s.parse::<Type>().map_err(|e| ParseError {
        line: ln,
        msg: e.to_string(),
    })
}

/// Parse `"name"(ty, ty) -> ret {` (the trailing `{` is optional here).
fn parse_signature(ln: usize, rest: &str) -> Result<(String, Vec<Type>, Option<Type>)> {
    let (name, after) = parse_quoted(ln, rest)?;
    let after = after.trim_start();
    let Some(after) = after.strip_prefix('(') else {
        return err(ln, "expected `(` after function name");
    };
    let Some(close) = after.find(')') else {
        return err(ln, "expected `)` in signature");
    };
    let params_src = &after[..close];
    let mut params = Vec::new();
    for p in params_src.split(',') {
        let p = p.trim();
        if !p.is_empty() {
            params.push(parse_type(ln, p)?);
        }
    }
    let tail = after[close + 1..].trim();
    let Some(tail) = tail.strip_prefix("->") else {
        return err(ln, "expected `->` in signature");
    };
    let tail = tail.trim().trim_end_matches('{').trim();
    let ret = if tail == "void" {
        None
    } else {
        Some(parse_type(ln, tail)?)
    };
    Ok((name.to_string(), params, ret))
}

fn parse_block_label(ln: usize, s: &str) -> Result<BlockId> {
    match s.strip_prefix("bb").and_then(|n| n.parse::<usize>().ok()) {
        Some(n) => Ok(BlockId::new(n)),
        None => err(ln, format!("bad block label `{s}`")),
    }
}

fn parse_block_ref(ln: usize, s: &str) -> Result<BlockId> {
    parse_block_label(ln, s.trim())
}

/// Parse `global "name" size N [heap H] init ...` (after the keyword).
fn parse_global(ln: usize, rest: &str) -> Result<crate::module::Global> {
    let (name, after) = parse_quoted(ln, rest)?;
    let mut after = after.trim();
    let Some(sz) = after.strip_prefix("size ") else {
        return err(ln, "expected `size`");
    };
    let (size_str, tail) = sz.split_once(' ').unwrap_or((sz, ""));
    let size: u64 = size_str.parse().map_err(|_| ParseError {
        line: ln,
        msg: format!("bad size `{size_str}`"),
    })?;
    after = tail.trim();
    let mut heap = None;
    if let Some(h) = after.strip_prefix("heap ") {
        let (hname, tail) = h.split_once(' ').unwrap_or((h, ""));
        heap = Some(Heap::from_name(hname).ok_or(ParseError {
            line: ln,
            msg: format!("unknown heap `{hname}`"),
        })?);
        after = tail.trim();
    }
    let Some(init_src) = after.strip_prefix("init ") else {
        return err(ln, "expected `init`");
    };
    let init_src = init_src.trim();
    let init = if init_src == "zero" {
        GlobalInit::Zero
    } else if let Some(list) = init_src.strip_prefix("bytes ") {
        GlobalInit::Bytes(parse_num_list(ln, list)?)
    } else if let Some(list) = init_src.strip_prefix("i64 ") {
        GlobalInit::I64s(parse_num_list(ln, list)?)
    } else if let Some(list) = init_src.strip_prefix("i32 ") {
        GlobalInit::I32s(parse_num_list(ln, list)?)
    } else if let Some(list) = init_src.strip_prefix("f64 ") {
        GlobalInit::F64s(parse_num_list(ln, list)?)
    } else {
        return err(ln, format!("bad init `{init_src}`"));
    };
    Ok(crate::module::Global {
        name: name.to_string(),
        size,
        init,
        heap,
    })
}

fn parse_num_list<T: std::str::FromStr>(ln: usize, s: &str) -> Result<Vec<T>> {
    let s = s.trim();
    let inner = s
        .strip_prefix('[')
        .and_then(|s| s.strip_suffix(']'))
        .ok_or(ParseError {
            line: ln,
            msg: format!("expected `[...]`, got `{s}`"),
        })?;
    let mut out = Vec::new();
    for item in inner.split(',') {
        let item = item.trim();
        if item.is_empty() {
            continue;
        }
        out.push(item.parse::<T>().map_err(|_| ParseError {
            line: ln,
            msg: format!("bad number `{item}`"),
        })?);
    }
    Ok(out)
}

fn parse_value(ln: usize, s: &str) -> Result<Value> {
    let s = s.trim();
    if s == "null" {
        return Ok(Value::Null);
    }
    if let Some(rest) = s.strip_prefix("%arg") {
        return match rest.parse::<u32>() {
            Ok(n) => Ok(Value::Param(n)),
            Err(_) => err(ln, format!("bad parameter `{s}`")),
        };
    }
    if let Some(rest) = s.strip_prefix('%') {
        return match rest.parse::<usize>() {
            Ok(n) => Ok(Value::Inst(InstId::new(n))),
            Err(_) => err(ln, format!("bad instruction reference `{s}`")),
        };
    }
    if let Some(rest) = s.strip_prefix("@g") {
        return match rest.parse::<usize>() {
            Ok(n) => Ok(Value::Global(crate::module::GlobalId::new(n))),
            Err(_) => err(ln, format!("bad global reference `{s}`")),
        };
    }
    if let Some(rest) = s.strip_prefix("f64:bits:") {
        let hex = rest.trim_start_matches("0x");
        return match u64::from_str_radix(hex, 16) {
            Ok(bits) => Ok(Value::ConstF64(bits)),
            Err(_) => err(ln, format!("bad float bits `{s}`")),
        };
    }
    if let Some(rest) = s.strip_prefix("f64:") {
        return match rest.parse::<f64>() {
            Ok(f) => Ok(Value::const_f64(f)),
            Err(_) => err(ln, format!("bad float `{s}`")),
        };
    }
    if let Some((ty, lit)) = s.split_once(':') {
        let ty = parse_type(ln, ty)?;
        return match lit.parse::<i64>() {
            Ok(v) => Ok(Value::ConstInt(v, ty)),
            Err(_) => err(ln, format!("bad integer `{s}`")),
        };
    }
    err(ln, format!("unrecognized value `{s}`"))
}

/// Split a comma-separated operand list, respecting no nesting (operands
/// never contain commas).
fn parse_values(ln: usize, s: &str) -> Result<Vec<Value>> {
    let s = s.trim();
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(',').map(|p| parse_value(ln, p)).collect()
}

fn parse_terminator(
    ln: usize,
    line: &str,
    _func_by_name: &impl Fn(usize, &str) -> Result<crate::func::FuncId>,
) -> Result<Option<Term>> {
    if line == "ret" {
        return Ok(Some(Term::Ret(None)));
    }
    if let Some(v) = line.strip_prefix("ret ") {
        return Ok(Some(Term::Ret(Some(parse_value(ln, v)?))));
    }
    if let Some(t) = line.strip_prefix("br ") {
        return Ok(Some(Term::Br(parse_block_ref(ln, t)?)));
    }
    if let Some(rest) = line.strip_prefix("condbr ") {
        let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
        if parts.len() != 3 {
            return err(ln, "condbr takes cond, then, else");
        }
        return Ok(Some(Term::CondBr(
            parse_value(ln, parts[0])?,
            parse_block_ref(ln, parts[1])?,
            parse_block_ref(ln, parts[2])?,
        )));
    }
    if line == "unreachable" {
        return Ok(Some(Term::Unreachable));
    }
    Ok(None)
}

fn parse_inst(
    ln: usize,
    line: &str,
    func_by_name: &impl Fn(usize, &str) -> Result<crate::func::FuncId>,
    next_id: usize,
) -> Result<Inst> {
    // Optional `%N = ` prefix; N must match the append position.
    let (has_result, body) = match line.strip_prefix('%') {
        Some(rest) if !line.starts_with("%arg") => {
            let Some((num, tail)) = rest.split_once('=') else {
                return err(ln, format!("bad instruction `{line}`"));
            };
            let n: usize = num.trim().parse().map_err(|_| ParseError {
                line: ln,
                msg: format!("bad result id `%{}`", num.trim()),
            })?;
            if n != next_id {
                return err(
                    ln,
                    format!("result id %{n} does not match position %{next_id}"),
                );
            }
            (true, tail.trim())
        }
        _ => (false, line),
    };

    let (mnemonic, rest) = body.split_once(' ').unwrap_or((body, ""));
    let rest = rest.trim();

    let inst = match mnemonic {
        "icmp" | "fcmp" => {
            let (pred, ops) = rest.split_once(' ').ok_or(ParseError {
                line: ln,
                msg: "missing predicate".into(),
            })?;
            let pred = CmpOp::from_mnemonic(pred).ok_or(ParseError {
                line: ln,
                msg: format!("unknown predicate `{pred}`"),
            })?;
            let vals = parse_values(ln, ops)?;
            if vals.len() != 2 {
                return err(ln, "comparison takes two operands");
            }
            let kind = if mnemonic == "icmp" {
                InstKind::Icmp(pred, vals[0], vals[1])
            } else {
                InstKind::Fcmp(pred, vals[0], vals[1])
            };
            Inst {
                kind,
                ty: Some(Type::I1),
            }
        }
        "cast" => {
            let (op, tail) = rest.split_once(' ').ok_or(ParseError {
                line: ln,
                msg: "missing cast op".into(),
            })?;
            let op = CastOp::from_mnemonic(op).ok_or(ParseError {
                line: ln,
                msg: format!("unknown cast `{op}`"),
            })?;
            let (v, to) = tail.rsplit_once(" to ").ok_or(ParseError {
                line: ln,
                msg: "cast missing ` to `".into(),
            })?;
            let to = parse_type(ln, to.trim())?;
            Inst {
                kind: InstKind::Cast(op, parse_value(ln, v)?, to),
                ty: Some(to),
            }
        }
        "load" => {
            let (ty, p) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "load takes type, ptr".into(),
            })?;
            let ty = parse_type(ln, ty.trim())?;
            Inst {
                kind: InstKind::Load(ty, parse_value(ln, p)?),
                ty: Some(ty),
            }
        }
        "store" => {
            let (ty_val, p) = rest.rsplit_once(',').ok_or(ParseError {
                line: ln,
                msg: "store takes `ty val, ptr`".into(),
            })?;
            let (ty, val) = ty_val.trim().split_once(' ').ok_or(ParseError {
                line: ln,
                msg: "store missing value".into(),
            })?;
            let ty = parse_type(ln, ty)?;
            Inst {
                kind: InstKind::Store(ty, parse_value(ln, val)?, parse_value(ln, p)?),
                ty: None,
            }
        }
        "alloca" => {
            let (size, name) = rest.split_once(',').ok_or(ParseError {
                line: ln,
                msg: "alloca takes size, name".into(),
            })?;
            let size: u64 = size.trim().parse().map_err(|_| ParseError {
                line: ln,
                msg: format!("bad alloca size `{size}`"),
            })?;
            let (name, _) = parse_quoted(ln, name)?;
            Inst {
                kind: InstKind::Alloca {
                    size,
                    name: name.to_string(),
                },
                ty: Some(Type::Ptr),
            }
        }
        "malloc" => Inst {
            kind: InstKind::Malloc(parse_value(ln, rest)?),
            ty: Some(Type::Ptr),
        },
        "free" => Inst {
            kind: InstKind::Free(parse_value(ln, rest)?),
            ty: None,
        },
        "gep" => {
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            if parts.len() != 4 {
                return err(ln, "gep takes base, index, scale S, disp D");
            }
            let scale = parts[2]
                .strip_prefix("scale ")
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or(ParseError {
                    line: ln,
                    msg: format!("bad scale `{}`", parts[2]),
                })?;
            let disp = parts[3]
                .strip_prefix("disp ")
                .and_then(|s| s.parse::<i64>().ok())
                .ok_or(ParseError {
                    line: ln,
                    msg: format!("bad disp `{}`", parts[3]),
                })?;
            Inst {
                kind: InstKind::Gep {
                    base: parse_value(ln, parts[0])?,
                    index: parse_value(ln, parts[1])?,
                    scale,
                    disp,
                },
                ty: Some(Type::Ptr),
            }
        }
        "call" => {
            let rest = rest.trim_start_matches('@');
            let (name, tail) = parse_quoted(ln, rest)?;
            let args_src = tail
                .trim()
                .strip_prefix('(')
                .and_then(|s| s.strip_suffix(')'))
                .ok_or(ParseError {
                    line: ln,
                    msg: "call missing argument list".into(),
                })?;
            let callee = func_by_name(ln, name)?;
            Inst {
                kind: InstKind::Call(callee, parse_values(ln, args_src)?),
                ty: None, // fixed up by caller below via has_result? -- see note
            }
        }
        "intr" => {
            let open = rest.find('(').ok_or(ParseError {
                line: ln,
                msg: "intrinsic missing `(`".into(),
            })?;
            let name = &rest[..open];
            let args_src = rest[open + 1..].strip_suffix(')').ok_or(ParseError {
                line: ln,
                msg: "intrinsic missing `)`".into(),
            })?;
            let which = Intrinsic::from_name(name).ok_or(ParseError {
                line: ln,
                msg: format!("unknown intrinsic `{name}`"),
            })?;
            Inst {
                kind: InstKind::CallIntrinsic(which, parse_values(ln, args_src)?),
                ty: which.result_type(),
            }
        }
        "phi" => {
            let (ty, tail) = rest.split_once(' ').ok_or(ParseError {
                line: ln,
                msg: "phi missing type".into(),
            })?;
            let ty = parse_type(ln, ty)?;
            let mut incoming = Vec::new();
            let mut src = tail.trim();
            while !src.is_empty() {
                let Some(start) = src.find('[') else { break };
                let end = src[start..].find(']').ok_or(ParseError {
                    line: ln,
                    msg: "phi missing `]`".into(),
                })? + start;
                let item = &src[start + 1..end];
                let (bb, v) = item.split_once(':').ok_or(ParseError {
                    line: ln,
                    msg: "phi entry missing `:`".into(),
                })?;
                incoming.push((parse_block_ref(ln, bb)?, parse_value(ln, v)?));
                src = &src[end + 1..];
            }
            Inst {
                kind: InstKind::Phi(ty, incoming),
                ty: Some(ty),
            }
        }
        "select" => {
            let (ty, tail) = rest.split_once(' ').ok_or(ParseError {
                line: ln,
                msg: "select missing type".into(),
            })?;
            let ty = parse_type(ln, ty)?;
            let vals = parse_values(ln, tail)?;
            if vals.len() != 3 {
                return err(ln, "select takes three operands");
            }
            Inst {
                kind: InstKind::Select(ty, vals[0], vals[1], vals[2]),
                ty: Some(ty),
            }
        }
        bin => {
            let op = BinOp::from_mnemonic(bin).ok_or(ParseError {
                line: ln,
                msg: format!("unknown instruction `{bin}`"),
            })?;
            let (ty, ops) = rest.split_once(' ').ok_or(ParseError {
                line: ln,
                msg: "binop missing type".into(),
            })?;
            let ty = parse_type(ln, ty)?;
            let vals = parse_values(ln, ops)?;
            if vals.len() != 2 {
                return err(ln, "binop takes two operands");
            }
            Inst {
                kind: InstKind::Bin(op, vals[0], vals[1]),
                ty: Some(ty),
            }
        }
    };

    // Calls print their result implicitly: `%N = call ...` means the callee
    // returns a value. The callee's return *type* is recovered here.
    if let InstKind::Call(callee, _) = &inst.kind {
        let callee = *callee;
        let _ = callee;
        if has_result {
            // The return type is filled in by `fixup_call_types` once the
            // module is complete; mark with a placeholder.
            return Ok(Inst {
                kind: inst.kind,
                ty: Some(Type::I64), // placeholder, fixed by parse_module_text
            });
        }
        return Ok(inst);
    }

    if has_result != inst.ty.is_some() {
        return err(
            ln,
            format!(
                "instruction {} a result but {} one",
                if inst.ty.is_some() {
                    "produces"
                } else {
                    "does not produce"
                },
                if has_result {
                    "was assigned"
                } else {
                    "was not assigned"
                }
            ),
        );
    }
    Ok(inst)
}

/// Parse and then fix up call result types from callee signatures, and
/// verify nothing is structurally off. This is the entry point users want.
///
/// # Errors
///
/// Returns a [`ParseError`] for malformed text.
pub fn parse(text: &str) -> Result<Module> {
    let mut module = parse_module(text)?;
    // Fix call result types to the callee's return type.
    let rets: Vec<Option<Type>> = module.functions.iter().map(|f| f.ret).collect();
    for func in &mut module.functions {
        for inst in &mut func.insts {
            if let InstKind::Call(callee, _) = inst.kind {
                let want = rets[callee.index()];
                if inst.ty.is_some() {
                    inst.ty = want;
                } else if want.is_some() {
                    // `call` used for effect only; keep ty = None? The IR
                    // requires call ty == callee ret, so propagate it but the
                    // value is simply never referenced.
                    inst.ty = want;
                }
            }
        }
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::print_module;

    fn round_trip(m: &Module) {
        let text = print_module(m);
        let parsed = parse(&text).unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        let text2 = print_module(&parsed);
        assert_eq!(text, text2, "print/parse/print not stable");
    }

    #[test]
    fn round_trip_rich_module() {
        let mut m = Module::new("rich");
        let g = m.add_global_init("tbl", 16, GlobalInit::I32s(vec![1, 2, 3, 4]));
        m.add_global_init("msg", 3, GlobalInit::Bytes(vec![104, 105, 10]));
        m.global_mut(g).heap = Some(Heap::ReadOnly);

        let mut helper = FunctionBuilder::new("helper", vec![Type::I64], Some(Type::I64));
        let x = helper.add(Type::I64, helper.param(0), Value::const_i64(1));
        helper.ret(Some(x));
        let helper_id = m.add_function(helper.finish());

        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(16));
        let q = b.gep(p, Value::const_i64(1), 8, 4);
        b.store(Type::F64, Value::const_f64(0.5), q);
        let v = b.load(Type::F64, q);
        let c = b.fcmp(CmpOp::Gt, v, Value::const_f64(0.0));
        let s = b.select(Type::F64, c, v, Value::const_f64(-1.0));
        b.print_f64(s);
        let r = b
            .call(helper_id, vec![Value::const_i64(41)], Some(Type::I64))
            .unwrap();
        b.print_i64(r);
        let ic = b.sitofp(r);
        b.print_f64(ic);
        b.intrinsic(Intrinsic::CheckHeap(Heap::ReadOnly), vec![Value::Global(g)]);
        b.free(p);
        b.ret(None);
        m.add_function(b.finish());
        round_trip(&m);
    }

    #[test]
    fn round_trip_loop_with_phi() {
        let mut m = Module::new("looped");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let n = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, n);
        b.br(header);
        b.switch_to(exit);
        b.ret(None);
        m.add_function(b.finish());
        round_trip(&m);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = r#"
module "c"  ; a comment

fn "main"() -> void {
bb0:
  ; nothing here
  ret
}
"#;
        let m = parse(text).unwrap();
        assert_eq!(m.name, "c");
        assert_eq!(m.functions.len(), 1);
    }

    #[test]
    fn error_reports_line() {
        let text = "module \"m\"\nfn \"f\"() -> void {\nbb0:\n  frobnicate\n}\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 4);
        assert!(e.msg.contains("frobnicate"));
    }

    #[test]
    fn special_float_constants() {
        let mut m = Module::new("inf");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let v = b.fadd(Value::const_f64(f64::INFINITY), Value::const_f64(f64::NAN));
        b.print_f64(v);
        b.ret(None);
        m.add_function(b.finish());
        round_trip(&m);
    }
}
