//! Textual form of modules.
//!
//! The printer renumbers instructions in layout order so the output is
//! stable and round-trips through the [`crate::parser`]:
//! `print(parse(print(m))) == print(m)`.

use crate::func::{Function, InstId};
use crate::inst::{InstKind, Term};
use crate::module::{GlobalInit, Module};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt::Write;

/// Format a value operand in parseable form.
fn fmt_val(v: Value, renum: &HashMap<InstId, usize>) -> String {
    match v {
        Value::Inst(id) => match renum.get(&id) {
            Some(n) => format!("%{n}"),
            None => format!("%unplaced{}", id.index()),
        },
        Value::Param(n) => format!("%arg{n}"),
        Value::ConstInt(v, ty) => format!("{ty}:{v}"),
        Value::ConstF64(bits) => {
            let f = f64::from_bits(bits);
            if f.is_finite() {
                // `{:?}` keeps a decimal point/exponent so the parser can
                // tell floats from ints, and round-trips exactly.
                format!("f64:{f:?}")
            } else {
                format!("f64:bits:{bits:#x}")
            }
        }
        Value::Global(g) => format!("@g{}", g.index()),
        Value::Null => "null".to_string(),
    }
}

/// Print one function. `module` provides callee names.
pub fn print_function(module: &Module, func: &Function) -> String {
    let mut renum: HashMap<InstId, usize> = HashMap::new();
    for (n, (_, i)) in func.inst_ids_in_order().enumerate() {
        renum.insert(i, n);
    }

    let mut out = String::new();
    let params = func
        .params
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let ret = match func.ret {
        Some(t) => t.to_string(),
        None => "void".to_string(),
    };
    let _ = writeln!(out, "fn \"{}\"({}) -> {} {{", func.name, params, ret);

    let v = |val: Value| fmt_val(val, &renum);

    for bb in func.block_ids() {
        let _ = writeln!(out, "{bb}:");
        for &i in &func.block(bb).insts {
            let inst = func.inst(i);
            let lhs = match inst.ty {
                Some(_) => format!("%{} = ", renum[&i]),
                None => String::new(),
            };
            let body = match &inst.kind {
                InstKind::Bin(op, a, b) => {
                    format!(
                        "{} {} {}, {}",
                        op.mnemonic(),
                        inst.ty.expect("binop type"),
                        v(*a),
                        v(*b)
                    )
                }
                InstKind::Icmp(op, a, b) => format!("icmp {} {}, {}", op.mnemonic(), v(*a), v(*b)),
                InstKind::Fcmp(op, a, b) => format!("fcmp {} {}, {}", op.mnemonic(), v(*a), v(*b)),
                InstKind::Cast(op, x, to) => format!("cast {} {} to {}", op.mnemonic(), v(*x), to),
                InstKind::Load(ty, p) => format!("load {ty}, {}", v(*p)),
                InstKind::Store(ty, val, p) => format!("store {ty} {}, {}", v(*val), v(*p)),
                InstKind::Alloca { size, name } => format!("alloca {size}, \"{name}\""),
                InstKind::Malloc(s) => format!("malloc {}", v(*s)),
                InstKind::Free(p) => format!("free {}", v(*p)),
                InstKind::Gep {
                    base,
                    index,
                    scale,
                    disp,
                } => format!(
                    "gep {}, {}, scale {scale}, disp {disp}",
                    v(*base),
                    v(*index)
                ),
                InstKind::Call(callee, args) => {
                    let args = args.iter().map(|&a| v(a)).collect::<Vec<_>>().join(", ");
                    format!("call @\"{}\"({args})", module.func(*callee).name)
                }
                InstKind::CallIntrinsic(which, args) => {
                    let args = args.iter().map(|&a| v(a)).collect::<Vec<_>>().join(", ");
                    format!("intr {}({args})", which.name())
                }
                InstKind::Phi(ty, incoming) => {
                    let inc = incoming
                        .iter()
                        .map(|(p, val)| format!("[{p}: {}]", v(*val)))
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("phi {ty} {inc}")
                }
                InstKind::Select(ty, c, t, e) => {
                    format!("select {ty} {}, {}, {}", v(*c), v(*t), v(*e))
                }
            };
            let _ = writeln!(out, "  {lhs}{body}");
        }
        let term = match &func.block(bb).term {
            Term::Ret(None) => "ret".to_string(),
            Term::Ret(Some(x)) => format!("ret {}", v(*x)),
            Term::Br(t) => format!("br {t}"),
            Term::CondBr(c, t, e) => format!("condbr {}, {t}, {e}", v(*c)),
            Term::Unreachable => "unreachable".to_string(),
        };
        let _ = writeln!(out, "  {term}");
    }
    out.push_str("}\n");
    out
}

/// Print a whole module.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", module.name);
    out.push('\n');
    for g in &module.globals {
        let heap = match g.heap {
            Some(h) => format!(" heap {h}"),
            None => String::new(),
        };
        let init = match &g.init {
            GlobalInit::Zero => "zero".to_string(),
            GlobalInit::Bytes(b) => format!(
                "bytes [{}]",
                b.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            GlobalInit::I64s(v) => format!(
                "i64 [{}]",
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            GlobalInit::I32s(v) => format!(
                "i32 [{}]",
                v.iter()
                    .map(|x| x.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            GlobalInit::F64s(v) => format!(
                "f64 [{}]",
                v.iter()
                    .map(|x| format!("{x:?}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        };
        let _ = writeln!(
            out,
            "global \"{}\" size {}{} init {}",
            g.name, g.size, heap, init
        );
    }
    for plan in &module.plans {
        let _ = writeln!(
            out,
            "plan @\"{}\" recovery @\"{}\"",
            module.func(plan.body).name,
            module.func(plan.recovery).name
        );
    }
    out.push('\n');
    for f in &module.functions {
        out.push_str(&print_function(module, f));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::{CmpOp, Heap, Intrinsic};
    use crate::types::Type;

    #[test]
    fn prints_simple_function() {
        let mut m = Module::new("demo");
        let g = m.add_global("table", 16);
        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(8));
        b.store(Type::I64, Value::const_i64(5), p);
        let x = b.load(Type::I64, Value::Global(g));
        b.print_i64(x);
        let c = b.icmp(CmpOp::Eq, x, Value::const_i64(0));
        let next = b.new_block();
        b.cond_br(c, next, next);
        b.switch_to(next);
        b.intrinsic(Intrinsic::CheckHeap(Heap::Private), vec![p]);
        b.ret(None);
        m.add_function(b.finish());

        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("global \"table\" size 16 init zero"));
        assert!(text.contains("%0 = malloc i64:8"));
        assert!(text.contains("store i64 i64:5, %0"));
        assert!(text.contains("intr check_heap.priv(%0)"));
        // Renumbering counts effect-only instructions too: malloc=%0,
        // store=%1, load=%2, print=%3, icmp=%4.
        assert!(text.contains("condbr %4, bb1, bb1"));
    }

    #[test]
    fn float_constants_round_trip_textually() {
        let mut b = FunctionBuilder::new("f", vec![], Some(Type::F64));
        let x = b.fadd(Value::const_f64(0.1), Value::const_f64(2.0));
        b.ret(Some(x));
        let m = {
            let mut m = Module::new("m");
            m.add_function(b.finish());
            m
        };
        let text = print_module(&m);
        assert!(text.contains("f64:0.1"), "{text}");
        assert!(text.contains("f64:2.0"), "{text}");
    }

    #[test]
    fn renumbering_is_layout_order() {
        // Build out of order: create an inst, then a phi that lands first.
        let mut b = FunctionBuilder::new("f", vec![], None);
        let bb = b.new_block();
        b.br(bb);
        b.switch_to(bb);
        let x = b.add(Type::I64, Value::const_i64(1), Value::const_i64(2));
        let (_, phi) = b.phi(Type::I64);
        b.add_phi_incoming(phi, b.entry_block(), Value::const_i64(0));
        b.add_phi_incoming(phi, bb, x);
        b.br(bb);
        let mut m = Module::new("m");
        m.add_function(b.finish());
        let text = print_module(&m);
        // The phi is printed first and therefore gets %0.
        assert!(text.contains("%0 = phi i64"), "{text}");
        assert!(text.contains("%1 = add i64"), "{text}");
    }
}
