//! Value types of the IR.

use std::fmt;

/// A first-class value type.
///
/// The IR is deliberately low-level: aggregates live in memory and are
/// accessed through typed loads and stores, as in LLVM after SROA. Pointers
/// are untyped 64-bit addresses into the simulated address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// A boolean produced by comparisons; stored as one byte.
    I1,
    /// An 8-bit integer.
    I8,
    /// A 32-bit integer.
    I32,
    /// A 64-bit integer.
    I64,
    /// A 64-bit IEEE-754 float.
    F64,
    /// An untyped 64-bit pointer into the simulated address space.
    Ptr,
}

impl Type {
    /// Size of a value of this type in bytes when stored in memory.
    ///
    /// ```
    /// use privateer_ir::Type;
    /// assert_eq!(Type::I32.size(), 4);
    /// assert_eq!(Type::Ptr.size(), 8);
    /// ```
    pub fn size(self) -> u32 {
        match self {
            Type::I1 | Type::I8 => 1,
            Type::I32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
        }
    }

    /// Whether this is an integer type (including `I1`).
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I32 | Type::I64)
    }

    /// Whether this is a floating-point type.
    pub fn is_float(self) -> bool {
        matches!(self, Type::F64)
    }

    /// Whether this is the pointer type.
    pub fn is_ptr(self) -> bool {
        matches!(self, Type::Ptr)
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::I1 => "i1",
            Type::I8 => "i8",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
        };
        f.write_str(s)
    }
}

impl std::str::FromStr for Type {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "i1" => Ok(Type::I1),
            "i8" => Ok(Type::I8),
            "i32" => Ok(Type::I32),
            "i64" => Ok(Type::I64),
            "f64" => Ok(Type::F64),
            "ptr" => Ok(Type::Ptr),
            _ => Err(ParseTypeError(s.to_owned())),
        }
    }
}

/// Error returned when parsing a [`Type`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError(pub String);

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown type `{}`", self.0)
    }
}

impl std::error::Error for ParseTypeError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes() {
        assert_eq!(Type::I1.size(), 1);
        assert_eq!(Type::I8.size(), 1);
        assert_eq!(Type::I32.size(), 4);
        assert_eq!(Type::I64.size(), 8);
        assert_eq!(Type::F64.size(), 8);
        assert_eq!(Type::Ptr.size(), 8);
    }

    #[test]
    fn predicates() {
        assert!(Type::I1.is_int());
        assert!(!Type::F64.is_int());
        assert!(Type::F64.is_float());
        assert!(Type::Ptr.is_ptr());
        assert!(!Type::I64.is_ptr());
    }

    #[test]
    fn display_parse_round_trip() {
        for ty in [
            Type::I1,
            Type::I8,
            Type::I32,
            Type::I64,
            Type::F64,
            Type::Ptr,
        ] {
            let text = ty.to_string();
            assert_eq!(text.parse::<Type>().unwrap(), ty);
        }
        assert!("i16".parse::<Type>().is_err());
    }
}
