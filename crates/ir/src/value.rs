//! SSA values and operands.

use crate::func::InstId;
use crate::module::GlobalId;
use crate::types::Type;
use std::fmt;

/// An operand of an instruction.
///
/// Values are `Copy` and may be freely duplicated; they are either references
/// to SSA definitions (instruction results, function parameters, global
/// addresses) or immediate constants.
///
/// Floating-point constants are stored as raw IEEE-754 bits so that `Value`
/// can implement `Eq` and `Hash`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// The result of an instruction in the enclosing function.
    Inst(InstId),
    /// The `n`-th parameter of the enclosing function.
    Param(u32),
    /// An integer constant of the given integer type.
    ConstInt(i64, Type),
    /// A 64-bit float constant, stored as its bit pattern.
    ConstF64(u64),
    /// The address of a module-level global.
    Global(GlobalId),
    /// The null pointer.
    Null,
}

impl Value {
    /// An `i64` constant.
    ///
    /// ```
    /// use privateer_ir::{Type, Value};
    /// assert_eq!(Value::const_i64(7), Value::ConstInt(7, Type::I64));
    /// ```
    pub fn const_i64(v: i64) -> Value {
        Value::ConstInt(v, Type::I64)
    }

    /// An `i32` constant.
    pub fn const_i32(v: i32) -> Value {
        Value::ConstInt(v as i64, Type::I32)
    }

    /// An `i8` constant.
    pub fn const_i8(v: i8) -> Value {
        Value::ConstInt(v as i64, Type::I8)
    }

    /// An `i1` (boolean) constant.
    pub fn const_bool(v: bool) -> Value {
        Value::ConstInt(v as i64, Type::I1)
    }

    /// An `f64` constant.
    ///
    /// ```
    /// use privateer_ir::Value;
    /// assert_eq!(Value::const_f64(1.5).as_f64(), Some(1.5));
    /// ```
    pub fn const_f64(v: f64) -> Value {
        Value::ConstF64(v.to_bits())
    }

    /// The constant's float value, if this is a float constant.
    pub fn as_f64(self) -> Option<f64> {
        match self {
            Value::ConstF64(bits) => Some(f64::from_bits(bits)),
            _ => None,
        }
    }

    /// The constant's integer value, if this is an integer constant.
    pub fn as_int(self) -> Option<i64> {
        match self {
            Value::ConstInt(v, _) => Some(v),
            _ => None,
        }
    }

    /// Whether this value is a constant (including `Null` and globals, whose
    /// addresses are link-time constants).
    pub fn is_const(self) -> bool {
        matches!(
            self,
            Value::ConstInt(..) | Value::ConstF64(_) | Value::Null | Value::Global(_)
        )
    }

    /// The instruction defining this value, if any.
    pub fn as_inst(self) -> Option<InstId> {
        match self {
            Value::Inst(id) => Some(id),
            _ => None,
        }
    }
}

impl From<InstId> for Value {
    fn from(id: InstId) -> Value {
        Value::Inst(id)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Inst(id) => write!(f, "%{}", id.index()),
            Value::Param(n) => write!(f, "%arg{n}"),
            Value::ConstInt(v, ty) => write!(f, "{ty} {v}"),
            Value::ConstF64(bits) => write!(f, "f64 {:?}", f64::from_bits(*bits)),
            Value::Global(g) => write!(f, "@g{}", g.index()),
            Value::Null => write!(f, "null"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        assert_eq!(Value::const_i64(-3).as_int(), Some(-3));
        assert_eq!(Value::const_bool(true).as_int(), Some(1));
        assert_eq!(Value::const_f64(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::const_i64(1).as_f64(), None);
        assert!(Value::Null.is_const());
        assert!(!Value::Param(0).is_const());
    }

    #[test]
    fn nan_constants_compare_equal_by_bits() {
        let a = Value::const_f64(f64::NAN);
        let b = Value::const_f64(f64::NAN);
        assert_eq!(a, b);
    }

    #[test]
    fn display() {
        assert_eq!(Value::const_i64(4).to_string(), "i64 4");
        assert_eq!(Value::Param(2).to_string(), "%arg2");
        assert_eq!(Value::Null.to_string(), "null");
    }
}
