//! Structural, type and SSA verification.

use crate::cfg::Cfg;
use crate::dom::DomTree;
use crate::func::{BlockId, Function, InstId};
use crate::inst::{Inst, InstKind, Term};
use crate::module::Module;
use crate::types::Type;
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;

/// A verification failure: one message per violated rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Name of the offending function.
    pub function: String,
    /// Human-readable rule violations.
    pub problems: Vec<String>,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "verification of `{}` failed:", self.function)?;
        for p in &self.problems {
            writeln!(f, "  - {p}")?;
        }
        Ok(())
    }
}

impl std::error::Error for VerifyError {}

/// The type of a value, when it can be determined locally.
pub fn value_type(func: &Function, v: Value) -> Option<Type> {
    match v {
        Value::Inst(id) => func.inst(id).ty,
        Value::Param(n) => func.params.get(n as usize).copied(),
        Value::ConstInt(_, ty) => Some(ty),
        Value::ConstF64(_) => Some(Type::F64),
        Value::Global(_) | Value::Null => Some(Type::Ptr),
    }
}

struct Checker<'a> {
    module: &'a Module,
    func: &'a Function,
    problems: Vec<String>,
}

impl Checker<'_> {
    fn err(&mut self, msg: String) {
        self.problems.push(msg);
    }

    fn expect_type(&mut self, ctx: &str, v: Value, want: Type) {
        match value_type(self.func, v) {
            Some(got) if got == want => {}
            Some(got) => self.err(format!(
                "{ctx}: operand {v} has type {got}, expected {want}"
            )),
            None => self.err(format!("{ctx}: operand {v} has no type")),
        }
    }

    fn check_inst(&mut self, id: InstId, inst: &Inst) {
        let ctx = format!("%{}", id.index());
        match &inst.kind {
            InstKind::Bin(op, a, b) => {
                let ty = match inst.ty {
                    Some(t) => t,
                    None => return self.err(format!("{ctx}: binop without result type")),
                };
                if op.is_float() != ty.is_float() {
                    self.err(format!(
                        "{ctx}: operator {} used at type {ty}",
                        op.mnemonic()
                    ));
                }
                self.expect_type(&ctx, *a, ty);
                self.expect_type(&ctx, *b, ty);
            }
            InstKind::Icmp(_, a, b) | InstKind::Fcmp(_, a, b) => {
                if inst.ty != Some(Type::I1) {
                    self.err(format!("{ctx}: comparison must produce i1"));
                }
                let ta = value_type(self.func, *a);
                let tb = value_type(self.func, *b);
                if ta != tb {
                    self.err(format!(
                        "{ctx}: comparison of mismatched types {ta:?} vs {tb:?}"
                    ));
                }
                if matches!(inst.kind, InstKind::Fcmp(..)) {
                    self.expect_type(&ctx, *a, Type::F64);
                }
            }
            InstKind::Cast(_, _, to) => {
                if inst.ty != Some(*to) {
                    self.err(format!("{ctx}: cast result type mismatch"));
                }
            }
            InstKind::Load(ty, ptr) => {
                if inst.ty != Some(*ty) {
                    self.err(format!("{ctx}: load result type mismatch"));
                }
                self.expect_type(&ctx, *ptr, Type::Ptr);
            }
            InstKind::Store(ty, val, ptr) => {
                if inst.ty.is_some() {
                    self.err(format!("{ctx}: store must not produce a value"));
                }
                self.expect_type(&ctx, *val, *ty);
                self.expect_type(&ctx, *ptr, Type::Ptr);
            }
            InstKind::Alloca { size, .. } => {
                if *size == 0 {
                    self.err(format!("{ctx}: zero-sized alloca"));
                }
                if inst.ty != Some(Type::Ptr) {
                    self.err(format!("{ctx}: alloca must produce ptr"));
                }
            }
            InstKind::Malloc(size) => {
                self.expect_type(&ctx, *size, Type::I64);
                if inst.ty != Some(Type::Ptr) {
                    self.err(format!("{ctx}: malloc must produce ptr"));
                }
            }
            InstKind::Free(ptr) => {
                self.expect_type(&ctx, *ptr, Type::Ptr);
            }
            InstKind::Gep { base, index, .. } => {
                self.expect_type(&ctx, *base, Type::Ptr);
                self.expect_type(&ctx, *index, Type::I64);
                if inst.ty != Some(Type::Ptr) {
                    self.err(format!("{ctx}: gep must produce ptr"));
                }
            }
            InstKind::Call(callee, args) => {
                if callee.index() >= self.module.functions.len() {
                    return self.err(format!("{ctx}: call to unknown function {callee}"));
                }
                let sig = self.module.func(*callee);
                if sig.params.len() != args.len() {
                    self.err(format!(
                        "{ctx}: call to `{}` passes {} args, expected {}",
                        sig.name,
                        args.len(),
                        sig.params.len()
                    ));
                } else {
                    for (i, (&a, &want)) in args.iter().zip(&sig.params).enumerate() {
                        self.expect_type(&format!("{ctx} arg {i}"), a, want);
                    }
                }
                if inst.ty != sig.ret {
                    self.err(format!(
                        "{ctx}: call result type {:?} does not match `{}` returning {:?}",
                        inst.ty, sig.name, sig.ret
                    ));
                }
            }
            InstKind::CallIntrinsic(which, args) => {
                if args.len() != which.arity() {
                    self.err(format!(
                        "{ctx}: intrinsic {} takes {} args, got {}",
                        which.name(),
                        which.arity(),
                        args.len()
                    ));
                }
                if inst.ty != which.result_type() {
                    self.err(format!("{ctx}: intrinsic result type mismatch"));
                }
            }
            InstKind::Phi(ty, incoming) => {
                if inst.ty != Some(*ty) {
                    self.err(format!("{ctx}: phi result type mismatch"));
                }
                for (pred, v) in incoming {
                    if pred.index() >= self.func.blocks.len() {
                        self.err(format!("{ctx}: phi references unknown block {pred}"));
                    }
                    self.expect_type(&ctx, *v, *ty);
                }
            }
            InstKind::Select(ty, c, t, e) => {
                if inst.ty != Some(*ty) {
                    self.err(format!("{ctx}: select result type mismatch"));
                }
                self.expect_type(&ctx, *c, Type::I1);
                self.expect_type(&ctx, *t, *ty);
                self.expect_type(&ctx, *e, *ty);
            }
        }
    }
}

/// Verify one function against its module.
///
/// Checks performed:
///
/// * structural: block/instruction ids in range, each instruction placed in
///   at most one block, phis grouped at block starts, phi predecessor lists
///   match the CFG;
/// * types: operands and results are consistent (see [`value_type`]);
/// * SSA: every use is dominated by its definition.
///
/// # Errors
///
/// Returns a [`VerifyError`] listing every violation found.
pub fn verify_function(module: &Module, func: &Function) -> Result<(), VerifyError> {
    let mut c = Checker {
        module,
        func,
        problems: Vec::new(),
    };

    // Structural: placement and id ranges.
    let mut placed_in: HashMap<InstId, BlockId> = HashMap::new();
    for bb in func.block_ids() {
        let block = func.block(bb);
        let mut seen_non_phi = false;
        for &i in &block.insts {
            if i.index() >= func.insts.len() {
                c.err(format!("{bb}: references out-of-range instruction {i}"));
                continue;
            }
            if let Some(prev) = placed_in.insert(i, bb) {
                c.err(format!("%{}: placed in both {prev} and {bb}", i.index()));
            }
            let is_phi = matches!(func.inst(i).kind, InstKind::Phi(..));
            if is_phi && seen_non_phi {
                c.err(format!(
                    "{bb}: phi %{} after non-phi instructions",
                    i.index()
                ));
            }
            if !is_phi {
                seen_non_phi = true;
            }
        }
        for s in block.term.successors() {
            if s.index() >= func.blocks.len() {
                c.err(format!("{bb}: branch to out-of-range block {s}"));
            }
        }
        match &block.term {
            Term::Ret(v) => {
                let vt = v.and_then(|v| value_type(func, v));
                let want = func.ret;
                if vt != want {
                    c.err(format!("{bb}: return type {vt:?} does not match {want:?}"));
                }
            }
            Term::CondBr(cond, _, _) => c.expect_type(&bb.to_string(), *cond, Type::I1),
            _ => {}
        }
    }

    // Per-instruction checks.
    for (i, inst) in func.insts.iter().enumerate() {
        let id = InstId::new(i);
        if placed_in.contains_key(&id) {
            c.check_inst(id, inst);
        }
    }

    // SSA dominance.
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);
    for bb in func.block_ids() {
        if !cfg.is_reachable(bb) {
            continue;
        }
        // Phi predecessor sets must match CFG predecessors exactly.
        for &i in &func.block(bb).insts {
            if let InstKind::Phi(_, incoming) = &func.inst(i).kind {
                let mut want: Vec<BlockId> = cfg.preds(bb).to_vec();
                let mut got: Vec<BlockId> = incoming.iter().map(|(p, _)| *p).collect();
                want.sort_unstable();
                got.sort_unstable();
                if want != got {
                    c.err(format!(
                        "%{}: phi incoming blocks {got:?} do not match predecessors {want:?}",
                        i.index()
                    ));
                }
            }
        }

        let check_use = |c: &mut Checker<'_>, user: String, v: Value, at_end_of: BlockId| {
            if let Value::Inst(def) = v {
                match placed_in.get(&def) {
                    None => c.err(format!(
                        "{user}: uses unplaced instruction %{}",
                        def.index()
                    )),
                    Some(&def_bb) => {
                        // A definition reaches the end of its own block, so
                        // `def_bb == at_end_of` is fine here; the same-block
                        // use-before-def case is checked positionally by the
                        // caller.
                        let ok = def_bb == at_end_of || dom.dominates(def_bb, at_end_of);
                        if !ok {
                            c.err(format!(
                                "{user}: use of %{} is not dominated by its definition",
                                def.index()
                            ));
                        }
                    }
                }
            }
        };

        let insts = func.block(bb).insts.clone();
        for (pos, &i) in insts.iter().enumerate() {
            let inst = func.inst(i).clone();
            if let InstKind::Phi(_, incoming) = &inst.kind {
                // Phi operands must dominate the end of the incoming block.
                for (pred, v) in incoming {
                    check_use(&mut c, format!("%{}", i.index()), *v, *pred);
                }
                continue;
            }
            inst.for_each_operand(|v| {
                if let Value::Inst(def) = v {
                    if placed_in.get(&def) == Some(&bb) {
                        // Same-block use: definition must appear earlier.
                        let def_pos = insts.iter().position(|&x| x == def).unwrap_or(usize::MAX);
                        if def_pos >= pos {
                            c.err(format!(
                                "%{}: same-block use of %{} before its definition",
                                i.index(),
                                def.index()
                            ));
                        }
                        return;
                    }
                }
                check_use(&mut c, format!("%{}", i.index()), v, bb);
            });
        }
        let term = func.block(bb).term.clone();
        term.for_each_operand(|v| check_use(&mut c, format!("{bb} terminator"), v, bb));
    }

    if c.problems.is_empty() {
        Ok(())
    } else {
        Err(VerifyError {
            function: func.name.clone(),
            problems: c.problems,
        })
    }
}

/// Verify every function in the module.
///
/// # Errors
///
/// Returns the first function's [`VerifyError`] encountered (functions are
/// checked in id order).
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for f in module.func_ids() {
        verify_function(module, module.func(f))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::inst::CmpOp;

    #[test]
    fn accepts_well_formed() {
        let mut b = FunctionBuilder::new("ok", vec![Type::I64], Some(Type::I64));
        let p = b.param(0);
        let q = b.add(Type::I64, p, Value::const_i64(1));
        b.ret(Some(q));
        let f = b.finish();
        verify_function(&Module::new("m"), &f).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FunctionBuilder::new("bad", vec![Type::I64], Some(Type::I64));
        let p = b.param(0);
        // fadd at i64-typed operands: operator/type mismatch.
        let q = b.bin(crate::inst::BinOp::FAdd, Type::I64, p, p);
        b.ret(Some(q));
        let f = b.finish();
        let err = verify_function(&Module::new("m"), &f).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("fadd")));
    }

    #[test]
    fn rejects_use_before_def_in_block() {
        let mut f = Function::new("bad", vec![], None);
        let later = f.add_inst(Inst {
            kind: InstKind::Bin(
                crate::inst::BinOp::Add,
                Value::const_i64(1),
                Value::const_i64(2),
            ),
            ty: Some(Type::I64),
        });
        let user = f.add_inst(Inst {
            kind: InstKind::Bin(
                crate::inst::BinOp::Add,
                Value::Inst(later),
                Value::const_i64(0),
            ),
            ty: Some(Type::I64),
        });
        let entry = f.entry();
        f.block_mut(entry).insts.push(user);
        f.block_mut(entry).insts.push(later);
        f.block_mut(entry).term = Term::Ret(None);
        let err = verify_function(&Module::new("m"), &f).unwrap_err();
        assert!(err
            .problems
            .iter()
            .any(|p| p.contains("before its definition")));
    }

    #[test]
    fn rejects_bad_return_type() {
        let mut b = FunctionBuilder::new("bad", vec![], Some(Type::I64));
        b.ret(None);
        let f = b.finish();
        let err = verify_function(&Module::new("m"), &f).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("return type")));
    }

    #[test]
    fn rejects_phi_pred_mismatch() {
        let mut b = FunctionBuilder::new("bad", vec![], None);
        let next = b.new_block();
        b.br(next);
        b.switch_to(next);
        let (_, phi) = b.phi(Type::I64);
        // Claims an incoming edge from `next` itself, which is not a pred.
        b.add_phi_incoming(phi, next, Value::const_i64(0));
        b.ret(None);
        let f = b.finish();
        let err = verify_function(&Module::new("m"), &f).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("phi incoming")));
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let mut m = Module::new("m");
        let callee = m.add_function(Function::new("callee", vec![Type::I64], None));
        let mut b = FunctionBuilder::new("caller", vec![], None);
        b.call(callee, vec![], None);
        b.ret(None);
        let f = b.finish();
        let err = verify_function(&m, &f).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("passes 0 args")));
    }

    #[test]
    fn rejects_double_placement() {
        let mut f = Function::new("bad", vec![], None);
        let i = f.add_inst(Inst {
            kind: InstKind::Malloc(Value::const_i64(8)),
            ty: Some(Type::Ptr),
        });
        let entry = f.entry();
        f.block_mut(entry).insts.push(i);
        f.block_mut(entry).insts.push(i);
        f.block_mut(entry).term = Term::Ret(None);
        let err = verify_function(&Module::new("m"), &f).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("placed in both")));
    }

    #[test]
    fn cross_block_dominance_enforced() {
        // A value defined on one side of a diamond used at the join.
        let mut b = FunctionBuilder::new("bad", vec![Type::I64], Some(Type::I64));
        let t = b.new_block();
        let e = b.new_block();
        let join = b.new_block();
        let c = b.icmp(CmpOp::Lt, b.param(0), Value::const_i64(0));
        b.cond_br(c, t, e);
        b.switch_to(t);
        let v = b.add(Type::I64, b.param(0), Value::const_i64(1));
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(v)); // v does not dominate join
        let f = b.finish();
        let err = verify_function(&Module::new("m"), &f).unwrap_err();
        assert!(err.problems.iter().any(|p| p.contains("not dominated")));
    }
}
