//! Parser robustness: malformed input must produce located errors, never
//! panics; and mutations of valid programs fail cleanly.

use privateer_ir::{parser, printer, Module};
use proptest::prelude::*;

#[test]
fn error_cases_name_the_line() {
    let cases: &[(&str, usize, &str)] = &[
        ("garbage", 1, "unexpected line"),
        (
            "module \"m\"\nfn \"f\"() -> void {\n  ret\n}\n",
            3,
            "outside any block",
        ),
        (
            "module \"m\"\nfn \"f\"() -> bogus {\nbb0:\n  ret\n}\n",
            2,
            "unknown type",
        ),
        (
            "module \"m\"\nfn \"f\"() -> void {\nbb0:\n  %0 = load i32\n  ret\n}\n",
            4,
            "load takes",
        ),
        (
            "module \"m\"\nfn \"f\"() -> void {\nbb0:\n  %5 = malloc i64:8\n  ret\n}\n",
            4,
            "does not match position",
        ),
        (
            "module \"m\"\nfn \"f\"() -> void {\nbb0:\n  %0 = call @\"nope\"()\n  ret\n}\n",
            4,
            "unknown function",
        ),
        (
            "module \"m\"\nfn \"f\"() -> void {\nbb0:\n  intr frob()\n  ret\n}\n",
            4,
            "unknown intrinsic",
        ),
        (
            "module \"m\"\nplan @\"nope\" recovery @\"nope\"\n",
            2,
            "unknown function",
        ),
        (
            "module \"m\"\nfn \"f\"() -> void {\nbb0:\n  condbr %0, bb0\n}\n",
            4,
            "condbr takes",
        ),
        (
            "module \"m\"\nglobal \"g\" size x init zero\n",
            2,
            "bad size",
        ),
        ("module \"m\"\nfn \"f\"() -> void {\n", 2, "unterminated"),
    ];
    for (src, line, needle) in cases {
        let err = parser::parse(src).expect_err(src);
        assert_eq!(err.line, *line, "{src:?} -> {err}");
        assert!(err.msg.contains(needle), "{src:?} -> {err}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The parser never panics on arbitrary input.
    #[test]
    fn never_panics_on_arbitrary_text(text in ".{0,400}") {
        let _ = parser::parse(&text);
    }

    /// Nor on arbitrary *line mutations* of a valid program (much more
    /// likely to reach deep parser states than pure noise).
    #[test]
    fn never_panics_on_mutated_program(
        line_no in 0usize..32,
        mutation in "[ -~]{0,40}",
    ) {
        let mut m = Module::new("victim");
        let g = m.add_global("g", 16);
        let mut b = privateer_ir::builder::FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(privateer_ir::Value::const_i64(8));
        b.store(privateer_ir::Type::I64, privateer_ir::Value::const_i64(1), p);
        let v = b.load(privateer_ir::Type::I64, privateer_ir::Value::Global(g));
        b.print_i64(v);
        b.free(p);
        b.ret(None);
        m.add_function(b.finish());
        let text = printer::print_module(&m);
        let mut lines: Vec<String> = text.lines().map(String::from).collect();
        let idx = line_no % lines.len();
        lines[idx] = mutation;
        let mutated = lines.join("\n");
        let _ = parser::parse(&mutated); // must not panic
    }

    /// Round-trip through text preserves behaviour hooks: whatever parses
    /// back also verifies or fails verification — never panics.
    #[test]
    fn reparsed_modules_never_panic_verification(
        line_no in 0usize..32,
        mutation in "[ -~]{0,40}",
    ) {
        let src = format!(
            "module \"m\"\nglobal \"g\" size 8 init zero\nfn \"main\"() -> void {{\nbb0:\n  %0 = load i64, @g0\n  intr print_i64(%0)\n  {mutation}\n  ret\n}}\n"
        );
        let _ = line_no;
        if let Ok(m) = parser::parse(&src) {
            let _ = privateer_ir::verify::verify_module(&m);
        }
    }
}
