//! Property tests for the control-flow analyses on arbitrary random CFGs:
//! dominators against a brute-force reachability oracle, and loop-nest
//! invariants.

use privateer_ir::cfg::Cfg;
use privateer_ir::dom::DomTree;
use privateer_ir::loops::LoopInfo;
use privateer_ir::{BlockId, Function, Term, Type, Value};
use proptest::prelude::*;
use std::collections::BTreeSet;

/// Build a function whose CFG is given by an arbitrary successor list
/// (blocks have no instructions — only shape matters here).
fn cfg_function(n: usize, edges: &[(usize, usize, Option<usize>)]) -> Function {
    let mut f = Function::new("g", vec![Type::I64], None);
    for _ in 1..n {
        f.add_block();
    }
    for &(src, a, b) in edges {
        let term = match b {
            Some(b) => Term::CondBr(
                Value::const_bool(true),
                BlockId::new(a % n),
                BlockId::new(b % n),
            ),
            None => Term::Br(BlockId::new(a % n)),
        };
        f.block_mut(BlockId::new(src % n)).term = term;
    }
    f
}

/// Brute force: `a` dominates `b` iff every entry→b path passes through
/// `a` — equivalently, b is unreachable from the entry when `a` is
/// removed (for a ≠ b).
fn dominates_oracle(f: &Function, cfg: &Cfg, a: BlockId, b: BlockId) -> bool {
    if !cfg.is_reachable(b) || !cfg.is_reachable(a) {
        return false;
    }
    if a == b {
        return true;
    }
    let mut seen = BTreeSet::new();
    let mut stack = vec![f.entry()];
    if f.entry() == a {
        return true;
    }
    while let Some(x) = stack.pop() {
        if x == a || !seen.insert(x) {
            continue;
        }
        if x == b {
            return false; // reached b while avoiding a
        }
        for s in f.block(x).term.successors() {
            stack.push(s);
        }
    }
    true
}

fn edges_strategy(n: usize) -> impl Strategy<Value = Vec<(usize, usize, Option<usize>)>> {
    prop::collection::vec((0..n, 0..n, prop::option::of(0..n)), 0..(2 * n))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The Cooper–Harvey–Kennedy dominator tree agrees with the
    /// brute-force oracle on every block pair of arbitrary CFGs
    /// (including irreducible ones).
    #[test]
    fn dominators_match_oracle(edges in edges_strategy(7)) {
        let f = cfg_function(7, &edges);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        for a in f.block_ids() {
            for b in f.block_ids() {
                let got = dom.dominates(a, b);
                let want = dominates_oracle(&f, &cfg, a, b);
                prop_assert_eq!(got, want, "dominates({}, {})", a, b);
            }
        }
    }

    /// Loop-nest invariants on arbitrary CFGs: headers dominate their
    /// bodies; parents strictly contain children; the innermost map is
    /// consistent.
    #[test]
    fn loop_nest_invariants(edges in edges_strategy(7)) {
        let f = cfg_function(7, &edges);
        let cfg = Cfg::new(&f);
        let dom = DomTree::new(&f, &cfg);
        let li = LoopInfo::new(&f, &cfg, &dom);
        for (id, lp) in li.iter() {
            // Natural loop: the header dominates every block of the loop.
            for &bb in &lp.blocks {
                prop_assert!(dom.dominates(lp.header, bb), "{} !dom {}", lp.header, bb);
            }
            // Back edges really are back edges.
            for &latch in &lp.latches {
                prop_assert!(lp.contains(latch));
                prop_assert!(
                    f.block(latch).term.successors().any(|s| s == lp.header)
                );
            }
            if let Some(parent) = lp.parent {
                let p = li.get(parent);
                prop_assert!(p.blocks.is_superset(&lp.blocks));
                prop_assert!(p.blocks.len() > lp.blocks.len());
                prop_assert_eq!(p.depth + 1, lp.depth);
            } else {
                prop_assert_eq!(lp.depth, 1);
            }
            // innermost() returns a loop whose depth is maximal among
            // containing loops.
            for &bb in &lp.blocks {
                let inner = li.innermost(bb).expect("block in a loop has an innermost loop");
                let il = li.get(inner);
                prop_assert!(il.contains(bb));
                prop_assert!(il.depth >= lp.depth, "{} inner {:?} vs {:?}", bb, inner, id);
            }
        }
    }

    /// The reverse postorder visits every reachable block exactly once,
    /// entry first, and every edge target is listed.
    #[test]
    fn rpo_well_formed(edges in edges_strategy(9)) {
        let f = cfg_function(9, &edges);
        let cfg = Cfg::new(&f);
        let rpo = cfg.rpo();
        prop_assert_eq!(rpo.first().copied(), Some(f.entry()));
        let set: BTreeSet<_> = rpo.iter().copied().collect();
        prop_assert_eq!(set.len(), rpo.len(), "duplicates in RPO");
        for &bb in rpo {
            for s in f.block(bb).term.successors() {
                prop_assert!(set.contains(&s), "successor {} missing", s);
            }
        }
    }
}
