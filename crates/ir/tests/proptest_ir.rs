//! Property tests over randomly generated programs: builder output always
//! verifies, and the printer/parser round-trips exactly.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{parser, printer, verify, BinOp, CmpOp, GlobalInit, Module, Type, Value};
use proptest::prelude::*;

/// A generator script: structured statements interpreted against a stack
/// of available values, so every generated program is well-formed by
/// construction — the tests then check our *tools* agree.
#[derive(Debug, Clone)]
enum Stmt {
    Arith(u8, usize, usize),
    FArith(u8, usize, u64),
    Cmp(usize, usize),
    StoreLoad(usize, usize),
    MallocFree(usize),
    Print(usize),
    If(usize, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn stmt_strategy(depth: u32) -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (any::<u8>(), 0usize..8, 0usize..8).prop_map(|(op, a, b)| Stmt::Arith(op, a, b)),
        (any::<u8>(), 0usize..8, any::<u64>()).prop_map(|(op, a, c)| Stmt::FArith(op, a, c)),
        (0usize..8, 0usize..8).prop_map(|(a, b)| Stmt::Cmp(a, b)),
        (0usize..8, 0usize..8).prop_map(|(v, s)| Stmt::StoreLoad(v, s)),
        (0usize..8).prop_map(Stmt::MallocFree),
        (0usize..8).prop_map(Stmt::Print),
    ];
    leaf.prop_recursive(depth, 24, 6, |inner| {
        prop_oneof![
            (0usize..8, prop::collection::vec(inner.clone(), 0..5))
                .prop_map(|(c, body)| Stmt::If(c, body)),
            (1u8..5, prop::collection::vec(inner, 0..4)).prop_map(|(n, body)| Stmt::Loop(n, body)),
        ]
    })
}

/// Interpret the script into IR via the builder.
fn emit(b: &mut FunctionBuilder, stmts: &[Stmt], ints: &mut Vec<Value>, slots: &[Value]) {
    for s in stmts {
        match s {
            Stmt::Arith(op, a, x) => {
                let ops = [
                    BinOp::Add,
                    BinOp::Sub,
                    BinOp::Mul,
                    BinOp::And,
                    BinOp::Or,
                    BinOp::Xor,
                ];
                let op = ops[(*op as usize) % ops.len()];
                let lhs = ints[a % ints.len()];
                let rhs = ints[x % ints.len()];
                let v = b.bin(op, Type::I64, lhs, rhs);
                ints.push(v);
            }
            Stmt::FArith(op, a, bits) => {
                let ops = [BinOp::FAdd, BinOp::FSub, BinOp::FMul];
                let op = ops[(*op as usize) % ops.len()];
                let lhs = b.sitofp(ints[a % ints.len()]);
                let c = Value::const_f64(f64::from_bits(*bits | 1).abs().min(1e12));
                let v = b.bin(op, Type::F64, lhs, c);
                let back = b.fptosi(v, Type::I64);
                ints.push(back);
            }
            Stmt::Cmp(a, x) => {
                let c = b.icmp(CmpOp::Lt, ints[a % ints.len()], ints[x % ints.len()]);
                let z = b.select(Type::I64, c, Value::const_i64(1), Value::const_i64(0));
                ints.push(z);
            }
            Stmt::StoreLoad(v, s) => {
                let slot = slots[s % slots.len()];
                b.store(Type::I64, ints[v % ints.len()], slot);
                let r = b.load(Type::I64, slot);
                ints.push(r);
            }
            Stmt::MallocFree(v) => {
                let p = b.malloc(Value::const_i64(16));
                b.store(Type::I64, ints[v % ints.len()], p);
                let r = b.load(Type::I64, p);
                b.free(p);
                ints.push(r);
            }
            Stmt::Print(v) => b.print_i64(ints[v % ints.len()]),
            Stmt::If(c, body) => {
                let cond_v = ints[c % ints.len()];
                let cond = b.icmp(CmpOp::Gt, cond_v, Value::const_i64(0));
                let then_bb = b.new_block();
                let join = b.new_block();
                b.cond_br(cond, then_bb, join);
                b.switch_to(then_bb);
                // Values defined in the branch must not escape: emit with a
                // scoped copy of the stack.
                let mut scoped = ints.clone();
                emit(b, body, &mut scoped, slots);
                b.br(join);
                b.switch_to(join);
            }
            Stmt::Loop(n, body) => {
                let pre = b.current_block();
                let header = b.new_block();
                let body_bb = b.new_block();
                let exit = b.new_block();
                b.br(header);
                b.switch_to(header);
                let (iv, phi) = b.phi(Type::I64);
                b.add_phi_incoming(phi, pre, Value::const_i64(0));
                let c = b.icmp(CmpOp::Lt, iv, Value::const_i64(*n as i64));
                b.cond_br(c, body_bb, exit);
                b.switch_to(body_bb);
                let mut scoped = ints.clone();
                scoped.push(iv);
                emit(b, body, &mut scoped, slots);
                let next = b.add(Type::I64, iv, Value::const_i64(1));
                let latch = b.current_block();
                b.add_phi_incoming(phi, latch, next);
                b.br(header);
                b.switch_to(exit);
            }
        }
    }
}

fn build_module(stmts: &[Stmt]) -> Module {
    let mut m = Module::new("generated");
    let g = m.add_global_init("cells", 64, GlobalInit::I64s(vec![3; 8]));
    let mut b = FunctionBuilder::new("main", vec![], None);
    let mut ints: Vec<Value> = vec![
        Value::const_i64(1),
        Value::const_i64(-7),
        Value::const_i64(40),
    ];
    let slots: Vec<Value> = (0..8)
        .map(|i| b.gep(Value::Global(g), Value::const_i64(i), 8, 0))
        .collect();
    emit(&mut b, stmts, &mut ints, &slots);
    b.print_i64(*ints.last().expect("non-empty stack"));
    b.ret(None);
    m.add_function(b.finish());
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Builder output always verifies.
    #[test]
    fn generated_modules_verify(stmts in prop::collection::vec(stmt_strategy(3), 0..12)) {
        let m = build_module(&stmts);
        verify::verify_module(&m).unwrap();
    }

    /// The textual form is a fixpoint of print ∘ parse.
    #[test]
    fn print_parse_print_stable(stmts in prop::collection::vec(stmt_strategy(3), 0..12)) {
        let m = build_module(&stmts);
        let text = printer::print_module(&m);
        let reparsed = parser::parse(&text)
            .unwrap_or_else(|e| panic!("parse failed: {e}\n{text}"));
        verify::verify_module(&reparsed).unwrap();
        let text2 = printer::print_module(&reparsed);
        prop_assert_eq!(text, text2);
    }
}
