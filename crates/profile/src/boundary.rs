//! Boundary-value profiling for value-prediction speculation.
//!
//! The paper uses a value-prediction profiler (à la Gabbay & Mendelson) to
//! find predictable values; Privateer applies it to values read at
//! iteration boundaries — e.g. dijkstra's work list, predicted empty at the
//! start of every outer iteration (§6.1).
//!
//! This profiler samples a configured set of memory locations at every
//! iteration start of one loop and reports those whose value is identical
//! at every boundary. The pipeline configures the locations from the
//! addresses through which blocking cross-iteration dependences flowed
//! (see [`crate::suite::DepInfo::addrs`]).

use crate::suite::LoopRef;
use privateer_ir::loops::LoopId;
use privateer_vm::hooks::{ExecCtx, Hooks};
use privateer_vm::AddressSpace;
use std::collections::BTreeMap;

/// One sampled location.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Target {
    addr: u64,
    size: u32,
    observed: Option<Vec<u8>>,
    stable: bool,
    samples: u64,
}

/// Samples configured byte ranges at each iteration start of one loop.
#[derive(Debug, Clone, Default)]
pub struct BoundaryValueProfiler {
    lp: Option<LoopRef>,
    targets: Vec<Target>,
}

/// The profiler's verdict for one location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PredictedValue {
    /// Address of the location.
    pub addr: u64,
    /// Width in bytes.
    pub size: u32,
    /// The stable bytes observed at every iteration boundary.
    pub bytes: Vec<u8>,
    /// Number of boundary samples supporting the prediction.
    pub samples: u64,
}

impl BoundaryValueProfiler {
    /// Profile `targets` (`(addr, size)` pairs) at each iteration start of
    /// `lp`.
    pub fn new(
        lp: LoopRef,
        targets: impl IntoIterator<Item = (u64, u32)>,
    ) -> BoundaryValueProfiler {
        BoundaryValueProfiler {
            lp: Some(lp),
            targets: targets
                .into_iter()
                .map(|(addr, size)| Target {
                    addr,
                    size,
                    observed: None,
                    stable: true,
                    samples: 0,
                })
                .collect(),
        }
    }

    /// Locations whose value was identical at every sampled boundary (with
    /// at least two samples, so a prediction is actually exercised).
    pub fn predictions(&self) -> Vec<PredictedValue> {
        self.targets
            .iter()
            .filter(|t| t.stable && t.samples >= 2)
            .filter_map(|t| {
                t.observed.as_ref().map(|bytes| PredictedValue {
                    addr: t.addr,
                    size: t.size,
                    bytes: bytes.clone(),
                    samples: t.samples,
                })
            })
            .collect()
    }

    /// Predictions as a map keyed by address.
    pub fn predictions_by_addr(&self) -> BTreeMap<u64, PredictedValue> {
        self.predictions()
            .into_iter()
            .map(|p| (p.addr, p))
            .collect()
    }
}

impl Hooks for BoundaryValueProfiler {
    fn on_loop_iter(
        &mut self,
        _ctx: &ExecCtx,
        func: privateer_ir::FuncId,
        loop_id: LoopId,
        _iter: u64,
        mem: &AddressSpace,
    ) {
        if self.lp != Some((func, loop_id)) {
            return;
        }
        for t in &mut self.targets {
            if !t.stable {
                continue;
            }
            let mut buf = vec![0u8; t.size as usize];
            mem.read_bytes(t.addr, &mut buf);
            match &t.observed {
                None => t.observed = Some(buf),
                Some(prev) if *prev == buf => {}
                Some(_) => t.stable = false,
            }
            t.samples += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::FuncId;

    fn frame() -> (ExecCtx, AddressSpace) {
        (ExecCtx::default(), AddressSpace::new())
    }

    #[test]
    fn stable_value_predicted() {
        let lp = (FuncId::new(0), LoopId::new(0));
        let mut p = BoundaryValueProfiler::new(lp, [(0x1000, 8)]);
        let (ctx, mem) = frame();
        for i in 0..5 {
            p.on_loop_iter(&ctx, lp.0, lp.1, i, &mem);
        }
        let preds = p.predictions();
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].bytes, vec![0u8; 8]);
        assert_eq!(preds[0].samples, 5);
    }

    #[test]
    fn unstable_value_rejected() {
        let lp = (FuncId::new(0), LoopId::new(0));
        let mut p = BoundaryValueProfiler::new(lp, [(0x1000, 8)]);
        let (ctx, mut mem) = frame();
        p.on_loop_iter(&ctx, lp.0, lp.1, 0, &mem);
        mem.write_u64(0x1000, 7);
        p.on_loop_iter(&ctx, lp.0, lp.1, 1, &mem);
        assert!(p.predictions().is_empty());
    }

    #[test]
    fn single_sample_not_enough() {
        let lp = (FuncId::new(0), LoopId::new(0));
        let mut p = BoundaryValueProfiler::new(lp, [(0x1000, 4)]);
        let (ctx, mem) = frame();
        p.on_loop_iter(&ctx, lp.0, lp.1, 0, &mem);
        assert!(p.predictions().is_empty());
    }

    #[test]
    fn other_loops_ignored() {
        let lp = (FuncId::new(0), LoopId::new(0));
        let other = (FuncId::new(0), LoopId::new(1));
        let mut p = BoundaryValueProfiler::new(lp, [(0x1000, 8)]);
        let (ctx, mut mem) = frame();
        p.on_loop_iter(&ctx, lp.0, lp.1, 0, &mem);
        mem.write_u64(0x1000, 3);
        // A boundary of a different loop with a different value: ignored.
        p.on_loop_iter(&ctx, other.0, other.1, 0, &mem);
        mem.write_u64(0x1000, 0);
        p.on_loop_iter(&ctx, lp.0, lp.1, 1, &mem);
        assert_eq!(p.predictions().len(), 1);
    }
}
