//! An interval map from address ranges to values.
//!
//! The paper's pointer-to-object profiler "maintains an interval map from
//! ranges of memory addresses to the name of the memory object which
//! occupies that space" (§4.1, citing Wu et al.). This is that structure.

use std::collections::BTreeMap;

/// A map from disjoint half-open `[start, end)` ranges to values.
///
/// Inserting a range that overlaps existing entries evicts the overlapped
/// entries first (address reuse after `free`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntervalMap<V> {
    map: BTreeMap<u64, (u64, V)>,
}

impl<V> Default for IntervalMap<V> {
    fn default() -> Self {
        IntervalMap::new()
    }
}

impl<V> IntervalMap<V> {
    /// An empty map.
    pub fn new() -> IntervalMap<V> {
        IntervalMap {
            map: BTreeMap::new(),
        }
    }

    /// Number of ranges stored.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Insert `[start, end) -> value`, evicting overlapping ranges.
    ///
    /// # Panics
    ///
    /// Panics if `start >= end`.
    pub fn insert(&mut self, start: u64, end: u64, value: V) {
        assert!(start < end, "empty interval");
        self.remove_overlapping(start, end);
        self.map.insert(start, (end, value));
    }

    /// Remove every range overlapping `[start, end)`.
    pub fn remove_overlapping(&mut self, start: u64, end: u64) {
        // Candidate ranges begin before `end`; collect starts to remove.
        let doomed: Vec<u64> = self
            .map
            .range(..end)
            .rev()
            .take_while(|(_, (e, _))| *e > start)
            .map(|(&s, _)| s)
            .collect();
        // `take_while` from the back works because ranges are disjoint:
        // once a range ends at or before `start`, all earlier ones do too.
        for s in doomed {
            self.map.remove(&s);
        }
    }

    /// Remove the range that *starts* exactly at `start`.
    pub fn remove_at(&mut self, start: u64) -> Option<(u64, V)> {
        self.map.remove(&start)
    }

    /// The entry whose range contains `addr`, as `(start, end, &value)`.
    pub fn query(&self, addr: u64) -> Option<(u64, u64, &V)> {
        let (&start, (end, v)) = self.map.range(..=addr).next_back()?;
        (*end > addr).then_some((start, *end, v))
    }

    /// The value at `addr`, if covered.
    pub fn get(&self, addr: u64) -> Option<&V> {
        self.query(addr).map(|(_, _, v)| v)
    }

    /// All distinct entries intersecting `[start, end)`.
    pub fn query_range(&self, start: u64, end: u64) -> Vec<(u64, u64, &V)> {
        let mut out = Vec::new();
        // The entry starting at or before `start` may cover into the range.
        if let Some(hit) = self.query(start) {
            out.push(hit);
        }
        for (&s, (e, v)) in self.map.range(start..end) {
            if out.last().map(|&(ps, _, _)| ps) != Some(s) {
                out.push((s, *e, v));
            }
        }
        out
    }

    /// Iterate over all `(start, end, &value)` entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64, &V)> {
        self.map.iter().map(|(&s, (e, v))| (s, *e, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_query() {
        let mut m = IntervalMap::new();
        m.insert(100, 200, "a");
        m.insert(300, 400, "b");
        assert_eq!(m.get(100), Some(&"a"));
        assert_eq!(m.get(199), Some(&"a"));
        assert_eq!(m.get(200), None);
        assert_eq!(m.get(99), None);
        assert_eq!(m.get(350), Some(&"b"));
        assert_eq!(m.query(150), Some((100, 200, &"a")));
    }

    #[test]
    fn overlap_evicts() {
        let mut m = IntervalMap::new();
        m.insert(100, 200, "a");
        m.insert(150, 250, "b");
        assert_eq!(m.get(120), None); // "a" evicted wholesale
        assert_eq!(m.get(180), Some(&"b"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn adjacent_ranges_do_not_evict() {
        let mut m = IntervalMap::new();
        m.insert(100, 200, "a");
        m.insert(200, 300, "b");
        m.insert(0, 100, "c");
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(150), Some(&"a"));
    }

    #[test]
    fn remove_at() {
        let mut m = IntervalMap::new();
        m.insert(10, 20, 1);
        assert_eq!(m.remove_at(10), Some((20, 1)));
        assert_eq!(m.remove_at(10), None);
        assert!(m.is_empty());
    }

    #[test]
    fn query_range_spans() {
        let mut m = IntervalMap::new();
        m.insert(0, 10, "a");
        m.insert(10, 20, "b");
        m.insert(30, 40, "c");
        let hits: Vec<&str> = m
            .query_range(5, 35)
            .into_iter()
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(hits, vec!["a", "b", "c"]);
        let hits: Vec<&str> = m
            .query_range(10, 11)
            .into_iter()
            .map(|(_, _, v)| *v)
            .collect();
        assert_eq!(hits, vec!["b"]);
    }

    #[test]
    fn eviction_of_many() {
        let mut m = IntervalMap::new();
        for i in 0..10u64 {
            m.insert(i * 10, i * 10 + 10, i);
        }
        m.insert(15, 85, 99);
        // Ranges [10,20) .. [80,90) overlap [15,85) and are gone.
        assert_eq!(m.get(5), Some(&0));
        assert_eq!(m.get(50), Some(&99));
        assert_eq!(m.get(85), None);
        assert_eq!(m.get(95), Some(&9));
    }
}
