#![warn(missing_docs)]
//! # privateer-profile
//!
//! The profilers Privateer's compiler consumes (§4.1 of the paper):
//!
//! * **pointer-to-object profiler** — an [`interval::IntervalMap`] from
//!   address ranges to context-qualified [`names::ObjectName`]s, recording
//!   which objects every load/store references;
//! * **object-lifetime profiler** — which objects are short-lived with
//!   respect to which loops (allocated and freed within one iteration);
//! * **memory flow-dependence profiler** — observed cross-iteration RAW
//!   dependences per loop, with the byte addresses they flowed through;
//! * **trip-count / branch-bias profiler** — for control speculation;
//! * **execution-time profiler** — instruction-weight per loop, finding
//!   hot loops;
//! * **value-prediction profiler** — [`boundary::BoundaryValueProfiler`]
//!   samples chosen locations at iteration boundaries and reports stable
//!   values (dijkstra's "the work list is empty at iteration start").
//!
//! All but the boundary profiler run together in one instrumented
//! execution via [`suite::profile_module`].

pub mod boundary;
pub mod interval;
pub mod names;
pub mod suite;

pub use boundary::{BoundaryValueProfiler, PredictedValue};
pub use interval::IntervalMap;
pub use names::{CallSite, ObjectName};
pub use suite::{profile_module, BranchStats, DepInfo, LoopRef, LoopStats, Profile, ProfileSuite};
