//! Context-qualified names for memory objects.

use privateer_ir::{FuncId, GlobalId, InstId, Module};
use std::fmt;

/// A static call site.
pub type CallSite = (FuncId, InstId);

/// A name for a set of runtime memory objects, as assigned by the
/// pointer-to-object profiler (§4.1).
///
/// Globals and constants get static names. Dynamic objects (malloc, stack
/// slots) are named by their allocation instruction *plus a dynamic
/// context*: the call path that reached the instruction. This
/// distinguishes, e.g., list nodes allocated by `enqueue` called from two
/// different places — the distinction the paper's Figure 2 walk-through
/// relies on.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjectName {
    /// A module-level global.
    Global(GlobalId),
    /// Objects from one allocation site under one call path.
    Site {
        /// The allocating instruction.
        site: CallSite,
        /// Call path (outermost call first) that reached the site.
        path: Vec<CallSite>,
    },
}

impl ObjectName {
    /// The static allocation site, if this is a dynamic object.
    pub fn alloc_site(&self) -> Option<CallSite> {
        match self {
            ObjectName::Global(_) => None,
            ObjectName::Site { site, .. } => Some(*site),
        }
    }

    /// Render with function names resolved from `module`.
    pub fn display<'a>(&'a self, module: &'a Module) -> DisplayName<'a> {
        DisplayName { name: self, module }
    }
}

impl fmt::Display for ObjectName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjectName::Global(g) => write!(f, "{g}"),
            ObjectName::Site { site, path } => {
                write!(f, "{}:{}", site.0, site.1)?;
                if !path.is_empty() {
                    write!(f, " via ")?;
                    for (i, (fun, inst)) in path.iter().enumerate() {
                        if i > 0 {
                            write!(f, " > ")?;
                        }
                        write!(f, "{fun}:{inst}")?;
                    }
                }
                Ok(())
            }
        }
    }
}

/// Human-readable form of an [`ObjectName`] with symbol names resolved.
#[derive(Debug)]
pub struct DisplayName<'a> {
    name: &'a ObjectName,
    module: &'a Module,
}

impl fmt::Display for DisplayName<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.name {
            ObjectName::Global(g) => write!(f, "@{}", self.module.global(*g).name),
            ObjectName::Site { site, path } => {
                write!(f, "{}:{}", self.module.func(site.0).name, site.1)?;
                if !path.is_empty() {
                    write!(f, " via ")?;
                    for (i, (fun, inst)) in path.iter().enumerate() {
                        if i > 0 {
                            write!(f, " > ")?;
                        }
                        write!(f, "{}:{}", self.module.func(*fun).name, inst)?;
                    }
                }
                Ok(())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::Function;

    #[test]
    fn distinct_paths_distinct_names() {
        let site = (FuncId::new(1), InstId::new(2));
        let a = ObjectName::Site {
            site,
            path: vec![(FuncId::new(0), InstId::new(5))],
        };
        let b = ObjectName::Site {
            site,
            path: vec![(FuncId::new(0), InstId::new(9))],
        };
        assert_ne!(a, b);
        assert_eq!(a.alloc_site(), Some(site));
        assert_eq!(ObjectName::Global(GlobalId::new(0)).alloc_site(), None);
    }

    #[test]
    fn display_with_module() {
        let mut m = Module::new("t");
        m.add_function(Function::new("main", vec![], None));
        m.add_function(Function::new("enqueue", vec![], None));
        let g = m.add_global("Q", 16);
        assert_eq!(ObjectName::Global(g).display(&m).to_string(), "@Q");
        let n = ObjectName::Site {
            site: (FuncId::new(1), InstId::new(3)),
            path: vec![(FuncId::new(0), InstId::new(7))],
        };
        assert_eq!(n.display(&m).to_string(), "enqueue:%3 via main:%7");
    }
}
