//! The combined profiling suite: pointer-to-object, lifetime, control,
//! flow-dependence and hotness profiling in one instrumented run (§4.1).

use crate::interval::IntervalMap;
use crate::names::{CallSite, ObjectName};
use privateer_ir::loops::LoopId;
use privateer_ir::{BlockId, FuncId, InstId, Module};
use privateer_vm::hooks::{AllocKind, ExecCtx, Hooks, LoopFrame};
use privateer_vm::interp::{Interp, ProgramImage};
use privateer_vm::runtime::BasicRuntime;
use privateer_vm::{AddressSpace, Trap};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::rc::Rc;

/// Identifies a loop module-wide.
pub type LoopRef = (FuncId, LoopId);

/// Per-loop execution statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LoopStats {
    /// Times the loop was entered.
    pub invocations: u64,
    /// Total iterations across all invocations.
    pub total_iters: u64,
    /// Instructions executed while the loop was active (inclusive of
    /// callees and nested loops) — the hotness measure.
    pub weight: u64,
}

/// Taken/not-taken counts for a conditional branch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Times the branch went to its `then` target.
    pub taken: u64,
    /// Times it went to its `else` target.
    pub not_taken: u64,
}

impl BranchStats {
    /// Fraction of executions that took the `then` target.
    pub fn bias(&self) -> f64 {
        let total = self.taken + self.not_taken;
        if total == 0 {
            0.5
        } else {
            self.taken as f64 / total as f64
        }
    }
}

/// A profiled cross-iteration memory flow dependence.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepInfo {
    /// Times the dependence manifested.
    pub count: u64,
    /// Byte addresses through which it flowed (capped).
    pub addrs: BTreeSet<u64>,
    /// Whether `addrs` was truncated.
    pub addrs_overflow: bool,
}

const DEP_ADDR_CAP: usize = 64;

#[derive(Debug, Clone)]
struct WriterInfo {
    src: CallSite,
    frames: Vec<LoopFrame>,
}

#[derive(Debug, Clone)]
struct LiveObj {
    name: ObjectName,
    alloc_frames: Vec<LoopFrame>,
}

/// The collected profile, queryable by the classifier (§4.2).
#[derive(Debug, Clone, Default)]
pub struct Profile {
    /// For each load/store instruction, the set of object names its pointer
    /// referenced (the pointer-to-object map).
    pub access_objects: BTreeMap<CallSite, BTreeSet<ObjectName>>,
    /// `(object, loop)` pairs where every instance of `object` allocated
    /// under `loop` was freed within its allocation iteration.
    pub short_lived: BTreeSet<(ObjectName, LoopRef)>,
    /// Objects observed allocated at least once under each loop.
    pub allocated_under: BTreeSet<(ObjectName, LoopRef)>,
    /// Cross-iteration memory flow dependences per loop.
    pub cross_deps: BTreeMap<LoopRef, BTreeMap<(CallSite, CallSite), DepInfo>>,
    /// Per-loop trip counts and hotness.
    pub loop_stats: BTreeMap<LoopRef, LoopStats>,
    /// Conditional-branch statistics.
    pub branch_stats: BTreeMap<(FuncId, BlockId), BranchStats>,
    /// Blocks that executed at least once.
    pub executed_blocks: BTreeSet<(FuncId, BlockId)>,
    /// Total instructions executed in the profiled run.
    pub total_insts: u64,
}

impl Profile {
    /// Objects referenced by the pointer of the access at `site`.
    pub fn objects_at(&self, site: CallSite) -> Option<&BTreeSet<ObjectName>> {
        self.access_objects.get(&site)
    }

    /// Whether `object` is short-lived with respect to `lp` (paper:
    /// `Profile.isShortLived(o, L)`).
    pub fn is_short_lived(&self, object: &ObjectName, lp: LoopRef) -> bool {
        self.short_lived.contains(&(object.clone(), lp))
    }

    /// Loops ordered by decreasing hotness weight.
    pub fn loops_by_weight(&self) -> Vec<(LoopRef, LoopStats)> {
        let mut v: Vec<_> = self.loop_stats.iter().map(|(&l, &s)| (l, s)).collect();
        v.sort_by(|a, b| b.1.weight.cmp(&a.1.weight).then(a.0.cmp(&b.0)));
        v
    }

    /// Whether a block never executed during profiling (a control-
    /// speculation candidate).
    pub fn block_unexecuted(&self, func: FuncId, bb: BlockId) -> bool {
        !self.executed_blocks.contains(&(func, bb))
    }

    /// The cross-iteration flow dependences of one loop.
    pub fn deps_of(&self, lp: LoopRef) -> impl Iterator<Item = (&(CallSite, CallSite), &DepInfo)> {
        self.cross_deps.get(&lp).into_iter().flatten()
    }
}

/// The [`Hooks`] implementation that gathers a [`Profile`].
#[derive(Debug, Default)]
pub struct ProfileSuite {
    objmap: IntervalMap<ObjectName>,
    access_objects: BTreeMap<CallSite, BTreeSet<ObjectName>>,
    live: HashMap<u64, LiveObj>,
    allocated_under: BTreeSet<(ObjectName, LoopRef)>,
    lifetime_violations: BTreeSet<(ObjectName, LoopRef)>,
    last_writer: HashMap<u64, Rc<WriterInfo>>,
    cross_deps: BTreeMap<LoopRef, BTreeMap<(CallSite, CallSite), DepInfo>>,
    loop_stats: BTreeMap<LoopRef, LoopStats>,
    branch_stats: BTreeMap<(FuncId, BlockId), BranchStats>,
    executed_blocks: BTreeSet<(FuncId, BlockId)>,
    total_insts: u64,
}

impl ProfileSuite {
    /// A suite with globals pre-registered in the object map.
    pub fn new(module: &Module, image: &ProgramImage) -> ProfileSuite {
        let mut suite = ProfileSuite::default();
        for g in module.global_ids() {
            let addr = image.global_addrs[g.index()];
            let size = module.global(g).size.max(1);
            suite
                .objmap
                .insert(addr, addr + size, ObjectName::Global(g));
        }
        suite
    }

    fn record_access(&mut self, ctx: &ExecCtx, func: FuncId, inst: InstId, addr: u64, size: u32) {
        let names: Vec<ObjectName> = self
            .objmap
            .query_range(addr, addr + size.max(1) as u64)
            .into_iter()
            .map(|(_, _, n)| n.clone())
            .collect();
        let entry = self.access_objects.entry((func, inst)).or_default();
        for n in names {
            entry.insert(n);
        }
        let _ = ctx;
    }

    fn note_flow(&mut self, ctx: &ExecCtx, dst: CallSite, addr: u64, size: u32) {
        for b in addr..addr + size as u64 {
            let Some(w) = self.last_writer.get(&b).cloned() else {
                continue;
            };
            // For each loop active at both the write and the read, in the
            // same invocation: earlier iteration => loop-carried flow dep.
            for rf in &ctx.loop_stack {
                let Some(wf) = w
                    .frames
                    .iter()
                    .find(|wf| wf.func == rf.func && wf.loop_id == rf.loop_id)
                else {
                    continue;
                };
                if wf.invocation == rf.invocation && wf.iter < rf.iter {
                    let dep = self
                        .cross_deps
                        .entry((rf.func, rf.loop_id))
                        .or_default()
                        .entry((w.src, dst))
                        .or_default();
                    dep.count += 1;
                    if dep.addrs.len() < DEP_ADDR_CAP {
                        dep.addrs.insert(b);
                    } else {
                        dep.addrs_overflow = true;
                    }
                }
            }
        }
    }

    fn note_dealloc(&mut self, ctx: &ExecCtx, addr: u64) {
        if let Some(obj) = self.live.remove(&addr) {
            // Short-lived w.r.t. loop L iff freed in the same iteration of
            // the same invocation in which it was allocated.
            for af in &obj.alloc_frames {
                let ok = ctx.loop_stack.iter().any(|cf| {
                    cf.func == af.func
                        && cf.loop_id == af.loop_id
                        && cf.invocation == af.invocation
                        && cf.iter == af.iter
                });
                if !ok {
                    self.lifetime_violations
                        .insert((obj.name.clone(), (af.func, af.loop_id)));
                }
            }
            self.objmap.remove_at(addr);
        }
    }

    /// Finalize into a queryable [`Profile`].
    pub fn finish(mut self) -> Profile {
        // Never-freed objects are not short-lived for any enclosing loop.
        let live: Vec<LiveObj> = self.live.drain().map(|(_, o)| o).collect();
        for obj in live {
            for af in &obj.alloc_frames {
                self.lifetime_violations
                    .insert((obj.name.clone(), (af.func, af.loop_id)));
            }
        }
        let short_lived = self
            .allocated_under
            .iter()
            .filter(|k| !self.lifetime_violations.contains(k))
            .cloned()
            .collect();
        Profile {
            access_objects: self.access_objects,
            short_lived,
            allocated_under: self.allocated_under,
            cross_deps: self.cross_deps,
            loop_stats: self.loop_stats,
            branch_stats: self.branch_stats,
            executed_blocks: self.executed_blocks,
            total_insts: self.total_insts,
        }
    }
}

impl Hooks for ProfileSuite {
    fn on_load(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        inst: InstId,
        addr: u64,
        size: u32,
        _mem: &AddressSpace,
    ) {
        self.record_access(ctx, func, inst, addr, size);
        self.note_flow(ctx, (func, inst), addr, size);
    }

    fn on_store(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        inst: InstId,
        addr: u64,
        size: u32,
        _mem: &AddressSpace,
    ) {
        self.record_access(ctx, func, inst, addr, size);
        let info = Rc::new(WriterInfo {
            src: (func, inst),
            frames: ctx.loop_stack.clone(),
        });
        for b in addr..addr + size as u64 {
            self.last_writer.insert(b, Rc::clone(&info));
        }
    }

    fn on_alloc(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        inst: InstId,
        addr: u64,
        size: u64,
        _kind: AllocKind,
    ) {
        let name = ObjectName::Site {
            site: (func, inst),
            path: ctx.call_path(),
        };
        self.objmap.insert(addr, addr + size.max(1), name.clone());
        for f in &ctx.loop_stack {
            self.allocated_under
                .insert((name.clone(), (f.func, f.loop_id)));
        }
        self.live.insert(
            addr,
            LiveObj {
                name,
                alloc_frames: ctx.loop_stack.clone(),
            },
        );
    }

    fn on_free(&mut self, ctx: &ExecCtx, func: FuncId, inst: InstId, addr: u64) {
        // Free sites participate in the pointer-to-object map too — the
        // replace-allocation pass needs to know which objects a `free`
        // releases (§4.4).
        self.record_access(ctx, func, inst, addr, 1);
        self.note_dealloc(ctx, addr);
    }

    fn on_cond_branch(&mut self, _ctx: &ExecCtx, func: FuncId, block: BlockId, taken: bool) {
        let e = self.branch_stats.entry((func, block)).or_default();
        if taken {
            e.taken += 1;
        } else {
            e.not_taken += 1;
        }
    }

    fn on_loop_enter(&mut self, _ctx: &ExecCtx, func: FuncId, loop_id: LoopId) {
        self.loop_stats
            .entry((func, loop_id))
            .or_default()
            .invocations += 1;
    }

    fn on_loop_iter(
        &mut self,
        _ctx: &ExecCtx,
        func: FuncId,
        loop_id: LoopId,
        _iter: u64,
        _mem: &AddressSpace,
    ) {
        self.loop_stats
            .entry((func, loop_id))
            .or_default()
            .total_iters += 1;
    }

    fn on_block(&mut self, _ctx: &ExecCtx, func: FuncId, block: BlockId) {
        self.executed_blocks.insert((func, block));
    }

    fn on_inst(&mut self, ctx: &ExecCtx, _func: FuncId) {
        self.total_insts += 1;
        for f in &ctx.loop_stack {
            self.loop_stats
                .entry((f.func, f.loop_id))
                .or_default()
                .weight += 1;
        }
    }
}

/// Run `main` under the full profiling suite.
///
/// Returns the profile and the program's output bytes (callers use the
/// output to cross-check against reference runs).
///
/// # Errors
///
/// Propagates any [`Trap`] from execution.
pub fn profile_module(module: &Module, image: &ProgramImage) -> Result<(Profile, Vec<u8>), Trap> {
    let suite = ProfileSuite::new(module, image);
    let mut interp = Interp::new(module, image, suite, BasicRuntime::strict());
    interp.run_main()?;
    let out = interp.rt.take_output();
    Ok((interp.hooks.finish(), out))
}
