//! End-to-end profiling: run a miniature "data-structure reuse" program
//! (the pattern of the paper's Figure 2) and check the profile identifies
//! exactly what the paper's analyses need.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, FuncId, Module, Type, Value};
use privateer_profile::{profile_module, ObjectName};
use privateer_vm::load_module;

/// Build:
///
/// ```c
/// long acc_cell;                 // global, written+read across iterations
/// long table[8];                 // global, re-initialized each iteration
/// for (i = 0; i < 6; i++) {      // outer hot loop
///     for (j = 0; j < 8; j++) table[j] = i;       // kill: write-first
///     node = malloc(16); node[0] = table[i % 8];  // short-lived node
///     acc_cell = acc_cell + node[0];              // cross-iteration flow
///     free(node);
/// }
/// print(acc_cell);
/// ```
fn build_program() -> Module {
    let mut m = Module::new("reuse");
    let acc = m.add_global("acc_cell", 8);
    let table = m.add_global("table", 64);

    let mut b = FunctionBuilder::new("main", vec![], None);
    let oh = b.new_block();
    let init_h = b.new_block();
    let init_b = b.new_block();
    let work = b.new_block();
    let ol = b.new_block();
    let exit = b.new_block();
    b.br(oh);

    // outer header
    b.switch_to(oh);
    let (i, i_phi) = b.phi(Type::I64);
    b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, i, Value::const_i64(6));
    b.cond_br(c, init_h, exit);

    // inner init loop header
    b.switch_to(init_h);
    let (j, j_phi) = b.phi(Type::I64);
    b.add_phi_incoming(j_phi, oh, Value::const_i64(0));
    let cj = b.icmp(CmpOp::Lt, j, Value::const_i64(8));
    b.cond_br(cj, init_b, work);

    b.switch_to(init_b);
    let slot = b.gep(Value::Global(table), j, 8, 0);
    b.store(Type::I64, i, slot);
    let j2 = b.add(Type::I64, j, Value::const_i64(1));
    b.add_phi_incoming(j_phi, init_b, j2);
    b.br(init_h);

    // work: malloc node, read table, accumulate into acc_cell
    b.switch_to(work);
    let node = b.malloc(Value::const_i64(16));
    let idx = b.bin(privateer_ir::BinOp::SRem, Type::I64, i, Value::const_i64(8));
    let tslot = b.gep(Value::Global(table), idx, 8, 0);
    let tv = b.load(Type::I64, tslot);
    b.store(Type::I64, tv, node);
    let nv = b.load(Type::I64, node);
    let old = b.load(Type::I64, Value::Global(acc));
    let sum = b.add(Type::I64, old, nv);
    b.store(Type::I64, sum, Value::Global(acc));
    b.free(node);
    b.br(ol);

    b.switch_to(ol);
    let i2 = b.add(Type::I64, i, Value::const_i64(1));
    b.add_phi_incoming(i_phi, ol, i2);
    b.br(oh);

    b.switch_to(exit);
    let fin = b.load(Type::I64, Value::Global(acc));
    b.print_i64(fin);
    b.ret(None);
    m.add_function(b.finish());
    m
}

#[test]
fn profile_identifies_reuse_patterns() {
    let m = build_program();
    privateer_ir::verify::verify_module(&m).unwrap();
    let image = load_module(&m);
    let (profile, out) = profile_module(&m, &image).unwrap();

    // Output is the sum 0+1+...+5 = 15.
    assert_eq!(out, b"15\n");

    let main = m.main().unwrap();
    // The outer loop is the hottest loop.
    let loops = profile.loops_by_weight();
    assert!(!loops.is_empty());
    let (hot, stats) = loops[0];
    assert_eq!(hot.0, main);
    assert_eq!(stats.invocations, 1);
    assert_eq!(stats.total_iters, 7); // 6 executed iterations + exit test

    // The malloc'd node is short-lived w.r.t. the outer loop.
    let short: Vec<&ObjectName> = profile
        .short_lived
        .iter()
        .filter(|(_, lp)| *lp == hot)
        .map(|(n, _)| n)
        .collect();
    assert_eq!(short.len(), 1, "{short:?}");
    assert!(matches!(short[0], ObjectName::Site { .. }));

    // There is a cross-iteration flow dependence on the accumulator, and
    // its address is the accumulator global's cell.
    let acc_addr = image.global_addrs[m.global_by_name("acc_cell").unwrap().index()];
    let deps: Vec<_> = profile.deps_of(hot).collect();
    assert!(!deps.is_empty());
    let all_addrs: Vec<u64> = deps
        .iter()
        .flat_map(|(_, info)| info.addrs.iter().copied())
        .collect();
    assert!(
        all_addrs
            .iter()
            .all(|&a| (acc_addr..acc_addr + 8).contains(&a)),
        "cross-iteration flow must only be through acc_cell: {all_addrs:?}"
    );

    // The table is written then read within each iteration: no
    // cross-iteration flow dep lands in its range.
    let table_addr = image.global_addrs[m.global_by_name("table").unwrap().index()];
    assert!(all_addrs
        .iter()
        .all(|&a| !(table_addr..table_addr + 64).contains(&a)));

    // Every block of main executed.
    for bb in m.func(main).block_ids() {
        assert!(!profile.block_unexecuted(main, bb), "{bb} never ran");
    }
}

#[test]
fn call_context_distinguishes_allocation_sites() {
    // helper() mallocs; called from two different sites. The object names
    // must differ by call path.
    let mut m = Module::new("ctx");
    let helper_id = FuncId::new(0);
    let mut h = FunctionBuilder::new("helper", vec![], Some(Type::Ptr));
    let p = h.malloc(Value::const_i64(8));
    h.store(Type::I64, Value::const_i64(1), p);
    h.ret(Some(p));
    m.add_function(h.finish());

    let mut b = FunctionBuilder::new("main", vec![], None);
    let p1 = b.call(helper_id, vec![], Some(Type::Ptr)).unwrap();
    let p2 = b.call(helper_id, vec![], Some(Type::Ptr)).unwrap();
    let v1 = b.load(Type::I64, p1);
    let v2 = b.load(Type::I64, p2);
    let s = b.add(Type::I64, v1, v2);
    b.print_i64(s);
    b.free(p1);
    b.free(p2);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    let image = load_module(&m);
    let (profile, out) = profile_module(&m, &image).unwrap();
    assert_eq!(out, b"2\n");

    // The two loads reference objects with the same site but different
    // call paths.
    let mut names = std::collections::BTreeSet::new();
    for objs in profile.access_objects.values() {
        for o in objs {
            if matches!(o, ObjectName::Site { .. }) {
                names.insert(o.clone());
            }
        }
    }
    assert_eq!(names.len(), 2, "{names:?}");
    let sites: std::collections::BTreeSet<_> = names.iter().map(|n| n.alloc_site()).collect();
    assert_eq!(sites.len(), 1, "same static site");
}

#[test]
fn branch_bias_and_hotness_measured() {
    // A branch taken 1 time in 10, inside a loop that dominates execution.
    let mut m = Module::new("bias");
    let g = m.add_global("acc", 8);
    let mut b = FunctionBuilder::new("main", vec![], None);
    let pre = b.current_block();
    let header = b.new_block();
    let body = b.new_block();
    let rare = b.new_block();
    let join = b.new_block();
    let exit = b.new_block();
    b.br(header);
    b.switch_to(header);
    let (i, phi) = b.phi(Type::I64);
    b.add_phi_incoming(phi, pre, Value::const_i64(0));
    let c = b.icmp(CmpOp::Lt, i, Value::const_i64(50));
    b.cond_br(c, body, exit);
    b.switch_to(body);
    let r = b.bin(
        privateer_ir::BinOp::SRem,
        Type::I64,
        i,
        Value::const_i64(10),
    );
    let is0 = b.icmp(CmpOp::Eq, r, Value::const_i64(0));
    b.cond_br(is0, rare, join);
    b.switch_to(rare);
    let v = b.load(Type::I64, Value::Global(g));
    let v2 = b.add(Type::I64, v, Value::const_i64(1));
    b.store(Type::I64, v2, Value::Global(g));
    b.br(join);
    b.switch_to(join);
    let i2 = b.add(Type::I64, i, Value::const_i64(1));
    b.add_phi_incoming(phi, join, i2);
    b.br(header);
    b.switch_to(exit);
    b.ret(None);
    let main = m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    let image = load_module(&m);
    let (profile, _) = profile_module(&m, &image).unwrap();

    // The body's conditional is 10% taken.
    let stats = profile
        .branch_stats
        .get(&(main, privateer_ir::BlockId::new(2)))
        .expect("body branch profiled");
    assert_eq!(stats.taken, 5);
    assert_eq!(stats.not_taken, 45);
    assert!((stats.bias() - 0.1).abs() < 1e-9);

    // The header branch is ~98% taken (50 of 51).
    let hdr = profile
        .branch_stats
        .get(&(main, privateer_ir::BlockId::new(1)))
        .expect("header branch profiled");
    assert!(hdr.bias() > 0.9);

    // Hotness: the loop's weight accounts for nearly all instructions.
    let (hot, stats) = profile.loops_by_weight()[0];
    assert_eq!(hot.0, main);
    assert!(stats.weight as f64 > 0.9 * profile.total_insts as f64);
    assert_eq!(stats.invocations, 1);
    assert_eq!(stats.total_iters, 51);
}
