//! Property test: the interval map agrees with a naive per-byte model
//! under arbitrary insert/remove/query sequences (the pointer-to-object
//! profiler depends on this exactness).

use privateer_profile::IntervalMap;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert { start: u64, len: u64, tag: u32 },
    RemoveAt { start: u64 },
    Query { addr: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..400, 1u64..40, any::<u32>()).prop_map(|(start, len, tag)| Op::Insert {
            start,
            len,
            tag
        }),
        (0u64..400).prop_map(|start| Op::RemoveAt { start }),
        (0u64..450).prop_map(|addr| Op::Query { addr }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn agrees_with_byte_model(ops in prop::collection::vec(op_strategy(), 0..80)) {
        let mut map: IntervalMap<u32> = IntervalMap::new();
        // Model: byte -> (range start, tag).
        let mut model: HashMap<u64, (u64, u32)> = HashMap::new();
        for op in ops {
            match op {
                Op::Insert { start, len, tag } => {
                    let end = start + len;
                    // Eviction semantics: any overlapped range vanishes
                    // entirely.
                    let mut starts_overlapping = std::collections::BTreeSet::new();
                    for b in start..end {
                        if let Some(&(s, _)) = model.get(&b) {
                            starts_overlapping.insert(s);
                        }
                    }
                    model.retain(|_, &mut (s, _)| !starts_overlapping.contains(&s));
                    for b in start..end {
                        model.insert(b, (start, tag));
                    }
                    map.insert(start, end, tag);
                }
                Op::RemoveAt { start } => {
                    map.remove_at(start);
                    model.retain(|_, &mut (s, _)| s != start);
                }
                Op::Query { addr } => {
                    let got = map.get(addr).copied();
                    let want = model.get(&addr).map(|&(_, t)| t);
                    prop_assert_eq!(got, want, "query at {}", addr);
                }
            }
        }
        // Final sweep: every byte agrees.
        for addr in 0..460u64 {
            let got = map.get(addr).copied();
            let want = model.get(&addr).map(|&(_, t)| t);
            prop_assert_eq!(got, want, "final sweep at {}", addr);
        }
        // Structural sanity: stored ranges are disjoint.
        let ranges: Vec<(u64, u64)> = map.iter().map(|(s, e, _)| (s, e)).collect();
        for (i, &(s1, e1)) in ranges.iter().enumerate() {
            for &(s2, e2) in &ranges[i + 1..] {
                prop_assert!(e1 <= s2 || e2 <= s1, "ranges overlap: {s1}..{e1} vs {s2}..{e2}");
            }
        }
    }
}
