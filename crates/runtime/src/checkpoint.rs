//! Checkpoint objects and the phase-2 (cross-worker) privacy validation
//! (§5.2).
//!
//! Workers contribute their speculative state — private-heap pages, shadow
//! metadata, reduction images, deferred output — to a checkpoint object.
//! Merging replays each worker's per-byte access summary against the
//! committed metadata using the same Table 2 rules as the fast phase,
//! which is exactly the paper's two-phase design: conflicts that phase 1
//! cannot see (they span workers) surface here.

use crate::shadow;
use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::Heap;
use privateer_vm::{AddressSpace, MisspecKind, Page, Trap, PAGE_SIZE};
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// One worker's speculative state for one checkpoint period.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Contributing worker.
    pub worker: usize,
    /// Checkpoint period index.
    pub period: u64,
    /// The worker's shadow-heap pages (its phase-1 metadata).
    pub shadow_pages: Vec<(u64, Arc<Page>)>,
    /// The worker's private-heap pages (speculative data values).
    pub priv_pages: Vec<(u64, Arc<Page>)>,
    /// The worker's cumulative image of each registered reduction object.
    pub redux_images: Vec<Vec<u8>>,
    /// Deferred output, `(iteration, bytes)`.
    pub io: Vec<(i64, Vec<u8>)>,
}

/// Collect a worker's contribution from its address space.
pub fn collect_contribution(
    worker: usize,
    period: u64,
    mem: &AddressSpace,
    redux: &[(privateer_ir::ReduxOp, u64, u64)],
    io: Vec<(i64, Vec<u8>)>,
) -> Contribution {
    let priv_lo = Heap::Private.base();
    let priv_hi = priv_lo + crate::heaps::HEAP_SPAN;
    let shadow_lo = priv_lo | SHADOW_BIT;
    let shadow_hi = priv_hi | SHADOW_BIT;
    let redux_images = redux
        .iter()
        .map(|&(_, addr, size)| {
            let mut buf = vec![0u8; size as usize];
            mem.read_bytes(addr, &mut buf);
            buf
        })
        .collect();
    Contribution {
        worker,
        period,
        shadow_pages: mem.pages_in_range(shadow_lo, shadow_hi),
        priv_pages: mem.pages_in_range(priv_lo, priv_hi),
        redux_images,
        io,
    }
}

/// Incremental checkpoint merge state for one period.
#[derive(Debug, Default)]
pub struct CheckpointMerge {
    /// Byte address → (timestamp, value): the latest write this period.
    written: HashMap<u64, (u8, u8)>,
    /// Bytes some worker read as live-in this period.
    read_live_in: HashSet<u64>,
    /// Deferred output gathered from all workers.
    io: Vec<(i64, Vec<u8>)>,
    /// Reduction images per object per worker (worker-cumulative).
    pub redux_images: Vec<Vec<Vec<u8>>>,
}

impl CheckpointMerge {
    /// Empty merge state expecting `redux_objects` registered reductions.
    pub fn new(redux_objects: usize) -> CheckpointMerge {
        CheckpointMerge {
            redux_images: vec![Vec::new(); redux_objects],
            ..CheckpointMerge::default()
        }
    }

    /// Merge one worker's contribution, validating privacy against the
    /// committed metadata in `committed` (phase 2).
    ///
    /// # Errors
    ///
    /// Traps with a privacy misspeculation on a cross-worker
    /// read-of-earlier-write or the conservative read/write conflict.
    pub fn add(&mut self, contrib: Contribution, committed: &AddressSpace) -> Result<(), Trap> {
        let priv_lookup: HashMap<u64, &Arc<Page>> = contrib
            .priv_pages
            .iter()
            .map(|(base, p)| (*base, p))
            .collect();
        for (sbase, spage) in &contrib.shadow_pages {
            let pbase = *sbase & !SHADOW_BIT;
            // Word-granular skip: untouched runs carry only
            // live-in/old-write metadata, so whole 8-byte words are
            // dismissed with a single compare (shadow::word); only words
            // containing read-live-in or timestamp bytes walk per-byte.
            for (wi, group) in spage.chunks_exact(8).enumerate() {
                let w = u64::from_le_bytes(group.try_into().unwrap());
                if shadow::word::all_le_old_write(w) {
                    continue;
                }
                self.add_word(wi, group, pbase, &priv_lookup, committed)?;
            }
        }
        for (i, img) in contrib.redux_images.into_iter().enumerate() {
            self.redux_images[i].push(img);
        }
        self.io.extend(contrib.io);
        Ok(())
    }

    /// Merge one 8-byte shadow word known to contain at least one touched
    /// byte (the per-byte path of [`Self::add`]).
    fn add_word(
        &mut self,
        wi: usize,
        group: &[u8],
        pbase: u64,
        priv_lookup: &HashMap<u64, &Arc<Page>>,
        committed: &AddressSpace,
    ) -> Result<(), Trap> {
        for (bi, &meta) in group.iter().enumerate() {
            if meta <= shadow::OLD_WRITE {
                continue;
            }
            let baddr = pbase + (wi * 8 + bi) as u64;
            if meta == shadow::READ_LIVE_IN {
                // Stale read: an earlier *period* wrote this byte; the
                // worker read its pre-invocation fork instead.
                if committed.read_u8(baddr | SHADOW_BIT) == shadow::OLD_WRITE {
                    return Err(privacy(
                        baddr,
                        "read of a value committed by an earlier iteration (stale live-in)",
                    ));
                }
                if self.written.contains_key(&baddr) {
                    return Err(privacy(
                        baddr,
                        "cross-worker read/write conflict on a live-in byte (conservative)",
                    ));
                }
                self.read_live_in.insert(baddr);
            } else {
                // A timestamped write.
                if self.read_live_in.contains(&baddr) {
                    return Err(privacy(
                        baddr,
                        "cross-worker read/write conflict on a live-in byte (conservative)",
                    ));
                }
                let value = priv_lookup
                    .get(&(baddr & !(PAGE_SIZE - 1)))
                    .map(|p| p[(baddr & (PAGE_SIZE - 1)) as usize])
                    .unwrap_or(0);
                match self.written.get(&baddr) {
                    Some(&(prev_ts, _)) if prev_ts >= meta => {}
                    _ => {
                        self.written.insert(baddr, (meta, value));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of private bytes written this period.
    pub fn written_bytes(&self) -> usize {
        self.written.len()
    }

    /// Commit the merged state: apply the latest write per byte onto
    /// `mem`, mark those bytes old-write in the committed shadow, and
    /// return the deferred output in iteration order.
    pub fn commit(self, mem: &mut AddressSpace) -> Vec<(i64, Vec<u8>)> {
        // Batch consecutive bytes for fewer page operations.
        let mut bytes: Vec<(u64, u8)> = self.written.iter().map(|(&a, &(_, v))| (a, v)).collect();
        bytes.sort_unstable_by_key(|&(a, _)| a);
        let mut i = 0;
        while i < bytes.len() {
            let start = bytes[i].0;
            let mut run = vec![bytes[i].1];
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].0 == start + run.len() as u64 {
                run.push(bytes[j].1);
                j += 1;
            }
            mem.write_bytes(start, &run);
            let marks = vec![shadow::OLD_WRITE; run.len()];
            mem.write_bytes(start | SHADOW_BIT, &marks);
            i = j;
        }
        let mut io = self.io;
        io.sort_by_key(|a| a.0);
        io
    }
}

fn privacy(addr: u64, why: &str) -> Trap {
    Trap::misspec(MisspecKind::Privacy, format!("{why} (byte {addr:#x})"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerRuntime;
    use privateer_vm::RuntimeIface;

    fn worker_mem() -> (WorkerRuntime, AddressSpace) {
        (WorkerRuntime::new(0, 0.0, 0), AddressSpace::new())
    }

    fn contrib_of(
        worker: usize,
        period: u64,
        mem: &AddressSpace,
        rt: &mut WorkerRuntime,
    ) -> Contribution {
        collect_contribution(worker, period, mem, &[], rt.take_io())
    }

    #[test]
    fn clean_merge_commits_latest_write() {
        let a = Heap::Private.base() + 0x100;
        // Worker 0 writes iteration 0; worker 1 writes iteration 1.
        let (mut r0, mut m0) = worker_mem();
        r0.begin_iteration(0, 0).unwrap();
        r0.private_write(a, 1, &mut m0).unwrap();
        m0.write_u8(a, 10);
        r0.end_iteration().unwrap();

        let mut r1 = WorkerRuntime::new(1, 0.0, 0);
        let mut m1 = AddressSpace::new();
        r1.begin_iteration(1, 1).unwrap();
        r1.private_write(a, 1, &mut m1).unwrap();
        m1.write_u8(a, 20);
        r1.end_iteration().unwrap();

        let mut committed = AddressSpace::new();
        let mut merge = CheckpointMerge::new(0);
        merge
            .add(contrib_of(0, 0, &m0, &mut r0), &committed)
            .unwrap();
        merge
            .add(contrib_of(1, 0, &m1, &mut r1), &committed)
            .unwrap();
        assert_eq!(merge.written_bytes(), 1);
        merge.commit(&mut committed);
        // Iteration 1 is sequentially later: its value wins.
        assert_eq!(committed.read_u8(a), 20);
        assert_eq!(committed.read_u8(a | SHADOW_BIT), shadow::OLD_WRITE);
    }

    #[test]
    fn merge_order_does_not_change_winner() {
        let a = Heap::Private.base() + 0x200;
        let mk = |iter: u64, val: u8| {
            let mut rt = WorkerRuntime::new(iter as usize, 0.0, 0);
            let mut mem = AddressSpace::new();
            rt.begin_iteration(iter as i64, iter).unwrap();
            rt.private_write(a, 1, &mut mem).unwrap();
            mem.write_u8(a, val);
            rt.end_iteration().unwrap();
            (rt, mem)
        };
        for order in [[0usize, 1], [1, 0]] {
            let contribs: Vec<_> = order
                .iter()
                .map(|&w| {
                    let (mut rt, mem) = mk(w as u64, (w as u8 + 1) * 10);
                    contrib_of(w, 0, &mem, &mut rt)
                })
                .collect();
            let mut committed = AddressSpace::new();
            let mut merge = CheckpointMerge::new(0);
            for c in contribs {
                merge.add(c, &committed).unwrap();
            }
            merge.commit(&mut committed);
            assert_eq!(committed.read_u8(a), 20, "iteration 1's value must win");
        }
    }

    #[test]
    fn cross_worker_read_write_conflict_detected() {
        let a = Heap::Private.base() + 0x300;
        // Worker 0 reads live-in at iteration 1; worker 1 wrote at iteration 0.
        let (mut r0, mut m0) = worker_mem();
        r0.begin_iteration(1, 1).unwrap();
        r0.private_read(a, 1, &mut m0).unwrap();
        r0.end_iteration().unwrap();

        let mut r1 = WorkerRuntime::new(1, 0.0, 0);
        let mut m1 = AddressSpace::new();
        r1.begin_iteration(0, 0).unwrap();
        r1.private_write(a, 1, &mut m1).unwrap();
        r1.end_iteration().unwrap();

        for order in [true, false] {
            let committed = AddressSpace::new();
            let mut merge = CheckpointMerge::new(0);
            let c0 = contrib_of(0, 0, &m0, &mut WorkerRuntime::new(0, 0.0, 0));
            let c0 = Contribution { io: vec![], ..c0 };
            let c1 = contrib_of(1, 0, &m1, &mut WorkerRuntime::new(1, 0.0, 0));
            let c1 = Contribution { io: vec![], ..c1 };
            let (first, second) = if order {
                (c0.clone(), c1.clone())
            } else {
                (c1, c0)
            };
            let r = merge
                .add(first, &committed)
                .and_then(|()| merge.add(second, &committed));
            assert!(r.is_err(), "conflict must be caught in either order");
        }
    }

    #[test]
    fn stale_read_against_committed_meta_detected() {
        let a = Heap::Private.base() + 0x400;
        // Committed state: byte was written in an earlier period.
        let mut committed = AddressSpace::new();
        committed.write_u8(a | SHADOW_BIT, shadow::OLD_WRITE);

        // Worker reads it as live-in (its fork predates the write).
        let (mut rt, mut mem) = worker_mem();
        rt.begin_iteration(9, 0).unwrap();
        rt.private_read(a, 1, &mut mem).unwrap();
        let mut merge = CheckpointMerge::new(0);
        let e = merge
            .add(contrib_of(0, 1, &mem, &mut rt), &committed)
            .unwrap_err();
        assert!(matches!(e, Trap::Misspec(m) if m.kind == MisspecKind::Privacy));
    }

    #[test]
    fn disjoint_writes_all_commit() {
        let base = Heap::Private.base() + 0x1000;
        let mut committed = AddressSpace::new();
        let mut merge = CheckpointMerge::new(0);
        for w in 0..4usize {
            let mut rt = WorkerRuntime::new(w, 0.0, 0);
            let mut mem = AddressSpace::new();
            rt.begin_iteration(w as i64, w as u64).unwrap();
            let a = base + (w as u64) * 8;
            rt.private_write(a, 8, &mut mem).unwrap();
            mem.write_u64(a, w as u64 + 100);
            rt.end_iteration().unwrap();
            merge
                .add(contrib_of(w, 0, &mem, &mut rt), &committed)
                .unwrap();
        }
        assert_eq!(merge.written_bytes(), 32);
        merge.commit(&mut committed);
        for w in 0..4u64 {
            assert_eq!(committed.read_u64(base + w * 8), w + 100);
        }
    }

    #[test]
    fn io_commits_in_iteration_order() {
        let mut merge = CheckpointMerge::new(0);
        let committed = AddressSpace::new();
        let mk = |w: usize, io: Vec<(i64, Vec<u8>)>| Contribution {
            worker: w,
            period: 0,
            shadow_pages: vec![],
            priv_pages: vec![],
            redux_images: vec![],
            io,
        };
        merge
            .add(
                mk(0, vec![(2, b"c".to_vec()), (0, b"a".to_vec())]),
                &committed,
            )
            .unwrap();
        merge
            .add(mk(1, vec![(1, b"b".to_vec())]), &committed)
            .unwrap();
        let mut out = Vec::new();
        for (_, bytes) in merge.commit(&mut AddressSpace::new()) {
            out.extend(bytes);
        }
        assert_eq!(out, b"abc");
    }
}
