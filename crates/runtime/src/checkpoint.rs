//! Checkpoint objects and the phase-2 (cross-worker) privacy validation
//! (§5.2).
//!
//! Workers contribute their speculative state — private-heap pages, shadow
//! metadata, reduction images, deferred output — to a checkpoint object.
//! Merging replays each worker's per-byte access summary against the
//! committed metadata using the same Table 2 rules as the fast phase,
//! which is exactly the paper's two-phase design: conflicts that phase 1
//! cannot see (they span workers) surface here.
//!
//! Two properties keep this path linear rather than quadratic:
//!
//! * **Delta contributions** ([`DeltaTracker`]): a worker ships only the
//!   pages whose `Arc` changed since its previous contribution. This is
//!   sound because [`crate::worker::WorkerRuntime::normalize_shadow`]
//!   leaves an untouched page's shadow with no timestamps or read-live-in
//!   bytes, so the merge ([`CheckpointMerge::add`]) would dismiss every
//!   one of its words anyway.
//! * **Page-granular merge state** ([`CheckpointMerge`]): the latest
//!   write per byte and the read-live-in set live in dense per-page
//!   buffers instead of per-address hash containers, and commit walks
//!   page runs instead of reassembling byte runs.
//!
//! [`ReferenceCheckpointMerge`] retains the original per-address
//! (`HashMap`/`HashSet`) merge; the proptest suite enforces observational
//! equivalence between the two, and the criterion benches measure the gap.
//!
//! # Sharded (multi-lane) merging
//!
//! Phase-2 validation is *per-byte*: the outcome for a byte depends only
//! on that byte's shadow history across the contributions and on the
//! committed metadata at the same address — never on a neighbouring
//! byte's. Pages are therefore independent, and the merge can be sharded
//! by page index across merge lanes (`lane = page_index % lanes`,
//! [`lane_of`]) with each lane merging its disjoint page set over *all*
//! contributions in the canonical order. [`Contribution`]s are packaged
//! pre-bucketed by lane ([`DeltaTracker`] sorts pages by `(lane, base)`
//! and records the bucket boundaries) so the engine never re-scans pages,
//! and [`CheckpointMerge::add_sharded`] merges exactly one lane's bucket.
//!
//! Determinism of traps: within one contribution the serial merge scans
//! bytes in ascending address order, so its first trap is the trap with
//! the minimal `(contribution index, byte address)` key. Each lane
//! reports its own first trap with that key ([`LaneTrap`]), and the
//! coordinator takes the minimum over lanes — byte-identical to the
//! serial merge's trap, regardless of lane count or scheduling. Deferred
//! I/O and reduction images are *not* sharded; the engine strips and
//! folds them centrally in worker order.

use crate::shadow;
use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::Heap;
use privateer_telemetry::{Phase, WorkerTelemetry};
use privateer_vm::{AddressSpace, MisspecKind, Page, Trap, PAGE_SIZE};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::sync::Arc;
use std::time::Instant;

/// One page of a contribution: `(base address, page data)`.
type PageEntry = (u64, Arc<Page>);
/// An owned list of contribution pages.
type PageList = Vec<PageEntry>;

/// One worker's speculative state for one checkpoint period.
#[derive(Debug, Clone)]
pub struct Contribution {
    /// Contributing worker.
    pub worker: usize,
    /// Checkpoint period index.
    pub period: u64,
    /// The worker's shadow-heap pages (its phase-1 metadata), sorted by
    /// `(merge lane, base)` — see [`Self::shadow_lane_starts`].
    pub shadow_pages: Vec<(u64, Arc<Page>)>,
    /// The worker's private-heap pages (speculative data values), sorted
    /// by `(merge lane, base)` — see [`Self::priv_lane_starts`].
    pub priv_pages: Vec<(u64, Arc<Page>)>,
    /// Bucket boundaries into [`Self::shadow_pages`]: lane `l` owns
    /// `shadow_pages[shadow_lane_starts[l]..shadow_lane_starts[l + 1]]`.
    /// Length is `lanes + 1`; `[0, len]` for an unsharded contribution.
    pub shadow_lane_starts: Vec<usize>,
    /// Bucket boundaries into [`Self::priv_pages`] (same scheme as
    /// [`Self::shadow_lane_starts`]).
    pub priv_lane_starts: Vec<usize>,
    /// The worker's cumulative image of each registered reduction object.
    pub redux_images: Vec<Vec<u8>>,
    /// Deferred output, `(iteration, bytes)`.
    pub io: Vec<(i64, Vec<u8>)>,
}

/// The merge lane owning a page: `page_index % lanes` on the *data* page
/// (a shadow base maps to the lane of its paired private page, so a
/// shadow page and its value page always land in the same lane).
pub fn lane_of(page_base: u64, lanes: usize) -> usize {
    if lanes <= 1 {
        return 0;
    }
    (((page_base & !SHADOW_BIT) / PAGE_SIZE) % lanes as u64) as usize
}

/// Sort `pages` by `(lane, base)` and return the per-lane bucket starts
/// (length `lanes + 1`). Order *within* a lane is the input order, which
/// for pages out of `AddressSpace::pages_in_range` is ascending base —
/// the canonical scan order the trap-determinism argument relies on.
fn bucket_pages(pages: Vec<(u64, Arc<Page>)>, lanes: usize) -> (Vec<(u64, Arc<Page>)>, Vec<usize>) {
    if lanes <= 1 {
        let starts = vec![0, pages.len()];
        return (pages, starts);
    }
    let mut buckets: Vec<Vec<(u64, Arc<Page>)>> = (0..lanes).map(|_| Vec::new()).collect();
    for (base, page) in pages {
        buckets[lane_of(base, lanes)].push((base, page));
    }
    let mut out = Vec::with_capacity(buckets.iter().map(Vec::len).sum());
    let mut starts = Vec::with_capacity(lanes + 1);
    starts.push(0);
    for mut b in buckets {
        out.append(&mut b);
        starts.push(out.len());
    }
    (out, starts)
}

fn lane_slice<'a>(
    pages: &'a [(u64, Arc<Page>)],
    starts: &[usize],
    lane: usize,
) -> &'a [(u64, Arc<Page>)] {
    if starts.len() < 2 {
        // Hand-built contribution with no bucket table: lane 0 owns
        // everything.
        return if lane == 0 { pages } else { &[] };
    }
    if lane + 1 >= starts.len() {
        return &[];
    }
    &pages[starts[lane]..starts[lane + 1]]
}

impl Contribution {
    /// The number of merge lanes this contribution was bucketed for
    /// (1 when no bucket table was recorded).
    pub fn lanes(&self) -> usize {
        self.shadow_lane_starts.len().saturating_sub(1).max(1)
    }

    /// The shadow pages owned by `lane` (of [`Self::lanes`] lanes).
    pub fn shadow_lane(&self, lane: usize) -> &[(u64, Arc<Page>)] {
        lane_slice(&self.shadow_pages, &self.shadow_lane_starts, lane)
    }

    /// The private pages owned by `lane` (of [`Self::lanes`] lanes).
    pub fn priv_lane(&self, lane: usize) -> &[(u64, Arc<Page>)] {
        lane_slice(&self.priv_pages, &self.priv_lane_starts, lane)
    }

    /// Total pages shipped (shadow + private).
    pub fn page_count(&self) -> usize {
        self.shadow_pages.len() + self.priv_pages.len()
    }

    /// Re-bucket for a different lane count (used by tests and by callers
    /// holding contributions packaged for another configuration).
    pub fn rebucket(mut self, lanes: usize) -> Contribution {
        let (shadow, sstarts) = bucket_pages(std::mem::take(&mut self.shadow_pages), lanes);
        let (privs, pstarts) = bucket_pages(std::mem::take(&mut self.priv_pages), lanes);
        self.shadow_pages = shadow;
        self.shadow_lane_starts = sstarts;
        self.priv_pages = privs;
        self.priv_lane_starts = pstarts;
        self
    }
}

fn redux_images(mem: &AddressSpace, redux: &[(privateer_ir::ReduxOp, u64, u64)]) -> Vec<Vec<u8>> {
    redux
        .iter()
        .map(|&(_, addr, size)| {
            let mut buf = vec![0u8; size as usize];
            mem.read_bytes(addr, &mut buf);
            buf
        })
        .collect()
}

/// Collect a worker's *cumulative* contribution from its address space:
/// every materialized private and shadow page, regardless of when it was
/// last dirtied.
///
/// This is the reference collector; the engine uses [`DeltaTracker`],
/// which ships only pages dirtied since the previous contribution.
pub fn collect_contribution(
    worker: usize,
    period: u64,
    mem: &AddressSpace,
    redux: &[(privateer_ir::ReduxOp, u64, u64)],
    io: Vec<(i64, Vec<u8>)>,
) -> Contribution {
    let priv_lo = Heap::Private.base();
    let priv_hi = priv_lo + crate::heaps::HEAP_SPAN;
    let shadow_lo = priv_lo | SHADOW_BIT;
    let shadow_hi = priv_hi | SHADOW_BIT;
    let shadow_pages = mem.pages_in_range(shadow_lo, shadow_hi);
    let priv_pages = mem.pages_in_range(priv_lo, priv_hi);
    let shadow_lane_starts = vec![0, shadow_pages.len()];
    let priv_lane_starts = vec![0, priv_pages.len()];
    Contribution {
        worker,
        period,
        shadow_pages,
        priv_pages,
        shadow_lane_starts,
        priv_lane_starts,
        redux_images: redux_images(mem, redux),
        io,
    }
}

/// Per-worker delta state: remembers the page map as of the previous
/// contribution so the next one ships only pages that changed since.
///
/// Detection is `Arc::ptr_eq` against a snapshot of cheap `Arc` clones
/// taken *after* shadow normalization, so it costs O(#pages) per period
/// and never touches page contents. Soundness: a shadow page untouched
/// since normalization holds only live-in/old-write bytes, which the
/// phase-2 merge skips wholesale, and the merge reads a private page's
/// bytes only at addresses whose shadow byte carries a current-period
/// timestamp — which only shipped (changed) shadow pages can contain.
#[derive(Debug)]
pub struct DeltaTracker {
    shadow_snap: HashMap<u64, Arc<Page>>,
    lanes: usize,
}

impl Default for DeltaTracker {
    fn default() -> DeltaTracker {
        DeltaTracker::new()
    }
}

impl DeltaTracker {
    /// Fresh tracker whose first contribution ships every materialized
    /// page (there is no previous contribution to delta against).
    /// Contributions are bucketed for a single merge lane; use
    /// [`Self::with_lanes`] to pre-bucket for a sharded merge.
    pub fn new() -> DeltaTracker {
        DeltaTracker::with_lanes(1)
    }

    /// Fresh tracker whose contributions are packaged pre-bucketed for
    /// `lanes` merge lanes (pages sorted by `(lane, base)` with the
    /// bucket table filled in), so the merge side never re-scans pages.
    pub fn with_lanes(lanes: usize) -> DeltaTracker {
        DeltaTracker {
            shadow_snap: HashMap::new(),
            lanes: lanes.max(1),
        }
    }

    /// Tracker seeded from a worker's address space at fork time,
    /// bucketing contributions for `lanes` merge lanes.
    ///
    /// Committed shadow pages carry only live-in/old-write marks (commit
    /// and normalization never leave anything else behind), so a page
    /// still sharing its fork-time `Arc` is skippable by the same
    /// argument as an unchanged post-normalize page — the first
    /// contribution of a span then ships only pages dirtied *in* the
    /// span, not the whole committed footprint inherited from earlier
    /// spans.
    pub fn seeded(mem: &AddressSpace, lanes: usize) -> DeltaTracker {
        let shadow_lo = Heap::Private.base() | SHADOW_BIT;
        let shadow_hi = shadow_lo + crate::heaps::HEAP_SPAN;
        DeltaTracker {
            shadow_snap: mem
                .pages_in_range(shadow_lo, shadow_hi)
                .into_iter()
                .collect(),
            lanes: lanes.max(1),
        }
    }

    /// Collect this period's delta contribution from `mem`, then
    /// normalize the worker's shadow metadata
    /// ([`crate::worker::WorkerRuntime::normalize_shadow`]) and snapshot
    /// the normalized page map for the next period's delta.
    pub fn collect(
        &mut self,
        worker: usize,
        period: u64,
        mem: &mut AddressSpace,
        redux: &[(privateer_ir::ReduxOp, u64, u64)],
        io: Vec<(i64, Vec<u8>)>,
    ) -> Contribution {
        self.collect_traced(
            worker,
            period,
            mem,
            redux,
            io,
            &mut WorkerTelemetry::disabled(),
        )
    }

    /// [`Self::collect`] with span recording: the packaging work becomes a
    /// [`Phase::Package`] span (args: period, pages shipped) and the
    /// normalize-and-resnapshot step a [`Phase::Normalize`] span on the
    /// worker's track.
    pub fn collect_traced(
        &mut self,
        worker: usize,
        period: u64,
        mem: &mut AddressSpace,
        redux: &[(privateer_ir::ReduxOp, u64, u64)],
        io: Vec<(i64, Vec<u8>)>,
        tel: &mut WorkerTelemetry,
    ) -> Contribution {
        let t0 = Instant::now();
        let priv_lo = Heap::Private.base();
        let shadow_lo = priv_lo | SHADOW_BIT;
        let shadow_hi = shadow_lo + crate::heaps::HEAP_SPAN;

        // Shadow pages whose Arc changed since the post-normalize snapshot
        // of the previous period. Everything else is guaranteed free of
        // timestamps and read-live-in bytes.
        let shadow_pages: Vec<(u64, Arc<Page>)> = mem
            .pages_in_range(shadow_lo, shadow_hi)
            .into_iter()
            .filter(|(base, page)| {
                !self
                    .shadow_snap
                    .get(base)
                    .is_some_and(|old| Arc::ptr_eq(old, page))
            })
            .collect();
        // The merge reads private values only for bytes timestamped in a
        // shipped shadow page, so exactly the paired private pages (when
        // materialized) need to travel.
        let priv_pages: Vec<(u64, Arc<Page>)> = shadow_pages
            .iter()
            .filter_map(|&(sbase, _)| {
                let pbase = sbase & !SHADOW_BIT;
                mem.page_arc(pbase).map(|p| (pbase, p))
            })
            .collect();
        let (shadow_pages, shadow_lane_starts) = bucket_pages(shadow_pages, self.lanes);
        let (priv_pages, priv_lane_starts) = bucket_pages(priv_pages, self.lanes);
        let contrib = Contribution {
            worker,
            period,
            shadow_pages,
            priv_pages,
            shadow_lane_starts,
            priv_lane_starts,
            redux_images: redux_images(mem, redux),
            io,
        };
        tel.span_since(
            Phase::Package,
            t0,
            period as i64,
            (contrib.shadow_pages.len() + contrib.priv_pages.len()) as i64,
        );
        let tn = Instant::now();
        crate::worker::WorkerRuntime::normalize_shadow(mem);
        self.shadow_snap = mem
            .pages_in_range(shadow_lo, shadow_hi)
            .into_iter()
            .collect();
        tel.span_since(Phase::Normalize, tn, period as i64, 0);
        contrib
    }
}

const PG: usize = PAGE_SIZE as usize;

/// Dense merge state for one private page: per-byte metadata (`0` =
/// untouched this period, [`shadow::READ_LIVE_IN`], or a timestamp) and
/// the value of the latest write.
#[derive(Debug)]
struct PageState {
    meta: [u8; PG],
    val: [u8; PG],
}

impl PageState {
    fn new_boxed() -> Box<PageState> {
        Box::new(PageState {
            meta: [0u8; PG],
            val: [0u8; PG],
        })
    }
}

/// Incremental checkpoint merge state for one period, page-granular: the
/// latest-write and read-live-in metadata live in dense per-page buffers
/// keyed by page base, so validation is array indexing rather than
/// per-address hashing and commit writes page runs.
///
/// # Example
///
/// One worker speculatively writes a private byte; phase 2 merges its
/// contribution and commits the winning value:
///
/// ```
/// use privateer_ir::Heap;
/// use privateer_runtime::checkpoint::{collect_contribution, CheckpointMerge};
/// use privateer_runtime::worker::WorkerRuntime;
/// use privateer_vm::{AddressSpace, RuntimeIface};
///
/// let addr = Heap::Private.base() + 64;
/// let mut rt = WorkerRuntime::new(0, 0.0, 0);
/// let mut mem = AddressSpace::new();
/// rt.begin_iteration(0, 0).unwrap();
/// rt.private_write(addr, 1, &mut mem).unwrap();
/// mem.write_u8(addr, 42);
/// rt.end_iteration().unwrap();
///
/// let mut committed = AddressSpace::new();
/// let mut merge = CheckpointMerge::new(0);
/// let contrib = collect_contribution(0, 0, &mem, &[], vec![]);
/// merge.add(contrib, &committed).unwrap();
/// assert_eq!(merge.written_bytes(), 1);
/// merge.commit(&mut committed);
/// assert_eq!(committed.read_u8(addr), 42);
/// ```
#[derive(Debug, Default)]
pub struct CheckpointMerge {
    /// Page base → dense per-byte merge state.
    pages: BTreeMap<u64, Box<PageState>>,
    /// Number of distinct bytes written this period.
    written: usize,
    /// Deferred output gathered from all workers.
    io: Vec<(i64, Vec<u8>)>,
    /// Reduction images per object per worker (worker-cumulative).
    pub redux_images: Vec<Vec<Vec<u8>>>,
}

impl CheckpointMerge {
    /// Empty merge state expecting `redux_objects` registered reductions.
    pub fn new(redux_objects: usize) -> CheckpointMerge {
        CheckpointMerge {
            redux_images: vec![Vec::new(); redux_objects],
            ..CheckpointMerge::default()
        }
    }

    /// Merge one worker's contribution, validating privacy against the
    /// committed metadata in `committed` (phase 2).
    ///
    /// # Errors
    ///
    /// Traps with a privacy misspeculation on a cross-worker
    /// read-of-earlier-write or the conservative read/write conflict.
    pub fn add(&mut self, contrib: Contribution, committed: &AddressSpace) -> Result<(), Trap> {
        self.add_sharded(&contrib, 0, 1, committed)
            .map_err(|lt| lt.trap)?;
        for (i, img) in contrib.redux_images.into_iter().enumerate() {
            self.redux_images[i].push(img);
        }
        self.io.extend(contrib.io);
        Ok(())
    }

    /// Merge the pages of one lane of a contribution (`lane` of `lanes`,
    /// page ownership per [`lane_of`]), validating privacy against the
    /// committed metadata in `committed`.
    ///
    /// This is the sharded-merge primitive: with `lanes` merge states each
    /// fed every contribution for its own lane, the union of the states
    /// commits byte-identically to a single serial merge, and the
    /// minimal-key [`LaneTrap`] across lanes reproduces the serial
    /// merge's trap exactly (see the module docs). With `lanes == 1` the
    /// whole contribution merges regardless of how it was bucketed.
    ///
    /// Reduction images and deferred I/O are intentionally *not* folded
    /// in here — they are per-contribution, not per-page, and the caller
    /// folds them once, centrally.
    ///
    /// # Errors
    ///
    /// Returns the lane's first trap in canonical (ascending-address)
    /// order, tagged with the trapping byte so a coordinator can pick the
    /// globally-first trap across lanes.
    pub fn add_sharded(
        &mut self,
        contrib: &Contribution,
        lane: usize,
        lanes: usize,
        committed: &AddressSpace,
    ) -> Result<(), LaneTrap> {
        let filtered: (PageList, PageList);
        let (shadow, privs): (&[PageEntry], &[PageEntry]) = if lanes <= 1 && contrib.lanes() <= 1 {
            // Canonical single-bucket packaging: already in ascending
            // base order, scan it whole.
            (&contrib.shadow_pages, &contrib.priv_pages)
        } else if contrib.lanes() == lanes {
            (contrib.shadow_lane(lane), contrib.priv_lane(lane))
        } else {
            // Bucketing mismatch (e.g. a contribution packaged for a
            // different lane count): filter on the fly. The filtered
            // pages must be re-sorted to ascending base order — a
            // foreign bucketing is sorted by (its lane, base), and the
            // canonical first-trap key (see [`LaneTrap`]) requires each
            // lane to scan its bytes in ascending address order.
            let mut shadow_f: Vec<(u64, Arc<Page>)> = contrib
                .shadow_pages
                .iter()
                .filter(|(b, _)| lane_of(*b, lanes) == lane)
                .cloned()
                .collect();
            shadow_f.sort_by_key(|&(b, _)| b);
            let mut priv_f: Vec<(u64, Arc<Page>)> = contrib
                .priv_pages
                .iter()
                .filter(|(b, _)| lane_of(*b, lanes) == lane)
                .cloned()
                .collect();
            priv_f.sort_by_key(|&(b, _)| b);
            filtered = (shadow_f, priv_f);
            (&filtered.0, &filtered.1)
        };
        let priv_lookup: HashMap<u64, &Arc<Page>> =
            privs.iter().map(|(base, p)| (*base, p)).collect();
        for (sbase, spage) in shadow {
            let pbase = *sbase & !SHADOW_BIT;
            // Word-granular skip: untouched runs carry only
            // live-in/old-write metadata, so whole 8-byte words are
            // dismissed with a single compare (shadow::word); only words
            // containing read-live-in or timestamp bytes walk per-byte.
            let mut words = spage.chunks_exact(8).enumerate();
            // The dense page state materializes lazily, on the first word
            // that actually carries touched bytes; pages whose shadow is
            // entirely live-in/old-write never allocate merge state.
            let Some((first_wi, first_group)) = words.by_ref().find(|(_, group)| {
                let w = u64::from_le_bytes((*group).try_into().unwrap());
                !shadow::word::all_le_old_write(w)
            }) else {
                continue;
            };
            let state = self.pages.entry(pbase).or_insert_with(PageState::new_boxed);
            merge_word(
                state,
                &mut self.written,
                first_wi,
                first_group,
                pbase,
                &priv_lookup,
                committed,
            )?;
            for (wi, group) in words {
                let w = u64::from_le_bytes(group.try_into().unwrap());
                if shadow::word::all_le_old_write(w) {
                    continue;
                }
                merge_word(
                    state,
                    &mut self.written,
                    wi,
                    group,
                    pbase,
                    &priv_lookup,
                    committed,
                )?;
            }
        }
        Ok(())
    }

    /// Number of private bytes written this period.
    pub fn written_bytes(&self) -> usize {
        self.written
    }

    /// Number of pages carrying merge state this period.
    pub fn dirty_pages(&self) -> usize {
        self.pages.len()
    }

    /// Commit the merged state: apply the latest write per byte onto
    /// `mem`, mark those bytes old-write in the committed shadow, and
    /// return the deferred output in iteration order.
    pub fn commit(self, mem: &mut AddressSpace) -> Vec<(i64, Vec<u8>)> {
        // Pages are already in address order; within each, write runs of
        // consecutively written bytes straight out of the dense buffers.
        for (pbase, state) in self.pages {
            let mut i = 0usize;
            while i < PG {
                if state.meta[i] < shadow::TS_BASE {
                    i += 1;
                    continue;
                }
                let start = i;
                while i < PG && state.meta[i] >= shadow::TS_BASE {
                    i += 1;
                }
                let addr = pbase + start as u64;
                mem.write_bytes(addr, &state.val[start..i]);
                mem.fill(addr | SHADOW_BIT, (i - start) as u64, shadow::OLD_WRITE);
            }
        }
        let mut io = self.io;
        io.sort_by_key(|a| a.0);
        io
    }
}

/// A phase-2 trap annotated with the trapping byte address, the
/// tie-break key for selecting the globally-first trap across merge
/// lanes: the serial merge scans bytes in ascending address order within
/// a contribution, so for a fixed contribution index the minimal address
/// is the trap the serial merge would have raised.
#[derive(Debug, Clone)]
pub struct LaneTrap {
    /// The byte address the trap fired on.
    pub addr: u64,
    /// The trap itself.
    pub trap: Trap,
}

/// Merge one lane's pages of every contribution, in order, into `merge`
/// (the per-lane loop a sharded-merge coordinator runs on each lane,
/// serially or on a lane thread).
///
/// # Errors
///
/// Returns the lane's first trap tagged with the index of the trapping
/// contribution; `(index, trap.addr)` is the canonical key a coordinator
/// minimizes over lanes to reproduce the serial merge's trap.
pub fn merge_lane(
    merge: &mut CheckpointMerge,
    contribs: &[Contribution],
    lane: usize,
    lanes: usize,
    committed: &AddressSpace,
) -> Result<(), (usize, LaneTrap)> {
    for (idx, c) in contribs.iter().enumerate() {
        merge
            .add_sharded(c, lane, lanes, committed)
            .map_err(|lt| (idx, lt))?;
    }
    Ok(())
}

/// Merge one 8-byte shadow word known to contain at least one touched
/// byte (the per-byte path of [`CheckpointMerge::add_sharded`]).
fn merge_word(
    state: &mut PageState,
    written: &mut usize,
    wi: usize,
    group: &[u8],
    pbase: u64,
    priv_lookup: &HashMap<u64, &Arc<Page>>,
    committed: &AddressSpace,
) -> Result<(), LaneTrap> {
    for (bi, &meta) in group.iter().enumerate() {
        if meta <= shadow::OLD_WRITE {
            continue;
        }
        let off = wi * 8 + bi;
        let baddr = pbase + off as u64;
        if meta == shadow::READ_LIVE_IN {
            // Stale read: an earlier *period* wrote this byte; the
            // worker read its pre-invocation fork instead.
            if committed.read_u8(baddr | SHADOW_BIT) == shadow::OLD_WRITE {
                return Err(privacy(
                    baddr,
                    "read of a value committed by an earlier iteration (stale live-in)",
                ));
            }
            if state.meta[off] >= shadow::TS_BASE {
                return Err(privacy(
                    baddr,
                    "cross-worker read/write conflict on a live-in byte (conservative)",
                ));
            }
            state.meta[off] = shadow::READ_LIVE_IN;
        } else {
            // A timestamped write.
            if state.meta[off] == shadow::READ_LIVE_IN {
                return Err(privacy(
                    baddr,
                    "cross-worker read/write conflict on a live-in byte (conservative)",
                ));
            }
            let prev = state.meta[off];
            if prev >= shadow::TS_BASE && prev >= meta {
                continue;
            }
            if prev < shadow::TS_BASE {
                *written += 1;
            }
            state.meta[off] = meta;
            state.val[off] = priv_lookup
                .get(&(baddr & !(PAGE_SIZE - 1)))
                .map(|p| p[(baddr & (PAGE_SIZE - 1)) as usize])
                .unwrap_or(0);
        }
    }
    Ok(())
}

/// The retained per-address reference merge (the pre-dense hot path).
///
/// Kept public so the proptest equivalence suite and the
/// `privateer-bench` comparison benches can pit [`CheckpointMerge`]
/// against it; both must produce byte-identical committed memory and
/// shadow marks, identically ordered I/O, and identical traps for the
/// same contributions in the same order.
#[derive(Debug, Default)]
pub struct ReferenceCheckpointMerge {
    /// Byte address → (timestamp, value): the latest write this period.
    written: HashMap<u64, (u8, u8)>,
    /// Bytes some worker read as live-in this period.
    read_live_in: HashSet<u64>,
    /// Deferred output gathered from all workers.
    io: Vec<(i64, Vec<u8>)>,
    /// Reduction images per object per worker (worker-cumulative).
    pub redux_images: Vec<Vec<Vec<u8>>>,
}

impl ReferenceCheckpointMerge {
    /// Empty merge state expecting `redux_objects` registered reductions.
    pub fn new(redux_objects: usize) -> ReferenceCheckpointMerge {
        ReferenceCheckpointMerge {
            redux_images: vec![Vec::new(); redux_objects],
            ..ReferenceCheckpointMerge::default()
        }
    }

    /// Merge one worker's contribution, validating privacy against the
    /// committed metadata in `committed` (phase 2).
    ///
    /// # Errors
    ///
    /// Traps with a privacy misspeculation on a cross-worker
    /// read-of-earlier-write or the conservative read/write conflict.
    pub fn add(&mut self, contrib: Contribution, committed: &AddressSpace) -> Result<(), Trap> {
        let priv_lookup: HashMap<u64, &Arc<Page>> = contrib
            .priv_pages
            .iter()
            .map(|(base, p)| (*base, p))
            .collect();
        for (sbase, spage) in &contrib.shadow_pages {
            let pbase = *sbase & !SHADOW_BIT;
            for (wi, group) in spage.chunks_exact(8).enumerate() {
                let w = u64::from_le_bytes(group.try_into().unwrap());
                if shadow::word::all_le_old_write(w) {
                    continue;
                }
                self.add_word(wi, group, pbase, &priv_lookup, committed)?;
            }
        }
        for (i, img) in contrib.redux_images.into_iter().enumerate() {
            self.redux_images[i].push(img);
        }
        self.io.extend(contrib.io);
        Ok(())
    }

    /// Merge one 8-byte shadow word known to contain at least one touched
    /// byte (the per-byte path of [`Self::add`]).
    fn add_word(
        &mut self,
        wi: usize,
        group: &[u8],
        pbase: u64,
        priv_lookup: &HashMap<u64, &Arc<Page>>,
        committed: &AddressSpace,
    ) -> Result<(), Trap> {
        for (bi, &meta) in group.iter().enumerate() {
            if meta <= shadow::OLD_WRITE {
                continue;
            }
            let baddr = pbase + (wi * 8 + bi) as u64;
            if meta == shadow::READ_LIVE_IN {
                if committed.read_u8(baddr | SHADOW_BIT) == shadow::OLD_WRITE {
                    return Err(privacy(
                        baddr,
                        "read of a value committed by an earlier iteration (stale live-in)",
                    )
                    .trap);
                }
                if self.written.contains_key(&baddr) {
                    return Err(privacy(
                        baddr,
                        "cross-worker read/write conflict on a live-in byte (conservative)",
                    )
                    .trap);
                }
                self.read_live_in.insert(baddr);
            } else {
                if self.read_live_in.contains(&baddr) {
                    return Err(privacy(
                        baddr,
                        "cross-worker read/write conflict on a live-in byte (conservative)",
                    )
                    .trap);
                }
                let value = priv_lookup
                    .get(&(baddr & !(PAGE_SIZE - 1)))
                    .map(|p| p[(baddr & (PAGE_SIZE - 1)) as usize])
                    .unwrap_or(0);
                match self.written.get(&baddr) {
                    Some(&(prev_ts, _)) if prev_ts >= meta => {}
                    _ => {
                        self.written.insert(baddr, (meta, value));
                    }
                }
            }
        }
        Ok(())
    }

    /// Number of private bytes written this period.
    pub fn written_bytes(&self) -> usize {
        self.written.len()
    }

    /// Commit the merged state: apply the latest write per byte onto
    /// `mem`, mark those bytes old-write in the committed shadow, and
    /// return the deferred output in iteration order.
    pub fn commit(self, mem: &mut AddressSpace) -> Vec<(i64, Vec<u8>)> {
        // Batch consecutive bytes for fewer page operations.
        let mut bytes: Vec<(u64, u8)> = self.written.iter().map(|(&a, &(_, v))| (a, v)).collect();
        bytes.sort_unstable_by_key(|&(a, _)| a);
        let mut i = 0;
        while i < bytes.len() {
            let start = bytes[i].0;
            let mut run = vec![bytes[i].1];
            let mut j = i + 1;
            while j < bytes.len() && bytes[j].0 == start + run.len() as u64 {
                run.push(bytes[j].1);
                j += 1;
            }
            mem.write_bytes(start, &run);
            let marks = vec![shadow::OLD_WRITE; run.len()];
            mem.write_bytes(start | SHADOW_BIT, &marks);
            i = j;
        }
        let mut io = self.io;
        io.sort_by_key(|a| a.0);
        io
    }
}

fn privacy(addr: u64, why: &str) -> LaneTrap {
    LaneTrap {
        addr,
        trap: Trap::misspec(MisspecKind::Privacy, format!("{why} (byte {addr:#x})")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worker::WorkerRuntime;
    use privateer_vm::RuntimeIface;

    fn worker_mem() -> (WorkerRuntime, AddressSpace) {
        (WorkerRuntime::new(0, 0.0, 0), AddressSpace::new())
    }

    fn contrib_of(
        worker: usize,
        period: u64,
        mem: &AddressSpace,
        rt: &mut WorkerRuntime,
    ) -> Contribution {
        collect_contribution(worker, period, mem, &[], rt.take_io())
    }

    #[test]
    fn clean_merge_commits_latest_write() {
        let a = Heap::Private.base() + 0x100;
        // Worker 0 writes iteration 0; worker 1 writes iteration 1.
        let (mut r0, mut m0) = worker_mem();
        r0.begin_iteration(0, 0).unwrap();
        r0.private_write(a, 1, &mut m0).unwrap();
        m0.write_u8(a, 10);
        r0.end_iteration().unwrap();

        let mut r1 = WorkerRuntime::new(1, 0.0, 0);
        let mut m1 = AddressSpace::new();
        r1.begin_iteration(1, 1).unwrap();
        r1.private_write(a, 1, &mut m1).unwrap();
        m1.write_u8(a, 20);
        r1.end_iteration().unwrap();

        let mut committed = AddressSpace::new();
        let mut merge = CheckpointMerge::new(0);
        merge
            .add(contrib_of(0, 0, &m0, &mut r0), &committed)
            .unwrap();
        merge
            .add(contrib_of(1, 0, &m1, &mut r1), &committed)
            .unwrap();
        assert_eq!(merge.written_bytes(), 1);
        assert_eq!(merge.dirty_pages(), 1);
        merge.commit(&mut committed);
        // Iteration 1 is sequentially later: its value wins.
        assert_eq!(committed.read_u8(a), 20);
        assert_eq!(committed.read_u8(a | SHADOW_BIT), shadow::OLD_WRITE);
    }

    #[test]
    fn merge_order_does_not_change_winner() {
        let a = Heap::Private.base() + 0x200;
        let mk = |iter: u64, val: u8| {
            let mut rt = WorkerRuntime::new(iter as usize, 0.0, 0);
            let mut mem = AddressSpace::new();
            rt.begin_iteration(iter as i64, iter).unwrap();
            rt.private_write(a, 1, &mut mem).unwrap();
            mem.write_u8(a, val);
            rt.end_iteration().unwrap();
            (rt, mem)
        };
        for order in [[0usize, 1], [1, 0]] {
            let contribs: Vec<_> = order
                .iter()
                .map(|&w| {
                    let (mut rt, mem) = mk(w as u64, (w as u8 + 1) * 10);
                    contrib_of(w, 0, &mem, &mut rt)
                })
                .collect();
            let mut committed = AddressSpace::new();
            let mut merge = CheckpointMerge::new(0);
            for c in contribs {
                merge.add(c, &committed).unwrap();
            }
            merge.commit(&mut committed);
            assert_eq!(committed.read_u8(a), 20, "iteration 1's value must win");
        }
    }

    #[test]
    fn cross_worker_read_write_conflict_detected() {
        let a = Heap::Private.base() + 0x300;
        // Worker 0 reads live-in at iteration 1; worker 1 wrote at iteration 0.
        let (mut r0, mut m0) = worker_mem();
        r0.begin_iteration(1, 1).unwrap();
        r0.private_read(a, 1, &mut m0).unwrap();
        r0.end_iteration().unwrap();

        let mut r1 = WorkerRuntime::new(1, 0.0, 0);
        let mut m1 = AddressSpace::new();
        r1.begin_iteration(0, 0).unwrap();
        r1.private_write(a, 1, &mut m1).unwrap();
        r1.end_iteration().unwrap();

        for order in [true, false] {
            let committed = AddressSpace::new();
            let mut merge = CheckpointMerge::new(0);
            let c0 = contrib_of(0, 0, &m0, &mut WorkerRuntime::new(0, 0.0, 0));
            let c0 = Contribution { io: vec![], ..c0 };
            let c1 = contrib_of(1, 0, &m1, &mut WorkerRuntime::new(1, 0.0, 0));
            let c1 = Contribution { io: vec![], ..c1 };
            let (first, second) = if order {
                (c0.clone(), c1.clone())
            } else {
                (c1, c0)
            };
            let r = merge
                .add(first, &committed)
                .and_then(|()| merge.add(second, &committed));
            assert!(r.is_err(), "conflict must be caught in either order");
        }
    }

    #[test]
    fn stale_read_against_committed_meta_detected() {
        let a = Heap::Private.base() + 0x400;
        // Committed state: byte was written in an earlier period.
        let mut committed = AddressSpace::new();
        committed.write_u8(a | SHADOW_BIT, shadow::OLD_WRITE);

        // Worker reads it as live-in (its fork predates the write).
        let (mut rt, mut mem) = worker_mem();
        rt.begin_iteration(9, 0).unwrap();
        rt.private_read(a, 1, &mut mem).unwrap();
        let mut merge = CheckpointMerge::new(0);
        let e = merge
            .add(contrib_of(0, 1, &mem, &mut rt), &committed)
            .unwrap_err();
        assert!(matches!(e, Trap::Misspec(m) if m.kind == MisspecKind::Privacy));
    }

    #[test]
    fn disjoint_writes_all_commit() {
        let base = Heap::Private.base() + 0x1000;
        let mut committed = AddressSpace::new();
        let mut merge = CheckpointMerge::new(0);
        for w in 0..4usize {
            let mut rt = WorkerRuntime::new(w, 0.0, 0);
            let mut mem = AddressSpace::new();
            rt.begin_iteration(w as i64, w as u64).unwrap();
            let a = base + (w as u64) * 8;
            rt.private_write(a, 8, &mut mem).unwrap();
            mem.write_u64(a, w as u64 + 100);
            rt.end_iteration().unwrap();
            merge
                .add(contrib_of(w, 0, &mem, &mut rt), &committed)
                .unwrap();
        }
        assert_eq!(merge.written_bytes(), 32);
        merge.commit(&mut committed);
        for w in 0..4u64 {
            assert_eq!(committed.read_u64(base + w * 8), w + 100);
        }
    }

    #[test]
    fn io_commits_in_iteration_order() {
        let mut merge = CheckpointMerge::new(0);
        let committed = AddressSpace::new();
        let mk = |w: usize, io: Vec<(i64, Vec<u8>)>| Contribution {
            worker: w,
            period: 0,
            shadow_pages: vec![],
            priv_pages: vec![],
            shadow_lane_starts: vec![0, 0],
            priv_lane_starts: vec![0, 0],
            redux_images: vec![],
            io,
        };
        merge
            .add(
                mk(0, vec![(2, b"c".to_vec()), (0, b"a".to_vec())]),
                &committed,
            )
            .unwrap();
        merge
            .add(mk(1, vec![(1, b"b".to_vec())]), &committed)
            .unwrap();
        let mut out = Vec::new();
        for (_, bytes) in merge.commit(&mut AddressSpace::new()) {
            out.extend(bytes);
        }
        assert_eq!(out, b"abc");
    }

    #[test]
    fn delta_tracker_ships_only_dirty_pages() {
        let a = Heap::Private.base() + 0x2000;
        let b = a + 16 * PAGE_SIZE;
        let (mut rt, mut mem) = worker_mem();
        let mut delta = DeltaTracker::new();

        // Period 0: dirty the pages of both `a` and `b`.
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(a, 8, &mut mem).unwrap();
        mem.write_u64(a, 1);
        rt.private_write(b, 8, &mut mem).unwrap();
        mem.write_u64(b, 2);
        rt.end_iteration().unwrap();
        let c0 = delta.collect(0, 0, &mut mem, &[], vec![]);
        assert_eq!(c0.shadow_pages.len(), 2);
        assert_eq!(c0.priv_pages.len(), 2);

        // Period 1: touch only `a`'s page again.
        rt.begin_iteration(1, 0).unwrap();
        rt.private_write(a, 8, &mut mem).unwrap();
        mem.write_u64(a, 3);
        rt.end_iteration().unwrap();
        let c1 = delta.collect(0, 1, &mut mem, &[], vec![]);
        assert_eq!(c1.shadow_pages.len(), 1, "page of `b` must not re-ship");
        assert_eq!(c1.shadow_pages[0].0 & !SHADOW_BIT, a & !(PAGE_SIZE - 1));
        assert_eq!(c1.priv_pages.len(), 1);

        // Period 2: touch nothing — the delta is empty.
        let c2 = delta.collect(0, 2, &mut mem, &[], vec![]);
        assert!(c2.shadow_pages.is_empty());
        assert!(c2.priv_pages.is_empty());
    }

    #[test]
    fn delta_contribution_merges_like_cumulative() {
        // Two periods over the same worker: the delta contribution of
        // period 1 must merge to the identical committed state as the
        // cumulative one (stale pages contribute nothing).
        let a = Heap::Private.base() + 0x5000;
        let far = a + 3 * PAGE_SIZE;
        let run = |use_delta: bool| -> (AddressSpace, usize) {
            let (mut rt, mut mem) = worker_mem();
            let mut delta = DeltaTracker::new();
            let mut committed = AddressSpace::new();
            // Period 0.
            rt.begin_iteration(0, 0).unwrap();
            rt.private_write(far, 8, &mut mem).unwrap();
            mem.write_u64(far, 7);
            rt.end_iteration().unwrap();
            let c0 = if use_delta {
                delta.collect(0, 0, &mut mem, &[], vec![])
            } else {
                let c = collect_contribution(0, 0, &mem, &[], vec![]);
                WorkerRuntime::normalize_shadow(&mut mem);
                c
            };
            let mut m0 = CheckpointMerge::new(0);
            m0.add(c0, &committed).unwrap();
            m0.commit(&mut committed);
            // Period 1 touches a different page.
            rt.begin_iteration(1, 0).unwrap();
            rt.private_write(a, 8, &mut mem).unwrap();
            mem.write_u64(a, 9);
            rt.end_iteration().unwrap();
            let c1 = if use_delta {
                delta.collect(0, 1, &mut mem, &[], vec![])
            } else {
                let c = collect_contribution(0, 1, &mem, &[], vec![]);
                WorkerRuntime::normalize_shadow(&mut mem);
                c
            };
            let shipped = c1.shadow_pages.len() + c1.priv_pages.len();
            let mut m1 = CheckpointMerge::new(0);
            m1.add(c1, &committed).unwrap();
            m1.commit(&mut committed);
            (committed, shipped)
        };
        let (with_delta, delta_pages) = run(true);
        let (cumulative, full_pages) = run(false);
        let lo = Heap::Private.base();
        assert!(with_delta.range_eq(&cumulative, lo, lo + crate::heaps::HEAP_SPAN));
        let slo = lo | SHADOW_BIT;
        assert!(with_delta.range_eq(&cumulative, slo, slo + crate::heaps::HEAP_SPAN));
        assert!(
            delta_pages < full_pages,
            "delta ({delta_pages} pages) must ship less than cumulative ({full_pages})"
        );
    }
}
