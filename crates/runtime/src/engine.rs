//! The speculative DOALL engine (§5): worker processes, checkpoints,
//! misspeculation detection and recovery.
//!
//! The paper's runtime forks worker *processes* whose virtual memory maps
//! replicate the logical heaps copy-on-write; here each worker is a thread
//! holding a COW [`AddressSpace`] fork, which provides the identical
//! isolation semantics (see DESIGN.md). Execution follows Figure 5:
//! workers run iterations round-robin, contribute speculative state to
//! checkpoint objects every `k` iterations without barriers, and a
//! misspeculation squashes uncommitted periods, triggers sequential
//! recovery from the last valid checkpoint, and resumes parallel
//! execution.

use crate::checkpoint::{
    self, CheckpointMerge, Contribution, DeltaTracker, LaneTrap, ReferenceCheckpointMerge,
};
use crate::heaps::SharedHeaps;
use crate::model::{self, SimCost};
use crate::schedule::{SchedPoint, VirtualScheduler};
use crate::shadow::MAX_PERIOD;
use crate::worker::{WorkerRuntime, WorkerStats};
use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::{FuncId, Heap, InstId, Module, PlanEntry, ReduxOp};
use privateer_telemetry::{
    clock, Counter, Histogram, MetricsRegistry, Phase, SpanEvent, Stamped, Telemetry, TraceData,
    WorkerTelemetry, ENGINE_TRACK, MERGE_LANE_TRACK_BASE,
};
use privateer_vm::interp::{Interp, ProgramImage};
use privateer_vm::{AddressSpace, MisspecKind, NopHooks, RuntimeIface, Trap, Val};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{mpsc, Arc};
use std::time::Instant;

/// Engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Number of worker threads.
    pub workers: usize,
    /// Checkpoint period in iterations (clamped to the 253-iteration
    /// metadata bound).
    pub checkpoint_period: u64,
    /// Merge lanes for the sharded phase-2 checkpoint merge: each
    /// period's contributions are bucketed by page index
    /// (`checkpoint::lane_of`) and the buckets merge concurrently on a
    /// persistent lane pool, followed by a short ordered commit. `1`
    /// (or `0`) merges inline on the engine thread, exactly as before
    /// the pool existed; and with any lane count, a period whose page
    /// distribution is too small or too skewed to amortize the lane
    /// fan-out merges inline too ([`model::sharding_profitable`]).
    /// Commits, traps and I/O order are byte-identical for every lane
    /// count.
    pub merge_lanes: usize,
    /// Injected misspeculation rate per iteration (the §6.3 experiment).
    pub inject_rate: f64,
    /// Seed for deterministic injection.
    pub inject_seed: u64,
    /// Fault-injection hook for the engine tests: fail the checkpoint
    /// merge of the given period with an internal (non-misspeculation)
    /// trap, exercising the bail-out path of the collection loop.
    #[doc(hidden)]
    pub inject_merge_fault: Option<u64>,
    /// Differential-testing mode: merge every period with the simple
    /// per-address [`ReferenceCheckpointMerge`] instead of the dense
    /// fast path (inline, never sharded, regardless of
    /// [`Self::merge_lanes`] or the adaptive policy). Commits, traps and
    /// I/O must be byte-identical to the fast path at any lane count —
    /// the `privfuzz` oracle pits the two against each other inside the
    /// full engine.
    pub reference_merge: bool,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism().map_or(4, |n| n.get()),
            checkpoint_period: 64,
            merge_lanes: 4,
            inject_rate: 0.0,
            inject_seed: 0x5eed,
            inject_merge_fault: None,
            reference_merge: false,
        }
    }
}

/// Observable engine events (Figure 5's timeline; asserted by tests).
#[derive(Debug, Clone, PartialEq)]
pub enum EngineEvent {
    /// A parallel region was invoked over `lo..hi`.
    Invoke {
        /// First iteration.
        lo: i64,
        /// Exclusive upper bound.
        hi: i64,
    },
    /// Checkpoint `period` (iterations `base..end`) was validated and
    /// committed.
    CheckpointCommitted {
        /// Checkpoint period index.
        period: u64,
        /// First iteration of the period.
        base: i64,
        /// Exclusive end of the period.
        end: i64,
    },
    /// Misspeculation detected at `iter`.
    MisspecDetected {
        /// The earliest misspeculated iteration.
        iter: i64,
        /// Which check failed.
        kind: MisspecKind,
    },
    /// Sequential recovery re-executed iterations `from..=through`.
    Recovery {
        /// First re-executed iteration.
        from: i64,
        /// Last re-executed iteration (inclusive).
        through: i64,
    },
    /// Parallel execution resumed at `at`.
    ParallelResumed {
        /// First iteration of the resumed region.
        at: i64,
    },
    /// The invocation finished.
    InvokeDone,
}

/// Aggregate statistics across all invocations (feeds Table 3 and
/// Figure 8).
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineStats {
    /// Parallel-region invocations.
    pub invocations: u64,
    /// Checkpoints constructed (committed or squashed).
    pub checkpoints: u64,
    /// Bytes validated by `private_read` across all workers.
    pub priv_read_bytes: u64,
    /// Bytes validated by `private_write` across all workers.
    pub priv_write_bytes: u64,
    /// Misspeculations detected.
    pub misspecs: u64,
    /// Iterations re-executed sequentially during recovery.
    pub recovered_iters: u64,
    /// Iterations executed speculatively (including squashed work).
    pub iters_speculative: u64,
    /// Wall-clock time of parallel invocations (ns).
    pub wall_ns: u64,
    /// `workers × wall` of parallel spans *plus* `workers ×` recovery
    /// wall — total computational capacity, counting the capacity the
    /// machine holds idle while serial recovery stalls the pipeline.
    pub capacity_ns: u64,
    /// Σ worker time executing the loop body, checks included (ns).
    pub body_ns: u64,
    /// Σ worker time in `private_read` validation (ns).
    pub priv_read_ns: u64,
    /// Σ worker time in `private_write` validation (ns).
    pub priv_write_ns: u64,
    /// Σ worker checkpoint-packaging time + engine merge time (ns),
    /// including merge attempts that failed (a phase-2 violation or an
    /// internal merge fault) — the drain path is checkpoint work too.
    pub checkpoint_ns: u64,
    /// Wall-clock time of sequential misspeculation recovery (ns). The
    /// whole machine is held while recovery runs, so this window also
    /// contributes `workers ×` its duration to [`Self::capacity_ns`].
    pub recovery_ns: u64,
    /// Σ 8-byte shadow words handled by the word-granular (SWAR) privacy
    /// fast path across all workers.
    pub priv_fast_words: u64,
    /// Σ shadow bytes that took the per-byte slow path (sub-word tails and
    /// trap-candidate words) across all workers.
    pub priv_slow_bytes: u64,
    /// Σ pages (shadow + private) shipped in checkpoint contributions
    /// across all workers. With delta contributions this counts only the
    /// pages dirtied since each worker's previous contribution, so over a
    /// multi-period span it tracks total dirty traffic, not footprint ×
    /// periods.
    pub contrib_pages: u64,
    /// Σ contribution pages (shadow + private) dropped *eagerly* because
    /// their period was at or after a detected misspeculation — freed the
    /// moment the squash is known instead of being pinned in the pending
    /// map until the span's workers join.
    pub squashed_pages_dropped: u64,
    /// Simulated cycles of the phase-2 merge term alone (the merge part
    /// of [`Self::sim`]`.checkpoint`; packaging excluded). With
    /// `merge_lanes > 1`, periods the adaptive policy elects to shard
    /// (see [`model::sharding_profitable`]) use the sharded formula —
    /// lane dispatch plus the slowest lane — so comparing runs at
    /// different lane counts isolates what sharding buys (see
    /// [`crate::model`]).
    pub merge_sim_cycles: u64,
    /// Host-independent simulated-cycle accounting (see
    /// [`crate::model`]).
    pub sim: SimCost,
}

impl EngineStats {
    /// The wall-clock utilization breakdown as fractions of total
    /// capacity: `(useful, private read, private write, checkpoint,
    /// recovery, spawn/join)`.
    ///
    /// `checkpoint` includes failed merge attempts (the merge-fault drain
    /// path), and `recovery` is the serial re-execution's share of the
    /// held capacity; the `(workers - 1)` idle shares during a recovery
    /// window surface in the `spawn/join` residual along with fork and
    /// scheduling slack. Earlier versions dropped both of these into the
    /// residual, overstating spawn/join whenever misspeculation occurred.
    pub fn breakdown(&self) -> (f64, f64, f64, f64, f64, f64) {
        let cap = self.capacity_ns.max(1) as f64;
        let useful = self
            .body_ns
            .saturating_sub(self.priv_read_ns + self.priv_write_ns) as f64
            / cap;
        let pr = self.priv_read_ns as f64 / cap;
        let pw = self.priv_write_ns as f64 / cap;
        let ck = self.checkpoint_ns as f64 / cap;
        let rec = self.recovery_ns as f64 / cap;
        let spawn_join = (1.0 - useful - pr - pw - ck - rec).max(0.0);
        (useful, pr, pw, ck, rec, spawn_join)
    }
}

enum Msg {
    Contribution(Box<Contribution>),
    Misspec {
        iter: i64,
        kind: MisspecKind,
    },
    Done {
        stats: WorkerStats,
        tel: WorkerTelemetry,
    },
}

enum SpanOutcome {
    Complete,
    Misspec { iter: i64, resume_base: i64 },
}

/// The engine's handles into the metrics registry. These counters are
/// the source of truth for the cross-worker totals; the corresponding
/// [`EngineStats`] fields are snapshot views refreshed at worker drain so
/// existing consumers (Table 3, Figure 8) keep working unchanged.
#[derive(Debug)]
struct EngineMetrics {
    invocations: Counter,
    checkpoints: Counter,
    misspecs: Counter,
    priv_fast_words: Counter,
    priv_slow_bytes: Counter,
    contrib_pages: Counter,
    squashed_pages: Counter,
    recovered_iters: Counter,
    merge_ns: Histogram,
}

impl EngineMetrics {
    fn new(reg: &MetricsRegistry) -> EngineMetrics {
        EngineMetrics {
            invocations: reg.counter("engine.invocations"),
            checkpoints: reg.counter("engine.checkpoints"),
            misspecs: reg.counter("engine.misspecs"),
            priv_fast_words: reg.counter("priv.fast_words"),
            priv_slow_bytes: reg.counter("priv.slow_bytes"),
            contrib_pages: reg.counter("checkpoint.contrib_pages"),
            squashed_pages: reg.counter("checkpoint.squashed_pages"),
            recovered_iters: reg.counter("recovery.iters"),
            merge_ns: reg.histogram("checkpoint.merge_ns"),
        }
    }
}

/// Stamp `event` into the Figure 5 log, mirroring the instants that have
/// no explicit span (detection, resume) into the trace sink.
fn push_event(tel: &Telemetry, events: &mut Vec<Stamped<EngineEvent>>, event: EngineEvent) {
    if tel.is_tracing() {
        let instant = match &event {
            EngineEvent::MisspecDetected { iter, .. } => Some((Phase::Misspec, *iter)),
            EngineEvent::ParallelResumed { at } => Some((Phase::Resume, *at)),
            _ => None,
        };
        if let Some((phase, a)) = instant {
            tel.record(SpanEvent {
                ts_ns: clock::now_ns(),
                dur_ns: 0,
                phase,
                track: ENGINE_TRACK,
                a,
                b: 0,
            });
        }
    }
    events.push(tel.stamp(event));
}

/// One sharded-merge job: every contribution of one period (side data
/// already stripped) plus a COW snapshot of the committed address space
/// for phase-2 lookups. Each lane thread merges its own page bucket.
struct LaneJob {
    contribs: Arc<Vec<Contribution>>,
    committed: Arc<AddressSpace>,
    lanes: usize,
    period: u64,
    sched: Option<Arc<VirtualScheduler>>,
}

/// One lane's merge result: the lane-local merge state (committed in
/// lane order on success), the lane's first trap in canonical order (if
/// any), and the span timing for the lane's telemetry track.
struct LaneDone {
    lane: usize,
    merge: CheckpointMerge,
    trap: Option<(usize, LaneTrap)>,
    pages: u64,
    ts_ns: u64,
    dur_ns: u64,
}

/// A persistent pool of merge-lane threads, one per lane, reused across
/// periods and spans (spawning threads per period would eat the win on
/// small merges). Each lane has its own job channel; results funnel into
/// one shared channel the engine drains, `lanes` results per period.
#[derive(Debug)]
struct MergePool {
    lanes: usize,
    txs: Vec<mpsc::Sender<LaneJob>>,
    rx: mpsc::Receiver<LaneDone>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl MergePool {
    fn new(lanes: usize) -> MergePool {
        let (done_tx, rx) = mpsc::channel::<LaneDone>();
        let mut txs = Vec::with_capacity(lanes);
        let mut handles = Vec::with_capacity(lanes);
        for lane in 0..lanes {
            let (tx, jobs) = mpsc::channel::<LaneJob>();
            let done = done_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("merge-lane-{lane}"))
                .spawn(move || {
                    for job in jobs.iter() {
                        let t0 = Instant::now();
                        let mut merge = CheckpointMerge::new(0);
                        let trap = checkpoint::merge_lane(
                            &mut merge,
                            &job.contribs,
                            lane,
                            job.lanes,
                            &job.committed,
                        )
                        .err();
                        let pages: u64 = job
                            .contribs
                            .iter()
                            .map(|c| (c.shadow_lane(lane).len() + c.priv_lane(lane).len()) as u64)
                            .sum();
                        let out = LaneDone {
                            lane,
                            merge,
                            trap,
                            pages,
                            ts_ns: clock::instant_ns(t0),
                            dur_ns: t0.elapsed().as_nanos() as u64,
                        };
                        // Under a virtual scheduler, lane-result arrival
                        // order is scriptable too (the engine collects
                        // `lanes` results per period in whatever order
                        // they land).
                        let gate = SchedPoint::MergeLane {
                            lane,
                            period: job.period,
                        };
                        let closed = match &job.sched {
                            Some(s) => s.run(gate, || done.send(out).is_err()),
                            None => done.send(out).is_err(),
                        };
                        if closed {
                            break;
                        }
                    }
                })
                .expect("spawn merge-lane thread");
            txs.push(tx);
            handles.push(handle);
        }
        MergePool {
            lanes,
            txs,
            rx,
            handles,
        }
    }
}

impl Drop for MergePool {
    fn drop(&mut self) {
        self.txs.clear(); // closing the job channels ends the lane loops
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Drop every pending contribution for periods `>= first_bad` (they can
/// never commit once that period misspeculated) and return the number of
/// pages released. Freeing eagerly matters: the squashed contributions
/// pin page `Arc`s — and with them whole COW page chains — that would
/// otherwise survive until the span's workers join.
fn prune_squashed(pending: &mut BTreeMap<u64, Vec<Contribution>>, first_bad: u64) -> u64 {
    let squashed = pending.split_off(&first_bad);
    squashed
        .values()
        .flat_map(|v| v.iter())
        .map(|c| c.page_count() as u64)
        .sum()
}

/// Whether a contribution arriving for `period` is already known dead —
/// the merge bailed on an internal fault, or a misspeculation at
/// iteration `misspec_iter` squashed that period and everything after it.
/// Such a contribution is dropped on arrival instead of being pinned in
/// the pending map until the span's workers join (the arrival-side twin
/// of [`prune_squashed`]).
fn arrival_squashed(bailed: bool, misspec_iter: Option<i64>, period: u64, lo: i64, k: i64) -> bool {
    bailed || misspec_iter.is_some_and(|m| period as i64 >= (m - lo) / k)
}

/// The main-process runtime: shared-heap allocation plus the speculative
/// DOALL engine behind [`RuntimeIface::parallel_invoke`].
#[derive(Debug)]
pub struct MainRuntime {
    /// Engine configuration.
    pub cfg: EngineConfig,
    /// Shared logical-heap allocators.
    pub heaps: SharedHeaps,
    /// Aggregate statistics.
    pub stats: EngineStats,
    /// Event log (Figure 5 timeline), stamped for happens-before
    /// assertions.
    pub events: Vec<Stamped<EngineEvent>>,
    /// Telemetry handle: metrics registry (always live) plus the trace
    /// sink when tracing is enabled.
    pub tel: Telemetry,
    metrics: EngineMetrics,
    redux: Vec<(ReduxOp, u64, u64)>,
    out: Vec<u8>,
    inject_phase2: Option<u64>,
    pool: Option<MergePool>,
    sched: Option<Arc<VirtualScheduler>>,
}

impl MainRuntime {
    /// Build from a loaded image and a configuration, with telemetry
    /// disabled.
    pub fn new(image: &ProgramImage, cfg: EngineConfig) -> MainRuntime {
        MainRuntime::with_telemetry(image, cfg, Telemetry::disabled())
    }

    /// Build with an explicit telemetry handle (e.g.
    /// [`Telemetry::enabled`] to capture a trace).
    pub fn with_telemetry(image: &ProgramImage, cfg: EngineConfig, tel: Telemetry) -> MainRuntime {
        let metrics = EngineMetrics::new(tel.registry());
        MainRuntime {
            cfg,
            heaps: SharedHeaps::new(image),
            stats: EngineStats::default(),
            events: Vec::new(),
            tel,
            metrics,
            redux: Vec::new(),
            out: Vec::new(),
            inject_phase2: None,
            pool: None,
            sched: None,
        }
    }

    /// Lazily (re)build the merge-lane pool for the configured lane
    /// count. The pool persists across periods and spans.
    fn ensure_pool(&mut self, lanes: usize) {
        if self.pool.as_ref().is_none_or(|p| p.lanes != lanes) {
            self.pool = Some(MergePool::new(lanes));
        }
    }

    /// Snapshot the trace collected so far (events + metrics).
    pub fn trace(&self) -> TraceData {
        self.tel.trace()
    }

    /// Fault-injection hook for tests: fail the phase-2 merge of `period`
    /// with a privacy misspeculation, forcing the whole period through
    /// the recovery path. One-shot — clears itself when it fires, so the
    /// resumed span (whose periods renumber from zero) is unaffected.
    #[doc(hidden)]
    pub fn inject_phase2_misspec(&mut self, period: u64) {
        self.inject_phase2 = Some(period);
    }

    /// Attach a [`VirtualScheduler`]: worker iterations, contribution
    /// sends, misspeculation publications and merge-lane results then
    /// rendezvous on the scheduler's script, making a chosen interleaving
    /// deterministic and replayable (see [`crate::schedule`]). The
    /// scheduler applies to every subsequent invocation until replaced.
    pub fn set_schedule(&mut self, sched: Arc<VirtualScheduler>) {
        self.sched = Some(sched);
    }

    /// Bytes printed so far (committed output only).
    pub fn output_bytes(&self) -> &[u8] {
        &self.out
    }

    /// Take the committed output.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    /// Run one parallel span `lo..hi`; on misspeculation the committed
    /// prefix is installed in `mem` and the outcome names the earliest
    /// misspeculated iteration.
    #[allow(clippy::too_many_arguments)]
    fn span(
        &mut self,
        module: &Module,
        global_addrs: &[u64],
        body: FuncId,
        lo: i64,
        hi: i64,
        mem: &mut AddressSpace,
    ) -> Result<SpanOutcome, Trap> {
        let w_count = self.cfg.workers.max(1);
        let k = self.cfg.checkpoint_period.clamp(1, MAX_PERIOD) as i64;
        let lanes = self.cfg.merge_lanes.max(1);
        if lanes > 1 {
            self.ensure_pool(lanes);
        }
        let span_t0 = Instant::now();

        // Fresh live-in metadata for this span.
        let shadow_lo = Heap::Private.base() | SHADOW_BIT;
        mem.clear_range(shadow_lo, shadow_lo + crate::heaps::HEAP_SPAN);

        // Pre-span reduction values; workers start from the identity.
        let redux = self.redux.clone();
        let pre_redux: Vec<Vec<u8>> = redux
            .iter()
            .map(|&(_, addr, size)| {
                let mut buf = vec![0u8; size as usize];
                mem.read_bytes(addr, &mut buf);
                buf
            })
            .collect();
        let mut base = mem.fork();
        for &(op, addr, size) in &redux {
            let ident = op.identity_bytes();
            let mut image = vec![0u8; size as usize];
            for chunk in image.chunks_mut(8) {
                chunk.copy_from_slice(&ident[..chunk.len()]);
            }
            base.write_bytes(addr, &image);
        }

        // Earliest misspeculated iteration, shared with workers.
        let flag = AtomicI64::new(i64::MAX);
        let (tx, rx) = mpsc::channel::<Msg>();
        let cfg = self.cfg;
        let tel = self.tel.clone();
        let sched = self.sched.clone();

        let mut outcome: Result<SpanOutcome, Trap> = Ok(SpanOutcome::Complete);
        let mut committed_through = lo; // first uncommitted iteration
        let mut max_busy = 0u64;
        let mut merge_sim = 0u64;

        std::thread::scope(|scope| {
            for w in 0..w_count {
                let worker_mem = base.fork();
                let tx = tx.clone();
                let flag = &flag;
                let redux = redux.clone();
                let wtel = tel.worker(w as u32 + 1);
                let wsched = sched.clone();
                scope.spawn(move || {
                    worker_main(
                        w,
                        w_count,
                        module,
                        global_addrs,
                        body,
                        lo,
                        hi,
                        k,
                        cfg,
                        worker_mem,
                        &redux,
                        tx,
                        flag,
                        wtel,
                        wsched,
                    );
                });
            }
            drop(tx);

            // Collection loop: merge checkpoints strictly in period order so
            // phase-2 validation sees the committed metadata of every
            // earlier period.
            let n_periods = ((hi - lo) + k - 1) / k;
            let mut pending: BTreeMap<u64, Vec<Contribution>> = BTreeMap::new();
            let mut next_commit: u64 = 0;
            let mut earliest: Option<(i64, MisspecKind)> = None;
            let mut done = 0usize;
            let mut bailed = false;
            let mut merge_ns = 0u64;

            // Record a misspeculation the moment it is first observed (the
            // Figure 5 timeline shows detection at detection time, not at
            // worker drain), improving the earliest-iteration bound and
            // re-emitting only when the bound actually tightens.
            let note_misspec = |earliest: &mut Option<(i64, MisspecKind)>,
                                events: &mut Vec<Stamped<EngineEvent>>,
                                iter: i64,
                                kind| {
                flag.fetch_min(iter, Ordering::SeqCst);
                match earliest {
                    Some((e, _)) if *e <= iter => {}
                    _ => {
                        *earliest = Some((iter, kind));
                        push_event(&tel, events, EngineEvent::MisspecDetected { iter, kind });
                    }
                }
            };

            while done < w_count {
                let msg = rx.recv().expect("workers hold the sender");
                match msg {
                    Msg::Contribution(c) => {
                        // A contribution for a period at or after a known
                        // misspeculation can never commit: drop it on
                        // arrival instead of pinning its pages in
                        // `pending` until the workers join.
                        let squashed =
                            arrival_squashed(bailed, earliest.map(|(m, _)| m), c.period, lo, k);
                        if squashed {
                            let pages = c.page_count() as u64;
                            self.stats.squashed_pages_dropped += pages;
                            self.metrics.squashed_pages.add(pages);
                        } else {
                            pending.entry(c.period).or_default().push(*c);
                        }
                    }
                    Msg::Misspec { iter, kind } => {
                        self.stats.misspecs += 1;
                        self.metrics.misspecs.add(1);
                        note_misspec(&mut earliest, &mut self.events, iter, kind);
                        // Periods at or after the misspeculated one are
                        // squashed: release their buffered pages now.
                        if let Some((m, _)) = earliest {
                            let dropped =
                                prune_squashed(&mut pending, ((m - lo) / k).max(0) as u64);
                            if dropped > 0 {
                                self.stats.squashed_pages_dropped += dropped;
                                self.metrics.squashed_pages.add(dropped);
                            }
                        }
                    }
                    Msg::Done { stats, tel: wtel } => {
                        done += 1;
                        self.stats.body_ns += stats.body_ns;
                        self.stats.priv_read_ns += stats.priv_read_ns;
                        self.stats.priv_write_ns += stats.priv_write_ns;
                        self.stats.priv_read_bytes += stats.priv_read_bytes;
                        self.stats.priv_write_bytes += stats.priv_write_bytes;
                        self.stats.checkpoint_ns += stats.checkpoint_ns;
                        // The registry counters are the source of truth
                        // for these totals; the stats fields are snapshot
                        // views refreshed at each drain.
                        self.metrics.priv_fast_words.add(stats.priv_fast_words);
                        self.metrics.priv_slow_bytes.add(stats.priv_slow_bytes);
                        self.metrics.contrib_pages.add(stats.contrib_pages);
                        self.stats.priv_fast_words = self.metrics.priv_fast_words.get();
                        self.stats.priv_slow_bytes = self.metrics.priv_slow_bytes.get();
                        self.stats.contrib_pages = self.metrics.contrib_pages.get();
                        self.tel.absorb(wtel);
                        self.stats.iters_speculative += stats.iters;
                        // Simulated-time model: the slowest worker bounds
                        // the span.
                        let priv_cost =
                            (stats.priv_read_bytes + stats.priv_write_bytes) * model::PRIV_BYTE;
                        let package_cost = stats.contrib_pages * model::PACKAGE_PAGE;
                        let busy = stats.insts + priv_cost + package_cost;
                        max_busy = max_busy.max(busy);
                        let checks =
                            stats.priv_read_calls + stats.priv_write_calls + stats.check_calls;
                        self.stats.sim.useful += stats.insts.saturating_sub(checks);
                        self.stats.sim.priv_read +=
                            stats.priv_read_bytes * model::PRIV_BYTE + stats.priv_read_calls;
                        self.stats.sim.priv_write +=
                            stats.priv_write_bytes * model::PRIV_BYTE + stats.priv_write_calls;
                        self.stats.sim.checkpoint += package_cost;
                    }
                }
                // Commit fully contributed periods in order, stopping at
                // (and never committing) a misspeculated period.
                while !bailed && next_commit < n_periods as u64 {
                    let bad_period = earliest.map(|(m, _)| (m - lo) / k);
                    if bad_period.is_some_and(|bp| next_commit as i64 >= bp) {
                        break;
                    }
                    let ready = pending
                        .get(&next_commit)
                        .is_some_and(|v| v.len() == w_count);
                    if !ready {
                        break;
                    }
                    let mut contribs = pending.remove(&next_commit).expect("checked above");
                    // Canonical merge order: sorting by worker id makes
                    // trap selection and reduction folds deterministic
                    // (the old arrival order varied run to run).
                    contribs.sort_by_key(|c| c.worker);
                    let t0 = Instant::now();
                    let n_contribs = contribs.len() as i64;
                    let contrib_pages_in_merge: u64 =
                        contribs.iter().map(|c| c.page_count() as u64).sum();
                    // Strip the per-contribution side data up front:
                    // deferred I/O and reduction images are never sharded
                    // — the engine folds them centrally, in worker order.
                    let mut period_io: Vec<(i64, Vec<u8>)> = Vec::new();
                    let mut period_images: Vec<Vec<Vec<u8>>> = vec![Vec::new(); redux.len()];
                    for c in &mut contribs {
                        period_io.append(&mut c.io);
                        for (i, img) in c.redux_images.drain(..).enumerate() {
                            period_images[i].push(img);
                        }
                    }
                    let mut failed = (cfg.inject_merge_fault == Some(next_commit))
                        .then(|| Trap::Internal("injected merge fault".into()));
                    let mut lane_merges: Vec<CheckpointMerge> = Vec::new();
                    let mut ref_merge: Option<ReferenceCheckpointMerge> = None;
                    let mut merge_cost = 0u64;
                    if failed.is_none() && cfg.reference_merge {
                        // Differential mode: the simple per-address
                        // reference merge, inline, never sharded. Pages
                        // are re-sorted into ascending order first so
                        // trap selection scans bytes in the same
                        // canonical order as the fast path does at any
                        // lane count.
                        let mut rm = ReferenceCheckpointMerge::new(0);
                        for c in &contribs {
                            if let Err(t) = rm.add(ascending_pages(c), mem) {
                                failed = Some(t);
                                break;
                            }
                        }
                        merge_cost = rm.written_bytes() as u64 * model::MERGE_BYTE
                            + contrib_pages_in_merge * model::MERGE_PAGE;
                        if tel.is_tracing() {
                            tel.record(SpanEvent {
                                ts_ns: clock::instant_ns(t0),
                                dur_ns: (t0.elapsed().as_nanos() as u64).max(1),
                                phase: Phase::MergeLane,
                                track: MERGE_LANE_TRACK_BASE,
                                a: next_commit as i64,
                                b: contrib_pages_in_merge as i64,
                            });
                        }
                        ref_merge = Some(rm);
                    } else if failed.is_none() {
                        // Adaptive sharding: estimate both merge formulas
                        // from the per-lane page distribution (read off
                        // the contributions' bucket tables) and merge
                        // inline unless the shard is predicted to win —
                        // small or skewed periods lose to the lane
                        // fan-out (`model::sharding_profitable`).
                        // Commits, traps and I/O are byte-identical
                        // either way.
                        let mut lane_pages = vec![0u64; lanes];
                        for c in &contribs {
                            if c.lanes() == lanes {
                                for (l, lp) in lane_pages.iter_mut().enumerate() {
                                    *lp += (c.shadow_lane(l).len() + c.priv_lane(l).len()) as u64;
                                }
                            } else {
                                for (b, _) in c.shadow_pages.iter().chain(c.priv_pages.iter()) {
                                    lane_pages[checkpoint::lane_of(*b, lanes)] += 1;
                                }
                            }
                        }
                        if !model::sharding_profitable(&lane_pages) {
                            // Inline single-lane merge on the engine
                            // thread, exactly the pre-pool behavior.
                            let mut merge = CheckpointMerge::new(0);
                            if let Err((_, lt)) =
                                checkpoint::merge_lane(&mut merge, &contribs, 0, 1, mem)
                            {
                                failed = Some(lt.trap);
                            }
                            merge_cost = merge.written_bytes() as u64 * model::MERGE_BYTE
                                + contrib_pages_in_merge * model::MERGE_PAGE;
                            if tel.is_tracing() {
                                tel.record(SpanEvent {
                                    ts_ns: clock::instant_ns(t0),
                                    dur_ns: (t0.elapsed().as_nanos() as u64).max(1),
                                    phase: Phase::MergeLane,
                                    track: MERGE_LANE_TRACK_BASE,
                                    a: next_commit as i64,
                                    b: contrib_pages_in_merge as i64,
                                });
                            }
                            lane_merges.push(merge);
                        } else {
                            // Sharded merge: fan the period out to the
                            // lane pool against a COW snapshot of the
                            // committed space, then fan the lane states
                            // back in.
                            let shared = Arc::new(std::mem::take(&mut contribs));
                            let committed = Arc::new(mem.fork());
                            let pool = self.pool.as_ref().expect("pool ensured for lanes > 1");
                            for lane_tx in &pool.txs {
                                lane_tx
                                    .send(LaneJob {
                                        contribs: Arc::clone(&shared),
                                        committed: Arc::clone(&committed),
                                        lanes,
                                        period: next_commit,
                                        sched: sched.clone(),
                                    })
                                    .expect("merge-lane thread alive");
                            }
                            let mut dones: Vec<LaneDone> = (0..lanes)
                                .map(|_| pool.rx.recv().expect("merge-lane result"))
                                .collect();
                            dones.sort_by_key(|d| d.lane);
                            // The globally-first trap is the minimal
                            // (contribution index, byte address) over the
                            // lanes' first traps — byte-identical to the
                            // serial merge's trap (see checkpoint docs).
                            let first = dones
                                .iter()
                                .enumerate()
                                .filter_map(|(i, d)| {
                                    d.trap.as_ref().map(|(ci, lt)| ((*ci, lt.addr), i))
                                })
                                .min()
                                .map(|(_, i)| i);
                            if let Some(i) = first {
                                let (_, lt) = dones[i].trap.take().expect("selected above");
                                failed = Some(lt.trap);
                            }
                            // Lanes overlap: dispatch fan-out plus the
                            // slowest lane bound the simulated merge.
                            let mut max_lane = 0u64;
                            for d in &dones {
                                max_lane = max_lane.max(
                                    d.merge.written_bytes() as u64 * model::MERGE_BYTE
                                        + d.pages * model::MERGE_PAGE,
                                );
                                if tel.is_tracing() {
                                    tel.record(SpanEvent {
                                        ts_ns: d.ts_ns,
                                        dur_ns: d.dur_ns.max(1),
                                        phase: Phase::MergeLane,
                                        track: MERGE_LANE_TRACK_BASE + d.lane as u32,
                                        a: next_commit as i64,
                                        b: d.pages as i64,
                                    });
                                }
                            }
                            merge_cost = model::MERGE_LANE_DISPATCH * lanes as u64 + max_lane;
                            lane_merges = dones.into_iter().map(|d| d.merge).collect();
                        }
                    }
                    if failed.is_none() && self.inject_phase2 == Some(next_commit) {
                        self.inject_phase2 = None;
                        failed = Some(Trap::misspec(
                            MisspecKind::Privacy,
                            "injected phase-2 privacy violation",
                        ));
                    }
                    if tel.is_tracing() {
                        tel.record(SpanEvent {
                            ts_ns: clock::instant_ns(t0),
                            dur_ns: t0.elapsed().as_nanos() as u64,
                            phase: Phase::Merge,
                            track: ENGINE_TRACK,
                            a: next_commit as i64,
                            b: n_contribs,
                        });
                    }
                    self.stats.checkpoints += 1;
                    self.metrics.checkpoints.add(1);
                    let pbase = lo + next_commit as i64 * k;
                    let pend = (pbase + k).min(hi);
                    match failed {
                        Some(Trap::Misspec(m)) => {
                            // Phase-2 violation: the whole period re-executes.
                            self.stats.misspecs += 1;
                            self.metrics.misspecs.add(1);
                            note_misspec(&mut earliest, &mut self.events, pend - 1, m.kind);
                            // This period and everything after it are
                            // squashed: drop their buffered pages now.
                            let dropped = prune_squashed(&mut pending, next_commit);
                            if dropped > 0 {
                                self.stats.squashed_pages_dropped += dropped;
                                self.metrics.squashed_pages.add(dropped);
                            }
                        }
                        Some(other) => {
                            // Bail out of merging, but keep draining the
                            // channel: every worker still owes its `Done`
                            // stats, and dropping them silently
                            // under-counts `iters_speculative`, `body_ns`
                            // and the sim model.
                            outcome = Err(other);
                            bailed = true;
                            flag.fetch_min(lo, Ordering::SeqCst);
                            let dropped = prune_squashed(&mut pending, 0);
                            if dropped > 0 {
                                self.stats.squashed_pages_dropped += dropped;
                                self.metrics.squashed_pages.add(dropped);
                            }
                        }
                        None => {
                            merge_sim += merge_cost;
                            let tc = Instant::now();
                            // Commit reductions: pre ⊕ fold(worker images),
                            // folded in worker order.
                            for (i, &(op, addr, _size)) in redux.iter().enumerate() {
                                let mut acc = pre_redux[i].clone();
                                for img in &period_images[i] {
                                    combine_images(op, &mut acc, img);
                                }
                                mem.write_bytes(addr, &acc);
                            }
                            // Ordered commit: lane states apply in lane
                            // order (disjoint pages — any order yields
                            // identical memory), then the period's I/O
                            // retires in iteration order.
                            for merge in lane_merges {
                                let _ = merge.commit(mem); // lanes carry no I/O
                            }
                            if let Some(rm) = ref_merge.take() {
                                let _ = rm.commit(mem); // side data was stripped
                            }
                            period_io.sort_by_key(|a| a.0);
                            for (_, bytes) in period_io {
                                self.out.extend(bytes);
                            }
                            if tel.is_tracing() {
                                tel.record(SpanEvent {
                                    ts_ns: clock::instant_ns(tc),
                                    dur_ns: tc.elapsed().as_nanos() as u64,
                                    phase: Phase::Commit,
                                    track: ENGINE_TRACK,
                                    a: next_commit as i64,
                                    b: 0,
                                });
                            }
                            committed_through = pend;
                            push_event(
                                &tel,
                                &mut self.events,
                                EngineEvent::CheckpointCommitted {
                                    period: next_commit,
                                    base: pbase,
                                    end: pend,
                                },
                            );
                            next_commit += 1;
                        }
                    }
                    // Merge wall time counts whether or not the merge
                    // succeeded — a failed attempt (phase-2 violation or
                    // injected fault) is checkpoint work too, and used to
                    // leak into the spawn/join residual.
                    let el = t0.elapsed().as_nanos() as u64;
                    merge_ns += el;
                    self.metrics.merge_ns.record(el);
                }
            }
            self.stats.checkpoint_ns += merge_ns;

            if outcome.is_ok() {
                if let Some((iter, _)) = earliest {
                    // The detection event was already emitted when the
                    // misspeculation was first recorded.
                    outcome = Ok(SpanOutcome::Misspec {
                        iter,
                        resume_base: committed_through,
                    });
                }
            }
        });

        let wall = span_t0.elapsed().as_nanos() as u64;
        self.stats.wall_ns += wall;
        self.stats.capacity_ns += wall * w_count as u64;
        if self.tel.is_tracing() {
            self.tel.record(SpanEvent {
                ts_ns: clock::instant_ns(span_t0),
                dur_ns: wall,
                phase: Phase::ParallelSpan,
                track: ENGINE_TRACK,
                a: lo,
                b: hi,
            });
        }
        let span_sim =
            model::SPAWN_BASE + model::SPAWN_PER_WORKER * w_count as u64 + max_busy + merge_sim;
        self.stats.sim.total += span_sim;
        self.stats.sim.capacity += span_sim * w_count as u64;
        self.stats.sim.checkpoint += merge_sim;
        self.stats.merge_sim_cycles += merge_sim;
        outcome
    }

    /// Sequential, non-speculative re-execution of `from..=through` using
    /// the recovery body (§5.3).
    fn recover(
        &mut self,
        module: &Module,
        global_addrs: &[u64],
        recovery: FuncId,
        from: i64,
        through: i64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        let t0 = Instant::now();
        push_event(
            &self.tel,
            &mut self.events,
            EngineEvent::Recovery { from, through },
        );
        let rt = RecoveryRuntime {
            heaps: self.heaps.clone(),
            out: Vec::new(),
        };
        let taken = std::mem::take(mem);
        let mut interp = Interp::with_mem(module, taken, global_addrs.to_vec(), NopHooks, rt);
        let mut result = Ok(());
        for iter in from..=through {
            if let Err(e) = interp.call_function(recovery, &[Val::Int(iter)]) {
                result = Err(e);
                break;
            }
        }
        self.out.extend(std::mem::take(&mut interp.rt.out));
        let rec_insts = interp.stats.insts;
        self.stats.sim.total += rec_insts;
        self.stats.sim.recovery += rec_insts;
        *mem = interp.mem;
        self.stats.recovered_iters += (through - from + 1).max(0) as u64;
        self.metrics
            .recovered_iters
            .add((through - from + 1).max(0) as u64);
        // The whole machine is held while serial recovery runs: the wall
        // time accrues to `recovery_ns` and the held capacity to
        // `capacity_ns` (workers × wall), so the Figure 8 breakdown can
        // attribute it instead of leaking it into spawn/join.
        let wall = t0.elapsed().as_nanos() as u64;
        self.stats.recovery_ns += wall;
        self.stats.capacity_ns += wall * self.cfg.workers.max(1) as u64;
        if self.tel.is_tracing() {
            self.tel.record(SpanEvent {
                ts_ns: clock::instant_ns(t0),
                dur_ns: wall,
                phase: Phase::Recovery,
                track: ENGINE_TRACK,
                a: from,
                b: through,
            });
        }
        result
    }
}

/// A copy of `c` with its pages in ascending address order in a single
/// bucket (page `Arc` clones only — no byte copies). The reference merge
/// scans pages in stored order, so re-canonicalizing makes its trap
/// selection independent of how many lanes the contribution was
/// pre-bucketed for.
fn ascending_pages(c: &Contribution) -> Contribution {
    let mut shadow_pages = c.shadow_pages.clone();
    shadow_pages.sort_by_key(|&(b, _)| b);
    let mut priv_pages = c.priv_pages.clone();
    priv_pages.sort_by_key(|&(b, _)| b);
    Contribution {
        worker: c.worker,
        period: c.period,
        shadow_lane_starts: vec![0, shadow_pages.len()],
        priv_lane_starts: vec![0, priv_pages.len()],
        shadow_pages,
        priv_pages,
        redux_images: Vec::new(),
        io: Vec::new(),
    }
}

/// Run `f` at `point` under the span's virtual scheduler, or directly
/// when no scheduler is attached (the production path: one `match` on a
/// `None`).
fn gated<T>(sched: &Option<Arc<VirtualScheduler>>, point: SchedPoint, f: impl FnOnce() -> T) -> T {
    match sched {
        Some(s) => s.run(point, f),
        None => f(),
    }
}

fn combine_images(op: ReduxOp, acc: &mut [u8], img: &[u8]) {
    for (a, b) in acc.chunks_mut(8).zip(img.chunks(8)) {
        if a.len() == 8 && b.len() == 8 {
            let mut ab = [0u8; 8];
            ab.copy_from_slice(a);
            let mut bb = [0u8; 8];
            bb.copy_from_slice(b);
            a.copy_from_slice(&op.combine(ab, bb));
        }
    }
}

/// One worker thread: execute the cyclic share of each checkpoint period,
/// contribute state, continue until done or until a misspeculation at or
/// before the current period (the paper's §5.3 termination policy).
#[allow(clippy::too_many_arguments)]
fn worker_main(
    w: usize,
    w_count: usize,
    module: &Module,
    global_addrs: &[u64],
    body: FuncId,
    lo: i64,
    hi: i64,
    k: i64,
    cfg: EngineConfig,
    mem: AddressSpace,
    redux: &[(ReduxOp, u64, u64)],
    tx: mpsc::Sender<Msg>,
    flag: &AtomicI64,
    wtel: WorkerTelemetry,
    sched: Option<Arc<VirtualScheduler>>,
) {
    let mut rt = WorkerRuntime::new(w, cfg.inject_rate, cfg.inject_seed);
    rt.tel = wtel;
    let mut interp = Interp::with_mem(module, mem, global_addrs.to_vec(), NopHooks, rt);
    // Package contributions pre-bucketed for the engine's merge lanes so
    // the merge side never re-scans pages.
    let mut delta = DeltaTracker::seeded(&interp.mem, cfg.merge_lanes.max(1));
    let mut period: u64 = 0;
    'periods: loop {
        let pbase = lo + period as i64 * k;
        if pbase >= hi {
            break;
        }
        let pend = (pbase + k).min(hi);
        // Terminate if a misspeculation happened at or before this period.
        let f = flag.load(Ordering::SeqCst);
        if f != i64::MAX && (f - lo) / k <= period as i64 {
            break;
        }
        // This worker's iterations within the period (cyclic assignment).
        let mut iter =
            pbase + ((w as i64 - (pbase - lo) % w_count as i64).rem_euclid(w_count as i64));
        while iter < pend {
            let f = flag.load(Ordering::SeqCst);
            if f != i64::MAX && (f - lo) / k <= period as i64 {
                break 'periods;
            }
            let t0 = Instant::now();
            // The whole step holds the scheduler turn (when scripted),
            // so everything the iteration publishes is ordered before
            // the next script entry releases.
            let step = gated(&sched, SchedPoint::Iter { worker: w, iter }, || {
                (|| -> Result<(), Trap> {
                    interp.rt.begin_iteration(iter, (iter - pbase) as u64)?;
                    interp.call_function(body, &[Val::Int(iter)])?;
                    interp.rt.end_iteration()
                })()
            });
            interp.rt.stats.body_ns += t0.elapsed().as_nanos() as u64;
            interp.rt.tel.span_since(Phase::Iteration, t0, iter, 0);
            if let Err(trap) = step {
                let kind = match trap {
                    Trap::Misspec(m) => m.kind,
                    // Faults under speculation are treated as
                    // misspeculation: sequential re-execution repairs
                    // them, or reproduces a genuine program error.
                    _ => MisspecKind::Fault,
                };
                // Flag store and detection message publish atomically
                // under the scheduler turn: a script can order the
                // squash before or after any other point.
                gated(&sched, SchedPoint::Misspec { worker: w }, || {
                    flag.fetch_min(iter, Ordering::SeqCst);
                    let _ = tx.send(Msg::Misspec { iter, kind });
                });
                break 'periods;
            }
            iter += w_count as i64;
        }
        // Contribute this period's *delta* — only pages dirtied since the
        // previous contribution — to the checkpoint object; `collect`
        // normalizes the shadow metadata and re-snapshots the page map.
        let t0 = Instant::now();
        let io = interp.rt.take_io();
        let contrib =
            delta.collect_traced(w, period, &mut interp.mem, redux, io, &mut interp.rt.tel);
        interp.rt.stats.checkpoint_ns += t0.elapsed().as_nanos() as u64;
        interp.rt.stats.contrib_pages +=
            (contrib.shadow_pages.len() + contrib.priv_pages.len()) as u64;
        gated(&sched, SchedPoint::Contribute { worker: w, period }, || {
            let _ = tx.send(Msg::Contribution(Box::new(contrib)));
        });
        period += 1;
    }
    // Whatever script entries this worker never reached (it stopped
    // contributing when a squash ended its span) must not block the rest
    // of the script.
    if let Some(s) = &sched {
        s.retire_worker(w);
    }
    let mut stats = interp.rt.stats;
    stats.insts = interp.stats.insts;
    let tel = std::mem::replace(&mut interp.rt.tel, WorkerTelemetry::disabled());
    let _ = tx.send(Msg::Done { stats, tel });
}

impl RuntimeIface for MainRuntime {
    fn h_alloc(
        &mut self,
        heap: Heap,
        size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        self.heaps.alloc(heap, size)
    }

    fn h_free(&mut self, heap: Heap, addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        self.heaps.free(heap, addr)
    }

    fn check_heap(&mut self, heap: Heap, addr: u64) -> Result<(), Trap> {
        if addr == 0 || heap.contains(addr) {
            Ok(())
        } else {
            Err(Trap::misspec(
                MisspecKind::Separation,
                format!("pointer {addr:#x} is not in heap `{heap}` (sequential)"),
            ))
        }
    }

    fn private_read(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn private_write(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn predict(&mut self, _ok: bool) -> Result<(), Trap> {
        Ok(()) // sequential execution is non-speculative
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        Ok(())
    }

    fn output(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn redux_register(
        &mut self,
        op: ReduxOp,
        addr: u64,
        size: u64,
        _mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        if !size.is_multiple_of(8) {
            return Err(Trap::Internal(format!(
                "reduction object size {size} is not a multiple of 8"
            )));
        }
        if !self.redux.contains(&(op, addr, size)) {
            self.redux.retain(|&(_, a, _)| a != addr);
            self.redux.push((op, addr, size));
        }
        Ok(())
    }

    fn parallel_invoke(
        &mut self,
        module: &Module,
        global_addrs: &[u64],
        plan: PlanEntry,
        lo: i64,
        hi: i64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        if hi <= lo {
            return Ok(());
        }
        self.stats.invocations += 1;
        self.metrics.invocations.add(1);
        let t0 = Instant::now();
        push_event(&self.tel, &mut self.events, EngineEvent::Invoke { lo, hi });
        let mut next = lo;
        while next < hi {
            match self.span(module, global_addrs, plan.body, next, hi, mem)? {
                SpanOutcome::Complete => next = hi,
                SpanOutcome::Misspec { iter, resume_base } => {
                    self.recover(module, global_addrs, plan.recovery, resume_base, iter, mem)?;
                    next = iter + 1;
                    if next < hi {
                        push_event(
                            &self.tel,
                            &mut self.events,
                            EngineEvent::ParallelResumed { at: next },
                        );
                    }
                }
            }
        }
        if self.tel.is_tracing() {
            self.tel.record(SpanEvent {
                ts_ns: clock::instant_ns(t0),
                dur_ns: t0.elapsed().as_nanos() as u64,
                phase: Phase::Invoke,
                track: ENGINE_TRACK,
                a: lo,
                b: hi,
            });
        }
        push_event(&self.tel, &mut self.events, EngineEvent::InvokeDone);
        Ok(())
    }
}

/// The recovery runtime: non-speculative sequential execution over the
/// shared heaps; checks are inert, output is direct.
#[derive(Debug)]
struct RecoveryRuntime {
    heaps: SharedHeaps,
    out: Vec<u8>,
}

impl RuntimeIface for RecoveryRuntime {
    fn h_alloc(
        &mut self,
        heap: Heap,
        size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        self.heaps.alloc(heap, size)
    }

    fn h_free(&mut self, heap: Heap, addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        self.heaps.free(heap, addr)
    }

    fn check_heap(&mut self, _heap: Heap, _addr: u64) -> Result<(), Trap> {
        Ok(())
    }

    fn private_read(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn private_write(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn predict(&mut self, _ok: bool) -> Result<(), Trap> {
        Ok(())
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        Ok(())
    }

    fn output(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

/// A sequential plan runtime: executes `parallel_invoke` regions one
/// iteration at a time with the *recovery* body (original semantics). Used
/// to run transformed programs without the engine — e.g. to validate the
/// transformation or measure single-threaded behavior.
#[derive(Debug)]
pub struct SequentialPlanRuntime {
    /// Shared logical-heap allocators.
    pub heaps: SharedHeaps,
    out: Vec<u8>,
}

impl SequentialPlanRuntime {
    /// Build from a loaded image.
    pub fn new(image: &ProgramImage) -> SequentialPlanRuntime {
        SequentialPlanRuntime {
            heaps: SharedHeaps::new(image),
            out: Vec::new(),
        }
    }

    /// Take the output bytes.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }
}

impl RuntimeIface for SequentialPlanRuntime {
    fn h_alloc(
        &mut self,
        heap: Heap,
        size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        self.heaps.alloc(heap, size)
    }

    fn h_free(&mut self, heap: Heap, addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        self.heaps.free(heap, addr)
    }

    fn check_heap(&mut self, heap: Heap, addr: u64) -> Result<(), Trap> {
        if addr == 0 || heap.contains(addr) {
            Ok(())
        } else {
            Err(Trap::misspec(
                MisspecKind::Separation,
                format!("pointer {addr:#x} is not in heap `{heap}`"),
            ))
        }
    }

    fn private_read(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn private_write(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn predict(&mut self, _ok: bool) -> Result<(), Trap> {
        Ok(())
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        Ok(())
    }

    fn output(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn parallel_invoke(
        &mut self,
        module: &Module,
        global_addrs: &[u64],
        plan: PlanEntry,
        lo: i64,
        hi: i64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        let rt = RecoveryRuntime {
            heaps: self.heaps.clone(),
            out: Vec::new(),
        };
        let taken = std::mem::take(mem);
        let mut interp = Interp::with_mem(module, taken, global_addrs.to_vec(), NopHooks, rt);
        let mut result = Ok(());
        for iter in lo..hi {
            if let Err(e) = interp.call_function(plan.recovery, &[Val::Int(iter)]) {
                result = Err(e);
                break;
            }
        }
        self.out.extend(std::mem::take(&mut interp.rt.out));
        *mem = interp.mem;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Regression test for the eager-drop bugfix: once a period is known
    /// squashed, pruning must release the contribution pages (their
    /// `Arc`s) immediately — before worker join — not merely unlink the
    /// map entries.
    #[test]
    fn prune_squashed_releases_page_arcs_eagerly() {
        use privateer_vm::{Page, PAGE_SIZE};
        let page: Arc<Page> = Arc::new([0u8; PAGE_SIZE as usize]);
        let mk = |period: u64| Contribution {
            worker: 0,
            period,
            shadow_pages: vec![(0x1000, Arc::clone(&page))],
            priv_pages: vec![(0x1000, Arc::clone(&page))],
            shadow_lane_starts: vec![0, 1],
            priv_lane_starts: vec![0, 1],
            redux_images: vec![],
            io: vec![],
        };
        let mut pending: BTreeMap<u64, Vec<Contribution>> = BTreeMap::new();
        for p in 0..4u64 {
            pending.entry(p).or_default().push(mk(p));
        }
        assert_eq!(Arc::strong_count(&page), 1 + 8);
        let dropped = prune_squashed(&mut pending, 2);
        assert_eq!(dropped, 4, "two contributions × two pages each");
        assert_eq!(
            Arc::strong_count(&page),
            1 + 4,
            "squashed periods' pages must be freed at prune time"
        );
        assert_eq!(pending.len(), 2, "committed-side periods stay buffered");
    }

    /// Regression test for the arrival-side twin of the eager drop: a
    /// contribution for a period at or after a detected misspeculation
    /// (or arriving after an internal-fault bail) is dead on arrival and
    /// must not be buffered. Exercised deterministically here because in
    /// a live span whether any late contribution actually arrives is a
    /// scheduling race (the contributing worker usually sees the squash
    /// flag first).
    #[test]
    fn arrival_drop_covers_squashed_periods_exactly() {
        let (lo, k) = (0i64, 16i64);
        // Misspeculation at iteration 70 squashes period 4 onward.
        let misspec = Some(70i64);
        for period in 0..4u64 {
            assert!(!arrival_squashed(false, misspec, period, lo, k));
        }
        for period in 4..8u64 {
            assert!(arrival_squashed(false, misspec, period, lo, k));
        }
        // Misspeculation exactly on a period boundary squashes the period
        // it opens, not the one it closes.
        assert!(!arrival_squashed(false, Some(64), 3, lo, k));
        assert!(arrival_squashed(false, Some(64), 4, lo, k));
        // A non-zero span base shifts the period arithmetic: iteration
        // 134 of a span starting at 64 is period 4, not period 8.
        assert!(!arrival_squashed(false, Some(134), 3, 64, k));
        assert!(arrival_squashed(false, Some(134), 4, 64, k));
        // An internal-fault bail squashes everything, no misspec needed.
        assert!(arrival_squashed(true, None, 0, lo, k));
        // No squash known: everything buffers.
        assert!(!arrival_squashed(false, None, 7, lo, k));
    }

    /// Regression test for the breakdown accounting: recovery and failed
    /// merge time must show up in their own buckets, not inflate the
    /// spawn/join residual. (Before the `recovery_ns` bucket existed, a
    /// synthetic run like this attributed the whole recovery window to
    /// spawn/join.)
    #[test]
    fn breakdown_accounts_recovery_separately() {
        let stats = EngineStats {
            wall_ns: 1_000,
            capacity_ns: 4 * 1_000 + 4 * 500, // 4 workers, 500 ns recovery
            body_ns: 2_400,
            priv_read_ns: 200,
            priv_write_ns: 200,
            checkpoint_ns: 600,
            recovery_ns: 500,
            ..EngineStats::default()
        };
        let (useful, pr, pw, ck, rec, spawn_join) = stats.breakdown();
        let cap = 6_000.0;
        assert!((useful - 2_000.0 / cap).abs() < 1e-9);
        assert!((pr - 200.0 / cap).abs() < 1e-9);
        assert!((pw - 200.0 / cap).abs() < 1e-9);
        assert!((ck - 600.0 / cap).abs() < 1e-9);
        assert!((rec - 500.0 / cap).abs() < 1e-9);
        // The residual is what's left: fork/join slack plus the idle
        // (workers - 1) shares of the recovery window.
        let sum = useful + pr + pw + ck + rec + spawn_join;
        assert!((sum - 1.0).abs() < 1e-9);
        // Recovery must not be part of the residual.
        assert!((spawn_join - (cap - 2_000.0 - 400.0 - 600.0 - 500.0) / cap).abs() < 1e-9);
    }
}
