//! Shared logical-heap allocation state.
//!
//! The main process and recovery execution allocate from these shared
//! allocators; addresses stay valid across the sequential/parallel
//! boundary because the allocators are keyed by the fixed heap address
//! ranges (replacement transparency, §3.2). Workers never allocate from
//! the shared heaps — their only in-loop allocations are short-lived and
//! come from per-worker arenas (see [`worker_shortlived_arena`]).

use privateer_ir::Heap;
use privateer_vm::interp::ProgramImage;
use privateer_vm::{RegionAllocator, Trap, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, MutexGuard};

/// Span of the allocator-managed part of each heap (1 TiB; the address
/// layout would allow 16 TiB).
pub const HEAP_SPAN: u64 = 1 << 40;

/// Start of the per-worker short-lived arenas (above the shared range).
const SL_ARENA_BASE_OFF: u64 = 1 << 41;
/// Size of one worker's short-lived arena.
pub const SL_ARENA_SPAN: u64 = 1 << 32;

/// The short-lived arena allocator for worker `w`.
///
/// Arenas are disjoint between workers so that concurrently allocated
/// short-lived objects never collide even though every worker computes
/// addresses independently.
pub fn worker_shortlived_arena(w: usize) -> RegionAllocator {
    let base = Heap::ShortLived.base() + SL_ARENA_BASE_OFF + (w as u64) * SL_ARENA_SPAN;
    RegionAllocator::new(base, base + SL_ARENA_SPAN)
}

/// Thread-safe shared allocators, one per logical heap.
#[derive(Debug, Clone)]
pub struct SharedHeaps {
    inner: Arc<Mutex<HashMap<Heap, RegionAllocator>>>,
}

impl SharedHeaps {
    /// Lock the allocator map; a panic while holding the lock poisons it,
    /// but allocator state stays consistent (every mutation is a single
    /// call), so poisoned locks are safe to keep using.
    fn lock(&self) -> MutexGuard<'_, HashMap<Heap, RegionAllocator>> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Allocators starting after the image's statically placed globals.
    pub fn new(image: &ProgramImage) -> SharedHeaps {
        let mut map = HashMap::new();
        for h in Heap::ALL {
            let start = image
                .heap_start
                .get(&h)
                .copied()
                .unwrap_or(h.base() + PAGE_SIZE);
            map.insert(h, RegionAllocator::new(start, h.base() + HEAP_SPAN));
        }
        SharedHeaps {
            inner: Arc::new(Mutex::new(map)),
        }
    }

    /// Allocate from a heap.
    ///
    /// # Errors
    ///
    /// [`Trap::OutOfMemory`] when the heap range is exhausted.
    pub fn alloc(&self, heap: Heap, size: u64) -> Result<u64, Trap> {
        self.lock()
            .get_mut(&heap)
            .expect("all heaps present")
            .alloc(size)
            .map_err(|_| Trap::OutOfMemory(heap))
    }

    /// Free into a heap.
    ///
    /// # Errors
    ///
    /// Traps on a free of an unallocated address.
    pub fn free(&self, heap: Heap, addr: u64) -> Result<(), Trap> {
        self.lock()
            .get_mut(&heap)
            .expect("all heaps present")
            .free(addr)
            .map_err(|e| Trap::AllocError(e.to_string()))
    }

    /// Highest address handed out in `heap` (exclusive) — the upper bound
    /// of the range checkpoints need to scan.
    pub fn high_water(&self, heap: Heap) -> u64 {
        self.lock()
            .get(&heap)
            .expect("all heaps present")
            .high_water()
    }

    /// Number of live allocations in `heap`.
    pub fn live_count(&self, heap: Heap) -> u64 {
        self.lock()
            .get(&heap)
            .expect("all heaps present")
            .live_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::Module;
    use privateer_vm::load_module;

    fn heaps() -> SharedHeaps {
        let m = Module::new("t");
        SharedHeaps::new(&load_module(&m))
    }

    #[test]
    fn alloc_free_round_trip() {
        let h = heaps();
        let p = h.alloc(Heap::Private, 100).unwrap();
        assert!(Heap::Private.contains(p));
        assert_eq!(h.live_count(Heap::Private), 1);
        h.free(Heap::Private, p).unwrap();
        assert_eq!(h.live_count(Heap::Private), 0);
        assert!(h.free(Heap::Private, p).is_err());
    }

    #[test]
    fn respects_static_global_reservations() {
        let mut m = Module::new("t");
        let g = m.add_global("pathcost", 4096);
        m.global_mut(g).heap = Some(Heap::Private);
        let image = load_module(&m);
        let h = SharedHeaps::new(&image);
        let p = h.alloc(Heap::Private, 8).unwrap();
        let gaddr = image.global_addrs[g.index()];
        assert!(p >= gaddr + 4096, "dynamic allocation overlaps global");
    }

    #[test]
    fn worker_arenas_are_disjoint_and_tagged() {
        let mut a0 = worker_shortlived_arena(0);
        let mut a1 = worker_shortlived_arena(1);
        let p0 = a0.alloc(64).unwrap();
        let p1 = a1.alloc(64).unwrap();
        assert!(Heap::ShortLived.contains(p0));
        assert!(Heap::ShortLived.contains(p1));
        assert!(p0.abs_diff(p1) >= SL_ARENA_SPAN - 64);
    }

    #[test]
    fn shared_clone_shares_state() {
        let h = heaps();
        let h2 = h.clone();
        let p = h.alloc(Heap::Redux, 8).unwrap();
        let q = h2.alloc(Heap::Redux, 8).unwrap();
        assert_ne!(p, q);
        assert_eq!(h.live_count(Heap::Redux), 2);
    }
}
