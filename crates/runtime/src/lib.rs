#![warn(missing_docs)]
//! # privateer-runtime
//!
//! The Privateer runtime support system (§5 of the PLDI 2012 paper):
//! logical heaps, shadow-memory privacy validation, checkpoints with
//! two-phase validation, misspeculation recovery, reduction expansion and
//! the speculative DOALL worker engine.
//!
//! * [`shadow`] — the Table 2 per-byte metadata transition rules;
//! * [`heaps`] — shared logical-heap allocators and per-worker short-lived
//!   arenas;
//! * [`worker`] — the per-worker fast-phase runtime
//!   ([`worker::WorkerRuntime`]);
//! * [`checkpoint`] — checkpoint objects and the phase-2 merge;
//! * [`engine`] — [`engine::MainRuntime`], which implements
//!   `parallel_invoke` by forking copy-on-write worker address spaces,
//!   running iterations round-robin, committing checkpoints in order, and
//!   recovering sequentially after misspeculation (Figure 5);
//! * [`schedule`] — [`schedule::VirtualScheduler`], a deterministic
//!   rendezvous scheduler that turns worker/merge-lane interleavings into
//!   scripted, replayable data for tests and the `privfuzz` harness.

pub mod checkpoint;
pub mod engine;
pub mod heaps;
pub mod model;
pub mod schedule;
pub mod shadow;
pub mod simple;
pub mod worker;

pub use engine::{EngineConfig, EngineEvent, EngineStats, MainRuntime, SequentialPlanRuntime};
pub use heaps::SharedHeaps;
pub use model::SimCost;
pub use schedule::{SchedPoint, VirtualScheduler};
pub use simple::UncheckedDoallRuntime;
pub use worker::{WorkerRuntime, WorkerStats};
