//! The simulated-time cost model.
//!
//! The paper measures wall-clock speedup on a 24-core Xeon. This
//! reproduction's substrate is an interpreter, and the evaluation host may
//! have any number of cores (possibly one), so the engine additionally
//! accounts *simulated cycles*: a deterministic, host-independent cost
//! model in interpreter-instruction equivalents. Parallel wall time on a
//! `W`-way machine is modeled per span as
//!
//! ```text
//! T_span(W) = SPAWN_BASE + W·SPAWN_PER_WORKER          (fork/dispatch)
//!           + max_w ( insts_w + priv_bytes_w·PRIV_BYTE
//!                   + dirty_pages_w·PACKAGE_PAGE )      (slowest worker)
//!           + merged_bytes·MERGE_BYTE
//!           + dirty_pages·MERGE_PAGE                    (commit, serial)
//! ```
//!
//! With a sharded merge (`EngineConfig::merge_lanes = L > 1`) the serial
//! commit term is replaced by
//!
//! ```text
//! L·MERGE_LANE_DISPATCH
//!   + max_l ( bytes_l·MERGE_BYTE + pages_l·MERGE_PAGE )  (slowest lane)
//! ```
//!
//! since the per-lane merges overlap and only the fan-out/fan-in
//! dispatch plus the slowest lane remain on the critical path. Sharding
//! is *adaptive* ([`sharding_profitable`]): the engine estimates both
//! formulas from the per-lane page distribution (free to read off the
//! contributions' bucket tables) and merges inline unless the shard is
//! predicted to win. This covers both small periods — where the
//! `L·MERGE_LANE_DISPATCH` fan-out costs more than the lanes save — and
//! *skewed* periods, where the dirty pages concentrate on a few page
//! indices (the paper's alvinn regime: every worker touches the same
//! small privatized window, so one lane would do all the work anyway).
//!
//! Page counts here are *dirty* pages: with delta contributions
//! (`checkpoint::DeltaTracker`) a worker packages, and the merge scans,
//! only the pages dirtied since its previous contribution — so both
//! costs scale with the pages each period actually touches, not with the
//! worker's cumulative footprint (which made multi-period spans
//! quadratic in span length before).
//!
//! plus, after a misspeculation, the serial re-execution's instructions.
//! Whole-program simulated time = the main thread's instructions + Σ span
//! costs; speedup = sequential instructions / that. The constants below
//! were chosen so the overhead ratios land in the ranges the paper reports
//! (validation a few percent, spawn/join significant only for tiny loops);
//! the *shape* conclusions are insensitive to modest changes.

/// Fixed dispatch cost per parallel span (the paper's `fork` latency).
pub const SPAWN_BASE: u64 = 10_000;
/// Additional dispatch cost per worker.
pub const SPAWN_PER_WORKER: u64 = 500;
/// Cost per byte of privacy validation (shadow metadata transition).
pub const PRIV_BYTE: u64 = 1;
/// Cost per *dirty* page assembled into a checkpoint contribution
/// (delta detection + `Arc` clone + shadow scan).
pub const PACKAGE_PAGE: u64 = 256;
/// Cost per byte merged and committed at a checkpoint.
pub const MERGE_BYTE: u64 = 1;
/// Cost per contributed (dirty) page scanned during the merge.
pub const MERGE_PAGE: u64 = 128;
/// Fixed dispatch/collection cost per merge lane of a *sharded* phase-2
/// merge (job send, lane wake-up, result receive). With `L > 1` lanes the
/// modeled merge term becomes
/// `L·MERGE_LANE_DISPATCH + max_lane(bytes_l·MERGE_BYTE + pages_l·MERGE_PAGE)`
/// — the lanes overlap, so the slowest lane plus the dispatch fan-out
/// bounds the merge instead of the serial sum. With one lane the serial
/// formula applies unchanged (no dispatch cost).
pub const MERGE_LANE_DISPATCH: u64 = 400;

/// The adaptive sharding policy: given the number of contribution pages
/// each lane would scan this period, predict whether the sharded merge
/// beats merging inline on the engine thread.
///
/// Both sides are estimated in page-scan cycles — written-byte cost is
/// unknown before merging, but it concentrates on the same pages the
/// scan does, so the page distribution is a faithful proxy for the
/// balance of the real work:
///
/// ```text
/// serial  ≈ Σ_l pages_l · MERGE_PAGE
/// sharded ≈ L·MERGE_LANE_DISPATCH + max_l pages_l · MERGE_PAGE
/// ```
///
/// Sharding loses in two regimes this test catches together: *small*
/// periods, where the dispatch fan-out dwarfs the whole merge, and
/// *skewed* periods, where the dirty pages concentrate on a few page
/// indices so one lane inherits nearly all the work (every worker
/// rewriting the same small privatized window does this) and the other
/// lanes are paid for but idle.
pub fn sharding_profitable(lane_pages: &[u64]) -> bool {
    let lanes = lane_pages.len() as u64;
    if lanes <= 1 {
        return false;
    }
    let total: u64 = lane_pages.iter().sum();
    let max = lane_pages.iter().copied().max().unwrap_or(0);
    lanes * MERGE_LANE_DISPATCH + max * MERGE_PAGE < total * MERGE_PAGE
}

/// Simulated-cycle accounting for one engine (or one invocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCost {
    /// Total simulated parallel-region cycles (see module docs).
    pub total: u64,
    /// Σ useful worker cycles (instructions minus check executions).
    pub useful: u64,
    /// Σ `private_read` validation cycles.
    pub priv_read: u64,
    /// Σ `private_write` validation cycles.
    pub priv_write: u64,
    /// Σ checkpoint packaging + merge cycles.
    pub checkpoint: u64,
    /// Serial recovery cycles.
    pub recovery: u64,
    /// Simulated capacity: `workers × Σ span time`.
    pub capacity: u64,
}

impl SimCost {
    /// The Figure 8 utilization breakdown as fractions of capacity:
    /// `(useful, priv read, priv write, checkpoint, spawn/join)`.
    pub fn breakdown(&self) -> (f64, f64, f64, f64, f64) {
        let cap = self.capacity.max(1) as f64;
        let useful = self.useful as f64 / cap;
        let pr = self.priv_read as f64 / cap;
        let pw = self.priv_write as f64 / cap;
        let ck = self.checkpoint as f64 / cap;
        let sj = (1.0 - useful - pr - pw - ck).max(0.0);
        (useful, pr, pw, ck, sj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let c = SimCost {
            total: 100,
            useful: 50,
            priv_read: 10,
            priv_write: 10,
            checkpoint: 10,
            recovery: 0,
            capacity: 100,
        };
        let (u, pr, pw, ck, sj) = c.breakdown();
        assert!((u + pr + pw + ck + sj - 1.0).abs() < 1e-9);
        assert!((sj - 0.2).abs() < 1e-9);
    }

    #[test]
    fn sharding_policy_rejects_small_and_skewed_periods() {
        // Balanced and big enough to amortize dispatch: shard.
        assert!(sharding_profitable(&[8, 8, 8, 8]));
        // Too small: 8 pages of scanning never pays for 4 dispatches.
        assert!(!sharding_profitable(&[2, 2, 2, 2]));
        // Fully skewed: one lane would do all the work anyway.
        assert!(!sharding_profitable(&[32, 0, 0, 0]));
        // Degenerate lane counts never shard.
        assert!(!sharding_profitable(&[1000]));
        assert!(!sharding_profitable(&[]));
        // Break-even arithmetic: savings (total - max)·MERGE_PAGE must
        // exceed dispatch L·MERGE_LANE_DISPATCH = 1600, i.e. > 12.5
        // off-max pages at MERGE_PAGE = 128.
        assert!(!sharding_profitable(&[20, 4, 4, 4])); // saves 12 pages
        assert!(sharding_profitable(&[20, 5, 5, 4])); // saves 14 pages
    }

    #[test]
    fn sharding_policy_boundary_conditions() {
        // Empty period: every lane idle, nothing to save — never shard
        // (and never divide by the zero total).
        assert!(!sharding_profitable(&[0, 0, 0, 0]));
        assert!(!sharding_profitable(&[0]));

        // More lanes than dirty pages: most lanes are pure dispatch
        // overhead, whatever the distribution.
        assert!(!sharding_profitable(&[1, 0, 0, 0, 0, 0, 0, 0]));
        assert!(!sharding_profitable(&[1, 1, 0, 0, 0, 0, 0, 0]));
        assert!(!sharding_profitable(&[1, 1, 1, 1, 1, 1, 1, 1]));

        // Single hot page per off-max lane at growing lane counts: the
        // savings are (lanes-1)·MERGE_PAGE = 128·(L-1) against a
        // dispatch bill of 400·L — more lanes never rescue a single-hot-
        // page skew, no matter how hot the hot lane is.
        for lanes in 2..=16usize {
            let mut skew = vec![1u64; lanes];
            skew[0] = 10_000;
            assert!(
                !sharding_profitable(&skew),
                "single-hot-page skew must merge inline at {lanes} lanes"
            );
        }

        // Two-lane break-even: savings are min(a, b)·MERGE_PAGE against
        // 2·MERGE_LANE_DISPATCH = 800, so the smaller lane must carry
        // more than 6.25 pages.
        assert!(!sharding_profitable(&[1000, 6]));
        assert!(sharding_profitable(&[1000, 7]));
        assert!(sharding_profitable(&[7, 1000]));

        // The policy reads the distribution, not the lane order.
        assert!(!sharding_profitable(&[4, 4, 20, 4]));
        assert!(sharding_profitable(&[5, 4, 20, 5]));
    }

    #[test]
    fn empty_capacity_is_safe() {
        let (_, _, _, _, sj) = SimCost::default().breakdown();
        assert!((0.0..=1.0).contains(&sj));
    }
}
