//! The simulated-time cost model.
//!
//! The paper measures wall-clock speedup on a 24-core Xeon. This
//! reproduction's substrate is an interpreter, and the evaluation host may
//! have any number of cores (possibly one), so the engine additionally
//! accounts *simulated cycles*: a deterministic, host-independent cost
//! model in interpreter-instruction equivalents. Parallel wall time on a
//! `W`-way machine is modeled per span as
//!
//! ```text
//! T_span(W) = SPAWN_BASE + W·SPAWN_PER_WORKER          (fork/dispatch)
//!           + max_w ( insts_w + priv_bytes_w·PRIV_BYTE
//!                   + dirty_pages_w·PACKAGE_PAGE )      (slowest worker)
//!           + merged_bytes·MERGE_BYTE
//!           + dirty_pages·MERGE_PAGE                    (commit, serial)
//! ```
//!
//! Page counts here are *dirty* pages: with delta contributions
//! (`checkpoint::DeltaTracker`) a worker packages, and the merge scans,
//! only the pages dirtied since its previous contribution — so both
//! costs scale with the pages each period actually touches, not with the
//! worker's cumulative footprint (which made multi-period spans
//! quadratic in span length before).
//!
//! plus, after a misspeculation, the serial re-execution's instructions.
//! Whole-program simulated time = the main thread's instructions + Σ span
//! costs; speedup = sequential instructions / that. The constants below
//! were chosen so the overhead ratios land in the ranges the paper reports
//! (validation a few percent, spawn/join significant only for tiny loops);
//! the *shape* conclusions are insensitive to modest changes.

/// Fixed dispatch cost per parallel span (the paper's `fork` latency).
pub const SPAWN_BASE: u64 = 10_000;
/// Additional dispatch cost per worker.
pub const SPAWN_PER_WORKER: u64 = 500;
/// Cost per byte of privacy validation (shadow metadata transition).
pub const PRIV_BYTE: u64 = 1;
/// Cost per *dirty* page assembled into a checkpoint contribution
/// (delta detection + `Arc` clone + shadow scan).
pub const PACKAGE_PAGE: u64 = 256;
/// Cost per byte merged and committed at a checkpoint.
pub const MERGE_BYTE: u64 = 1;
/// Cost per contributed (dirty) page scanned during the merge.
pub const MERGE_PAGE: u64 = 128;

/// Simulated-cycle accounting for one engine (or one invocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimCost {
    /// Total simulated parallel-region cycles (see module docs).
    pub total: u64,
    /// Σ useful worker cycles (instructions minus check executions).
    pub useful: u64,
    /// Σ `private_read` validation cycles.
    pub priv_read: u64,
    /// Σ `private_write` validation cycles.
    pub priv_write: u64,
    /// Σ checkpoint packaging + merge cycles.
    pub checkpoint: u64,
    /// Serial recovery cycles.
    pub recovery: u64,
    /// Simulated capacity: `workers × Σ span time`.
    pub capacity: u64,
}

impl SimCost {
    /// The Figure 8 utilization breakdown as fractions of capacity:
    /// `(useful, priv read, priv write, checkpoint, spawn/join)`.
    pub fn breakdown(&self) -> (f64, f64, f64, f64, f64) {
        let cap = self.capacity.max(1) as f64;
        let useful = self.useful as f64 / cap;
        let pr = self.priv_read as f64 / cap;
        let pw = self.priv_write as f64 / cap;
        let ck = self.checkpoint as f64 / cap;
        let sj = (1.0 - useful - pr - pw - ck).max(0.0);
        (useful, pr, pw, ck, sj)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_sums_to_one() {
        let c = SimCost {
            total: 100,
            useful: 50,
            priv_read: 10,
            priv_write: 10,
            checkpoint: 10,
            recovery: 0,
            capacity: 100,
        };
        let (u, pr, pw, ck, sj) = c.breakdown();
        assert!((u + pr + pw + ck + sj - 1.0).abs() < 1e-9);
        assert!((sj - 0.2).abs() < 1e-9);
    }

    #[test]
    fn empty_capacity_is_safe() {
        let (_, _, _, _, sj) = SimCost::default().breakdown();
        assert!((0.0..=1.0).contains(&sj));
    }
}
