//! A deterministic virtual scheduler for the speculative engine.
//!
//! The engine's concurrency bugs live in *orderings*: which worker's
//! contribution reaches the collection loop first, whether a late
//! contribution arrives before or after the misspeculation that squashes
//! its period, which merge lane reports last. On a real machine those
//! orderings are wall-clock accidents — a test can provoke them only by
//! spinning and hoping. [`VirtualScheduler`] turns them into data: a
//! *script* of [`SchedPoint`]s that the engine's threads rendezvous on,
//! so any interleaving can be written down, replayed, and regression
//! tested, and a seeded explorer ([`VirtualScheduler::random_arrivals`])
//! can walk many interleavings reproducibly.
//!
//! # How gating works
//!
//! Each instrumented site in the engine wraps its effect in
//! [`VirtualScheduler::run`]`(point, f)`:
//!
//! * If `point` does not appear in the remaining script, `f` runs
//!   immediately — scripts are *partial* orders; unlisted work is
//!   unconstrained.
//! * Otherwise the caller blocks until `point` is at the *front* of the
//!   script, runs `f` while holding the turn (so the gated effect — a
//!   channel send, a flag store — completes before the next script entry
//!   is released), then pops the entry and wakes the other waiters.
//!
//! Because a worker emits its own points in program order and the engine
//! thread never blocks on the scheduler, a script that respects each
//! worker's internal order can always make progress. Two safety valves
//! cover scripts that cannot: a worker retires its remaining entries
//! when it exits ([`VirtualScheduler::retire_worker`] — e.g. it stopped
//! contributing because a misspeculation squashed its span), and a
//! generous per-wait timeout force-pops the front entry rather than
//! hanging the test (counted by [`VirtualScheduler::timeouts`], which a
//! deterministic test should assert is zero).
//!
//! # Example
//!
//! Forcing the "late contribution after squash" race (see
//! `tests/engine_schedule.rs`): script `[Iter{0,2}, Misspec{1},
//! Contribute{0,0}]` holds worker 1's misspeculation until worker 0 has
//! finished its period-0 iterations, then publishes the squash, then
//! releases worker 0's contribution — which now arrives *after* the
//! squash is known and must be dropped on arrival, deterministically.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// One serialization point in the engine's concurrent execution.
///
/// `worker` indices match [`crate::engine::EngineConfig::workers`]
/// (0-based); `period` and `iter` are span-relative, exactly as the
/// engine numbers them. Because each worker retires its remaining
/// entries when it exits, a script constrains the *current* span; after
/// a misspeculation resume the surviving entries (if any) apply to the
/// resumed span's renumbered workers and periods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedPoint {
    /// Worker `worker` executes iteration `iter` — the whole step (body
    /// and checks) runs while holding the turn, so everything the
    /// iteration publishes is visible before the next entry releases.
    Iter {
        /// Worker index.
        worker: usize,
        /// Absolute iteration number.
        iter: i64,
    },
    /// Worker `worker` sends its contribution for checkpoint `period`.
    Contribute {
        /// Worker index.
        worker: usize,
        /// Span-relative checkpoint period.
        period: u64,
    },
    /// Worker `worker` publishes a misspeculation (squash flag plus the
    /// detection message, atomically under the turn).
    Misspec {
        /// Worker index.
        worker: usize,
    },
    /// Merge lane `lane` reports its result for checkpoint `period`.
    /// Only reached when the adaptive policy actually shards the period
    /// ([`crate::model::sharding_profitable`]); scripts should list lane
    /// points only for periods known to shard.
    MergeLane {
        /// Merge-lane index.
        lane: usize,
        /// Span-relative checkpoint period.
        period: u64,
    },
}

impl SchedPoint {
    /// The worker that emits this point, if any (lane points are emitted
    /// by pool threads, which never retire).
    fn owner_worker(&self) -> Option<usize> {
        match *self {
            SchedPoint::Iter { worker, .. }
            | SchedPoint::Contribute { worker, .. }
            | SchedPoint::Misspec { worker } => Some(worker),
            SchedPoint::MergeLane { .. } => None,
        }
    }
}

#[derive(Debug, Default)]
struct SchedState {
    script: VecDeque<SchedPoint>,
    /// Whether some thread currently holds the turn (is running its
    /// gated closure). The front entry is popped only after the closure
    /// returns, so no other entry can fire in between.
    active: bool,
    fired: Vec<SchedPoint>,
    timeouts: u64,
}

/// The scheduler handle, shared (via `Arc`) between the test, the engine
/// and its worker/lane threads. See the [module docs](self) for the
/// gating protocol.
#[derive(Debug)]
pub struct VirtualScheduler {
    state: Mutex<SchedState>,
    cv: Condvar,
    timeout: Duration,
}

/// How long a blocked gate waits before force-popping the front entry
/// instead of hanging the run. Scripts that respect program order never
/// hit this; it bounds the damage of ones that don't.
const DEFAULT_GATE_TIMEOUT: Duration = Duration::from_secs(5);

impl VirtualScheduler {
    /// A scheduler that releases the given points strictly in order.
    pub fn scripted(script: Vec<SchedPoint>) -> Arc<VirtualScheduler> {
        Arc::new(VirtualScheduler {
            state: Mutex::new(SchedState {
                script: script.into(),
                ..SchedState::default()
            }),
            cv: Condvar::new(),
            timeout: DEFAULT_GATE_TIMEOUT,
        })
    }

    /// A seeded random exploration of contribution-arrival orders: every
    /// `Contribute { worker, period }` point for `workers × periods` is
    /// scheduled in a shuffled order that preserves each worker's own
    /// period order (any other order could never occur and would only
    /// stall into the retire/timeout valves). The same seed always
    /// yields the same interleaving.
    pub fn random_arrivals(workers: usize, periods: u64, seed: u64) -> Arc<VirtualScheduler> {
        let mut next = vec![0u64; workers.max(1)];
        let mut script = Vec::with_capacity(workers * periods as usize);
        let mut s = seed;
        while script.len() < workers * periods as usize {
            s = splitmix64(s);
            let live: Vec<usize> = (0..workers.max(1)).filter(|&w| next[w] < periods).collect();
            let w = live[(s % live.len() as u64) as usize];
            script.push(SchedPoint::Contribute {
                worker: w,
                period: next[w],
            });
            next[w] += 1;
        }
        VirtualScheduler::scripted(script)
    }

    /// Run `f` at serialization point `point`: immediately if the point
    /// is not in the remaining script, otherwise once every earlier
    /// script entry has fired (holding the turn while `f` runs).
    pub fn run<T>(&self, point: SchedPoint, f: impl FnOnce() -> T) -> T {
        let mut st = self.state.lock().expect("scheduler lock");
        loop {
            if !st.script.contains(&point) {
                // Unlisted (or force-popped after a timeout): run free.
                drop(st);
                return f();
            }
            if !st.active && st.script.front() == Some(&point) {
                // Claim the turn: pop and record the entry *before*
                // running the closure, so `fired()`/`remaining()` are
                // up to date the moment the gated effect lands. (The
                // effect itself can let another thread finish the run —
                // a lane's result send releases the engine's collection
                // loop — and a pop-after-run would race the caller's
                // post-run `fired()` read.) `active` stays set until the
                // closure returns, so the next entry cannot fire early.
                st.active = true;
                let fired = st.script.pop_front().expect("turn holder owns the front");
                st.fired.push(fired);
                drop(st);
                let r = f();
                self.state.lock().expect("scheduler lock").active = false;
                self.cv.notify_all();
                return r;
            }
            let (guard, wait) = self
                .cv
                .wait_timeout(st, self.timeout)
                .expect("scheduler lock");
            st = guard;
            if wait.timed_out() && !st.active {
                // Safety valve: the front entry's emitter is never
                // coming (a script that contradicts program order).
                // Discard it so the run completes and the test can
                // assert on `timeouts()` instead of hanging.
                st.timeouts += 1;
                if let Some(p) = st.script.pop_front() {
                    st.fired.push(p);
                }
                self.cv.notify_all();
            }
        }
    }

    /// Remove every remaining script entry emitted by worker `w`. Called
    /// by the engine when a worker exits (it finished its range, or a
    /// squash stopped it mid-span), so entries the worker will never
    /// reach cannot block the rest of the script.
    pub fn retire_worker(&self, w: usize) {
        let mut st = self.state.lock().expect("scheduler lock");
        st.script.retain(|p| p.owner_worker() != Some(w));
        self.cv.notify_all();
    }

    /// How many gates gave up waiting and force-popped the front entry.
    /// Zero for every script consistent with program order — assert this
    /// in deterministic replay tests.
    pub fn timeouts(&self) -> u64 {
        self.state.lock().expect("scheduler lock").timeouts
    }

    /// The points that have fired so far, in the order they fired
    /// (script prefix plus any force-popped entries).
    pub fn fired(&self) -> Vec<SchedPoint> {
        self.state.lock().expect("scheduler lock").fired.clone()
    }

    /// Script entries not yet fired. Zero after a run means the script
    /// was fully consumed (nothing was retired or skipped).
    pub fn remaining(&self) -> usize {
        self.state.lock().expect("scheduler lock").script.len()
    }
}

/// `splitmix64` — the same generator the injection hooks use
/// ([`crate::worker::injected_at`]); one multiply-xor-shift chain per
/// draw, deterministic across platforms.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scripted_order_is_enforced_across_threads() {
        let sched = VirtualScheduler::scripted(vec![
            SchedPoint::Contribute {
                worker: 1,
                period: 0,
            },
            SchedPoint::Contribute {
                worker: 0,
                period: 0,
            },
            SchedPoint::Misspec { worker: 2 },
        ]);
        let log = Arc::new(Mutex::new(Vec::new()));
        std::thread::scope(|scope| {
            for (w, point) in [
                (
                    0,
                    SchedPoint::Contribute {
                        worker: 0,
                        period: 0,
                    },
                ),
                (
                    1,
                    SchedPoint::Contribute {
                        worker: 1,
                        period: 0,
                    },
                ),
                (2, SchedPoint::Misspec { worker: 2 }),
            ] {
                let sched = Arc::clone(&sched);
                let log = Arc::clone(&log);
                scope.spawn(move || {
                    sched.run(point, || log.lock().unwrap().push(w));
                });
            }
        });
        assert_eq!(*log.lock().unwrap(), vec![1, 0, 2]);
        assert_eq!(sched.timeouts(), 0);
        assert_eq!(sched.remaining(), 0);
        assert_eq!(sched.fired().len(), 3);
    }

    #[test]
    fn unlisted_points_run_immediately() {
        let sched = VirtualScheduler::scripted(vec![SchedPoint::Misspec { worker: 9 }]);
        let ran = AtomicUsize::new(0);
        // Not in the script: must not block even though the script's own
        // front entry never fires.
        sched.run(
            SchedPoint::Contribute {
                worker: 0,
                period: 3,
            },
            || ran.fetch_add(1, Ordering::SeqCst),
        );
        assert_eq!(ran.load(Ordering::SeqCst), 1);
        assert_eq!(sched.remaining(), 1);
    }

    #[test]
    fn retirement_unblocks_dependent_entries() {
        let sched = VirtualScheduler::scripted(vec![
            SchedPoint::Contribute {
                worker: 1,
                period: 0,
            },
            SchedPoint::Contribute {
                worker: 0,
                period: 0,
            },
        ]);
        let fired = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let sched = &sched;
            let fired = &fired;
            scope.spawn(move || {
                sched.run(
                    SchedPoint::Contribute {
                        worker: 0,
                        period: 0,
                    },
                    || fired.fetch_add(1, Ordering::SeqCst),
                );
            });
            // Worker 1 exits without ever contributing; retiring it must
            // release worker 0.
            sched.retire_worker(1);
        });
        assert_eq!(fired.load(Ordering::SeqCst), 1);
        assert_eq!(sched.timeouts(), 0);
    }

    #[test]
    fn random_arrivals_preserve_per_worker_period_order_and_seed_determinism() {
        let a = VirtualScheduler::random_arrivals(3, 4, 42);
        let b = VirtualScheduler::random_arrivals(3, 4, 42);
        let c = VirtualScheduler::random_arrivals(3, 4, 43);
        let script = |s: &VirtualScheduler| {
            s.state
                .lock()
                .unwrap()
                .script
                .iter()
                .copied()
                .collect::<Vec<_>>()
        };
        assert_eq!(script(&a), script(&b), "same seed, same interleaving");
        assert_ne!(
            script(&a),
            script(&c),
            "different seed explores differently"
        );
        let mut next = [0u64; 3];
        for p in script(&a) {
            match p {
                SchedPoint::Contribute { worker, period } => {
                    assert_eq!(period, next[worker], "per-worker periods stay ordered");
                    next[worker] += 1;
                }
                other => panic!("unexpected point {other:?}"),
            }
        }
        assert_eq!(next, [4, 4, 4]);
    }
}
