//! Shadow-heap privacy metadata: the Table 2 transition rules.
//!
//! Each byte of private memory has one byte of metadata in the shadow heap
//! (at `addr | SHADOW_BIT`). Codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | live-in (untouched this invocation) |
//! | 1 | old-write (written before the last checkpoint) |
//! | 2 | read-live-in (read; appears live-in, pending phase-2 validation) |
//! | 3+(i−i₀) | written in iteration i, i₀ = first iteration after the last checkpoint |
//!
//! Timestamps fit a byte only if checkpoints occur at least every
//! [`MAX_PERIOD`] iterations, which the engine enforces (the paper uses the
//! same 253-iteration bound).

use privateer_vm::{MisspecKind, Trap};

/// Metadata code: live-in value, untouched since the invocation began.
pub const LIVE_IN: u8 = 0;
/// Metadata code: written before the most recent checkpoint.
pub const OLD_WRITE: u8 = 1;
/// Metadata code: read while apparently live-in; validated at phase 2.
pub const READ_LIVE_IN: u8 = 2;
/// First timestamp code.
pub const TS_BASE: u8 = 3;
/// Maximum iterations between checkpoints (so `3 + (i - i0) <= 255`).
pub const MAX_PERIOD: u64 = 253;

/// The timestamp code for the `n`-th iteration after a checkpoint.
///
/// # Panics
///
/// Panics if `n >= MAX_PERIOD` (the engine must checkpoint first).
pub fn ts_code(n: u64) -> u8 {
    assert!(n < MAX_PERIOD, "checkpoint period overflow: {n}");
    TS_BASE + n as u8
}

/// Direction of a private access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// `private_read`.
    Read,
    /// `private_write`.
    Write,
}

/// Apply one Table 2 transition for a private access to a byte whose
/// metadata is `before`, in the iteration with timestamp `cur`.
///
/// Returns the metadata after the access.
///
/// # Errors
///
/// Traps with a privacy misspeculation exactly in the cases of Table 2:
/// reading an old write, reading an earlier iteration's write, or the
/// conservative write-after-read-live-in false positive.
pub fn transition(access: Access, before: u8, cur: u8) -> Result<u8, Trap> {
    debug_assert!(cur >= TS_BASE);
    match access {
        Access::Read => match before {
            LIVE_IN | READ_LIVE_IN => Ok(READ_LIVE_IN),
            OLD_WRITE => Err(privacy(before, cur, "read of a pre-checkpoint write")),
            b if b == cur => Ok(cur), // intra-iteration flow
            _ => Err(privacy(
                before,
                cur,
                "read of a value written in an earlier iteration",
            )),
        },
        Access::Write => match before {
            LIVE_IN | OLD_WRITE => Ok(cur),
            READ_LIVE_IN => Err(privacy(
                before,
                cur,
                "write after read-live-in (conservative)",
            )),
            _ => Ok(cur), // overwrite of a recent write (2 < a <= cur)
        },
    }
}

fn privacy(before: u8, cur: u8, why: &str) -> Trap {
    Trap::misspec(
        MisspecKind::Privacy,
        format!("{why} (metadata {before}, current timestamp {cur})"),
    )
}

/// Metadata normalization at a checkpoint: timestamps become
/// [`OLD_WRITE`]; validated live-in reads return to [`LIVE_IN`].
pub fn normalize(meta: u8) -> u8 {
    match meta {
        LIVE_IN => LIVE_IN,
        OLD_WRITE => OLD_WRITE,
        READ_LIVE_IN => LIVE_IN,
        _ => OLD_WRITE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u8 = TS_BASE + 10; // current-iteration timestamp in tests

    fn read(before: u8) -> Result<u8, Trap> {
        transition(Access::Read, before, B)
    }

    fn write(before: u8) -> Result<u8, Trap> {
        transition(Access::Write, before, B)
    }

    /// The exact content of Table 2.
    #[test]
    fn table2_reads() {
        assert_eq!(read(LIVE_IN).unwrap(), READ_LIVE_IN); // read a live-in value
        assert!(read(OLD_WRITE).is_err()); // loop-carried flow dependence
        assert_eq!(read(READ_LIVE_IN).unwrap(), READ_LIVE_IN); // read live-in again
        assert!(read(TS_BASE + 3).is_err()); // 2 < a < B: loop-carried flow
        assert_eq!(read(B).unwrap(), B); // intra-iteration (private) flow
    }

    #[test]
    fn table2_writes() {
        assert_eq!(write(LIVE_IN).unwrap(), B); // overwrite a live-in value
        assert_eq!(write(OLD_WRITE).unwrap(), B); // overwrite an old write
        assert!(write(READ_LIVE_IN).is_err()); // conservative false positive
        assert_eq!(write(TS_BASE + 2).unwrap(), B); // overwrite a recent write
        assert_eq!(write(B).unwrap(), B); // overwrite own write
    }

    #[test]
    fn errors_are_privacy_misspecs() {
        let e = read(OLD_WRITE).unwrap_err();
        assert!(matches!(
            e,
            Trap::Misspec(privateer_vm::Misspec {
                kind: MisspecKind::Privacy,
                ..
            })
        ));
    }

    #[test]
    fn normalize_rules() {
        assert_eq!(normalize(LIVE_IN), LIVE_IN);
        assert_eq!(normalize(OLD_WRITE), OLD_WRITE);
        assert_eq!(normalize(READ_LIVE_IN), LIVE_IN);
        for ts in TS_BASE..=255 {
            assert_eq!(normalize(ts), OLD_WRITE);
        }
    }

    #[test]
    fn ts_code_range() {
        assert_eq!(ts_code(0), 3);
        assert_eq!(ts_code(252), 255);
    }

    #[test]
    #[should_panic(expected = "checkpoint period overflow")]
    fn ts_code_overflow_panics() {
        let _ = ts_code(MAX_PERIOD);
    }

    /// Soundness sketch: any read of a byte written in a *different,
    /// earlier* iteration (since the last checkpoint) must trap.
    #[test]
    fn cross_iteration_flow_always_caught() {
        for w in 0..50u64 {
            for r in (w + 1)..50u64 {
                let meta = transition(Access::Write, LIVE_IN, ts_code(w)).unwrap();
                let res = transition(Access::Read, meta, ts_code(r));
                assert!(res.is_err(), "write@{w} read@{r} escaped");
            }
        }
    }

    /// Intra-iteration flow and write-first patterns never trap.
    #[test]
    fn private_patterns_pass() {
        for i in 0..50u64 {
            let ts = ts_code(i);
            // write then read, same iteration
            let m = transition(Access::Write, if i == 0 { LIVE_IN } else { OLD_WRITE }, ts).unwrap();
            let m = transition(Access::Read, m, ts).unwrap();
            assert_eq!(m, ts);
        }
    }
}
