//! Shadow-heap privacy metadata: the Table 2 transition rules.
//!
//! Each byte of private memory has one byte of metadata in the shadow heap
//! (at `addr | SHADOW_BIT`). Codes:
//!
//! | code | meaning |
//! |------|---------|
//! | 0 | live-in (untouched this invocation) |
//! | 1 | old-write (written before the last checkpoint) |
//! | 2 | read-live-in (read; appears live-in, pending phase-2 validation) |
//! | 3+(i−i₀) | written in iteration i, i₀ = first iteration after the last checkpoint |
//!
//! Timestamps fit a byte only if checkpoints occur at least every
//! [`MAX_PERIOD`] iterations, which the engine enforces (the paper uses the
//! same 253-iteration bound).

use privateer_vm::{MisspecKind, Trap};

/// Metadata code: live-in value, untouched since the invocation began.
pub const LIVE_IN: u8 = 0;
/// Metadata code: written before the most recent checkpoint.
pub const OLD_WRITE: u8 = 1;
/// Metadata code: read while apparently live-in; validated at phase 2.
pub const READ_LIVE_IN: u8 = 2;
/// First timestamp code.
pub const TS_BASE: u8 = 3;
/// Maximum iterations between checkpoints (so `3 + (i - i0) <= 255`).
pub const MAX_PERIOD: u64 = 253;

/// The timestamp code for the `n`-th iteration after a checkpoint.
///
/// # Panics
///
/// Panics if `n >= MAX_PERIOD` (the engine must checkpoint first).
pub fn ts_code(n: u64) -> u8 {
    assert!(n < MAX_PERIOD, "checkpoint period overflow: {n}");
    TS_BASE + n as u8
}

/// Direction of a private access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// `private_read`.
    Read,
    /// `private_write`.
    Write,
}

/// Apply one Table 2 transition for a private access to a byte whose
/// metadata is `before`, in the iteration with timestamp `cur`.
///
/// Returns the metadata after the access.
///
/// # Errors
///
/// Traps with a privacy misspeculation exactly in the cases of Table 2:
/// reading an old write, reading an earlier iteration's write, or the
/// conservative write-after-read-live-in false positive.
pub fn transition(access: Access, before: u8, cur: u8) -> Result<u8, Trap> {
    debug_assert!(cur >= TS_BASE);
    match access {
        Access::Read => match before {
            LIVE_IN | READ_LIVE_IN => Ok(READ_LIVE_IN),
            OLD_WRITE => Err(privacy(before, cur, "read of a pre-checkpoint write")),
            b if b == cur => Ok(cur), // intra-iteration flow
            _ => Err(privacy(
                before,
                cur,
                "read of a value written in an earlier iteration",
            )),
        },
        Access::Write => match before {
            LIVE_IN | OLD_WRITE => Ok(cur),
            READ_LIVE_IN => Err(privacy(
                before,
                cur,
                "write after read-live-in (conservative)",
            )),
            _ => Ok(cur), // overwrite of a recent write (2 < a <= cur)
        },
    }
}

fn privacy(before: u8, cur: u8, why: &str) -> Trap {
    Trap::misspec(
        MisspecKind::Privacy,
        format!("{why} (metadata {before}, current timestamp {cur})"),
    )
}

/// Metadata normalization at a checkpoint: timestamps become
/// [`OLD_WRITE`]; validated live-in reads return to [`LIVE_IN`].
pub fn normalize(meta: u8) -> u8 {
    match meta {
        LIVE_IN => LIVE_IN,
        OLD_WRITE => OLD_WRITE,
        READ_LIVE_IN => LIVE_IN,
        _ => OLD_WRITE,
    }
}

/// Word-granular (SWAR) fast paths: apply the Table 2 transition to eight
/// shadow bytes at once.
///
/// All operations here are lane-wise over the eight bytes of a `u64`, so
/// they are endianness-agnostic as long as loads and stores use the same
/// byte order; callers use little-endian throughout. The fast path covers
/// every word that cannot trap — uniform live-in/old-write words under a
/// write (the privatization "kill" pattern), and intra-iteration reuse
/// where a word is already at the current timestamp — and signals
/// [`word::Outcome::Fallback`] for any word containing a trap candidate, which
/// the caller re-processes with the per-byte [`transition`] so trap kinds,
/// messages and partial-mutation order stay byte-identical to the
/// reference semantics.
pub mod word {
    use super::{Access, LIVE_IN, READ_LIVE_IN};

    /// Bytes per SWAR word.
    pub const BYTES: u64 = 8;
    /// The high bit of every byte lane.
    pub const HI: u64 = 0x8080_8080_8080_8080;

    /// `b` replicated into every byte lane.
    pub const fn splat(b: u8) -> u64 {
        u64::from_ne_bytes([b; 8])
    }

    /// `0x80` in every lane whose byte is zero.
    ///
    /// This is the carry-free exact variant of the classic
    /// `x.wrapping_sub(splat(0x01)) & !x & splat(0x80)` zero-byte test:
    /// that formula is exact only up to the first zero byte (a borrow can
    /// flag a following `0x01` lane), whereas the formula here never
    /// crosses lanes, so every lane is reported exactly.
    pub const fn zero_mask(x: u64) -> u64 {
        let low7_sum = (x & !HI).wrapping_add(!HI);
        !(low7_sum | x) & HI
    }

    /// `0x80` in every lane of `w` whose byte equals `b`.
    pub const fn eq_mask(w: u64, b: u8) -> u64 {
        zero_mask(w ^ splat(b))
    }

    /// Expand a `0x80`-per-lane mask into a `0xFF`-per-lane mask.
    pub const fn expand(m: u64) -> u64 {
        (m >> 7).wrapping_mul(0xFF)
    }

    /// Whether every lane is [`LIVE_IN`] or [`super::OLD_WRITE`] — the
    /// "untouched since the last checkpoint" test used to skip whole
    /// words during checkpoint scans.
    pub const fn all_le_old_write(w: u64) -> bool {
        w & splat(0xFE) == 0
    }

    /// Result of attempting a word-granular transition.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum Outcome {
        /// Every lane passes; the word's metadata after the access (which
        /// may equal the input word).
        Pass(u64),
        /// At least one lane would trap; the caller must re-run the
        /// per-byte [`super::transition`] over this word to reproduce the
        /// exact trap and partial-mutation order.
        Fallback,
    }

    /// Apply one Table 2 transition to all eight lanes of `w` in O(1).
    ///
    /// Returns [`Outcome::Pass`] exactly when the per-byte [`super::transition`]
    /// would succeed for every lane, with the identical resulting
    /// metadata; [`Outcome::Fallback`] exactly when some lane would trap.
    pub fn transition_word(access: Access, w: u64, cur: u8) -> Outcome {
        debug_assert!(cur >= super::TS_BASE);
        match access {
            Access::Write => {
                // A write traps only on read-live-in; every other byte
                // value becomes the current timestamp.
                if eq_mask(w, READ_LIVE_IN) != 0 {
                    Outcome::Fallback
                } else {
                    Outcome::Pass(splat(cur))
                }
            }
            Access::Read => {
                // A read passes on {live-in, read-live-in, cur}: the
                // first two become read-live-in, cur stays put. Any other
                // byte (old-write or a foreign timestamp) traps.
                let ok = eq_mask(w, LIVE_IN) | eq_mask(w, READ_LIVE_IN) | eq_mask(w, cur);
                if ok != HI {
                    return Outcome::Fallback;
                }
                let keep = expand(eq_mask(w, cur));
                Outcome::Pass((keep & splat(cur)) | (!keep & splat(READ_LIVE_IN)))
            }
        }
    }

    /// Word-granular [`super::normalize`]: lanes holding [`LIVE_IN`] or
    /// [`READ_LIVE_IN`] become [`LIVE_IN`]; every other lane becomes
    /// [`super::OLD_WRITE`].
    pub const fn normalize_word(w: u64) -> u64 {
        let to_live_in = eq_mask(w, LIVE_IN) | eq_mask(w, READ_LIVE_IN);
        !expand(to_live_in) & splat(super::OLD_WRITE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const B: u8 = TS_BASE + 10; // current-iteration timestamp in tests

    fn read(before: u8) -> Result<u8, Trap> {
        transition(Access::Read, before, B)
    }

    fn write(before: u8) -> Result<u8, Trap> {
        transition(Access::Write, before, B)
    }

    /// The exact content of Table 2.
    #[test]
    fn table2_reads() {
        assert_eq!(read(LIVE_IN).unwrap(), READ_LIVE_IN); // read a live-in value
        assert!(read(OLD_WRITE).is_err()); // loop-carried flow dependence
        assert_eq!(read(READ_LIVE_IN).unwrap(), READ_LIVE_IN); // read live-in again
        assert!(read(TS_BASE + 3).is_err()); // 2 < a < B: loop-carried flow
        assert_eq!(read(B).unwrap(), B); // intra-iteration (private) flow
    }

    #[test]
    fn table2_writes() {
        assert_eq!(write(LIVE_IN).unwrap(), B); // overwrite a live-in value
        assert_eq!(write(OLD_WRITE).unwrap(), B); // overwrite an old write
        assert!(write(READ_LIVE_IN).is_err()); // conservative false positive
        assert_eq!(write(TS_BASE + 2).unwrap(), B); // overwrite a recent write
        assert_eq!(write(B).unwrap(), B); // overwrite own write
    }

    #[test]
    fn errors_are_privacy_misspecs() {
        let e = read(OLD_WRITE).unwrap_err();
        assert!(matches!(
            e,
            Trap::Misspec(privateer_vm::Misspec {
                kind: MisspecKind::Privacy,
                ..
            })
        ));
    }

    #[test]
    fn normalize_rules() {
        assert_eq!(normalize(LIVE_IN), LIVE_IN);
        assert_eq!(normalize(OLD_WRITE), OLD_WRITE);
        assert_eq!(normalize(READ_LIVE_IN), LIVE_IN);
        for ts in TS_BASE..=255 {
            assert_eq!(normalize(ts), OLD_WRITE);
        }
    }

    #[test]
    fn ts_code_range() {
        assert_eq!(ts_code(0), 3);
        assert_eq!(ts_code(252), 255);
    }

    #[test]
    #[should_panic(expected = "checkpoint period overflow")]
    fn ts_code_overflow_panics() {
        let _ = ts_code(MAX_PERIOD);
    }

    /// Soundness sketch: any read of a byte written in a *different,
    /// earlier* iteration (since the last checkpoint) must trap.
    #[test]
    fn cross_iteration_flow_always_caught() {
        for w in 0..50u64 {
            for r in (w + 1)..50u64 {
                let meta = transition(Access::Write, LIVE_IN, ts_code(w)).unwrap();
                let res = transition(Access::Read, meta, ts_code(r));
                assert!(res.is_err(), "write@{w} read@{r} escaped");
            }
        }
    }

    /// Intra-iteration flow and write-first patterns never trap.
    #[test]
    fn private_patterns_pass() {
        for i in 0..50u64 {
            let ts = ts_code(i);
            // write then read, same iteration
            let m =
                transition(Access::Write, if i == 0 { LIVE_IN } else { OLD_WRITE }, ts).unwrap();
            let m = transition(Access::Read, m, ts).unwrap();
            assert_eq!(m, ts);
        }
    }

    /// Tiny deterministic generator for mixed-lane word tests (xorshift64*).
    fn rng_words(seed: u64, n: usize) -> Vec<u64> {
        let mut s = seed | 1;
        (0..n)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                s.wrapping_mul(0x2545_f491_4f6c_dd1d)
            })
            .collect()
    }

    #[test]
    fn eq_mask_is_exact_per_lane() {
        // Includes the adjacent-lane case (0x00 next to 0x01) where the
        // classic borrow-propagating formula reports a false positive.
        let w = u64::from_le_bytes([0x00, 0x01, 0x02, 0x80, 0xFF, 0x01, 0x00, 0x7F]);
        assert_eq!(word::eq_mask(w, 0x00), 0x0080_0000_0000_0080);
        assert_eq!(word::eq_mask(w, 0x01), 0x0000_8000_0000_8000);
        assert_eq!(word::eq_mask(w, 0xFF), 0x0000_0080_0000_0000);
        for &w in &rng_words(7, 200) {
            for b in [0u8, 1, 2, B, 0x80, 0xFF] {
                let expected =
                    u64::from_le_bytes(w.to_le_bytes().map(|x| if x == b { 0x80 } else { 0 }));
                assert_eq!(word::eq_mask(w, b), expected, "w={w:#018x} b={b}");
            }
        }
    }

    /// `transition_word` agrees with the per-byte `transition` on every
    /// uniform word, for both access kinds.
    #[test]
    fn transition_word_matches_bytewise_uniform() {
        for byte in 0..=255u8 {
            let w = word::splat(byte);
            for access in [Access::Read, Access::Write] {
                let per_byte: Result<u8, _> = transition(access, byte, B);
                match (word::transition_word(access, w, B), per_byte) {
                    (word::Outcome::Pass(new), Ok(b)) => {
                        assert_eq!(new, word::splat(b), "byte={byte} {access:?}");
                    }
                    (word::Outcome::Fallback, Err(_)) => {}
                    (got, want) => panic!("byte={byte} {access:?}: {got:?} vs {want:?}"),
                }
            }
        }
    }

    /// `transition_word` agrees with the per-byte `transition` lane-by-lane
    /// on random mixed words: Pass iff every lane passes, with identical
    /// resulting metadata.
    #[test]
    fn transition_word_matches_bytewise_mixed() {
        for &w in &rng_words(42, 4000) {
            for access in [Access::Read, Access::Write] {
                let lanes = w.to_le_bytes();
                let per_lane: Vec<Result<u8, Trap>> =
                    lanes.iter().map(|&b| transition(access, b, B)).collect();
                let all_ok = per_lane.iter().all(Result::is_ok);
                match word::transition_word(access, w, B) {
                    word::Outcome::Pass(new) => {
                        assert!(all_ok, "w={w:#018x} {access:?} passed but a lane traps");
                        let mut expect = [0u8; 8];
                        for (e, r) in expect.iter_mut().zip(&per_lane) {
                            *e = *r.as_ref().unwrap();
                        }
                        assert_eq!(new.to_le_bytes(), expect, "w={w:#018x} {access:?}");
                    }
                    word::Outcome::Fallback => {
                        assert!(
                            !all_ok,
                            "w={w:#018x} {access:?} fell back but all lanes pass"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn normalize_word_matches_bytewise() {
        for &w in &rng_words(99, 2000) {
            let expect = w.to_le_bytes().map(normalize);
            assert_eq!(word::normalize_word(w).to_le_bytes(), expect, "w={w:#018x}");
        }
        // All 256 uniform words too.
        for byte in 0..=255u8 {
            assert_eq!(
                word::normalize_word(word::splat(byte)),
                word::splat(normalize(byte))
            );
        }
    }

    #[test]
    fn all_le_old_write_matches_bytewise() {
        for &w in &rng_words(3, 2000) {
            let expect = w.to_le_bytes().iter().all(|&b| b <= OLD_WRITE);
            assert_eq!(word::all_le_old_write(w), expect, "w={w:#018x}");
        }
        assert!(word::all_le_old_write(0));
        assert!(word::all_le_old_write(word::splat(OLD_WRITE)));
        assert!(!word::all_le_old_write(word::splat(READ_LIVE_IN)));
    }
}
