//! The non-speculative "DOALL-only" execution engine (the paper's
//! Figure 7 baseline).
//!
//! Loops proven independent by *static analysis alone* run here: no
//! shadow metadata, no privacy checks, no checkpoints — workers execute
//! their cyclic share on copy-on-write forks and the engine installs the
//! result with a three-way page merge (legal because static analysis
//! proved writes disjoint across iterations).

use crate::model::{self, SimCost};
use privateer_ir::{FuncId, Heap, InstId, Module, PlanEntry, ReduxOp};
use privateer_vm::interp::{Interp, ProgramImage};
use privateer_vm::mem::{GLOBAL_BASE, MALLOC_BASE, PAGE_SIZE, STACK_BASE};
use privateer_vm::{AddressSpace, NopHooks, RuntimeIface, Trap, Val};
use std::sync::Arc;
use std::time::Instant;

/// Statistics of the unchecked engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimpleStats {
    /// Parallel invocations.
    pub invocations: u64,
    /// Iterations executed.
    pub iters: u64,
    /// Wall time in invocations (ns).
    pub wall_ns: u64,
    /// Simulated-cycle accounting (see [`crate::model`]).
    pub sim: SimCost,
}

/// Per-worker runtime: direct output buffering, no speculation support.
#[derive(Debug, Default)]
struct PlainWorkerRt {
    io: Vec<(i64, Vec<u8>)>,
    cur_iter: i64,
}

impl RuntimeIface for PlainWorkerRt {
    fn h_alloc(
        &mut self,
        heap: Heap,
        _size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        Err(Trap::Internal(format!(
            "heap `{heap}` allocation in an unchecked DOALL region"
        )))
    }

    fn h_free(&mut self, heap: Heap, _addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        Err(Trap::Internal(format!(
            "heap `{heap}` free in an unchecked DOALL region"
        )))
    }

    fn check_heap(&mut self, _heap: Heap, _addr: u64) -> Result<(), Trap> {
        Ok(())
    }

    fn private_read(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn private_write(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn predict(&mut self, _ok: bool) -> Result<(), Trap> {
        Ok(())
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        Ok(())
    }

    fn output(&mut self, bytes: &[u8]) {
        match self.io.last_mut() {
            Some((i, buf)) if *i == self.cur_iter => buf.extend_from_slice(bytes),
            _ => self.io.push((self.cur_iter, bytes.to_vec())),
        }
    }
}

/// The main runtime for DOALL-only execution: `parallel_invoke` runs the
/// plan's body unchecked across workers.
#[derive(Debug)]
pub struct UncheckedDoallRuntime {
    /// Worker count.
    pub workers: usize,
    /// Statistics.
    pub stats: SimpleStats,
    out: Vec<u8>,
}

impl UncheckedDoallRuntime {
    /// Build for `workers` workers.
    pub fn new(_image: &ProgramImage, workers: usize) -> UncheckedDoallRuntime {
        UncheckedDoallRuntime {
            workers: workers.max(1),
            stats: SimpleStats::default(),
            out: Vec::new(),
        }
    }

    /// Take the output bytes.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }
}

/// The address ranges the merge considers (globals and the general
/// `malloc` region — unchecked DOALL loops may not allocate, so nothing
/// else can change).
fn merge_ranges() -> [(u64, u64); 2] {
    [
        (GLOBAL_BASE, STACK_BASE),
        (MALLOC_BASE, MALLOC_BASE + (1 << 40)),
    ]
}

impl RuntimeIface for UncheckedDoallRuntime {
    fn h_alloc(
        &mut self,
        heap: Heap,
        _size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        Err(Trap::Internal(format!(
            "logical heap `{heap}` unused by the DOALL-only baseline"
        )))
    }

    fn h_free(&mut self, heap: Heap, _addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        Err(Trap::Internal(format!(
            "logical heap `{heap}` unused by the DOALL-only baseline"
        )))
    }

    fn check_heap(&mut self, _heap: Heap, _addr: u64) -> Result<(), Trap> {
        Ok(())
    }

    fn private_read(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn private_write(&mut self, _a: u64, _s: u64, _m: &mut AddressSpace) -> Result<(), Trap> {
        Ok(())
    }

    fn predict(&mut self, _ok: bool) -> Result<(), Trap> {
        Ok(())
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        Ok(())
    }

    fn output(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn redux_register(
        &mut self,
        _op: ReduxOp,
        _addr: u64,
        _size: u64,
        _mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        Ok(())
    }

    fn parallel_invoke(
        &mut self,
        module: &Module,
        global_addrs: &[u64],
        plan: PlanEntry,
        lo: i64,
        hi: i64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        if hi <= lo {
            return Ok(());
        }
        let t0 = Instant::now();
        self.stats.invocations += 1;
        self.stats.iters += (hi - lo) as u64;
        let w_count = self.workers;
        let base = mem.fork();

        type WorkerResult = Result<(AddressSpace, Vec<(i64, Vec<u8>)>, u64), Trap>;
        let results: Vec<WorkerResult> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..w_count)
                .map(|w| {
                    let worker_mem = base.fork();
                    scope.spawn(move || {
                        let rt = PlainWorkerRt::default();
                        let mut interp = Interp::with_mem(
                            module,
                            worker_mem,
                            global_addrs.to_vec(),
                            NopHooks,
                            rt,
                        );
                        let mut iter = lo + w as i64;
                        while iter < hi {
                            interp.rt.cur_iter = iter;
                            interp.call_function(plan.body, &[Val::Int(iter)])?;
                            iter += w_count as i64;
                        }
                        let io = std::mem::take(&mut interp.rt.io);
                        Ok((interp.mem, io, interp.stats.insts))
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .collect()
        });

        let mut worker_mems = Vec::with_capacity(w_count);
        let mut io: Vec<(i64, Vec<u8>)> = Vec::new();
        let mut max_busy = 0u64;
        for r in results {
            let (wmem, wio, insts) = r?;
            self.stats.sim.useful += insts;
            max_busy = max_busy.max(insts);
            worker_mems.push(wmem);
            io.extend(wio);
        }
        io.sort_by_key(|&(i, _)| i);
        for (_, bytes) in io {
            self.out.extend(bytes);
        }

        // Three-way page merge: a byte changed by some worker wins; static
        // legality guarantees at most one worker changed it.
        let mut merged_pages = 0u64;
        for (lo_a, hi_a) in merge_ranges() {
            let base_pages: std::collections::HashMap<u64, Arc<privateer_vm::Page>> =
                base.pages_in_range(lo_a, hi_a).into_iter().collect();
            let zero = [0u8; PAGE_SIZE as usize];
            // Collect dirty page addresses across workers.
            let mut dirty: std::collections::BTreeMap<u64, Vec<&Arc<privateer_vm::Page>>> =
                std::collections::BTreeMap::new();
            let worker_pages: Vec<Vec<(u64, Arc<privateer_vm::Page>)>> = worker_mems
                .iter()
                .map(|m| m.pages_in_range(lo_a, hi_a))
                .collect();
            for pages in &worker_pages {
                for (addr, page) in pages {
                    let unchanged = base_pages.get(addr).is_some_and(|bp| Arc::ptr_eq(bp, page));
                    if !unchanged {
                        dirty.entry(*addr).or_default().push(page);
                    }
                }
            }
            for (addr, versions) in dirty {
                merged_pages += versions.len() as u64;
                let base_bytes: &privateer_vm::Page =
                    base_pages.get(&addr).map(|p| &**p).unwrap_or(&zero);
                let mut merged = *base_bytes;
                for v in versions {
                    for (i, (&b, &w)) in base_bytes.iter().zip(v.iter()).enumerate() {
                        if w != b {
                            merged[i] = w;
                        }
                    }
                }
                mem.install_page(addr, Arc::new(merged));
            }
        }
        self.stats.wall_ns += t0.elapsed().as_nanos() as u64;
        let span_sim = model::SPAWN_BASE
            + model::SPAWN_PER_WORKER * w_count as u64
            + max_busy
            + merged_pages * model::MERGE_PAGE;
        self.stats.sim.total += span_sim;
        self.stats.sim.capacity += span_sim * w_count as u64;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::{Intrinsic, Type, Value};
    use privateer_vm::load_module;

    /// body(i): table[i] = i*i  — provably disjoint writes.
    fn build() -> Module {
        let mut m = Module::new("doall");
        let table = m.add_global("table", 8 * 64);
        let mut b = FunctionBuilder::new("body", vec![Type::I64], None);
        let i = b.param(0);
        let sq = b.mul(Type::I64, i, i);
        let slot = b.gep(Value::Global(table), i, 8, 0);
        b.store(Type::I64, sq, slot);
        b.ret(None);
        let body = m.add_function(b.finish());
        m.plans.push(PlanEntry {
            body,
            recovery: body,
        });
        let mut b = FunctionBuilder::new("main", vec![], None);
        b.intrinsic(
            Intrinsic::ParallelInvoke(0),
            vec![Value::const_i64(0), Value::const_i64(64)],
        );
        let s = b.gep(Value::Global(table), Value::const_i64(63), 8, 0);
        let v = b.load(Type::I64, s);
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        m
    }

    #[test]
    fn disjoint_writes_merge_correctly() {
        let m = build();
        let image = load_module(&m);
        for workers in [1, 2, 5] {
            let mut interp = Interp::new(
                &m,
                &image,
                NopHooks,
                UncheckedDoallRuntime::new(&image, workers),
            );
            interp.run_main().unwrap();
            assert_eq!(interp.rt.take_output(), b"3969\n", "workers = {workers}");
            // Spot-check the whole table.
            let table = image.global_addrs[0];
            for i in 0..64u64 {
                assert_eq!(interp.mem.read_i64(table + i * 8), (i * i) as i64);
            }
        }
    }

    #[test]
    fn deferred_output_in_iteration_order() {
        let mut m = Module::new("io");
        let mut b = FunctionBuilder::new("body", vec![Type::I64], None);
        let i = b.param(0);
        b.print_i64(i);
        b.ret(None);
        let body = m.add_function(b.finish());
        m.plans.push(PlanEntry {
            body,
            recovery: body,
        });
        let mut b = FunctionBuilder::new("main", vec![], None);
        b.intrinsic(
            Intrinsic::ParallelInvoke(0),
            vec![Value::const_i64(0), Value::const_i64(10)],
        );
        b.ret(None);
        m.add_function(b.finish());
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, UncheckedDoallRuntime::new(&image, 3));
        interp.run_main().unwrap();
        let expect: Vec<u8> = (0..10)
            .flat_map(|i| format!("{i}\n").into_bytes())
            .collect();
        assert_eq!(interp.rt.take_output(), expect);
    }
}
