//! The per-worker speculative runtime: fast-phase validation (§5.1).

use crate::heaps::worker_shortlived_arena;
use crate::shadow::{self, Access};
use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::{FuncId, Heap, InstId, Module, PlanEntry, ReduxOp};
use privateer_telemetry::{Phase, WorkerTelemetry};
use privateer_vm::{AddressSpace, MisspecKind, RegionAllocator, RuntimeIface, Trap, PAGE_SIZE};
use std::time::Instant;

/// Deterministic per-iteration hash for misspeculation injection (§6.3).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Whether the Figure 9 experiment injects a misspeculation at `iter`.
pub fn injected_at(rate: f64, seed: u64, iter: i64) -> bool {
    if rate <= 0.0 {
        return false;
    }
    let h = splitmix64(seed ^ (iter as u64).wrapping_mul(0x2545_f491_4f6c_dd1d));
    (h as f64 / u64::MAX as f64) < rate
}

/// Time and volume counters for one worker (feeds Figure 8 / Table 3).
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerStats {
    /// Wall time spent executing loop-body instructions (including checks).
    pub body_ns: u64,
    /// Wall time inside `private_read` validation.
    pub priv_read_ns: u64,
    /// Wall time inside `private_write` validation.
    pub priv_write_ns: u64,
    /// Bytes validated by `private_read`.
    pub priv_read_bytes: u64,
    /// Bytes validated by `private_write`.
    pub priv_write_bytes: u64,
    /// Wall time assembling checkpoint contributions.
    pub checkpoint_ns: u64,
    /// Iterations executed (including any that misspeculated).
    pub iters: u64,
    /// Interpreter instructions executed (simulated-time model).
    pub insts: u64,
    /// `private_read` check executions.
    pub priv_read_calls: u64,
    /// `private_write` check executions.
    pub priv_write_calls: u64,
    /// `check_heap` executions.
    pub check_calls: u64,
    /// Pages assembled into checkpoint contributions.
    pub contrib_pages: u64,
    /// 8-byte shadow words handled by the word-granular (SWAR) fast path.
    pub priv_fast_words: u64,
    /// Shadow bytes that took the per-byte `shadow::transition` slow path
    /// (sub-word tails and trap-candidate words).
    pub priv_slow_bytes: u64,
}

/// The [`RuntimeIface`] implementation workers run under: Table 2 privacy
/// metadata in the worker's own shadow pages, separation checks, per-worker
/// short-lived arena with lifetime validation, deferred output, value
/// prediction, and injected misspeculation.
#[derive(Debug)]
pub struct WorkerRuntime {
    /// Worker index.
    pub worker: usize,
    /// Current global iteration.
    pub cur_iter: i64,
    cur_ts: u8,
    shortlived: RegionAllocator,
    sl_live: i64,
    io: Vec<(i64, Vec<u8>)>,
    cur_io: Vec<u8>,
    inject_rate: f64,
    inject_seed: u64,
    /// Accumulated statistics.
    pub stats: WorkerStats,
    /// Per-worker trace recording handle (disabled by default; the engine
    /// installs a live one when tracing). Recording is lock-free — the
    /// handle owns its ring.
    pub tel: WorkerTelemetry,
}

impl WorkerRuntime {
    /// A runtime for worker `w` (telemetry disabled).
    pub fn new(w: usize, inject_rate: f64, inject_seed: u64) -> WorkerRuntime {
        WorkerRuntime {
            worker: w,
            cur_iter: 0,
            cur_ts: shadow::TS_BASE,
            shortlived: worker_shortlived_arena(w),
            sl_live: 0,
            io: Vec::new(),
            cur_io: Vec::new(),
            inject_rate,
            inject_seed,
            stats: WorkerStats::default(),
            tel: WorkerTelemetry::disabled(),
        }
    }

    /// Begin global iteration `iter`, whose position within the current
    /// checkpoint period is `n` (so its timestamp is `3 + n`).
    ///
    /// # Errors
    ///
    /// Traps immediately when the injection experiment selects this
    /// iteration.
    pub fn begin_iteration(&mut self, iter: i64, n_in_period: u64) -> Result<(), Trap> {
        self.cur_iter = iter;
        self.cur_ts = shadow::ts_code(n_in_period);
        self.cur_io.clear();
        self.stats.iters += 1;
        if injected_at(self.inject_rate, self.inject_seed, iter) {
            return Err(Trap::misspec(
                MisspecKind::Injected,
                format!("injected at iteration {iter}"),
            ));
        }
        Ok(())
    }

    /// Finish the current iteration: validate short-lived lifetimes and
    /// bank deferred output.
    ///
    /// # Errors
    ///
    /// Traps with a lifetime misspeculation if short-lived objects survive
    /// the iteration (§5.1, "Validating Short-Lived Objects").
    pub fn end_iteration(&mut self) -> Result<(), Trap> {
        if self.sl_live != 0 {
            return Err(Trap::misspec(
                MisspecKind::Lifetime,
                format!(
                    "{} short-lived object(s) outlived iteration {}",
                    self.sl_live, self.cur_iter
                ),
            ));
        }
        self.shortlived.reset();
        if !self.cur_io.is_empty() {
            self.io
                .push((self.cur_iter, std::mem::take(&mut self.cur_io)));
        }
        Ok(())
    }

    /// Take the deferred output accumulated since the last call.
    pub fn take_io(&mut self) -> Vec<(i64, Vec<u8>)> {
        std::mem::take(&mut self.io)
    }

    /// Normalize this worker's shadow metadata after contributing to a
    /// checkpoint: timestamps → old-write, read-live-in → live-in.
    ///
    /// Scans word-at-a-time: words already all live-in/old-write (the
    /// common steady state) are skipped with a single compare, and only
    /// pages where some word actually changes are copied and reinstalled.
    pub fn normalize_shadow(mem: &mut AddressSpace) {
        let lo = Heap::Private.base() | SHADOW_BIT;
        let hi = lo + crate::heaps::HEAP_SPAN;
        let pages = mem.pages_in_range(lo, hi);
        for (base, page) in pages {
            let mut fresh: Option<privateer_vm::Page> = None;
            for i in (0..PAGE_SIZE as usize).step_by(8) {
                let w = u64::from_le_bytes(page[i..i + 8].try_into().unwrap());
                if shadow::word::all_le_old_write(w) {
                    continue;
                }
                let new = shadow::word::normalize_word(w);
                if new != w {
                    let f = fresh.get_or_insert_with(|| *page);
                    f[i..i + 8].copy_from_slice(&new.to_le_bytes());
                }
            }
            if let Some(f) = fresh {
                mem.install_page(base, std::sync::Arc::new(f));
            }
        }
    }
}

impl RuntimeIface for WorkerRuntime {
    fn h_alloc(
        &mut self,
        heap: Heap,
        size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        match heap {
            Heap::ShortLived => {
                self.sl_live += 1;
                self.shortlived
                    .alloc(size)
                    .map_err(|_| Trap::OutOfMemory(heap))
            }
            other => Err(Trap::Internal(format!(
                "worker allocation from heap `{other}` inside a parallel region"
            ))),
        }
    }

    fn h_free(&mut self, heap: Heap, addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        match heap {
            Heap::ShortLived => {
                // Validate the free before touching the lifetime counter:
                // a bad free must not corrupt `sl_live`, or it could mask
                // (or fake) a genuine §5.1 lifetime misspeculation in the
                // same iteration.
                self.shortlived
                    .free(addr)
                    .map_err(|e| Trap::AllocError(e.to_string()))?;
                self.sl_live -= 1;
                Ok(())
            }
            other => Err(Trap::Internal(format!(
                "worker free into heap `{other}` inside a parallel region"
            ))),
        }
    }

    fn check_heap(&mut self, heap: Heap, addr: u64) -> Result<(), Trap> {
        self.stats.check_calls += 1;
        if addr == 0 || heap.contains(addr) {
            Ok(())
        } else {
            Err(Trap::misspec(
                MisspecKind::Separation,
                format!(
                    "pointer {addr:#x} is not in heap `{heap}` (iteration {})",
                    self.cur_iter
                ),
            ))
        }
    }

    #[inline]
    fn private_read(&mut self, addr: u64, size: u64, mem: &mut AddressSpace) -> Result<(), Trap> {
        let t0 = Instant::now();
        let r = self.private_access(Access::Read, addr, size, mem);
        self.stats.priv_read_ns += t0.elapsed().as_nanos() as u64;
        self.stats.priv_read_bytes += size;
        self.stats.priv_read_calls += 1;
        self.tel
            .span_since(Phase::PrivRead, t0, addr as i64, size as i64);
        r
    }

    #[inline]
    fn private_write(&mut self, addr: u64, size: u64, mem: &mut AddressSpace) -> Result<(), Trap> {
        let t0 = Instant::now();
        let r = self.private_access(Access::Write, addr, size, mem);
        self.stats.priv_write_ns += t0.elapsed().as_nanos() as u64;
        self.stats.priv_write_bytes += size;
        self.stats.priv_write_calls += 1;
        self.tel
            .span_since(Phase::PrivWrite, t0, addr as i64, size as i64);
        r
    }

    fn predict(&mut self, ok: bool) -> Result<(), Trap> {
        if ok {
            Ok(())
        } else {
            Err(Trap::misspec(
                MisspecKind::Prediction,
                format!("prediction failed at iteration {}", self.cur_iter),
            ))
        }
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        Err(Trap::misspec(
            MisspecKind::Explicit,
            format!("misspec() at iteration {}", self.cur_iter),
        ))
    }

    fn output(&mut self, bytes: &[u8]) {
        self.cur_io.extend_from_slice(bytes);
    }

    fn redux_register(
        &mut self,
        _op: ReduxOp,
        _addr: u64,
        _size: u64,
        _mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        // Registration happens before the invocation, in the main process;
        // a registration inside the loop is a transformation bug.
        Err(Trap::Internal(
            "redux_register inside a parallel region".into(),
        ))
    }

    fn parallel_invoke(
        &mut self,
        _module: &Module,
        _global_addrs: &[u64],
        _plan: PlanEntry,
        _lo: i64,
        _hi: i64,
        _mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        // Nested parallelism is excluded by loop selection (§4.3).
        Err(Trap::Internal("nested parallel invocation".into()))
    }
}

impl WorkerRuntime {
    /// The reference per-byte privacy check (the pre-SWAR hot loop).
    ///
    /// Kept public so the proptest equivalence suite and the
    /// `privateer-bench` baseline can compare the word-granular
    /// [`private_read`](RuntimeIface::private_read)/
    /// [`private_write`](RuntimeIface::private_write) path against it;
    /// both must produce byte-identical shadow state and identical traps.
    ///
    /// # Errors
    ///
    /// Traps exactly per Table 2 ([`shadow::transition`]), plus a
    /// separation misspeculation for non-private addresses.
    pub fn private_access_bytewise(
        &mut self,
        access: Access,
        addr: u64,
        size: u64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        if !Heap::Private.contains(addr) {
            return Err(Trap::misspec(
                MisspecKind::Separation,
                format!("private access to non-private address {addr:#x}"),
            ));
        }
        for b in addr..addr + size {
            let sh = b | SHADOW_BIT;
            let before = mem.read_u8(sh);
            let after = shadow::transition(access, before, self.cur_ts)?;
            if after != before {
                mem.write_u8(sh, after);
            }
        }
        Ok(())
    }

    /// Word-granular privacy check: equivalent to
    /// [`Self::private_access_bytewise`] but processes eight shadow bytes
    /// per step on the no-trap path (see [`shadow::word`]).
    ///
    /// Public so the `privateer-bench` overhead suite can measure the raw
    /// check with the [`RuntimeIface`] wrapper (timing, counters,
    /// telemetry) compiled out of the loop entirely.
    pub fn private_access(
        &mut self,
        access: Access,
        addr: u64,
        size: u64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        if !Heap::Private.contains(addr) {
            return Err(Trap::misspec(
                MisspecKind::Separation,
                format!("private access to non-private address {addr:#x}"),
            ));
        }
        let mut b = addr;
        let end = addr + size;
        while b < end {
            let sh = b | SHADOW_BIT;
            let room = PAGE_SIZE - (sh & (PAGE_SIZE - 1));
            let chunk = room.min(end - b);
            self.chunk_access(access, sh, chunk, mem)?;
            b += chunk;
        }
        Ok(())
    }

    /// One within-page chunk (`len <= PAGE_SIZE`) of the word-granular
    /// privacy check, starting at shadow address `sh`.
    fn chunk_access(
        &mut self,
        access: Access,
        sh: u64,
        len: u64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        let cur = self.cur_ts;
        let n = len as usize;
        let off = (sh & (PAGE_SIZE - 1)) as usize;

        let Some(page) = mem.page(sh) else {
            // Unmapped shadow page: every byte is LIVE_IN, so no byte can
            // trap — reads mark the span read-live-in, writes broadcast
            // the current timestamp.
            let fill = match access {
                Access::Read => shadow::READ_LIVE_IN,
                Access::Write => cur,
            };
            mem.fill(sh, len, fill);
            self.stats.priv_fast_words += len.div_ceil(shadow::word::BYTES);
            return Ok(());
        };

        // Phase 1 (read-only): word-scan for the first trap candidate and
        // whether any metadata changes at all. A pure pass (intra-iteration
        // reuse, where the span is already uniformly `cur`) therefore never
        // copies or materializes a page.
        let bytes = &page[off..off + n];
        let mut i = 0usize;
        let mut any_change = false;
        let mut fallback_at: Option<usize> = None;
        while i + 8 <= n {
            let w = u64::from_le_bytes(bytes[i..i + 8].try_into().unwrap());
            match shadow::word::transition_word(access, w, cur) {
                shadow::word::Outcome::Pass(new) => {
                    any_change |= new != w;
                    self.stats.priv_fast_words += 1;
                    i += 8;
                }
                shadow::word::Outcome::Fallback => {
                    fallback_at = Some(i);
                    break;
                }
            }
        }
        if fallback_at.is_none() {
            // Sub-word tail: per-byte scan, still read-only. A trapping
            // tail byte joins the fallback path below so the bytes before
            // it still mutate, exactly as in the bytewise reference.
            while i < n {
                match shadow::transition(access, bytes[i], cur) {
                    Ok(after) => {
                        any_change |= after != bytes[i];
                        self.stats.priv_slow_bytes += 1;
                        i += 1;
                    }
                    Err(_) => {
                        fallback_at = Some(i);
                        break;
                    }
                }
            }
        }

        if !any_change && fallback_at.is_none() {
            return Ok(());
        }

        // Phase 2 (mutating): apply the all-pass prefix in bulk, then let
        // the per-byte reference transition walk the remainder so the
        // trapping byte, its trap message, and the partial-mutation order
        // are identical to `private_access_bytewise`.
        let pass_len = fallback_at.unwrap_or(n);
        let slice = &mut mem.page_make_mut(sh)[off..off + n];
        match access {
            // Every passing write lane becomes the current timestamp.
            Access::Write => slice[..pass_len].fill(cur),
            // Passing read lanes keep `cur`; live-in and read-live-in
            // become read-live-in.
            Access::Read => {
                for m in &mut slice[..pass_len] {
                    if *m != cur {
                        *m = shadow::READ_LIVE_IN;
                    }
                }
            }
        }
        for m in &mut slice[pass_len..] {
            self.stats.priv_slow_bytes += 1;
            let after = shadow::transition(access, *m, cur)?;
            if after != *m {
                *m = after;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (WorkerRuntime, AddressSpace, u64) {
        let rt = WorkerRuntime::new(0, 0.0, 0);
        let mem = AddressSpace::new();
        let addr = Heap::Private.base() + 0x2000;
        (rt, mem, addr)
    }

    #[test]
    fn write_then_read_same_iteration_ok() {
        let (mut rt, mut mem, a) = setup();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(a, 8, &mut mem).unwrap();
        rt.private_read(a, 8, &mut mem).unwrap();
        rt.end_iteration().unwrap();
    }

    #[test]
    fn cross_iteration_flow_misspeculates() {
        let (mut rt, mut mem, a) = setup();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(a, 8, &mut mem).unwrap();
        rt.end_iteration().unwrap();
        rt.begin_iteration(1, 1).unwrap();
        let e = rt.private_read(a, 8, &mut mem).unwrap_err();
        assert!(matches!(e, Trap::Misspec(m) if m.kind == MisspecKind::Privacy));
    }

    #[test]
    fn live_in_read_then_overwrite_conservative() {
        let (mut rt, mut mem, a) = setup();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_read(a, 4, &mut mem).unwrap(); // live-in read, fine
        let e = rt.private_write(a, 4, &mut mem).unwrap_err();
        assert!(matches!(e, Trap::Misspec(m) if m.kind == MisspecKind::Privacy));
    }

    #[test]
    fn kill_then_use_across_iterations_ok() {
        // The privatization pattern: every iteration writes before reading.
        let (mut rt, mut mem, a) = setup();
        for i in 0..5 {
            rt.begin_iteration(i, i as u64).unwrap();
            rt.private_write(a, 8, &mut mem).unwrap();
            rt.private_read(a, 8, &mut mem).unwrap();
            rt.end_iteration().unwrap();
        }
    }

    #[test]
    fn shortlived_lifetime_validated() {
        let (mut rt, mut mem, _) = setup();
        let site = (FuncId::new(0), InstId::new(0));
        rt.begin_iteration(0, 0).unwrap();
        let p = rt.h_alloc(Heap::ShortLived, 32, &mut mem, site).unwrap();
        rt.h_free(Heap::ShortLived, p, &mut mem).unwrap();
        rt.end_iteration().unwrap();

        rt.begin_iteration(1, 1).unwrap();
        let _leak = rt.h_alloc(Heap::ShortLived, 32, &mut mem, site).unwrap();
        let e = rt.end_iteration().unwrap_err();
        assert!(matches!(e, Trap::Misspec(m) if m.kind == MisspecKind::Lifetime));
    }

    #[test]
    fn double_free_does_not_corrupt_lifetime_counter() {
        let (mut rt, mut mem, _) = setup();
        let site = (FuncId::new(0), InstId::new(0));
        rt.begin_iteration(0, 0).unwrap();
        let p = rt.h_alloc(Heap::ShortLived, 32, &mut mem, site).unwrap();
        rt.h_free(Heap::ShortLived, p, &mut mem).unwrap();
        // The second free is invalid and must fail *without* decrementing
        // the live counter below zero.
        assert!(matches!(
            rt.h_free(Heap::ShortLived, p, &mut mem),
            Err(Trap::AllocError(_))
        ));
        // Allocations and successful frees balance, so the iteration ends
        // cleanly; with the old decrement-first bug `sl_live` was -1 here
        // and this tripped a bogus lifetime misspeculation.
        rt.end_iteration().unwrap();
    }

    #[test]
    fn worker_private_alloc_rejected() {
        let (mut rt, mut mem, _) = setup();
        let site = (FuncId::new(0), InstId::new(0));
        assert!(rt.h_alloc(Heap::Private, 8, &mut mem, site).is_err());
    }

    #[test]
    fn io_is_deferred_and_tagged() {
        let (mut rt, mut mem, _) = setup();
        let _ = &mut mem;
        rt.begin_iteration(3, 0).unwrap();
        rt.output(b"x");
        rt.end_iteration().unwrap();
        rt.begin_iteration(7, 1).unwrap();
        rt.output(b"yz");
        rt.end_iteration().unwrap();
        let io = rt.take_io();
        assert_eq!(io, vec![(3, b"x".to_vec()), (7, b"yz".to_vec())]);
        assert!(rt.take_io().is_empty());
    }

    #[test]
    fn normalize_shadow_resets_codes() {
        let (mut rt, mut mem, a) = setup();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(a, 1, &mut mem).unwrap();
        rt.private_read(a + 1, 1, &mut mem).unwrap();
        WorkerRuntime::normalize_shadow(&mut mem);
        assert_eq!(mem.read_u8(a | SHADOW_BIT), shadow::OLD_WRITE);
        assert_eq!(mem.read_u8((a + 1) | SHADOW_BIT), shadow::LIVE_IN);
    }

    #[test]
    fn injection_is_deterministic() {
        let hits: Vec<i64> = (0..1000).filter(|&i| injected_at(0.01, 42, i)).collect();
        let hits2: Vec<i64> = (0..1000).filter(|&i| injected_at(0.01, 42, i)).collect();
        assert_eq!(hits, hits2);
        // Roughly 1% of 1000.
        assert!(!hits.is_empty() && hits.len() < 50, "{}", hits.len());
        assert!(!injected_at(0.0, 42, 1));
    }

    #[test]
    fn prediction_and_separation() {
        let (mut rt, _, _) = setup();
        assert!(rt.predict(true).is_ok());
        assert!(rt.predict(false).is_err());
        assert!(rt
            .check_heap(Heap::Private, Heap::Private.base() + 8)
            .is_ok());
        assert!(rt
            .check_heap(Heap::Private, Heap::ReadOnly.base() + 8)
            .is_err());
        assert!(rt.check_heap(Heap::Private, 0).is_ok());
    }
}
