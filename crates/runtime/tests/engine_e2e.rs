//! End-to-end tests of the speculative DOALL engine on hand-transformed
//! modules: privatization, reductions, deferred I/O, misspeculation
//! injection, genuine privacy violations, and the Figure 5 timeline.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, GlobalInit, Heap, Intrinsic, Module, PlanEntry, ReduxOp, Type, Value};
use privateer_runtime::{EngineConfig, EngineEvent, MainRuntime, SequentialPlanRuntime};
use privateer_telemetry::{assert_happens_before, assert_stamps_ordered};
use privateer_vm::{load_module, Interp, NopHooks, Trap};

const N: i64 = 100;

/// Build the canonical transformed program:
///
/// * `buf` — 80-byte private array, fully overwritten then read each
///   iteration (the privatization pattern);
/// * `acc` — an `i64` sum reduction with initial value 5;
/// * one line of deferred output per iteration.
///
/// `with_checks` controls whether the speculative body carries
/// `private_read`/`private_write` checks (the recovery body never does).
fn build_module(violating: bool) -> Module {
    let mut m = Module::new("e2e");
    let buf = m.add_global("buf", 80);
    m.global_mut(buf).heap = Some(Heap::Private);
    let acc = m.add_global_init("acc", 8, GlobalInit::I64s(vec![5]));
    m.global_mut(acc).heap = Some(Heap::Redux);

    // Two bodies: speculative (with checks) and recovery (without).
    for (name, checks) in [("body", true), ("recovery", false)] {
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let iter = b.param(0);

        if violating {
            // Read the live-in cell, then overwrite it: a genuine
            // cross-iteration flow (and the conservative
            // write-after-read-live-in case in phase 1).
            if checks {
                b.intrinsic(
                    Intrinsic::PrivateRead,
                    vec![Value::Global(buf), Value::const_i64(8)],
                );
            }
            let c = b.load(Type::I64, Value::Global(buf));
            let c1 = b.add(Type::I64, c, Value::const_i64(1));
            if checks {
                b.intrinsic(
                    Intrinsic::PrivateWrite,
                    vec![Value::Global(buf), Value::const_i64(8)],
                );
            }
            b.store(Type::I64, c1, Value::Global(buf));
        } else {
            // Kill-then-use: write all 10 slots, then read one back.
            let header = b.new_block();
            let bodyb = b.new_block();
            let after = b.new_block();
            b.br(header);
            b.switch_to(header);
            let (j, j_phi) = b.phi(Type::I64);
            b.add_phi_incoming(j_phi, b.entry_block(), Value::const_i64(0));
            let c = b.icmp(CmpOp::Lt, j, Value::const_i64(10));
            b.cond_br(c, bodyb, after);
            b.switch_to(bodyb);
            let slot = b.gep(Value::Global(buf), j, 8, 0);
            if checks {
                b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
            }
            let ten = b.mul(Type::I64, iter, Value::const_i64(10));
            let v = b.add(Type::I64, ten, j);
            b.store(Type::I64, v, slot);
            let j2 = b.add(Type::I64, j, Value::const_i64(1));
            b.add_phi_incoming(j_phi, bodyb, j2);
            b.br(header);
            b.switch_to(after);
            let idx = b.bin(
                privateer_ir::BinOp::SRem,
                Type::I64,
                iter,
                Value::const_i64(10),
            );
            let slot = b.gep(Value::Global(buf), idx, 8, 0);
            if checks {
                b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
            }
            let v = b.load(Type::I64, slot);
            b.print_i64(v);
        }

        // Reduction: acc += iter (plain accesses; the redux heap carries
        // them).
        let a = b.load(Type::I64, Value::Global(acc));
        let a2 = b.add(Type::I64, a, iter);
        b.store(Type::I64, a2, Value::Global(acc));
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });

    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ReduxRegister(ReduxOp::SumI64),
        vec![Value::Global(acc), Value::const_i64(8)],
    );
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    let a = b.load(Type::I64, Value::Global(acc));
    b.print_i64(a);
    let slot3 = b.gep(Value::Global(buf), Value::const_i64(3), 8, 0);
    let v = b.load(Type::I64, slot3);
    b.print_i64(v);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

fn run_sequential(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    interp.run_main().unwrap();
    interp.rt.take_output()
}

fn run_parallel(m: &Module, cfg: EngineConfig) -> (Result<(), Trap>, Vec<u8>, MainRuntime) {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, MainRuntime::new(&image, cfg));
    let r = interp.run_main();
    let out = interp.rt.take_output();
    let Interp { rt, .. } = interp;
    (r, out, rt)
}

fn cfg(workers: usize) -> EngineConfig {
    EngineConfig {
        workers,
        checkpoint_period: 16,
        inject_rate: 0.0,
        inject_seed: 7,
        ..EngineConfig::default()
    }
}

#[test]
fn parallel_output_matches_sequential() {
    let m = build_module(false);
    let seq = run_sequential(&m);
    assert!(
        seq.ends_with(b"4955\n993\n"),
        "sequential reference is sane"
    );
    for workers in [1, 2, 3, 4, 7] {
        let (r, out, rt) = run_parallel(&m, cfg(workers));
        r.unwrap();
        assert_eq!(
            out, seq,
            "output diverged at {workers} workers ({} misspecs)",
            rt.stats.misspecs
        );
        assert_eq!(rt.stats.misspecs, 0);
        assert_eq!(rt.stats.invocations, 1);
        assert!(rt.stats.checkpoints >= (N as u64) / 16);
        assert!(rt.stats.priv_write_bytes >= (N as u64) * 80);
    }
}

#[test]
fn injected_misspeculation_recovers_correctly() {
    let m = build_module(false);
    let seq = run_sequential(&m);
    for rate in [0.05, 0.2, 0.5] {
        let mut c = cfg(4);
        c.inject_rate = rate;
        let expected_hits = (0..N)
            .filter(|&i| privateer_runtime::worker::injected_at(rate, c.inject_seed, i))
            .count();
        let (r, out, rt) = run_parallel(&m, c);
        r.unwrap();
        assert_eq!(out, seq, "rate {rate} diverged");
        if expected_hits > 0 {
            assert!(rt.stats.misspecs > 0, "rate {rate} injected nothing");
            assert!(rt.stats.recovered_iters > 0);
        }
    }
}

#[test]
fn genuine_privacy_violation_detected_and_repaired() {
    let m = build_module(true);
    let seq = run_sequential(&m);
    // Sequential: buf[0] counts iterations; main prints acc = 5 + 4950 and
    // then buf[3], which the violating body never touches.
    assert!(
        seq.ends_with(b"4955\n0\n"),
        "{}",
        String::from_utf8_lossy(&seq)
    );
    let (r, out, rt) = run_parallel(&m, cfg(4));
    r.unwrap();
    assert_eq!(out, seq);
    // The dependence manifests constantly: speculation must have failed
    // and recovery must have done real work.
    assert!(rt.stats.misspecs > 0);
    assert!(rt.stats.recovered_iters > 0);
}

#[test]
fn figure5_timeline_on_injection() {
    let m = build_module(false);
    let mut c = cfg(3);
    c.inject_rate = 0.3; // dense enough that some iteration in 0..N hits
    let (r, _, rt) = run_parallel(&m, c);
    r.unwrap();
    let ev = &rt.events;
    // The log is stamped in emission order by the engine's telemetry
    // handle: sequence numbers strictly increase, timestamps never
    // regress.
    assert_stamps_ordered(ev);
    // The Figure 5 ordering properties, as happens-before assertions over
    // the stamped log (these used to be hand-rolled index arithmetic):
    assert_happens_before(
        ev,
        |e| matches!(e, EngineEvent::Invoke { lo: 0, hi: N }),
        |e| matches!(e, EngineEvent::InvokeDone),
        "invoke -> invoke-done",
    );
    assert_happens_before(
        ev,
        |e| matches!(e, EngineEvent::MisspecDetected { .. }),
        |e| matches!(e, EngineEvent::Recovery { .. }),
        "misspec detection -> recovery",
    );
    assert_happens_before(
        ev,
        |e| matches!(e, EngineEvent::Invoke { .. }),
        |e| matches!(e, EngineEvent::MisspecDetected { .. }),
        "invoke -> detection",
    );
    assert!(matches!(
        ev.last().map(|e| &e.event),
        Some(EngineEvent::InvokeDone)
    ));
    // Detection is emitted the moment the misspeculation is first
    // recorded — not when the workers finish draining — so commits of
    // *earlier* periods may still land between a detection and its
    // recovery, but nothing may commit at or past the detected iteration,
    // re-emission may only tighten the earliest-iteration bound, and every
    // detection is eventually covered by a recovery.
    let mut outstanding: Option<i64> = None;
    for e in ev {
        match e.event {
            EngineEvent::MisspecDetected { iter, .. } => {
                if let Some(prev) = outstanding {
                    assert!(
                        iter < prev,
                        "re-emitted detection {iter} does not tighten {prev}"
                    );
                }
                outstanding = Some(iter);
            }
            EngineEvent::Recovery { from, through } => {
                let iter = outstanding
                    .take()
                    .expect("recovery without a prior detection");
                assert!(from <= iter && iter <= through, "recovery misses {iter}");
            }
            EngineEvent::CheckpointCommitted { end, .. } => {
                if let Some(iter) = outstanding {
                    assert!(
                        end <= iter,
                        "period ending at {end} committed past detected {iter}"
                    );
                }
            }
            _ => {}
        }
    }
    assert!(outstanding.is_none(), "detection never recovered");
    // Committed checkpoints are in increasing period order.
    let periods: Vec<u64> = ev
        .iter()
        .filter_map(|e| match e.event {
            EngineEvent::CheckpointCommitted { period, .. } => Some(period),
            _ => None,
        })
        .collect();
    assert!(!periods.is_empty());
}

#[test]
fn merge_fault_bails_without_dropping_worker_stats() {
    // A non-misspeculation trap out of the phase-2 merge aborts the span,
    // but the collection loop must keep draining the channel: every
    // worker still owes its `Done` stats, and bailing out of the loop
    // early used to discard them (under-counting `iters_speculative`,
    // `body_ns` and the whole sim model).
    let m = build_module(false);
    let mut c = cfg(4);
    c.inject_merge_fault = Some(0);
    let (r, _, rt) = run_parallel(&m, c);
    match r {
        Err(Trap::Internal(msg)) => assert!(msg.contains("injected merge fault"), "{msg}"),
        other => panic!("expected the injected merge fault, got {other:?}"),
    }
    // All four workers contributed period 0 before the merge ran, so the
    // drained stats must reflect real speculative work.
    assert!(
        rt.stats.iters_speculative >= 4,
        "worker stats dropped on merge bail: {} speculative iters",
        rt.stats.iters_speculative
    );
    assert!(
        rt.stats.body_ns > 0,
        "worker body time dropped on merge bail"
    );
    assert!(rt.stats.priv_write_bytes > 0);
}

#[test]
fn shortlived_objects_and_lifetime_validation() {
    // Body allocates a short-lived node, uses it, frees it; one iteration
    // "leaks" (frees late) — lifetime misspeculation repaired by recovery.
    let mut m = Module::new("sl");
    let out_cell = m.add_global("out_cell", 8);
    m.global_mut(out_cell).heap = Some(Heap::Private);

    for (name, checks) in [("body", true), ("recovery", false)] {
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let iter = b.param(0);
        let p = b
            .intrinsic(
                Intrinsic::HAlloc(Heap::ShortLived),
                vec![Value::const_i64(16)],
            )
            .unwrap();
        if checks {
            b.intrinsic(Intrinsic::CheckHeap(Heap::ShortLived), vec![p]);
        }
        b.store(Type::I64, iter, p);
        let v = b.load(Type::I64, p);
        let v2 = b.mul(Type::I64, v, Value::const_i64(3));
        if checks {
            b.intrinsic(
                Intrinsic::PrivateWrite,
                vec![Value::Global(out_cell), Value::const_i64(8)],
            );
        }
        b.store(Type::I64, v2, Value::Global(out_cell));
        b.print_i64(v2);
        // Iteration 42 leaks in the speculative body only (simulating a
        // lifetime speculation that fails): skip the free.
        let is42 = b.icmp(CmpOp::Eq, iter, Value::const_i64(42));
        let leak = b.new_block();
        let dofree = b.new_block();
        let end = b.new_block();
        b.cond_br(is42, if checks { leak } else { dofree }, dofree);
        b.switch_to(leak);
        b.br(end);
        b.switch_to(dofree);
        b.intrinsic(Intrinsic::HFree(Heap::ShortLived), vec![p]);
        b.br(end);
        b.switch_to(end);
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    let v = b.load(Type::I64, Value::Global(out_cell));
    b.print_i64(v);
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    let seq = run_sequential(&m);
    let (r, out, rt) = run_parallel(&m, cfg(4));
    r.unwrap();
    assert_eq!(out, seq);
    assert!(rt.stats.misspecs >= 1, "the leak at iteration 42 must trip");
    assert!(rt
        .events
        .iter()
        .any(|e| matches!(e.event, EngineEvent::MisspecDetected { iter: 42, .. })));
}

#[test]
fn value_prediction_and_separation_checks_pass_in_engine() {
    // A body with a correct prediction and a heap check never misspeculates.
    let mut m = Module::new("vp");
    let cell = m.add_global("cell", 8);
    m.global_mut(cell).heap = Some(Heap::Private);

    for (name, checks) in [("body", true), ("recovery", false)] {
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let iter = b.param(0);
        if checks {
            // Re-materialize the predicted iteration-start value (0), then
            // validate at the end.
            b.intrinsic(
                Intrinsic::PrivateWrite,
                vec![Value::Global(cell), Value::const_i64(8)],
            );
            b.store(Type::I64, Value::const_i64(0), Value::Global(cell));
        }
        let c = b.load(Type::I64, Value::Global(cell));
        let sum = b.add(Type::I64, c, iter);
        if checks {
            b.intrinsic(
                Intrinsic::PrivateWrite,
                vec![Value::Global(cell), Value::const_i64(8)],
            );
        }
        b.store(Type::I64, sum, Value::Global(cell));
        b.print_i64(sum);
        // Restore the invariant: cell returns to 0 at iteration end.
        if checks {
            b.intrinsic(
                Intrinsic::PrivateWrite,
                vec![Value::Global(cell), Value::const_i64(8)],
            );
        }
        b.store(Type::I64, Value::const_i64(0), Value::Global(cell));
        if checks {
            let v = b.load(Type::I64, Value::Global(cell));
            let ok = b.icmp(CmpOp::Eq, v, Value::const_i64(0));
            b.intrinsic(Intrinsic::Predict, vec![ok]);
            b.intrinsic(
                Intrinsic::CheckHeap(Heap::Private),
                vec![Value::Global(cell)],
            );
        }
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();

    let seq = run_sequential(&m);
    let (r, out, rt) = run_parallel(&m, cfg(4));
    r.unwrap();
    assert_eq!(out, seq);
    assert_eq!(rt.stats.misspecs, 0, "prediction holds; no misspeculation");
}

#[test]
fn multiple_invocations_reuse_heaps() {
    // Two back-to-back invocations (as in 052.alvinn's 200): state must
    // carry across and shadow metadata must reset between them.
    let m = build_module(false);
    let image = load_module(&m);
    let mut rtcfg = cfg(3);
    rtcfg.checkpoint_period = 8;
    let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, rtcfg));
    // Call main twice within one process image.
    interp.run_main().unwrap();
    interp.run_main().unwrap();
    let rt = interp.rt;
    assert_eq!(rt.stats.invocations, 2);
    assert_eq!(
        rt.stats.misspecs, 0,
        "second invocation must not see stale metadata"
    );
}
