//! Sharded phase-2 merge ablation: the same page-heavy workload run with
//! `merge_lanes = 1` (serial merge) and `merge_lanes = 4` (page-sharded
//! lane pool) must produce byte-identical output, and on the simulated
//! cost model — the host-independent yardstick, since the evaluation
//! host may have a single core — four balanced lanes must cut the merge
//! term at least in half (`model::MERGE_LANE_DISPATCH` dispatch plus the
//! slowest lane versus the serial sum).

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{Heap, Intrinsic, Module, PlanEntry, Type, Value};
use privateer_runtime::{EngineConfig, EngineStats, MainRuntime, SequentialPlanRuntime};
use privateer_vm::{load_module, Interp, NopHooks, PAGE_SIZE};

const N: i64 = 64;
const PERIOD: u64 = 16;
const STRIDE: i64 = PAGE_SIZE as i64; // one fresh page per iteration

/// body(i): privatize the whole page at `arr + i·4096` (a 4096-byte
/// `private_write`, so the merge scans a full page of written bytes),
/// store 7·i + 1 at its base, read it back, print it. Each period
/// dirties 16 consecutive fresh pages — balanced across `page % lanes`
/// shards — so the merge term dominates the lane-dispatch constant.
fn build() -> Module {
    let mut m = Module::new("merge_lanes");
    let arr = m.add_global("arr", (N * STRIDE) as u64);
    m.global_mut(arr).heap = Some(Heap::Private);
    for name in ["body", "recovery"] {
        let checks = name == "body";
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let i = b.param(0);
        let slot = b.gep(Value::Global(arr), i, STRIDE as u64, 0);
        if checks {
            b.intrinsic(
                Intrinsic::PrivateWrite,
                vec![slot, Value::const_i64(STRIDE)],
            );
        }
        let v7 = b.mul(Type::I64, i, Value::const_i64(7));
        let v = b.add(Type::I64, v7, Value::const_i64(1));
        b.store(Type::I64, v, slot);
        if checks {
            b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
        }
        let back = b.load(Type::I64, slot);
        b.print_i64(back);
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    for probe in [0i64, 31, 63] {
        let slot = b.gep(
            Value::Global(arr),
            Value::const_i64(probe),
            STRIDE as u64,
            0,
        );
        let v = b.load(Type::I64, slot);
        b.print_i64(v);
    }
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

fn run_with_lanes(m: &Module, merge_lanes: usize) -> (Vec<u8>, EngineStats) {
    let cfg = EngineConfig {
        workers: 2,
        checkpoint_period: PERIOD,
        merge_lanes,
        inject_rate: 0.0,
        inject_seed: 0,
        ..EngineConfig::default()
    };
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, MainRuntime::new(&image, cfg));
    interp.run_main().unwrap();
    let out = interp.rt.take_output();
    (out, interp.rt.stats)
}

#[test]
fn four_lanes_commit_identically_and_halve_modeled_merge_cost() {
    let m = build();
    let image = load_module(&m);
    let mut seq = Interp::new(&m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    seq.run_main().unwrap();
    let want = seq.rt.take_output();

    let (out1, stats1) = run_with_lanes(&m, 1);
    let (out4, stats4) = run_with_lanes(&m, 4);

    // Sharding is an implementation strategy, not a semantic knob: both
    // lane counts must reproduce the sequential output byte-for-byte.
    assert_eq!(out1, want);
    assert_eq!(out4, want);
    assert_eq!(stats1.checkpoints, (N as u64) / PERIOD);
    assert_eq!(stats4.checkpoints, (N as u64) / PERIOD);
    assert_eq!(stats1.misspecs, 0);
    assert_eq!(stats4.misspecs, 0);

    // Each period merges 16 fully-written pages spread evenly over the
    // four `page % 4` shards, so the modeled merge term (dispatch +
    // slowest lane) must be at most half the serial sum.
    assert!(stats1.merge_sim_cycles > 0);
    assert!(
        stats4.merge_sim_cycles * 2 <= stats1.merge_sim_cycles,
        "4-lane modeled merge not >= 2x cheaper: lanes=1 -> {} cycles, lanes=4 -> {} cycles",
        stats1.merge_sim_cycles,
        stats4.merge_sim_cycles
    );
}
