//! Multi-period torture test for the delta checkpoint path: a span long
//! enough for several checkpoint periods, a misspeculation landing in a
//! *later* period (so committed checkpoints and deferred I/O must survive
//! the squash), and a regression guard on contribution traffic — with
//! delta contributions the pages shipped per period are bounded by the
//! pages dirtied *that period*, not by the worker's cumulative footprint
//! (which made long spans quadratic).

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{Heap, Intrinsic, Module, PlanEntry, Type, Value};
use privateer_runtime::{EngineConfig, EngineEvent, MainRuntime, SequentialPlanRuntime};
use privateer_vm::{load_module, Interp, NopHooks};

const N: i64 = 96;
const PERIOD: u64 = 16;
const STRIDE: i64 = 512; // 8 slots per 4 KiB page

/// body(i): arr[i] (at a 512-byte stride) = 7·i + 1, read it back, print
/// it. Each 16-iteration period dirties a fresh ~2-page window of `arr`,
/// so the cumulative footprint grows every period while the per-period
/// dirty set stays constant.
fn build() -> Module {
    let mut m = Module::new("multi_period");
    let arr = m.add_global("arr", (N * STRIDE) as u64);
    m.global_mut(arr).heap = Some(Heap::Private);
    for name in ["body", "recovery"] {
        let checks = name == "body";
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let i = b.param(0);
        let slot = b.gep(Value::Global(arr), i, STRIDE as u64, 0);
        if checks {
            b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
        }
        let v7 = b.mul(Type::I64, i, Value::const_i64(7));
        let v = b.add(Type::I64, v7, Value::const_i64(1));
        b.store(Type::I64, v, slot);
        if checks {
            b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
        }
        let back = b.load(Type::I64, slot);
        b.print_i64(back);
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    // Read back slots from the first, a middle, and the last period: the
    // committed memory image matters, not just the deferred output.
    for probe in [0i64, 40, 95] {
        let slot = b.gep(
            Value::Global(arr),
            Value::const_i64(probe),
            STRIDE as u64,
            0,
        );
        let v = b.load(Type::I64, slot);
        b.print_i64(v);
    }
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

fn sequential(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    interp.run_main().unwrap();
    interp.rt.take_output()
}

fn cfg() -> EngineConfig {
    EngineConfig {
        workers: 2,
        checkpoint_period: PERIOD,
        inject_rate: 0.0,
        inject_seed: 0,
        ..EngineConfig::default()
    }
}

#[test]
fn six_periods_commit_with_bounded_contribution_traffic() {
    let m = build();
    let want = sequential(&m);
    let image = load_module(&m);
    let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg()));
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), want);
    let stats = &interp.rt.stats;
    assert_eq!(stats.misspecs, 0);
    assert_eq!(stats.checkpoints, (N as u64) / PERIOD);
    // Quadratic-traffic regression guard. Each period dirties a 8 KiB
    // window of `arr` (2–3 pages depending on alignment), so with delta
    // contributions each worker ships ≤ 3 shadow + 3 private pages per
    // period: ≤ 2·6·6 = 72 pages total. The old cumulative collector
    // shipped the whole footprint every period — Σ_p 4(p+1) per worker,
    // ≈ 168+ pages here — and grew quadratically with span length.
    assert!(
        stats.contrib_pages <= 80,
        "contribution traffic not delta-bounded: {} pages shipped",
        stats.contrib_pages
    );
    assert!(stats.contrib_pages > 0);
}

#[test]
fn late_period_misspeculation_preserves_committed_prefix_and_io() {
    let m = build();
    let want = sequential(&m);
    // Find a seed whose only injected iteration over 0..N lands in period
    // 4 of 6 (iterations 64..80): several periods commit before the
    // squash, and real work follows the recovery.
    let rate = 0.02;
    let seed = (0u64..200_000)
        .find(|&s| {
            let hits: Vec<i64> = (0..N)
                .filter(|&i| privateer_runtime::worker::injected_at(rate, s, i))
                .collect();
            hits.len() == 1 && (64..80).contains(&hits[0])
        })
        .expect("some seed injects exactly once, in period 4");
    let mut c = cfg();
    c.inject_rate = rate;
    c.inject_seed = seed;
    let image = load_module(&m);
    let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, c));
    interp.run_main().unwrap();
    // Committed-prefix bytes and deferred I/O survive the squash: the
    // final output (per-iteration prints in iteration order + the three
    // memory probes) is byte-identical to the sequential reference.
    assert_eq!(interp.rt.take_output(), want);
    let rt = &interp.rt;
    assert_eq!(rt.stats.misspecs, 1);
    assert!(rt.stats.recovered_iters >= 1);
    // Contributions at or after the misspeculated period are freed the
    // moment the squash is known (or dropped on arrival), not pinned in
    // the pending map until the span's workers join. Whether any such
    // contribution actually materializes here is a scheduling race (a
    // worker usually sees the squash flag before packaging one), so the
    // eager-drop itself is asserted deterministically by the
    // `prune_squashed_releases_page_arcs_eagerly` and
    // `arrival_drop_covers_squashed_periods_exactly` unit tests; this
    // test pins the observable consequence: squashed pages never reach
    // the committed image or the output (checked byte-for-byte above).
    // At least the four periods before the misspeculated one committed
    // out of the first span.
    let committed_before_recovery = rt
        .events
        .iter()
        .take_while(|e| !matches!(e.event, EngineEvent::Recovery { .. }))
        .filter(|e| matches!(e.event, EngineEvent::CheckpointCommitted { .. }))
        .count();
    assert!(
        committed_before_recovery >= 4,
        "only {committed_before_recovery} periods committed before recovery"
    );
    // The span resumed after recovery to finish iterations 80..96.
    assert!(rt
        .events
        .iter()
        .any(|e| matches!(e.event, EngineEvent::ParallelResumed { .. })));
}
