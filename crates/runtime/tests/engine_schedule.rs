//! Deterministic replay of engine interleavings that previously required
//! a timing race, via [`VirtualScheduler`] scripts.
//!
//! The headline regression: the *drop-on-arrival* path for squashed
//! contributions (`engine::arrival_squashed`). A contribution for a
//! period at or after a detected misspeculation must be dropped the
//! moment it arrives — but in a free-running span the contributing
//! worker usually observes the squash flag first and never sends, so the
//! path went untested end-to-end (the engine's unit test exercises only
//! the predicate). A three-entry script makes the race a certainty.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, Heap, Intrinsic, Module, PlanEntry, Type, Value};
use privateer_runtime::worker::injected_at;
use privateer_runtime::{
    EngineConfig, MainRuntime, SchedPoint, SequentialPlanRuntime, VirtualScheduler,
};
use privateer_vm::{load_module, Interp, NopHooks};
use std::sync::Arc;

const N: i64 = 8;
/// Private buffer size in 8-byte cells, one cell per page so multi-page
/// periods are cheap to provoke (`PAGES` pages of dirty traffic per
/// iteration).
const PAGES: i64 = 14;
const PAGE: i64 = 4096;

/// A write-then-read privatization body over a `PAGES`-page private
/// buffer: every iteration overwrites one cell in each page, then reads
/// one back and prints it, so each contribution carries `PAGES` dirty
/// pages and output observes the committed state.
fn build_module() -> Module {
    let mut m = Module::new("sched");
    let buf = m.add_global("buf", (PAGES * PAGE) as u64);
    m.global_mut(buf).heap = Some(Heap::Private);

    for (name, checks) in [("body", true), ("recovery", false)] {
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let iter = b.param(0);
        let header = b.new_block();
        let bodyb = b.new_block();
        let after = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (j, j_phi) = b.phi(Type::I64);
        b.add_phi_incoming(j_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, j, Value::const_i64(PAGES));
        b.cond_br(c, bodyb, after);
        b.switch_to(bodyb);
        let slot = b.gep(Value::Global(buf), j, PAGE as u64, 0);
        if checks {
            b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
        }
        let v = b.mul(Type::I64, iter, Value::const_i64(100));
        let v = b.add(Type::I64, v, j);
        b.store(Type::I64, v, slot);
        let j2 = b.add(Type::I64, j, Value::const_i64(1));
        b.add_phi_incoming(j_phi, bodyb, j2);
        b.br(header);
        b.switch_to(after);
        let idx = b.bin(
            privateer_ir::BinOp::SRem,
            Type::I64,
            iter,
            Value::const_i64(PAGES),
        );
        let slot = b.gep(Value::Global(buf), idx, PAGE as u64, 0);
        if checks {
            b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
        }
        let v = b.load(Type::I64, slot);
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });

    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    for j in 0..PAGES {
        let slot = b.gep(Value::Global(buf), Value::const_i64(j), PAGE as u64, 0);
        let v = b.load(Type::I64, slot);
        b.print_i64(v);
    }
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

fn run_sequential(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    interp.run_main().unwrap();
    interp.rt.take_output()
}

/// A seed whose only injected misspeculation in `0..N` is iteration 1
/// (worker 1's first iteration under 2-worker cyclic assignment).
fn seed_injecting_only_iter_1(rate: f64) -> u64 {
    (0u64..200_000)
        .find(|&s| (0..N).all(|i| injected_at(rate, s, i) == (i == 1)))
        .expect("an iter-1-only injection seed exists in the search range")
}

/// The race, forced: worker 0 finishes its period-0 iterations *before*
/// worker 1 publishes the iteration-1 misspeculation, and its period-0
/// contribution is released *after* — so the contribution reaches the
/// collection loop squashed and must be dropped on arrival. Free-running
/// spans essentially never produce this order (the worker sees the
/// squash flag and never sends); with the script it happens every run.
#[test]
fn scripted_late_contribution_is_dropped_on_arrival() {
    let m = build_module();
    let rate = 0.02;
    let seed = seed_injecting_only_iter_1(rate);

    let script = vec![
        // Worker 0 runs its last period-0 iteration to completion...
        SchedPoint::Iter { worker: 0, iter: 2 },
        // ...then worker 1's trap at iteration 1 publishes the squash...
        SchedPoint::Misspec { worker: 1 },
        // ...and only then does worker 0's period-0 contribution land.
        SchedPoint::Contribute {
            worker: 0,
            period: 0,
        },
    ];

    let image = load_module(&m);
    let mut rt = MainRuntime::new(
        &image,
        EngineConfig {
            workers: 2,
            checkpoint_period: 4,
            merge_lanes: 1,
            inject_rate: rate,
            inject_seed: seed,
            ..EngineConfig::default()
        },
    );
    let sched = VirtualScheduler::scripted(script.clone());
    rt.set_schedule(Arc::clone(&sched));
    let mut interp = Interp::new(&m, &image, NopHooks, rt);
    interp.run_main().unwrap();

    assert_eq!(sched.timeouts(), 0, "script must be consistent, not forced");
    assert_eq!(sched.remaining(), 0, "every scripted point must fire");
    assert_eq!(sched.fired(), script, "points fire in script order");
    assert!(
        interp.rt.stats.squashed_pages_dropped >= PAGES as u64,
        "the late contribution ({PAGES} pages minimum) must be dropped on \
         arrival, got {}",
        interp.rt.stats.squashed_pages_dropped
    );
    assert_eq!(interp.rt.stats.misspecs, 1, "only the injected misspec");
    assert_eq!(
        interp.rt.take_output(),
        run_sequential(&m),
        "recovery must still reproduce the sequential output exactly"
    );
}

/// Without the scheduler the same workload must also agree with the
/// sequential run (sanity: the script changes *scheduling*, never
/// results).
#[test]
fn unscripted_run_agrees_with_sequential() {
    let m = build_module();
    let rate = 0.02;
    let seed = seed_injecting_only_iter_1(rate);
    let image = load_module(&m);
    let rt = MainRuntime::new(
        &image,
        EngineConfig {
            workers: 2,
            checkpoint_period: 4,
            merge_lanes: 1,
            inject_rate: rate,
            inject_seed: seed,
            ..EngineConfig::default()
        },
    );
    let mut interp = Interp::new(&m, &image, NopHooks, rt);
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), run_sequential(&m));
}

/// Merge-lane result order is scriptable: lane 1 is forced to report
/// before lane 0 for both periods of a sharded span, and the commit is
/// byte-identical anyway (the engine sorts lane results before
/// committing in lane order).
#[test]
fn scripted_lane_result_order_commits_identically() {
    let m = build_module();
    let image = load_module(&m);
    let cfg = EngineConfig {
        workers: 2,
        checkpoint_period: 4,
        merge_lanes: 2,
        ..EngineConfig::default()
    };
    let script = vec![
        SchedPoint::MergeLane { lane: 1, period: 0 },
        SchedPoint::MergeLane { lane: 0, period: 0 },
        SchedPoint::MergeLane { lane: 1, period: 1 },
        SchedPoint::MergeLane { lane: 0, period: 1 },
    ];
    let mut rt = MainRuntime::new(&image, cfg);
    let sched = VirtualScheduler::scripted(script.clone());
    rt.set_schedule(Arc::clone(&sched));
    let mut interp = Interp::new(&m, &image, NopHooks, rt);
    interp.run_main().unwrap();
    assert_eq!(sched.timeouts(), 0);
    assert_eq!(sched.fired(), script, "lane results arrived as scripted");
    assert_eq!(interp.rt.take_output(), run_sequential(&m));
}

/// Seeded random exploration of contribution-arrival orders: every
/// explored interleaving must commit the same bytes, and the same seed
/// must explore the same interleaving.
#[test]
fn random_arrival_exploration_is_reproducible_and_agrees() {
    let m = build_module();
    let expect = run_sequential(&m);
    let mut first_orders = Vec::new();
    for round in 0..2 {
        let mut orders = Vec::new();
        for seed in 0..4u64 {
            let image = load_module(&m);
            let mut rt = MainRuntime::new(
                &image,
                EngineConfig {
                    workers: 2,
                    checkpoint_period: 4,
                    merge_lanes: 1,
                    ..EngineConfig::default()
                },
            );
            // N=8, k=4, 2 workers -> 2 periods per worker.
            let sched = VirtualScheduler::random_arrivals(2, 2, seed);
            rt.set_schedule(Arc::clone(&sched));
            let mut interp = Interp::new(&m, &image, NopHooks, rt);
            interp.run_main().unwrap();
            assert_eq!(sched.timeouts(), 0, "seed {seed}: consistent script");
            assert_eq!(
                interp.rt.take_output(),
                expect,
                "seed {seed}: arrival order must never change results"
            );
            orders.push(sched.fired());
        }
        if round == 0 {
            first_orders = orders;
        } else {
            assert_eq!(first_orders, orders, "same seeds, same interleavings");
        }
    }
    assert!(
        first_orders
            .iter()
            .collect::<std::collections::HashSet<_>>()
            .len()
            > 1,
        "different seeds should explore more than one interleaving"
    );
}
