//! Degenerate and hostile engine configurations: more workers than
//! iterations, single-iteration checkpoint periods, periods longer than
//! the loop, genuine program errors under speculation, misspeculation
//! on the very last iteration, and a seeded randomized configuration
//! sweep.
//!
//! The suite is fully seed-deterministic: every randomized choice flows
//! from [`stress_seed`] (override with `STRESS_SEED=<n>` to reproduce a
//! CI failure locally — the seed is printed in every failure message).

use privateer_fuzz::Rng;
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, Heap, Intrinsic, Module, PlanEntry, Type, Value};
use privateer_runtime::{EngineConfig, MainRuntime, SequentialPlanRuntime};
use privateer_vm::{load_module, Interp, NopHooks, Trap};

/// The campaign seed: `STRESS_SEED` from the environment, or a fixed
/// default so ordinary runs are byte-for-byte reproducible.
fn stress_seed() -> u64 {
    match std::env::var("STRESS_SEED") {
        Ok(s) => s
            .parse()
            .unwrap_or_else(|e| panic!("STRESS_SEED={s:?} is not a u64: {e}")),
        Err(_) => 0x57_5e55,
    }
}

/// body(i): cell[i % 4] = i, with privacy checks; print i.
fn build(n: i64, divide_by_zero_at: Option<i64>) -> Module {
    let mut m = Module::new("stress");
    let cells = m.add_global("cells", 32);
    m.global_mut(cells).heap = Some(Heap::Private);
    for name in ["body", "recovery"] {
        let checks = name == "body";
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let i = b.param(0);
        let idx = b.bin(privateer_ir::BinOp::SRem, Type::I64, i, Value::const_i64(4));
        let slot = b.gep(Value::Global(cells), idx, 8, 0);
        if checks {
            b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
        }
        b.store(Type::I64, i, slot);
        if let Some(bad) = divide_by_zero_at {
            // divisor = i - bad: zero exactly at the bad iteration.
            let d = b.sub(Type::I64, i, Value::const_i64(bad));
            let q = b.bin(
                privateer_ir::BinOp::SDiv,
                Type::I64,
                Value::const_i64(100),
                d,
            );
            let c = b.icmp(CmpOp::Eq, q, Value::const_i64(i64::MIN));
            let z = b.select(Type::I64, c, Value::const_i64(0), Value::const_i64(1));
            let _ = z;
        }
        b.print_i64(i);
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(n)],
    );
    let v = b.gep(Value::Global(cells), Value::const_i64(3), 8, 0);
    let x = b.load(Type::I64, v);
    b.print_i64(x);
    b.ret(None);
    m.add_function(b.finish());
    m
}

fn expected(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    interp.run_main().unwrap();
    interp.rt.take_output()
}

#[test]
fn degenerate_configurations_all_agree() {
    let m = build(10, None);
    let want = expected(&m);
    let configs = [
        (16, 4),  // more workers than iterations
        (3, 1),   // checkpoint every iteration
        (2, 253), // one period covers the whole loop (max allowed)
        (10, 3),  // workers == iterations
        (1, 2),   // single worker, tiny periods
    ];
    for (workers, period) in configs {
        let image = load_module(&m);
        let cfg = EngineConfig {
            workers,
            checkpoint_period: period,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp.run_main().unwrap();
        assert_eq!(
            interp.rt.take_output(),
            want,
            "workers={workers} period={period}"
        );
    }
}

#[test]
fn misspeculation_on_final_iteration_recovers() {
    let m = build(12, None);
    let want = expected(&m);
    // Find a seed that injects exactly at the last iteration.
    let seed = (0u64..50_000)
        .find(|&s| (0..12).all(|i| privateer_runtime::worker::injected_at(0.02, s, i) == (i == 11)))
        .expect("some seed injects only at iteration 11");
    let image = load_module(&m);
    let cfg = EngineConfig {
        workers: 4,
        checkpoint_period: 5,
        inject_rate: 0.02,
        inject_seed: seed,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), want);
    assert_eq!(interp.rt.stats.misspecs, 1);
    // After recovering iteration 11 there is nothing left: no resume event.
    assert!(!interp.rt.events.iter().any(|e| matches!(
        e.event,
        privateer_runtime::EngineEvent::ParallelResumed { .. }
    )));
}

#[test]
fn genuine_error_reproduces_sequentially() {
    // A real division by zero at iteration 7: the speculative worker
    // faults (treated as misspeculation), recovery re-executes
    // sequentially — and hits the same genuine error, which must
    // propagate as an error, not be swallowed.
    let m = build(10, Some(7));
    let image = load_module(&m);
    let cfg = EngineConfig {
        workers: 3,
        checkpoint_period: 4,
        inject_rate: 0.0,
        inject_seed: 0,
        ..EngineConfig::default()
    };
    let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
    let err = interp.run_main().unwrap_err();
    assert_eq!(err, Trap::DivByZero);
    // The fault was first observed speculatively.
    assert!(interp.rt.stats.misspecs >= 1);
}

/// Seeded sweep over random hostile configurations: worker counts,
/// checkpoint periods (including > n and the 253 clamp), and injected
/// misspeculation rates, every round checked against the sequential
/// output. Failures print the campaign seed and the per-round
/// parameters, so `STRESS_SEED=<seed> cargo test` replays them exactly.
#[test]
fn randomized_hostile_configs_agree() {
    let seed = stress_seed();
    let mut r = Rng::new(seed);
    for round in 0..12 {
        let n = r.range(1, 40);
        let workers = r.range(1, 17) as usize;
        let period = match r.below(4) {
            0 => 1,
            1 => r.below(4) + 1,
            2 => n as u64 + r.below(8),
            _ => 253,
        };
        let inject_rate = if r.chance(1, 2) { 0.05 } else { 0.0 };
        let inject_seed = r.next_u64();
        let ctx = format!(
            "STRESS_SEED={seed} round={round}: n={n} workers={workers} \
             period={period} inject_rate={inject_rate} inject_seed={inject_seed}"
        );

        let m = build(n, None);
        let want = expected(&m);
        let image = load_module(&m);
        let cfg = EngineConfig {
            workers,
            checkpoint_period: period,
            inject_rate,
            inject_seed,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp
            .run_main()
            .unwrap_or_else(|e| panic!("{ctx}: trapped {e:?}"));
        assert_eq!(interp.rt.take_output(), want, "{ctx}");
    }
}

#[test]
fn empty_and_single_iteration_regions() {
    for n in [0i64, 1] {
        let m = build(n, None);
        let want = expected(&m);
        let image = load_module(&m);
        let cfg = EngineConfig {
            workers: 4,
            checkpoint_period: 8,
            inject_rate: 0.0,
            inject_seed: 0,
            ..EngineConfig::default()
        };
        let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
        interp.run_main().unwrap();
        assert_eq!(interp.rt.take_output(), want, "n={n}");
    }
}
