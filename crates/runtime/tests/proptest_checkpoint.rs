//! Property-based equivalence between the checkpoint fast path — delta
//! contributions ([`DeltaTracker`]) merged by the page-granular dense
//! [`CheckpointMerge`] — and the retained reference path — cumulative
//! contributions ([`collect_contribution`]) merged by the per-address
//! [`ReferenceCheckpointMerge`].
//!
//! For random multi-worker, multi-period access traces with footprints
//! crossing page boundaries, and for random contribution orders, the two
//! pipelines must be observationally identical: byte-identical committed
//! memory and shadow marks, identically ordered deferred I/O, equal
//! written-byte counts, and the identical `Trap` (kind *and* message)
//! when phase 2 rejects.
//!
//! The trace machinery (op strategy, per-worker replay state, the
//! deterministic order shuffle) lives in [`privateer_fuzz::trace`],
//! shared with the sharded-merge suite and the `privfuzz` harness.

use privateer_fuzz::trace::{
    op_strategy, priv_range, shuffled_order, touched_shadow_pages, TraceParams, TraceWorker,
};
use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::Heap;
use privateer_runtime::checkpoint::{
    collect_contribution, CheckpointMerge, DeltaTracker, ReferenceCheckpointMerge,
};
use privateer_runtime::shadow;
use privateer_runtime::worker::WorkerRuntime;
use privateer_vm::{AddressSpace, RuntimeIface, PAGE_SIZE};
use proptest::prelude::*;

/// Footprint anchors: a cluster straddling the first page boundary of the
/// region (so single accesses cross pages), plus spots on distinct pages
/// (so contributions carry several pages and the delta filter has
/// something to skip once a page goes quiet).
const PARAMS: TraceParams = TraceParams {
    workers: 4,
    periods: 3,
    k: 16, // iterations per checkpoint period
    slots: &[
        0xff0, 0xff5, 0xffb, 0xffe, 0x1002, 0x1009, 0x10, 0x1100, 0x2040, 0x3ffc,
    ],
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn delta_dense_pipeline_equals_cumulative_reference(
        mut ops in prop::collection::vec(op_strategy(PARAMS), 1..80),
        shuffle_seed in any::<u64>(),
    ) {
        let base = Heap::Private.base() + 0x4000;
        ops.sort_by_key(|o| (o.worker, o.period, o.pos));

        let mut workers: Vec<TraceWorker> = (0..PARAMS.workers)
            .map(|w| TraceWorker::fresh(w, 1))
            .collect();

        let mut committed_dense = AddressSpace::new();
        let mut committed_ref = AddressSpace::new();

        for period in 0..PARAMS.periods {
            // Replay each worker's slice of the trace for this period.
            for op in ops.iter().filter(|o| o.period == period) {
                workers[op.worker].apply(op, PARAMS, base);
            }

            // Collect both flavors from the identical worker state: the
            // cumulative contribution reads the pre-normalize state, then
            // `DeltaTracker::collect` normalizes and snapshots it (both
            // pipelines share the normalized state going forward).
            let mut fulls = Vec::new();
            let mut deltas = Vec::new();
            for (w, worker) in workers.iter_mut().enumerate() {
                let io = vec![(worker.cur_iter, vec![w as u8, period as u8, b'\n'])];
                let full = collect_contribution(w, period, &worker.mem, &[], io.clone());
                let delta = worker.tracker.collect(w, period, &mut worker.mem, &[], io);

                // Delta ships a subset of the cumulative page set, and
                // never drops a page that carries phase-2 content.
                let delta_bases: Vec<u64> =
                    delta.shadow_pages.iter().map(|&(b, _)| b).collect();
                let full_bases: Vec<u64> =
                    full.shadow_pages.iter().map(|&(b, _)| b).collect();
                for b in &delta_bases {
                    prop_assert!(full_bases.contains(b), "delta shipped unknown page {b:#x}");
                }
                for b in touched_shadow_pages(&full) {
                    prop_assert!(
                        delta_bases.contains(&b),
                        "delta dropped touched page {b:#x} in period {period}"
                    );
                }
                fulls.push(full);
                deltas.push(delta);
            }

            // Merge both pipelines with the same shuffled contribution
            // order (trap choice is order-dependent, so the order must
            // match across pipelines — but any order must agree).
            let order = shuffled_order(PARAMS.workers, shuffle_seed ^ period);

            let mut dense = CheckpointMerge::new(0);
            let mut reference = ReferenceCheckpointMerge::new(0);
            let mut r_dense = Ok(());
            let mut r_ref = Ok(());
            for &w in &order {
                if r_dense.is_ok() {
                    r_dense = dense.add(deltas[w].clone(), &committed_dense);
                }
                if r_ref.is_ok() {
                    r_ref = reference.add(fulls[w].clone(), &committed_ref);
                }
            }
            prop_assert_eq!(&r_dense, &r_ref, "merge verdicts diverged in period {}", period);
            if r_dense.is_err() {
                // Both pipelines squash this period; the span is over.
                return Ok(());
            }

            prop_assert_eq!(dense.written_bytes(), reference.written_bytes());
            let io_dense = dense.commit(&mut committed_dense);
            let io_ref = reference.commit(&mut committed_ref);
            prop_assert_eq!(io_dense, io_ref, "deferred I/O diverged in period {}", period);

            let (lo, hi) = priv_range();
            prop_assert!(
                committed_dense.range_eq(&committed_ref, lo, hi),
                "committed private bytes diverged in period {period}"
            );
            prop_assert!(
                committed_dense.range_eq(
                    &committed_ref,
                    lo | SHADOW_BIT,
                    hi | SHADOW_BIT
                ),
                "committed shadow marks diverged in period {period}"
            );
        }
    }

    /// The dense merge commits runs page by page; make sure run splicing
    /// at page boundaries agrees with the reference byte-run committer
    /// when a single write straddles two pages.
    #[test]
    fn page_straddling_write_commits_identically(
        off in 0u64..16,
        size in 1u64..=16,
        val in any::<u8>(),
    ) {
        let addr = Heap::Private.base() + 0x5000 - 8 + off; // straddles 0x5000
        let mut rt = WorkerRuntime::new(0, 0.0, 0);
        let mut mem = AddressSpace::new();
        rt.begin_iteration(0, 0).unwrap();
        rt.private_write(addr, size, &mut mem).unwrap();
        mem.fill(addr, size, val);

        let full = collect_contribution(0, 0, &mem, &[], vec![]);
        let delta = DeltaTracker::new().collect(0, 0, &mut mem, &[], vec![]);

        let mut committed_dense = AddressSpace::new();
        let mut committed_ref = AddressSpace::new();
        let mut dense = CheckpointMerge::new(0);
        let mut reference = ReferenceCheckpointMerge::new(0);
        dense.add(delta, &committed_dense).unwrap();
        reference.add(full, &committed_ref).unwrap();
        prop_assert_eq!(dense.written_bytes(), size as usize);
        prop_assert_eq!(dense.written_bytes(), reference.written_bytes());
        if size > PAGE_SIZE - ((addr) & (PAGE_SIZE - 1)) {
            prop_assert_eq!(dense.dirty_pages(), 2);
        }
        dense.commit(&mut committed_dense);
        reference.commit(&mut committed_ref);
        let (lo, hi) = priv_range();
        prop_assert!(committed_dense.range_eq(&committed_ref, lo, hi));
        prop_assert!(committed_dense.range_eq(&committed_ref, lo | SHADOW_BIT, hi | SHADOW_BIT));
        for i in 0..size {
            prop_assert_eq!(committed_dense.read_u8(addr + i), val);
            prop_assert_eq!(
                committed_dense.read_u8((addr + i) | SHADOW_BIT),
                shadow::OLD_WRITE
            );
        }
    }
}
