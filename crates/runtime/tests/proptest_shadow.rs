//! Property-based soundness and precision tests for the privacy
//! validation machinery: the Table 2 metadata transitions, checkpoint
//! merging, the allocators and the injection hash.

use privateer_ir::Heap;
use privateer_runtime::checkpoint::{collect_contribution, CheckpointMerge};
use privateer_runtime::shadow::{self, Access};
use privateer_runtime::worker::{injected_at, WorkerRuntime};
use privateer_vm::{AddressSpace, RegionAllocator, RuntimeIface, Trap};
use proptest::prelude::*;

/// Shadow metadata bytes weighted toward the interesting Table 2 codes
/// (plus fully arbitrary bytes for good measure).
fn meta_strategy() -> impl Strategy<Value = u8> {
    prop_oneof![
        Just(shadow::LIVE_IN),
        Just(shadow::LIVE_IN),
        Just(shadow::OLD_WRITE),
        Just(shadow::READ_LIVE_IN),
        (0u64..shadow::MAX_PERIOD).prop_map(shadow::ts_code),
        any::<u8>(),
    ]
}

/// A random trace of private accesses to a handful of bytes across
/// iterations.
#[derive(Debug, Clone)]
struct Op {
    iter: u64,
    addr_slot: usize,
    is_write: bool,
}

fn op_strategy(iters: u64, slots: usize) -> impl Strategy<Value = Op> {
    (0..iters, 0..slots, any::<bool>()).prop_map(|(iter, addr_slot, is_write)| Op {
        iter,
        addr_slot,
        is_write,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Phase-1 soundness: for any single-worker access trace (replayed in
    /// iteration order), the shadow transitions trap **iff** the trace has
    /// a cross-iteration flow dependence or the conservative
    /// write-after-read-live-in pattern.
    #[test]
    fn table2_matches_oracle(mut ops in prop::collection::vec(op_strategy(8, 4), 0..40)) {
        ops.sort_by_key(|o| o.iter);

        // Oracle over the reference semantics.
        #[derive(Clone, Copy, PartialEq)]
        enum Ref { LiveIn, ReadLiveIn, Written(u64) }
        let mut oracle: Vec<Ref> = vec![Ref::LiveIn; 4];
        let mut oracle_trap = false;
        for op in &ops {
            let slot = &mut oracle[op.addr_slot];
            if op.is_write {
                match *slot {
                    Ref::ReadLiveIn => { oracle_trap = true; break; } // conservative
                    _ => *slot = Ref::Written(op.iter),
                }
            } else {
                match *slot {
                    Ref::LiveIn | Ref::ReadLiveIn => *slot = Ref::ReadLiveIn,
                    Ref::Written(w) if w == op.iter => {}
                    Ref::Written(_) => { oracle_trap = true; break; } // cross-iteration flow
                }
            }
        }

        // The implementation.
        let mut rt = WorkerRuntime::new(0, 0.0, 0);
        let mut mem = AddressSpace::new();
        let base = Heap::Private.base() + 0x1000;
        let mut cur_iter = u64::MAX;
        let mut impl_trap = false;
        for op in &ops {
            if op.iter != cur_iter {
                cur_iter = op.iter;
                rt.begin_iteration(op.iter as i64, op.iter).unwrap();
            }
            let addr = base + op.addr_slot as u64;
            let r = if op.is_write {
                rt.private_write(addr, 1, &mut mem)
            } else {
                rt.private_read(addr, 1, &mut mem)
            };
            if r.is_err() {
                impl_trap = true;
                break;
            }
        }
        prop_assert_eq!(impl_trap, oracle_trap);
    }

    /// The word-granular (SWAR) `private_read`/`private_write` path is
    /// observationally identical to the per-byte reference
    /// `private_access_bytewise`: byte-identical shadow state over the
    /// whole shadow heap and the identical `Trap` (kind *and* message),
    /// across random metadata, sizes 1–64, unaligned bases, and spans
    /// crossing a page boundary.
    #[test]
    fn word_path_equals_bytewise(
        meta in prop::collection::vec(meta_strategy(), 80),
        off in 0u64..5000,
        size in 1u64..=64,
        is_write in any::<bool>(),
        n in 0u64..shadow::MAX_PERIOD,
    ) {
        // Page boundary of the shadow heap falls at off == 0x1000.
        let addr = Heap::Private.base() + 0x3000 + off;
        let access = if is_write { Access::Write } else { Access::Read };

        let mut rt_word = WorkerRuntime::new(0, 0.0, 0);
        let mut rt_ref = WorkerRuntime::new(0, 0.0, 0);
        rt_word.begin_iteration(0, n).unwrap();
        rt_ref.begin_iteration(0, n).unwrap();

        // Identically seeded shadow state: the accessed span plus an
        // 8-byte margin on each side (which must come out untouched).
        let mut mem_word = AddressSpace::new();
        let mut mem_ref = AddressSpace::new();
        let seeded = &meta[..(size + 16) as usize];
        mem_word.write_bytes((addr - 8) | privateer_ir::inst::SHADOW_BIT, seeded);
        mem_ref.write_bytes((addr - 8) | privateer_ir::inst::SHADOW_BIT, seeded);

        let r_word = match access {
            Access::Write => rt_word.private_write(addr, size, &mut mem_word),
            Access::Read => rt_word.private_read(addr, size, &mut mem_word),
        };
        let r_ref = rt_ref.private_access_bytewise(access, addr, size, &mut mem_ref);
        prop_assert_eq!(&r_word, &r_ref);

        let lo = Heap::Private.base() | privateer_ir::inst::SHADOW_BIT;
        let hi = lo + privateer_runtime::heaps::HEAP_SPAN;
        prop_assert!(mem_word.range_eq(&mem_ref, lo, hi), "shadow state diverged");
    }

    /// Same equivalence over multi-access traces spanning several
    /// iterations and checkpoints: overlapping spans accumulate mixed
    /// metadata words, and both implementations must walk through the
    /// identical sequence of states and stop at the identical trap.
    #[test]
    fn word_path_equals_bytewise_traces(
        ops in prop::collection::vec(
            (0u64..6, 0u64..200, 1u64..=64, any::<bool>()),
            1..24,
        ),
    ) {
        let base = Heap::Private.base() + 0x7fe0; // spans cross a page boundary
        let mut rt_word = WorkerRuntime::new(0, 0.0, 0);
        let mut rt_ref = WorkerRuntime::new(0, 0.0, 0);
        let mut mem_word = AddressSpace::new();
        let mut mem_ref = AddressSpace::new();
        let mut sorted = ops;
        sorted.sort_by_key(|&(iter, ..)| iter);
        let mut cur = u64::MAX;
        for &(iter, off, size, is_write) in &sorted {
            if iter != cur {
                cur = iter;
                rt_word.begin_iteration(iter as i64, iter).unwrap();
                rt_ref.begin_iteration(iter as i64, iter).unwrap();
            }
            let addr = base + off;
            let access = if is_write { Access::Write } else { Access::Read };
            let r_word = match access {
                Access::Write => rt_word.private_write(addr, size, &mut mem_word),
                Access::Read => rt_word.private_read(addr, size, &mut mem_word),
            };
            let r_ref = rt_ref.private_access_bytewise(access, addr, size, &mut mem_ref);
            prop_assert_eq!(&r_word, &r_ref);
            let lo = Heap::Private.base() | privateer_ir::inst::SHADOW_BIT;
            let hi = lo + privateer_runtime::heaps::HEAP_SPAN;
            prop_assert!(mem_word.range_eq(&mem_ref, lo, hi), "shadow state diverged");
            if r_word.is_err() {
                break; // both trapped identically; the iteration squashes
            }
        }
        // Normalization must agree too (word-granular on both sides, but
        // against states produced by the two different access paths).
        WorkerRuntime::normalize_shadow(&mut mem_word);
        WorkerRuntime::normalize_shadow(&mut mem_ref);
        let lo = Heap::Private.base() | privateer_ir::inst::SHADOW_BIT;
        let hi = lo + privateer_runtime::heaps::HEAP_SPAN;
        prop_assert!(mem_word.range_eq(&mem_ref, lo, hi), "normalized state diverged");
    }

    /// Normalization is idempotent and never manufactures timestamps.
    #[test]
    fn normalize_idempotent(meta in any::<u8>()) {
        let once = shadow::normalize(meta);
        prop_assert_eq!(shadow::normalize(once), once);
        prop_assert!(once <= shadow::READ_LIVE_IN);
        prop_assert_ne!(once, shadow::READ_LIVE_IN);
    }

    /// Transitions never *lower* a current-iteration timestamp and reads
    /// never invent writes.
    #[test]
    fn transition_monotonicity(before in 0u8..=255, n in 0u64..253) {
        let cur = shadow::ts_code(n);
        if let Ok(after) = shadow::transition(Access::Read, before, cur) {
            // A read leaves the byte live-in-ish or at its own timestamp.
            prop_assert!(after == shadow::READ_LIVE_IN || after == before);
        }
        if let Ok(after) = shadow::transition(Access::Write, before, cur) {
            prop_assert_eq!(after, cur);
        }
    }

    /// Checkpoint merging commits the sequentially-latest write per byte,
    /// regardless of the order contributions arrive.
    #[test]
    fn merge_commits_latest_write(
        writes in prop::collection::vec((0usize..4, 0u64..12, any::<u8>()), 1..24),
        shuffle_seed in any::<u64>(),
    ) {
        // Partition iterations cyclically over 4 workers; each write
        // (slot, iter, value) lands on worker iter % 4.
        let base = Heap::Private.base() + 0x2000;
        let mut rts: Vec<WorkerRuntime> = (0..4).map(|w| WorkerRuntime::new(w, 0.0, 0)).collect();
        let mut mems: Vec<AddressSpace> = (0..4).map(|_| AddressSpace::new()).collect();

        // Oracle: last write per slot by iteration order (ties: the entry
        // appearing later in the list, mirroring program order).
        let mut oracle: [Option<(u64, u8)>; 4] = [None; 4];
        let mut sorted = writes.clone();
        sorted.sort_by_key(|&(_, iter, _)| iter);
        for &(slot, iter, val) in &sorted {
            match oracle[slot] {
                Some((w, _)) if w > iter => {}
                _ => oracle[slot] = Some((iter, val)),
            }
        }

        // Replay: group writes per worker in iteration order.
        let mut by_worker: Vec<Vec<(usize, u64, u8)>> = vec![Vec::new(); 4];
        for &(slot, iter, val) in &sorted {
            by_worker[(iter % 4) as usize].push((slot, iter, val));
        }
        for (w, ops) in by_worker.iter().enumerate() {
            let mut cur = u64::MAX;
            for &(slot, iter, val) in ops {
                if iter != cur {
                    cur = iter;
                    rts[w].begin_iteration(iter as i64, iter).unwrap();
                }
                let addr = base + slot as u64;
                rts[w].private_write(addr, 1, &mut mems[w]).unwrap();
                mems[w].write_u8(addr, val);
            }
        }

        // Contribute in a shuffled order.
        let mut order: Vec<usize> = (0..4).collect();
        let mut s = shuffle_seed;
        for i in (1..4).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            order.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut committed = AddressSpace::new();
        let mut merge = CheckpointMerge::new(0);
        for &w in &order {
            let contrib = collect_contribution(w, 0, &mems[w], &[], vec![]);
            merge.add(contrib, &committed).unwrap();
        }
        merge.commit(&mut committed);

        for (slot, expect) in oracle.iter().enumerate() {
            if let Some((_, val)) = expect {
                prop_assert_eq!(committed.read_u8(base + slot as u64), *val);
            }
        }
    }

    /// The region allocator never hands out overlapping live blocks and
    /// always returns addresses inside its range.
    #[test]
    fn allocator_no_overlap(sizes in prop::collection::vec(1u64..200, 1..40)) {
        let mut a = RegionAllocator::new(0x10_000, 0x100_000);
        let mut live: Vec<(u64, u64)> = Vec::new();
        for (i, &sz) in sizes.iter().enumerate() {
            let p = a.alloc(sz).unwrap();
            prop_assert!(p >= 0x10_000 && p + sz <= 0x100_000);
            for &(q, qs) in &live {
                prop_assert!(p + sz <= q || q + qs <= p, "overlap {p:#x}+{sz} vs {q:#x}+{qs}");
            }
            live.push((p, sz));
            // Free every third block to exercise reuse.
            if i % 3 == 2 {
                let (q, _) = live.remove(0);
                a.free(q).unwrap();
            }
        }
    }

    /// Injection is a pure function of (rate, seed, iteration).
    #[test]
    fn injection_deterministic(rate in 0.0f64..1.0, seed in any::<u64>(), iter in 0i64..100_000) {
        prop_assert_eq!(injected_at(rate, seed, iter), injected_at(rate, seed, iter));
        prop_assert!(!injected_at(0.0, seed, iter));
    }

    /// Worker lifetime validation: allocations exactly balanced by frees
    /// pass; any imbalance traps at the end of the iteration.
    #[test]
    fn shortlived_balance(allocs in 1usize..8, frees_short in 0usize..8) {
        let frees = frees_short.min(allocs);
        let mut rt = WorkerRuntime::new(0, 0.0, 0);
        let mut mem = AddressSpace::new();
        let site = (privateer_ir::FuncId::new(0), privateer_ir::InstId::new(0));
        rt.begin_iteration(0, 0).unwrap();
        let ptrs: Vec<u64> = (0..allocs)
            .map(|_| rt.h_alloc(Heap::ShortLived, 16, &mut mem, site).unwrap())
            .collect();
        for &p in ptrs.iter().take(frees) {
            rt.h_free(Heap::ShortLived, p, &mut mem).unwrap();
        }
        let end = rt.end_iteration();
        if frees == allocs {
            prop_assert!(end.is_ok());
        } else {
            prop_assert!(matches!(end, Err(Trap::Misspec(_))));
        }
    }
}
