//! Property-based equivalence for the *sharded* phase-2 merge: for random
//! multi-worker traces, random contribution orders, and every lane count
//! in {1, 2, 4, 7}, merging each `page % lanes` shard independently
//! ([`CheckpointMerge`] fed through [`merge_lane`]) and committing the
//! lane states must be observationally identical to the serial dense
//! merge *and* to the per-address [`ReferenceCheckpointMerge`] oracle:
//! byte-identical committed memory and shadow marks, the identical trap
//! (kind *and* message) under the engine's minimal-(contribution, byte)
//! coordinator rule, identical written-byte totals, identically ordered
//! deferred I/O, and identical reduction-image sequences (the engine
//! folds images centrally in contribution order for every lane count, so
//! equal sequences imply equal folded reduction values).
//!
//! All three contribution packagings are exercised: pre-bucketed by the
//! worker ([`DeltaTracker::with_lanes`]), re-bucketed after the fact
//! ([`Contribution::rebucket`]), and a lane-count mismatch that forces
//! the merge's on-the-fly page filter.
//!
//! The trace machinery (op strategy, per-worker replay state, shuffle,
//! packaging helpers, the coordinator rule) lives in
//! [`privateer_fuzz::trace`], shared with the checkpoint suite and the
//! `privfuzz` harness.

use privateer_fuzz::trace::{
    ascending, op_strategy, priv_range, sharded_merge_round, shuffled_order, Packaging,
    TraceParams, TraceWorker,
};
use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::{Heap, ReduxOp};
use privateer_runtime::checkpoint::{
    collect_contribution, CheckpointMerge, Contribution, ReferenceCheckpointMerge,
};
use privateer_vm::AddressSpace;
use proptest::prelude::*;

const LANE_CHOICES: [usize; 4] = [1, 2, 4, 7];

/// Footprint anchors straddling page boundaries and spanning enough
/// distinct pages that every lane count in [`LANE_CHOICES`] owns a
/// non-empty shard for some traces.
const PARAMS: TraceParams = TraceParams {
    workers: 3,
    periods: 2,
    k: 12, // iterations per checkpoint period
    slots: &[
        0xff0, 0xffb, 0x1002, 0x10, 0x1100, 0x2040, 0x3ffc, 0x4100, 0x5008, 0x6f80,
    ],
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sharded_merge_equals_serial_and_reference(
        mut ops in prop::collection::vec(op_strategy(PARAMS), 1..64),
        lane_idx in 0..LANE_CHOICES.len(),
        packaging_idx in 0..3usize,
        shuffle_seed in any::<u64>(),
    ) {
        let lanes = LANE_CHOICES[lane_idx];
        let packaging = [
            Packaging::Prebucketed,
            Packaging::Rebucketed,
            Packaging::Mismatched,
        ][packaging_idx];
        // The mismatch case buckets for a lane count the merge won't use.
        let bucket_lanes = match packaging {
            Packaging::Prebucketed => lanes,
            Packaging::Rebucketed => 1,
            Packaging::Mismatched => LANE_CHOICES[(lane_idx + 1) % LANE_CHOICES.len()],
        };
        let base = Heap::Private.base() + 0x4000;
        ops.sort_by_key(|o| (o.worker, o.period, o.pos));

        let mut workers: Vec<TraceWorker> = (0..PARAMS.workers)
            .map(|w| TraceWorker::fresh(w, bucket_lanes))
            .collect();
        // One registered reduction object: its per-worker image is
        // whatever that worker's memory holds at the descriptor, which is
        // identical input for every pipeline.
        let redux_obj = [(ReduxOp::SumI64, base + 0x7000, 8u64)];

        let mut committed_sharded = AddressSpace::new();
        let mut committed_serial = AddressSpace::new();
        let mut committed_ref = AddressSpace::new();

        for period in 0..PARAMS.periods {
            for op in ops.iter().filter(|o| o.period == period) {
                workers[op.worker].apply(op, PARAMS, base);
            }

            // Package all three flavors from the identical worker state:
            // the cumulative contribution for the reference oracle, then
            // one delta collection (it normalizes, so it runs once) whose
            // pages feed both the sharded pipeline (bucketed as the
            // packaging dictates) and the serial pipeline (re-sorted to
            // the canonical ascending single-lane form). Each
            // contribution carries deferred I/O and a reduction image so
            // the central stripping path is exercised too.
            let mut fulls = Vec::new();
            let mut sharded = Vec::new();
            let mut serial = Vec::new();
            for (w, worker) in workers.iter_mut().enumerate() {
                let io = vec![(worker.cur_iter, vec![w as u8, period as u8, b'\n'])];
                fulls.push(collect_contribution(
                    w,
                    period,
                    &worker.mem,
                    &redux_obj,
                    io.clone(),
                ));
                let delta =
                    worker
                        .tracker
                        .collect(w, period, &mut worker.mem, &redux_obj, io);
                serial.push(ascending(&delta));
                sharded.push(match packaging {
                    Packaging::Rebucketed => delta.rebucket(lanes),
                    _ => delta,
                });
            }

            // One shuffled contribution order shared by all pipelines
            // (trap selection is order-dependent; any order must agree).
            let order = shuffled_order(PARAMS.workers, shuffle_seed ^ period);
            let sharded: Vec<Contribution> =
                order.iter().map(|&w| sharded[w].clone()).collect();
            let serial: Vec<Contribution> =
                order.iter().map(|&w| serial[w].clone()).collect();
            let fulls: Vec<Contribution> =
                order.iter().map(|&w| fulls[w].clone()).collect();

            if packaging == Packaging::Mismatched && bucket_lanes != lanes {
                prop_assert!(sharded.iter().all(|c| c.lanes() == bucket_lanes));
            }

            // Sharded pipeline: per-lane merges + the coordinator rule.
            let r_sharded = sharded_merge_round(&sharded, lanes, &committed_sharded);

            // Serial dense pipeline (the `add` path).
            let mut serial_merge = CheckpointMerge::new(1);
            let mut r_serial = Ok(());
            for c in &serial {
                if r_serial.is_ok() {
                    r_serial = serial_merge.add(c.clone(), &committed_serial);
                }
            }

            // Reference oracle.
            let mut reference = ReferenceCheckpointMerge::new(1);
            let mut r_ref = Ok(());
            for c in &fulls {
                if r_ref.is_ok() {
                    r_ref = reference.add(c.clone(), &committed_ref);
                }
            }

            match (&r_sharded, &r_serial, &r_ref) {
                (Err(ts), Err(t1), Err(t2)) => {
                    prop_assert_eq!(ts, t1, "sharded vs serial trap diverged in period {}", period);
                    prop_assert_eq!(ts, t2, "sharded vs reference trap diverged in period {}", period);
                    return Ok(());
                }
                (Ok(_), Ok(()), Ok(())) => {}
                _ => {
                    return Err(TestCaseError::fail(format!(
                        "merge verdicts diverged in period {period}: sharded={:?} serial={:?} reference={:?}",
                        r_sharded.as_ref().map(|_| ()),
                        r_serial,
                        r_ref
                    )));
                }
            }
            let lane_merges = r_sharded.unwrap();

            // Written-byte totals: lane shards partition the written set.
            let sharded_written: usize =
                lane_merges.iter().map(|m| m.written_bytes()).sum();
            prop_assert_eq!(sharded_written, serial_merge.written_bytes());
            prop_assert_eq!(sharded_written, reference.written_bytes());

            // Reduction images flow per contribution, not per page: the
            // engine strips them before sharding and folds centrally in
            // contribution order, byte-identically for every lane count.
            let stripped: Vec<Vec<Vec<u8>>> =
                sharded.iter().map(|c| c.redux_images.clone()).collect();
            let serial_images: Vec<Vec<Vec<u8>>> = (0..serial.len())
                .map(|i| {
                    serial_merge
                        .redux_images
                        .iter()
                        .map(|per_obj| per_obj[i].clone())
                        .collect()
                })
                .collect();
            prop_assert_eq!(&stripped, &serial_images, "reduction images diverged in period {}", period);

            // Deferred I/O: the engine gathers it centrally and sorts by
            // iteration — identical to the serial merge's commit output.
            let mut io_sharded: Vec<(i64, Vec<u8>)> =
                sharded.iter().flat_map(|c| c.io.clone()).collect();
            io_sharded.sort_by_key(|a| a.0);

            // Commit: lane page sets are disjoint, so committing the lane
            // states in any fixed order equals the serial commit.
            for merge in lane_merges {
                let _ = merge.commit(&mut committed_sharded);
            }
            let io_serial = serial_merge.commit(&mut committed_serial);
            let io_ref = reference.commit(&mut committed_ref);
            prop_assert_eq!(&io_sharded, &io_serial, "sharded vs serial I/O diverged in period {}", period);
            prop_assert_eq!(&io_sharded, &io_ref, "sharded vs reference I/O diverged in period {}", period);

            let (lo, hi) = priv_range();
            prop_assert!(
                committed_sharded.range_eq(&committed_serial, lo, hi),
                "sharded vs serial committed bytes diverged in period {period}"
            );
            prop_assert!(
                committed_sharded.range_eq(&committed_ref, lo, hi),
                "sharded vs reference committed bytes diverged in period {period}"
            );
            prop_assert!(
                committed_sharded.range_eq(
                    &committed_serial,
                    lo | SHADOW_BIT,
                    hi | SHADOW_BIT
                ),
                "sharded vs serial shadow marks diverged in period {period}"
            );
            prop_assert!(
                committed_sharded.range_eq(
                    &committed_ref,
                    lo | SHADOW_BIT,
                    hi | SHADOW_BIT
                ),
                "sharded vs reference shadow marks diverged in period {period}"
            );
        }
    }
}
