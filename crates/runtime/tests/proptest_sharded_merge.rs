//! Property-based equivalence for the *sharded* phase-2 merge: for random
//! multi-worker traces, random contribution orders, and every lane count
//! in {1, 2, 4, 7}, merging each `page % lanes` shard independently
//! ([`CheckpointMerge`] fed through [`merge_lane`]) and committing the
//! lane states must be observationally identical to the serial dense
//! merge *and* to the per-address [`ReferenceCheckpointMerge`] oracle:
//! byte-identical committed memory and shadow marks, the identical trap
//! (kind *and* message) under the engine's minimal-(contribution, byte)
//! coordinator rule, identical written-byte totals, identically ordered
//! deferred I/O, and identical reduction-image sequences (the engine
//! folds images centrally in contribution order for every lane count, so
//! equal sequences imply equal folded reduction values).
//!
//! All three contribution packagings are exercised: pre-bucketed by the
//! worker ([`DeltaTracker::with_lanes`]), re-bucketed after the fact
//! ([`Contribution::rebucket`]), and a lane-count mismatch that forces
//! the merge's on-the-fly page filter.

use privateer_ir::inst::SHADOW_BIT;
use privateer_ir::{Heap, ReduxOp};
use privateer_runtime::checkpoint::{
    collect_contribution, merge_lane, CheckpointMerge, Contribution, DeltaTracker, LaneTrap,
    ReferenceCheckpointMerge,
};
use privateer_runtime::worker::WorkerRuntime;
use privateer_vm::{AddressSpace, RuntimeIface, Trap};
use proptest::prelude::*;

const WORKERS: usize = 3;
const PERIODS: u64 = 2;
const K: u64 = 12; // iterations per checkpoint period
const LANE_CHOICES: [usize; 4] = [1, 2, 4, 7];

/// Footprint anchors straddling page boundaries and spanning enough
/// distinct pages that every lane count in [`LANE_CHOICES`] owns a
/// non-empty shard for some traces.
const SLOTS: [u64; 10] = [
    0xff0, 0xffb, 0x1002, 0x10, 0x1100, 0x2040, 0x3ffc, 0x4100, 0x5008, 0x6f80,
];

#[derive(Debug, Clone)]
struct Op {
    worker: usize,
    period: u64,
    pos: u64,
    slot: usize,
    size: u64,
    is_write: bool,
    val: u8,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..WORKERS,
        0..PERIODS,
        0..K / WORKERS as u64,
        0..SLOTS.len(),
        1u64..=8,
        any::<bool>(),
        any::<u8>(),
    )
        .prop_map(|(worker, period, pos, slot, size, is_write, val)| Op {
            worker,
            period,
            pos,
            slot,
            size,
            is_write,
            val,
        })
}

/// How the sharded pipeline's contributions get their lane buckets.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Packaging {
    /// The worker's tracker bucketed for the merge's lane count.
    Prebucketed,
    /// Packaged unbucketed, re-bucketed via [`Contribution::rebucket`].
    Rebucketed,
    /// Bucketed for a *different* lane count: the merge must fall back
    /// to filtering pages on the fly.
    Mismatched,
}

struct Worker {
    rt: WorkerRuntime,
    mem: AddressSpace,
    tracker: DeltaTracker,
    cur_iter: i64,
}

/// The canonical (single-lane) packaging of a contribution: pages in
/// ascending base order, one bucket — what a `merge_lanes = 1` worker
/// would have shipped.
fn ascending(c: &Contribution) -> Contribution {
    let mut c = c.clone();
    c.shadow_pages.sort_by_key(|&(b, _)| b);
    c.priv_pages.sort_by_key(|&(b, _)| b);
    c.shadow_lane_starts = vec![0, c.shadow_pages.len()];
    c.priv_lane_starts = vec![0, c.priv_pages.len()];
    c
}

fn priv_range() -> (u64, u64) {
    let lo = Heap::Private.base();
    (lo, lo + privateer_runtime::heaps::HEAP_SPAN)
}

/// The engine's coordinator rule: merge every lane to completion, then
/// the globally-first trap is the minimal (contribution index, byte
/// address) key across lanes.
fn sharded_merge_round(
    contribs: &[Contribution],
    lanes: usize,
    committed: &AddressSpace,
) -> Result<Vec<CheckpointMerge>, Trap> {
    let mut merges = Vec::new();
    let mut first: Option<((usize, u64), LaneTrap)> = None;
    for lane in 0..lanes {
        let mut merge = CheckpointMerge::new(0);
        if let Err((idx, lt)) = merge_lane(&mut merge, contribs, lane, lanes, committed) {
            let key = (idx, lt.addr);
            if first.as_ref().is_none_or(|(k, _)| key < *k) {
                first = Some((key, lt));
            }
        }
        merges.push(merge);
    }
    match first {
        Some((_, lt)) => Err(lt.trap),
        None => Ok(merges),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn sharded_merge_equals_serial_and_reference(
        mut ops in prop::collection::vec(op_strategy(), 1..64),
        lane_idx in 0..LANE_CHOICES.len(),
        packaging_idx in 0..3usize,
        shuffle_seed in any::<u64>(),
    ) {
        let lanes = LANE_CHOICES[lane_idx];
        let packaging = [
            Packaging::Prebucketed,
            Packaging::Rebucketed,
            Packaging::Mismatched,
        ][packaging_idx];
        // The mismatch case buckets for a lane count the merge won't use.
        let bucket_lanes = match packaging {
            Packaging::Prebucketed => lanes,
            Packaging::Rebucketed => 1,
            Packaging::Mismatched => LANE_CHOICES[(lane_idx + 1) % LANE_CHOICES.len()],
        };
        let base = Heap::Private.base() + 0x4000;
        ops.sort_by_key(|o| (o.worker, o.period, o.pos));

        let mut workers: Vec<Worker> = (0..WORKERS)
            .map(|w| Worker {
                rt: WorkerRuntime::new(w, 0.0, 0),
                mem: AddressSpace::new(),
                tracker: DeltaTracker::with_lanes(bucket_lanes),
                cur_iter: -1,
            })
            .collect();
        // One registered reduction object: its per-worker image is
        // whatever that worker's memory holds at the descriptor, which is
        // identical input for every pipeline.
        let redux_obj = [(ReduxOp::SumI64, base + 0x7000, 8u64)];

        let mut committed_sharded = AddressSpace::new();
        let mut committed_serial = AddressSpace::new();
        let mut committed_ref = AddressSpace::new();

        for period in 0..PERIODS {
            for op in ops.iter().filter(|o| o.period == period) {
                let w = &mut workers[op.worker];
                let iter = (period * K + op.pos * WORKERS as u64) as i64 + op.worker as i64;
                if iter != w.cur_iter {
                    w.cur_iter = iter;
                    w.rt.begin_iteration(iter, (iter as u64) % K).unwrap();
                }
                let addr = base + SLOTS[op.slot];
                if op.is_write {
                    if w.rt.private_write(addr, op.size, &mut w.mem).is_ok() {
                        w.mem.fill(addr, op.size, op.val);
                    }
                } else {
                    let _ = w.rt.private_read(addr, op.size, &mut w.mem);
                }
            }

            // Package all three flavors from the identical worker state:
            // the cumulative contribution for the reference oracle, then
            // one delta collection (it normalizes, so it runs once) whose
            // pages feed both the sharded pipeline (bucketed as the
            // packaging dictates) and the serial pipeline (re-sorted to
            // the canonical ascending single-lane form). Each
            // contribution carries deferred I/O and a reduction image so
            // the central stripping path is exercised too.
            let mut fulls = Vec::new();
            let mut sharded = Vec::new();
            let mut serial = Vec::new();
            for (w, worker) in workers.iter_mut().enumerate() {
                let io = vec![(worker.cur_iter, vec![w as u8, period as u8, b'\n'])];
                fulls.push(collect_contribution(
                    w,
                    period,
                    &worker.mem,
                    &redux_obj,
                    io.clone(),
                ));
                let delta =
                    worker
                        .tracker
                        .collect(w, period, &mut worker.mem, &redux_obj, io);
                serial.push(ascending(&delta));
                sharded.push(match packaging {
                    Packaging::Rebucketed => delta.rebucket(lanes),
                    _ => delta,
                });
            }

            // One shuffled contribution order shared by all pipelines
            // (trap selection is order-dependent; any order must agree).
            let mut order: Vec<usize> = (0..WORKERS).collect();
            let mut s = shuffle_seed ^ period;
            for i in (1..WORKERS).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
                order.swap(i, (s % (i as u64 + 1)) as usize);
            }
            let sharded: Vec<Contribution> =
                order.iter().map(|&w| sharded[w].clone()).collect();
            let serial: Vec<Contribution> =
                order.iter().map(|&w| serial[w].clone()).collect();
            let fulls: Vec<Contribution> =
                order.iter().map(|&w| fulls[w].clone()).collect();

            if packaging == Packaging::Mismatched && bucket_lanes != lanes {
                prop_assert!(sharded.iter().all(|c| c.lanes() == bucket_lanes));
            }

            // Sharded pipeline: per-lane merges + the coordinator rule.
            let r_sharded = sharded_merge_round(&sharded, lanes, &committed_sharded);

            // Serial dense pipeline (the `add` path).
            let mut serial_merge = CheckpointMerge::new(1);
            let mut r_serial = Ok(());
            for c in &serial {
                if r_serial.is_ok() {
                    r_serial = serial_merge.add(c.clone(), &committed_serial);
                }
            }

            // Reference oracle.
            let mut reference = ReferenceCheckpointMerge::new(1);
            let mut r_ref = Ok(());
            for c in &fulls {
                if r_ref.is_ok() {
                    r_ref = reference.add(c.clone(), &committed_ref);
                }
            }

            match (&r_sharded, &r_serial, &r_ref) {
                (Err(ts), Err(t1), Err(t2)) => {
                    prop_assert_eq!(ts, t1, "sharded vs serial trap diverged in period {}", period);
                    prop_assert_eq!(ts, t2, "sharded vs reference trap diverged in period {}", period);
                    return Ok(());
                }
                (Ok(_), Ok(()), Ok(())) => {}
                _ => {
                    return Err(TestCaseError::fail(format!(
                        "merge verdicts diverged in period {period}: sharded={:?} serial={:?} reference={:?}",
                        r_sharded.as_ref().map(|_| ()),
                        r_serial,
                        r_ref
                    )));
                }
            }
            let lane_merges = r_sharded.unwrap();

            // Written-byte totals: lane shards partition the written set.
            let sharded_written: usize =
                lane_merges.iter().map(|m| m.written_bytes()).sum();
            prop_assert_eq!(sharded_written, serial_merge.written_bytes());
            prop_assert_eq!(sharded_written, reference.written_bytes());

            // Reduction images flow per contribution, not per page: the
            // engine strips them before sharding and folds centrally in
            // contribution order, byte-identically for every lane count.
            let stripped: Vec<Vec<Vec<u8>>> =
                sharded.iter().map(|c| c.redux_images.clone()).collect();
            let serial_images: Vec<Vec<Vec<u8>>> = (0..serial.len())
                .map(|i| {
                    serial_merge
                        .redux_images
                        .iter()
                        .map(|per_obj| per_obj[i].clone())
                        .collect()
                })
                .collect();
            prop_assert_eq!(&stripped, &serial_images, "reduction images diverged in period {}", period);

            // Deferred I/O: the engine gathers it centrally and sorts by
            // iteration — identical to the serial merge's commit output.
            let mut io_sharded: Vec<(i64, Vec<u8>)> =
                sharded.iter().flat_map(|c| c.io.clone()).collect();
            io_sharded.sort_by_key(|a| a.0);

            // Commit: lane page sets are disjoint, so committing the lane
            // states in any fixed order equals the serial commit.
            for merge in lane_merges {
                let _ = merge.commit(&mut committed_sharded);
            }
            let io_serial = serial_merge.commit(&mut committed_serial);
            let io_ref = reference.commit(&mut committed_ref);
            prop_assert_eq!(&io_sharded, &io_serial, "sharded vs serial I/O diverged in period {}", period);
            prop_assert_eq!(&io_sharded, &io_ref, "sharded vs reference I/O diverged in period {}", period);

            let (lo, hi) = priv_range();
            prop_assert!(
                committed_sharded.range_eq(&committed_serial, lo, hi),
                "sharded vs serial committed bytes diverged in period {period}"
            );
            prop_assert!(
                committed_sharded.range_eq(&committed_ref, lo, hi),
                "sharded vs reference committed bytes diverged in period {period}"
            );
            prop_assert!(
                committed_sharded.range_eq(
                    &committed_serial,
                    lo | SHADOW_BIT,
                    hi | SHADOW_BIT
                ),
                "sharded vs serial shadow marks diverged in period {period}"
            );
            prop_assert!(
                committed_sharded.range_eq(
                    &committed_ref,
                    lo | SHADOW_BIT,
                    hi | SHADOW_BIT
                ),
                "sharded vs reference shadow marks diverged in period {period}"
            );
        }
    }
}
