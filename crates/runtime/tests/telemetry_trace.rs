//! End-to-end telemetry capture: run a multi-period workload with an
//! injected phase-2 misspeculation under an enabled [`Telemetry`] handle,
//! then validate the exported Chrome trace — well-formed JSON, one named
//! track per worker plus the engine, and exactly one recovery span that
//! covers the misspeculated window.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{Heap, Intrinsic, Module, PlanEntry, Type, Value};
use privateer_runtime::{EngineConfig, EngineEvent, MainRuntime, SequentialPlanRuntime};
use privateer_telemetry::{
    assert_happens_before, chrome_trace, json, json_lines, Phase, Telemetry,
};
use privateer_vm::{load_module, Interp, NopHooks};

const N: i64 = 96;
const PERIOD: u64 = 16;
const WORKERS: usize = 2;
const STRIDE: i64 = 512;

/// Same shape as the multi-period torture test: body(i) privately writes
/// and reads back `arr[i]` at a page-crossing stride and prints the
/// value, so every period commits checkpoint pages and deferred I/O.
fn build() -> Module {
    let mut m = Module::new("telemetry_trace");
    let arr = m.add_global("arr", (N * STRIDE) as u64);
    m.global_mut(arr).heap = Some(Heap::Private);
    for name in ["body", "recovery"] {
        let checks = name == "body";
        let mut b = FunctionBuilder::new(name, vec![Type::I64], None);
        let i = b.param(0);
        let slot = b.gep(Value::Global(arr), i, STRIDE as u64, 0);
        if checks {
            b.intrinsic(Intrinsic::PrivateWrite, vec![slot, Value::const_i64(8)]);
        }
        let v7 = b.mul(Type::I64, i, Value::const_i64(7));
        let v = b.add(Type::I64, v7, Value::const_i64(1));
        b.store(Type::I64, v, slot);
        if checks {
            b.intrinsic(Intrinsic::PrivateRead, vec![slot, Value::const_i64(8)]);
        }
        let back = b.load(Type::I64, slot);
        b.print_i64(back);
        b.ret(None);
        m.add_function(b.finish());
    }
    let body = m.func_by_name("body").unwrap();
    let recovery = m.func_by_name("recovery").unwrap();
    m.plans.push(PlanEntry { body, recovery });
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.intrinsic(
        Intrinsic::ParallelInvoke(0),
        vec![Value::const_i64(0), Value::const_i64(N)],
    );
    b.ret(None);
    m.add_function(b.finish());
    privateer_ir::verify::verify_module(&m).unwrap();
    m
}

fn sequential(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, SequentialPlanRuntime::new(&image));
    interp.run_main().unwrap();
    interp.rt.take_output()
}

#[test]
fn traced_run_exports_recovery_window_per_worker_tracks() {
    let m = build();
    let want = sequential(&m);
    let cfg = EngineConfig {
        workers: WORKERS,
        checkpoint_period: PERIOD,
        inject_rate: 0.0,
        inject_seed: 0,
        ..EngineConfig::default()
    };
    let image = load_module(&m);
    let tel = Telemetry::enabled();
    let mut rt = MainRuntime::with_telemetry(&image, cfg, tel);
    // Fail the phase-2 merge of period 2 (iterations 32..48): periods 0-1
    // commit, the whole of period 2 recovers sequentially, the span
    // resumes at 48.
    rt.inject_phase2_misspec(2);
    let mut interp = Interp::new(&m, &image, NopHooks, rt);
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), want);
    let rt = &interp.rt;
    assert_eq!(rt.stats.misspecs, 1);
    assert!(rt.stats.recovered_iters >= 1);
    assert!(rt.stats.recovery_ns > 0, "recovery wall time not accounted");

    // The stamped Figure 5 log orders detection before recovery before
    // resume.
    assert_happens_before(
        &rt.events,
        |e| matches!(e, EngineEvent::MisspecDetected { .. }),
        |e| matches!(e, EngineEvent::Recovery { .. }),
        "phase-2 detection -> recovery",
    );
    assert_happens_before(
        &rt.events,
        |e| matches!(e, EngineEvent::Recovery { .. }),
        |e| matches!(e, EngineEvent::ParallelResumed { .. }),
        "recovery -> resume",
    );
    // The injected misspeculated window, from the event log.
    let (from, through) = rt
        .events
        .iter()
        .find_map(|e| match e.event {
            EngineEvent::Recovery { from, through } => Some((from, through)),
            _ => None,
        })
        .expect("a recovery event");
    assert!(from >= 32 && through < 48, "window {from}..={through}");

    // Exactly one recovery span in the capture, covering that window.
    let trace = rt.trace();
    assert_eq!(trace.dropped, 0);
    let recoveries: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.phase == Phase::Recovery)
        .collect();
    assert_eq!(recoveries.len(), 1, "expected exactly one recovery span");
    assert_eq!(recoveries[0].a, from);
    assert_eq!(recoveries[0].b, through);
    assert!(recoveries[0].dur_ns > 0);
    // One track per worker, the engine, and the merge-lane track. This
    // workload's periods ship ~8 contribution pages — too few for the
    // adaptive sharding policy (`model::sharding_profitable`) — so every
    // merge runs inline and only lane 0's track carries spans.
    assert_eq!(trace.tracks().len(), WORKERS + 2);
    // Worker-side phases all made it into the capture.
    for phase in [Phase::Iteration, Phase::Package, Phase::Normalize] {
        assert!(
            trace.events.iter().any(|e| e.phase == phase),
            "no {phase:?} span captured"
        );
    }
    // Engine-side merge spans: committed periods *and* the failed attempt.
    let merges = trace
        .events
        .iter()
        .filter(|e| e.phase == Phase::Merge)
        .count();
    assert!(merges > 2, "only {merges} merge spans");

    // The Chrome export is valid JSON with one named track per worker and
    // the recovery span intact.
    let text = chrome_trace(&trace);
    let doc = json::parse(&text).expect("chrome trace is valid JSON");
    let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
    let thread_names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("thread_name"))
        .filter_map(|e| e.get("args").unwrap().get("name").and_then(|n| n.as_str()))
        .collect();
    assert_eq!(thread_names.len(), WORKERS + 2);
    assert!(thread_names.contains(&"engine"));
    assert!(thread_names.contains(&"merge lane 0"));
    for w in 0..WORKERS {
        let name = format!("worker {w}");
        assert!(thread_names.iter().any(|n| *n == name), "missing {name}");
    }
    let rec_events: Vec<_> = events
        .iter()
        .filter(|e| e.get("name").unwrap().as_str() == Some("recovery"))
        .collect();
    assert_eq!(rec_events.len(), 1);
    let args = rec_events[0].get("args").unwrap();
    assert_eq!(args.get("from").unwrap().as_f64(), Some(from as f64));
    assert_eq!(args.get("through").unwrap().as_f64(), Some(through as f64));

    // And the JSONL export parses line by line.
    for line in json_lines(&trace).lines() {
        json::parse(line).expect("each JSONL line parses");
    }
}

#[test]
fn disabled_telemetry_captures_nothing_but_still_counts() {
    let m = build();
    let cfg = EngineConfig {
        workers: WORKERS,
        checkpoint_period: PERIOD,
        inject_rate: 0.0,
        inject_seed: 0,
        ..EngineConfig::default()
    };
    let image = load_module(&m);
    let mut interp = Interp::new(&m, &image, NopHooks, MainRuntime::new(&image, cfg));
    interp.run_main().unwrap();
    let trace = interp.rt.trace();
    // No spans — tracing was off — but the metrics registry is always
    // live, and its counters agree with the EngineStats snapshot views.
    assert!(trace.events.is_empty());
    let counter = |name: &str| {
        trace
            .metrics
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, s)| match s {
                privateer_telemetry::MetricSnapshot::Counter(v) => Some(*v),
                _ => None,
            })
            .unwrap_or_else(|| panic!("metric {name} missing"))
    };
    assert_eq!(counter("engine.checkpoints"), interp.rt.stats.checkpoints);
    assert_eq!(
        counter("checkpoint.contrib_pages"),
        interp.rt.stats.contrib_pages
    );
    assert_eq!(counter("priv.fast_words"), interp.rt.stats.priv_fast_words);
    assert!(interp.rt.stats.priv_fast_words > 0);
}
