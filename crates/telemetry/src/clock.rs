//! The telemetry clock: one process-wide monotonic epoch.
//!
//! Every timestamp in a trace — engine events, worker ring spans, metric
//! snapshots — is nanoseconds since a single calibrated [`Instant`]
//! captured the first time any telemetry object is created. Using one
//! epoch (rather than per-thread or per-object clocks) is what lets the
//! exporters lay worker tracks side by side on a common time axis.

use std::sync::OnceLock;
use std::time::Instant;

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Capture (or return) the process-wide epoch.
///
/// The first caller wins; call this once early (e.g. from
/// [`crate::Telemetry::enabled`]) so that no later timestamp can precede
/// the epoch.
pub fn calibrate() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

/// Nanoseconds since the epoch, saturating at zero.
#[inline]
pub fn now_ns() -> u64 {
    calibrate().elapsed().as_nanos() as u64
}

/// Convert an [`Instant`] (e.g. a span's start captured with
/// `Instant::now()`) to nanoseconds since the epoch.
///
/// Instants taken before the epoch was calibrated map to zero.
#[inline]
pub fn instant_ns(t: Instant) -> u64 {
    t.saturating_duration_since(calibrate()).as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotone_and_consistent() {
        let a = now_ns();
        let t = Instant::now();
        let b = now_ns();
        assert!(a <= b);
        let tn = instant_ns(t);
        assert!(a <= tn && tn <= b, "{a} <= {tn} <= {b}");
    }

    #[test]
    fn pre_epoch_instants_saturate() {
        // An instant captured before `calibrate` cannot underflow; with
        // the epoch already set by other tests this is just a smoke check
        // that conversion never panics.
        let t = Instant::now();
        let _ = instant_ns(t);
    }
}
