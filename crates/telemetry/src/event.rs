//! Typed trace events: compact fixed-size span records plus the
//! stamped-event wrapper used for richer, low-rate event logs.

/// The phase a span (or instant) belongs to. Phases map one-to-one onto
/// the lanes of the paper's Figure 5 timeline plus the validation
/// primitives underneath them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// A whole `parallel_invoke` region (engine track).
    Invoke,
    /// One speculative parallel span `lo..hi` (engine track).
    ParallelSpan,
    /// One speculative loop iteration (worker track; `a` = iteration).
    Iteration,
    /// A `private_read` validation batch (`a` = addr, `b` = bytes).
    PrivRead,
    /// A `private_write` validation batch (`a` = addr, `b` = bytes).
    PrivWrite,
    /// Shadow-metadata normalization after a contribution.
    Normalize,
    /// Packaging a delta contribution (`a` = period, `b` = pages).
    Package,
    /// Phase-2 checkpoint merge (`a` = period, `b` = contributions).
    Merge,
    /// One lane of a sharded phase-2 merge (merge-lane track; `a` =
    /// period, `b` = pages owned by the lane).
    MergeLane,
    /// Checkpoint commit (`a` = period).
    Commit,
    /// Sequential misspeculation recovery (`a` = from, `b` = through).
    Recovery,
    /// An interpreted loop observed via `TraceHooks` (`a` = loop index,
    /// `b` = trip count).
    Loop,
    /// Instant: misspeculation detected (`a` = iteration).
    Misspec,
    /// Instant: parallel execution resumed (`a` = iteration).
    Resume,
}

impl Phase {
    /// Short stable name (used as the Chrome trace event name and the
    /// JSONL `phase` field).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Invoke => "invoke",
            Phase::ParallelSpan => "parallel",
            Phase::Iteration => "iteration",
            Phase::PrivRead => "priv_read",
            Phase::PrivWrite => "priv_write",
            Phase::Normalize => "normalize",
            Phase::Package => "package",
            Phase::Merge => "merge",
            Phase::MergeLane => "merge_lane",
            Phase::Commit => "commit",
            Phase::Recovery => "recovery",
            Phase::Loop => "loop",
            Phase::Misspec => "misspec",
            Phase::Resume => "resume",
        }
    }

    /// Chrome trace category (one lane family per subsystem).
    pub fn category(self) -> &'static str {
        match self {
            Phase::Invoke | Phase::ParallelSpan | Phase::Misspec | Phase::Resume => "engine",
            Phase::Iteration | Phase::Loop => "exec",
            Phase::PrivRead | Phase::PrivWrite => "privacy",
            Phase::Normalize | Phase::Package | Phase::Merge | Phase::MergeLane | Phase::Commit => {
                "checkpoint"
            }
            Phase::Recovery => "recovery",
        }
    }

    /// Names of the two argument payload slots for this phase (empty
    /// string = slot unused).
    pub fn arg_names(self) -> (&'static str, &'static str) {
        match self {
            Phase::Invoke | Phase::ParallelSpan => ("lo", "hi"),
            Phase::Iteration => ("iter", ""),
            Phase::PrivRead | Phase::PrivWrite => ("addr", "bytes"),
            Phase::Normalize => ("period", ""),
            Phase::Package => ("period", "pages"),
            Phase::Merge => ("period", "contribs"),
            Phase::MergeLane => ("period", "pages"),
            Phase::Commit => ("period", ""),
            Phase::Recovery => ("from", "through"),
            Phase::Loop => ("loop", "trips"),
            Phase::Misspec | Phase::Resume => ("iter", ""),
        }
    }
}

/// Track 0 is the engine (main thread); worker `w` records on track
/// `w + 1`.
pub const ENGINE_TRACK: u32 = 0;

/// Merge lane `l` of a sharded checkpoint merge records on track
/// `MERGE_LANE_TRACK_BASE + l`. The high base keeps lane tracks clear of
/// the `worker w → w + 1` range without the exporter having to know the
/// worker count.
pub const MERGE_LANE_TRACK_BASE: u32 = 1 << 30;

/// A compact span or instant record: fixed size, no allocation, suitable
/// for the per-worker ring. `dur_ns == 0` means an instant event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Start, nanoseconds since the telemetry epoch ([`crate::clock`]).
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// What this span is.
    pub phase: Phase,
    /// Which track (worker lane) it belongs to.
    pub track: u32,
    /// First payload slot (meaning per [`Phase::arg_names`]).
    pub a: i64,
    /// Second payload slot.
    pub b: i64,
}

/// A timestamped, sequence-numbered event. The sequence number comes from
/// the owning [`crate::Telemetry`] handle and totally orders events
/// stamped through it; the timestamp comes from the shared clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stamped<E> {
    /// Nanoseconds since the telemetry epoch.
    pub ts_ns: u64,
    /// Session-wide sequence number (strictly increasing per handle).
    pub seq: u64,
    /// The event payload.
    pub event: E,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_unique() {
        let phases = [
            Phase::Invoke,
            Phase::ParallelSpan,
            Phase::Iteration,
            Phase::PrivRead,
            Phase::PrivWrite,
            Phase::Normalize,
            Phase::Package,
            Phase::Merge,
            Phase::MergeLane,
            Phase::Commit,
            Phase::Recovery,
            Phase::Loop,
            Phase::Misspec,
            Phase::Resume,
        ];
        let mut names: Vec<&str> = phases.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), phases.len());
    }
}
