//! Trace exporters: JSON-lines and Chrome `trace_event` format.
//!
//! The Chrome format opens directly in `chrome://tracing` and Perfetto:
//! one process, one named thread track per worker (track 0 is the
//! engine), complete (`"ph":"X"`) events for spans and instant
//! (`"ph":"i"`) events for point occurrences. Timestamps are microseconds
//! since the telemetry epoch.

use crate::event::SpanEvent;
use crate::registry::MetricSnapshot;
use std::fmt::Write;

/// A finished trace: every recorded event (engine + all workers) plus a
/// snapshot of the metrics registry.
#[derive(Debug, Default)]
pub struct TraceData {
    /// All events, sorted by `ts_ns`.
    pub events: Vec<SpanEvent>,
    /// Metrics registry snapshot at capture time.
    pub metrics: Vec<(String, MetricSnapshot)>,
    /// Events lost to ring overwrites or sink capacity across all tracks.
    pub dropped: u64,
}

impl TraceData {
    /// Sum of span durations per phase name, in nanoseconds.
    pub fn phase_totals(&self) -> Vec<(&'static str, u64)> {
        let mut totals: Vec<(&'static str, u64)> = Vec::new();
        for ev in &self.events {
            let name = ev.phase.name();
            match totals.iter_mut().find(|(n, _)| *n == name) {
                Some((_, t)) => *t += ev.dur_ns,
                None => totals.push((name, ev.dur_ns)),
            }
        }
        totals
    }

    /// The distinct tracks present, sorted.
    pub fn tracks(&self) -> Vec<u32> {
        let mut t: Vec<u32> = self.events.iter().map(|e| e.track).collect();
        t.sort_unstable();
        t.dedup();
        t
    }
}

fn push_args(out: &mut String, ev: &SpanEvent) {
    let (an, bn) = ev.phase.arg_names();
    out.push('{');
    if !an.is_empty() {
        let _ = write!(out, "\"{an}\":{}", ev.a);
    }
    if !bn.is_empty() {
        if !an.is_empty() {
            out.push(',');
        }
        let _ = write!(out, "\"{bn}\":{}", ev.b);
    }
    out.push('}');
}

/// Render a trace as Chrome `trace_event` JSON (the "JSON object format":
/// `{"traceEvents": [...]}`), loadable in `chrome://tracing` / Perfetto.
pub fn chrome_trace(trace: &TraceData) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: String, out: &mut String| {
        if !std::mem::take(&mut first) {
            out.push_str(",\n");
        }
        out.push_str(&line);
    };
    emit(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"privateer\"}}"
            .to_string(),
        &mut out,
    );
    for track in trace.tracks() {
        let name = track_name(track);
        emit(
            format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            ),
            &mut out,
        );
        emit(
            format!(
                "{{\"name\":\"thread_sort_index\",\"ph\":\"M\",\"pid\":1,\"tid\":{track},\
                 \"args\":{{\"sort_index\":{track}}}}}"
            ),
            &mut out,
        );
    }
    for ev in &trace.events {
        let ts = ev.ts_ns as f64 / 1_000.0;
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "{{\"name\":\"{}\",\"cat\":\"{}\",",
            ev.phase.name(),
            ev.phase.category()
        );
        if ev.dur_ns == 0 {
            let _ = write!(line, "\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts:.3},");
        } else {
            let dur = ev.dur_ns as f64 / 1_000.0;
            let _ = write!(line, "\"ph\":\"X\",\"ts\":{ts:.3},\"dur\":{dur:.3},");
        }
        let _ = write!(line, "\"pid\":1,\"tid\":{},\"args\":", ev.track);
        push_args(&mut line, ev);
        line.push('}');
        emit(line, &mut out);
    }
    out.push_str("\n]}\n");
    out
}

/// Render a trace as JSON lines: one event object per line, followed by
/// one `{"metric": ...}` line per registry entry and a trailing summary
/// line. Convenient for `grep`/`jq`-style ad-hoc analysis.
pub fn json_lines(trace: &TraceData) -> String {
    let mut out = String::with_capacity(trace.events.len() * 96 + 1024);
    for ev in &trace.events {
        let _ = write!(
            out,
            "{{\"phase\":\"{}\",\"cat\":\"{}\",\"track\":{},\"ts_ns\":{},\"dur_ns\":{},\"args\":",
            ev.phase.name(),
            ev.phase.category(),
            ev.track,
            ev.ts_ns,
            ev.dur_ns,
        );
        push_args(&mut out, ev);
        out.push_str("}\n");
    }
    for (name, snap) in &trace.metrics {
        match snap {
            MetricSnapshot::Counter(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{name}\",\"kind\":\"counter\",\"value\":{v}}}"
                );
            }
            MetricSnapshot::Gauge(v) => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{name}\",\"kind\":\"gauge\",\"value\":{v}}}"
                );
            }
            MetricSnapshot::Histogram {
                count,
                sum,
                max_bound,
            } => {
                let _ = writeln!(
                    out,
                    "{{\"metric\":\"{name}\",\"kind\":\"histogram\",\"count\":{count},\
                     \"sum\":{sum},\"max_bound\":{max_bound}}}"
                );
            }
        }
    }
    let _ = writeln!(
        out,
        "{{\"summary\":{{\"events\":{},\"dropped\":{}}}}}",
        trace.events.len(),
        trace.dropped
    );
    out
}

/// Display name of a track.
pub fn track_name(track: u32) -> String {
    use crate::event::{ENGINE_TRACK, MERGE_LANE_TRACK_BASE};
    if track == ENGINE_TRACK {
        "engine".to_string()
    } else if track >= MERGE_LANE_TRACK_BASE {
        format!("merge lane {}", track - MERGE_LANE_TRACK_BASE)
    } else {
        format!("worker {}", track - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;
    use crate::json;

    fn sample() -> TraceData {
        TraceData {
            events: vec![
                SpanEvent {
                    ts_ns: 1_000,
                    dur_ns: 2_000,
                    phase: Phase::Merge,
                    track: 0,
                    a: 3,
                    b: 2,
                },
                SpanEvent {
                    ts_ns: 1_500,
                    dur_ns: 0,
                    phase: Phase::Misspec,
                    track: 0,
                    a: 17,
                    b: 0,
                },
                SpanEvent {
                    ts_ns: 2_000,
                    dur_ns: 500,
                    phase: Phase::Iteration,
                    track: 2,
                    a: 9,
                    b: 0,
                },
            ],
            metrics: vec![("priv.fast_words".to_string(), MetricSnapshot::Counter(42))],
            dropped: 0,
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_tracks() {
        let text = chrome_trace(&sample());
        let doc = json::parse(&text).expect("valid JSON");
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 process_name + 2 tracks × 2 metadata + 3 events.
        assert_eq!(events.len(), 1 + 4 + 3);
        let names: Vec<&str> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .filter_map(|e| e.get("args").unwrap().get("name").and_then(|n| n.as_str()))
            .collect();
        assert!(names.contains(&"engine"));
        assert!(names.contains(&"worker 1"));
        let merge = events
            .iter()
            .find(|e| e.get("name").unwrap().as_str() == Some("merge"))
            .unwrap();
        assert_eq!(merge.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(merge.get("dur").unwrap().as_f64(), Some(2.0));
        assert_eq!(
            merge.get("args").unwrap().get("period").unwrap().as_f64(),
            Some(3.0)
        );
    }

    #[test]
    fn json_lines_each_parse() {
        let text = json_lines(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3 + 1 + 1);
        for line in lines {
            json::parse(line).expect("each line is a JSON object");
        }
    }

    #[test]
    fn phase_totals_sum_durations() {
        let t = sample().phase_totals();
        assert!(t.contains(&("merge", 2_000)));
        assert!(t.contains(&("iteration", 500)));
    }
}
