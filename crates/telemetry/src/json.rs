//! A minimal JSON reader used to *validate* exported traces.
//!
//! The build environment is offline (no serde), and the exporters write
//! JSON by hand — so the test suite and `privtrace --check` need an
//! independent parser to prove the output is well-formed. This is a
//! strict recursive-descent parser for the full JSON grammar (RFC 8259)
//! minus `\u` surrogate-pair pedantry, plus convenience accessors.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// A parse error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the error.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
///
/// # Errors
///
/// Returns a [`ParseError`] naming the first offending byte.
pub fn parse(s: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        b: s.as_bytes(),
        i: 0,
    };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != p.b.len() {
        return Err(p.err("trailing garbage"));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.i,
            msg: msg.to_string(),
        }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", c as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string().map(Json::Str),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'n') => self.lit("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.eat(b':')?;
            self.ws();
            let v = self.value()?;
            m.insert(k, v);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Json::Arr(v));
        }
        loop {
            self.ws();
            v.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Json::Arr(v));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let c = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.i += 1;
                    match c {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.i += 4;
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control char in string")),
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let start = self.i;
                    self.i += 1;
                    while self.i < self.b.len() && (self.b[self.i] & 0xC0) == 0x80 {
                        self.i += 1;
                    }
                    let chunk = std::str::from_utf8(&self.b[start..self.i])
                        .map_err(|_| self.err("invalid UTF-8"))?;
                    s.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).expect("ascii");
        text.parse::<f64>().map(Json::Num).map_err(|_| ParseError {
            at: start,
            msg: format!("bad number `{text}`"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_structures() {
        let v = parse(r#"{"a":[1,2.5,-3e2],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{} extra").is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("01a").is_err());
    }

    #[test]
    fn unicode_escapes() {
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
