#![warn(missing_docs)]
//! # privateer-telemetry
//!
//! Low-overhead observability for the Privateer speculative runtime: a
//! shared monotonic [`clock`], per-worker fixed-capacity event rings
//! ([`ring::EventRing`]), a [`registry::MetricsRegistry`] of named
//! counters/gauges/histograms, and exporters ([`export`]) that render a
//! run as JSON lines or as Chrome `trace_event` JSON loadable in
//! `chrome://tracing`/Perfetto.
//!
//! ## Handles and overhead
//!
//! The [`Telemetry`] handle has two modes:
//!
//! * **Disabled** ([`Telemetry::disabled`]) — the default. Event
//!   recording compiles to a single predictable branch
//!   ([`WorkerTelemetry::enabled`] is `#[inline]` and `false`); nothing
//!   is allocated, timed or stored. The `telemetry_disabled_overhead`
//!   criterion bench in `privateer-bench` enforces the contract that a
//!   hot `private_write` loop pays < 3% versus the same loop with the
//!   instrumentation compiled out.
//! * **Enabled** ([`Telemetry::enabled`]) — each worker records spans
//!   into its own ring (no locks, no cross-thread traffic on the hot
//!   path); rings are absorbed into the shared sink when the worker
//!   finishes.
//!
//! The metrics registry is *always* live — registry updates happen at
//! drain points (end of a period or span), never per byte, so its cost
//! is a handful of relaxed atomic adds per checkpoint period.
//!
//! ## Event ordering
//!
//! [`Telemetry::stamp`] wraps an event with a timestamp from the shared
//! clock and a strictly increasing sequence number, giving consumers a
//! total order to assert on ([`order::assert_happens_before`]).

pub mod clock;
pub mod event;
pub mod export;
pub mod json;
pub mod order;
pub mod registry;
pub mod ring;

pub use event::{Phase, SpanEvent, Stamped, ENGINE_TRACK, MERGE_LANE_TRACK_BASE};
pub use export::{chrome_trace, json_lines, TraceData};
pub use order::{assert_happens_before, assert_stamps_ordered};
pub use registry::{Counter, Gauge, Histogram, MetricSnapshot, MetricsRegistry};
pub use ring::EventRing;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Default per-worker ring capacity (events).
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

#[derive(Debug)]
struct TraceShared {
    sink: Mutex<Vec<SpanEvent>>,
    ring_capacity: usize,
    dropped: AtomicU64,
}

/// The session-wide telemetry handle: clock + sequence source, metrics
/// registry, and (when enabled) the trace sink worker rings drain into.
/// Cloning shares all state.
#[derive(Debug, Clone)]
pub struct Telemetry {
    seq: Arc<AtomicU64>,
    registry: MetricsRegistry,
    trace: Option<Arc<TraceShared>>,
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::disabled()
    }
}

impl Telemetry {
    /// A handle with tracing off. Stamping and the metrics registry still
    /// work; span recording is a no-op branch.
    pub fn disabled() -> Telemetry {
        Telemetry {
            seq: Arc::new(AtomicU64::new(0)),
            registry: MetricsRegistry::new(),
            trace: None,
        }
    }

    /// A handle with tracing on, using [`DEFAULT_RING_CAPACITY`] events
    /// per worker ring. Calibrates the shared clock.
    pub fn enabled() -> Telemetry {
        Telemetry::with_capacity(DEFAULT_RING_CAPACITY)
    }

    /// A tracing handle with an explicit per-ring event capacity.
    pub fn with_capacity(ring_capacity: usize) -> Telemetry {
        clock::calibrate();
        Telemetry {
            seq: Arc::new(AtomicU64::new(0)),
            registry: MetricsRegistry::new(),
            trace: Some(Arc::new(TraceShared {
                sink: Mutex::new(Vec::new()),
                ring_capacity,
                dropped: AtomicU64::new(0),
            })),
        }
    }

    /// Whether span recording is live.
    #[inline]
    pub fn is_tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The metrics registry (always live).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Wrap `event` with a clock timestamp and the next sequence number.
    #[inline]
    pub fn stamp<E>(&self, event: E) -> Stamped<E> {
        Stamped {
            ts_ns: clock::now_ns(),
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            event,
        }
    }

    /// A recording handle for `track` (0 = engine, `w + 1` = worker `w`)
    /// backed by its own ring; a no-op handle when tracing is off.
    pub fn worker(&self, track: u32) -> WorkerTelemetry {
        match &self.trace {
            Some(t) => WorkerTelemetry {
                track,
                ring: EventRing::new(t.ring_capacity),
                active: t.ring_capacity > 0,
            },
            None => WorkerTelemetry::disabled(),
        }
    }

    /// Record one event directly into the sink (engine-side, off the hot
    /// path — takes a lock).
    pub fn record(&self, ev: SpanEvent) {
        if let Some(t) = &self.trace {
            t.sink.lock().unwrap().push(ev);
        }
    }

    /// Absorb a finished worker's telemetry (its ring) into the sink.
    pub fn absorb(&self, worker: WorkerTelemetry) {
        let Some(t) = &self.trace else { return };
        let ring = worker.ring;
        t.dropped.fetch_add(ring.overwritten(), Ordering::Relaxed);
        t.sink.lock().unwrap().extend(ring.into_events());
    }

    /// Snapshot the trace collected so far: all sink events sorted by
    /// timestamp, plus the current metrics. Non-destructive.
    pub fn trace(&self) -> TraceData {
        let (mut events, dropped) = match &self.trace {
            Some(t) => (
                t.sink.lock().unwrap().clone(),
                t.dropped.load(Ordering::Relaxed),
            ),
            None => (Vec::new(), 0),
        };
        events.sort_by_key(|e| (e.ts_ns, e.track));
        TraceData {
            events,
            metrics: self.registry.snapshot(),
            dropped,
        }
    }
}

/// A per-thread recording handle: owns its ring, records without locks.
/// When created from a disabled [`Telemetry`] every method is an
/// `#[inline]` early-return on one boolean.
#[derive(Debug)]
pub struct WorkerTelemetry {
    track: u32,
    ring: EventRing,
    active: bool,
}

impl WorkerTelemetry {
    /// A permanently inactive handle.
    pub fn disabled() -> WorkerTelemetry {
        WorkerTelemetry {
            track: 0,
            ring: EventRing::new(0),
            active: false,
        }
    }

    /// Whether this handle records anything. Callers can skip timestamp
    /// capture entirely when this is `false`.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.active
    }

    /// The track this handle records onto.
    pub fn track(&self) -> u32 {
        self.track
    }

    /// Record a span with explicit epoch-relative timestamps.
    #[inline]
    pub fn span(&mut self, phase: Phase, ts_ns: u64, dur_ns: u64, a: i64, b: i64) {
        if !self.active {
            return;
        }
        self.record_span(phase, ts_ns, dur_ns, a, b);
    }

    /// Record a span that started at `t0` and ends now.
    #[inline]
    pub fn span_since(&mut self, phase: Phase, t0: Instant, a: i64, b: i64) {
        if !self.active {
            return;
        }
        let dur_ns = t0.elapsed().as_nanos() as u64;
        self.record_span(phase, clock::instant_ns(t0), dur_ns, a, b);
    }

    /// Record an instant event (duration 0) at the current time.
    #[inline]
    pub fn instant(&mut self, phase: Phase, a: i64, b: i64) {
        if !self.active {
            return;
        }
        self.record_span(phase, clock::now_ns(), 0, a, b);
    }

    // Kept out of line so the `#[inline]` wrappers reduce to a
    // test-and-branch at their (hot, disabled-by-default) call sites.
    #[cold]
    #[inline(never)]
    fn record_span(&mut self, phase: Phase, ts_ns: u64, dur_ns: u64, a: i64, b: i64) {
        self.ring.push(SpanEvent {
            ts_ns,
            dur_ns,
            phase,
            track: self.track,
            a,
            b,
        });
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let tel = Telemetry::disabled();
        assert!(!tel.is_tracing());
        let mut w = tel.worker(1);
        assert!(!w.enabled());
        w.span(Phase::Iteration, 0, 10, 1, 0);
        w.instant(Phase::Misspec, 3, 0);
        assert!(w.is_empty());
        tel.absorb(w);
        assert!(tel.trace().events.is_empty());
    }

    #[test]
    fn enabled_collects_across_tracks() {
        let tel = Telemetry::with_capacity(16);
        let mut w0 = tel.worker(1);
        let mut w1 = tel.worker(2);
        w0.span(Phase::Iteration, 5, 10, 0, 0);
        w1.span(Phase::Iteration, 3, 10, 1, 0);
        tel.record(SpanEvent {
            ts_ns: 7,
            dur_ns: 2,
            phase: Phase::Merge,
            track: 0,
            a: 0,
            b: 2,
        });
        tel.absorb(w0);
        tel.absorb(w1);
        let trace = tel.trace();
        assert_eq!(trace.events.len(), 3);
        // Sorted by timestamp regardless of arrival order.
        let ts: Vec<u64> = trace.events.iter().map(|e| e.ts_ns).collect();
        assert_eq!(ts, vec![3, 5, 7]);
        assert_eq!(trace.tracks(), vec![0, 1, 2]);
        assert_eq!(trace.dropped, 0);
    }

    #[test]
    fn stamps_are_ordered() {
        let tel = Telemetry::disabled();
        let a = tel.stamp('a');
        let b = tel.stamp('b');
        assert!(a.seq < b.seq);
        assert!(a.ts_ns <= b.ts_ns);
        order::assert_stamps_ordered(&[a, b]);
    }

    #[test]
    fn ring_overflow_is_counted_as_dropped() {
        let tel = Telemetry::with_capacity(2);
        let mut w = tel.worker(1);
        for i in 0..5 {
            w.span(Phase::Iteration, i, 1, i as i64, 0);
        }
        tel.absorb(w);
        let trace = tel.trace();
        assert_eq!(trace.events.len(), 2);
        assert_eq!(trace.dropped, 3);
    }
}
