//! Event-ordering assertions for tests.
//!
//! The engine's timeline tests used to hand-roll index arithmetic over
//! the event log; these helpers express the same happens-before
//! properties declaratively over [`Stamped`] events, using the sequence
//! numbers (which totally order events stamped through one handle).

use crate::event::Stamped;

/// Assert that every event matching `after` is preceded (strictly, by
/// sequence number) by at least one event matching `before`, and that
/// both predicates match at least once.
///
/// `what` names the property in the panic message, e.g.
/// `"misspec detection -> recovery"`.
///
/// # Panics
///
/// Panics with `what` and the offending sequence numbers when the
/// property does not hold.
#[track_caller]
pub fn assert_happens_before<E>(
    events: &[Stamped<E>],
    before: impl Fn(&E) -> bool,
    after: impl Fn(&E) -> bool,
    what: &str,
) {
    let first_before = events
        .iter()
        .filter(|e| before(&e.event))
        .map(|e| e.seq)
        .min();
    let Some(first_before) = first_before else {
        panic!("happens-before `{what}`: no event matches the `before` predicate");
    };
    let mut matched_after = false;
    for e in events.iter().filter(|e| after(&e.event)) {
        matched_after = true;
        assert!(
            first_before < e.seq,
            "happens-before `{what}`: event at seq {} is not preceded by any \
             `before` match (earliest is seq {first_before})",
            e.seq,
        );
    }
    assert!(
        matched_after,
        "happens-before `{what}`: no event matches the `after` predicate"
    );
}

/// Assert the log's sequence numbers are strictly increasing and its
/// timestamps non-decreasing — i.e. the log was recorded in stamping
/// order by a single owner.
///
/// # Panics
///
/// Panics naming the first out-of-order pair.
#[track_caller]
pub fn assert_stamps_ordered<E>(events: &[Stamped<E>]) {
    for w in events.windows(2) {
        assert!(
            w[0].seq < w[1].seq,
            "sequence numbers out of order: {} then {}",
            w[0].seq,
            w[1].seq
        );
        assert!(
            w[0].ts_ns <= w[1].ts_ns,
            "timestamps regress: {} ns (seq {}) then {} ns (seq {})",
            w[0].ts_ns,
            w[0].seq,
            w[1].ts_ns,
            w[1].seq
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log(pairs: &[(u64, char)]) -> Vec<Stamped<char>> {
        pairs
            .iter()
            .map(|&(seq, c)| Stamped {
                ts_ns: seq * 10,
                seq,
                event: c,
            })
            .collect()
    }

    #[test]
    fn accepts_ordered_pairs() {
        let ev = log(&[(0, 'a'), (1, 'b'), (2, 'a'), (3, 'b')]);
        assert_happens_before(&ev, |e| *e == 'a', |e| *e == 'b', "a before b");
        assert_stamps_ordered(&ev);
    }

    #[test]
    #[should_panic(expected = "not preceded")]
    fn rejects_inverted_pairs() {
        let ev = log(&[(0, 'b'), (1, 'a')]);
        assert_happens_before(&ev, |e| *e == 'a', |e| *e == 'b', "a before b");
    }

    #[test]
    #[should_panic(expected = "no event matches the `before`")]
    fn requires_a_before_witness() {
        let ev = log(&[(0, 'b')]);
        assert_happens_before(&ev, |e| *e == 'a', |e| *e == 'b', "a before b");
    }

    #[test]
    #[should_panic(expected = "no event matches the `after`")]
    fn requires_an_after_witness() {
        let ev = log(&[(0, 'a')]);
        assert_happens_before(&ev, |e| *e == 'a', |e| *e == 'b', "a before b");
    }
}
