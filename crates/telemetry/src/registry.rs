//! The metrics registry: named counters, gauges and histograms.
//!
//! Naming convention: dot-separated lowercase paths, subsystem first —
//! `priv.fast_words`, `checkpoint.contrib_pages`, `engine.misspecs`,
//! `recovery.iters`. Handles are cheap `Arc` clones over atomics;
//! registration takes a lock, updates do not. Subsystems register their
//! handles once (at construction) and increment lock-free thereafter —
//! typically at drain points (end of a period or span), never per byte.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value gauge.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

const HIST_BUCKETS: usize = 64;

/// A power-of-two-bucketed histogram of `u64` samples (e.g. span
/// nanoseconds): bucket `i` counts samples with `bit_length == i`, i.e.
/// values in `[2^(i-1), 2^i)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    buckets: Arc<[AtomicU64; HIST_BUCKETS]>,
    count: Arc<AtomicU64>,
    sum: Arc<AtomicU64>,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: Arc::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: Arc::new(AtomicU64::new(0)),
            sum: Arc::new(AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        let b = (64 - v.leading_zeros()) as usize; // 0 for v == 0
        self.buckets[b.min(HIST_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean sample (0 if empty).
    pub fn mean(&self) -> f64 {
        let c = self.count();
        if c == 0 {
            0.0
        } else {
            self.sum() as f64 / c as f64
        }
    }

    /// Upper bound (exclusive) of the highest non-empty bucket — a cheap
    /// max estimate.
    pub fn max_bound(&self) -> u64 {
        for i in (0..HIST_BUCKETS).rev() {
            if self.buckets[i].load(Ordering::Relaxed) > 0 {
                return 1u64.checked_shl(i as u32).unwrap_or(u64::MAX);
            }
        }
        0
    }
}

#[derive(Debug, Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A point-in-time view of one metric, for export.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram summary.
    Histogram {
        /// Sample count.
        count: u64,
        /// Sample sum.
        sum: u64,
        /// Exclusive upper bound of the highest non-empty bucket.
        max_bound: u64,
    },
}

/// The registry: name → metric. Cloning shares the underlying map.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    metrics: Arc<Mutex<BTreeMap<String, Metric>>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Get or register the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Counter::default()))
        {
            Metric::Counter(c) => c.clone(),
            other => panic!("metric `{name}` is already a {}", kind_name(other)),
        }
    }

    /// Get or register the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Gauge::default()))
        {
            Metric::Gauge(g) => g.clone(),
            other => panic!("metric `{name}` is already a {}", kind_name(other)),
        }
    }

    /// Get or register the histogram `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut m = self.metrics.lock().unwrap();
        match m
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::default()))
        {
            Metric::Histogram(h) => h.clone(),
            other => panic!("metric `{name}` is already a {}", kind_name(other)),
        }
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let m = self.metrics.lock().unwrap();
        m.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        max_bound: h.max_bound(),
                    },
                };
                (name.clone(), snap)
            })
            .collect()
    }
}

fn kind_name(m: &Metric) -> &'static str {
    match m {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let r = MetricsRegistry::new();
        let a = r.counter("priv.fast_words");
        let b = r.counter("priv.fast_words");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
        assert_eq!(
            r.snapshot(),
            vec![("priv.fast_words".to_string(), MetricSnapshot::Counter(7))]
        );
    }

    #[test]
    fn gauge_and_histogram() {
        let r = MetricsRegistry::new();
        let g = r.gauge("engine.workers");
        g.set(8);
        assert_eq!(g.get(), 8);
        let h = r.histogram("merge.ns");
        h.record(0);
        h.record(5);
        h.record(1000);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 1005);
        assert!(h.max_bound() >= 1000);
        assert!((h.mean() - 335.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "already a counter")]
    fn kind_mismatch_panics() {
        let r = MetricsRegistry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn snapshot_is_sorted() {
        let r = MetricsRegistry::new();
        let _ = r.counter("b.two");
        let _ = r.counter("a.one");
        let names: Vec<String> = r.snapshot().into_iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a.one", "b.two"]);
    }
}
