//! A fixed-capacity, single-owner event ring.
//!
//! Each worker thread owns one ring: recording is a bounds check and an
//! array store — no locks, no allocation after construction. When the
//! ring is full the *oldest* events are overwritten (the tail of a run —
//! where misspeculation and recovery live — is usually the interesting
//! part), and the number of overwritten events is counted so exporters
//! can report truncation instead of silently pretending full coverage.

use crate::event::SpanEvent;

/// Fixed-capacity circular buffer of [`SpanEvent`]s.
#[derive(Debug)]
pub struct EventRing {
    buf: Vec<SpanEvent>,
    cap: usize,
    /// Index of the next write when the ring has wrapped.
    head: usize,
    /// Events overwritten after the ring filled.
    overwritten: u64,
}

impl EventRing {
    /// A ring holding up to `capacity` events (0 = record nothing).
    pub fn new(capacity: usize) -> EventRing {
        EventRing {
            buf: Vec::with_capacity(capacity),
            cap: capacity,
            head: 0,
            overwritten: 0,
        }
    }

    /// Record one event. O(1), never allocates beyond the initial
    /// capacity; overwrites the oldest event once full.
    #[inline]
    pub fn push(&mut self, ev: SpanEvent) {
        if self.cap == 0 {
            return;
        }
        if self.buf.len() < self.cap {
            self.buf.push(ev);
        } else {
            self.buf[self.head] = ev;
            self.head = (self.head + 1) % self.cap;
            self.overwritten += 1;
        }
    }

    /// Events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many events were overwritten after the ring filled.
    pub fn overwritten(&self) -> u64 {
        self.overwritten
    }

    /// Drain the ring into a vector in recording order (oldest surviving
    /// event first).
    pub fn into_events(mut self) -> Vec<SpanEvent> {
        self.buf.rotate_left(self.head);
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Phase;

    fn ev(i: i64) -> SpanEvent {
        SpanEvent {
            ts_ns: i as u64,
            dur_ns: 1,
            phase: Phase::Iteration,
            track: 1,
            a: i,
            b: 0,
        }
    }

    #[test]
    fn fills_then_overwrites_oldest() {
        let mut r = EventRing::new(4);
        for i in 0..6 {
            r.push(ev(i));
        }
        assert_eq!(r.len(), 4);
        assert_eq!(r.overwritten(), 2);
        let out: Vec<i64> = r.into_events().iter().map(|e| e.a).collect();
        assert_eq!(out, vec![2, 3, 4, 5]);
    }

    #[test]
    fn zero_capacity_records_nothing() {
        let mut r = EventRing::new(0);
        r.push(ev(1));
        assert!(r.is_empty());
        assert_eq!(r.overwritten(), 0);
    }

    #[test]
    fn under_capacity_keeps_order() {
        let mut r = EventRing::new(8);
        for i in 0..3 {
            r.push(ev(i));
        }
        let out: Vec<i64> = r.into_events().iter().map(|e| e.a).collect();
        assert_eq!(out, vec![0, 1, 2]);
    }
}
