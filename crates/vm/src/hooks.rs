//! Instrumentation hooks: the profilers' window into execution.
//!
//! The interpreter is generic over a [`Hooks`] implementation; the default
//! [`NopHooks`] compiles away. Profilers (crate `privateer-profile`)
//! implement `Hooks` to observe memory accesses, allocations, branches and
//! loop iterations — the events the paper's profilers consume (§4.1).

use crate::mem::AddressSpace;
use privateer_ir::loops::LoopId;
use privateer_ir::{FuncId, InstId};

/// What kind of allocation produced an object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AllocKind {
    /// A stack slot.
    Alloca,
    /// General-heap `malloc`.
    Malloc,
    /// Logical-heap allocation inserted by the Privateer transformation.
    HAlloc(privateer_ir::Heap),
}

/// One entry of the dynamic loop stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LoopFrame {
    /// Function containing the loop.
    pub func: FuncId,
    /// The loop.
    pub loop_id: LoopId,
    /// How many times this (func, loop) pair has been entered so far,
    /// program-wide (1-based).
    pub invocation: u64,
    /// Current iteration within this invocation (0-based).
    pub iter: u64,
}

/// The dynamic execution context visible to hooks: the call stack (as
/// static call sites) and the active loop nest.
///
/// This is the "dynamic context" the paper's pointer-to-object profiler
/// uses to name objects (§4.1).
#[derive(Debug, Clone, Default)]
pub struct ExecCtx {
    /// `(caller, call-site)` pairs from outermost to innermost; the first
    /// entry has no call site (the program entry).
    pub call_stack: Vec<(FuncId, Option<InstId>)>,
    /// Active loops, outermost first.
    pub loop_stack: Vec<LoopFrame>,
}

impl ExecCtx {
    /// The innermost active loop, if any.
    pub fn innermost_loop(&self) -> Option<LoopFrame> {
        self.loop_stack.last().copied()
    }

    /// The currently executing function.
    pub fn current_func(&self) -> Option<FuncId> {
        self.call_stack.last().map(|&(f, _)| f)
    }

    /// The call path as static call sites (excluding the entry).
    pub fn call_path(&self) -> Vec<(FuncId, InstId)> {
        self.call_stack
            .iter()
            .filter_map(|&(f, site)| site.map(|s| (f, s)))
            .collect()
    }
}

/// Observation points during interpretation. All methods default to no-ops.
///
/// `func`/`inst` identify the *static* instruction; `ctx` carries the
/// dynamic context. Memory contents can be inspected through `mem`.
#[allow(unused_variables)]
pub trait Hooks {
    /// After a load of `size` bytes at `addr`.
    fn on_load(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        inst: InstId,
        addr: u64,
        size: u32,
        mem: &AddressSpace,
    ) {
    }

    /// Before a store of `size` bytes at `addr`.
    fn on_store(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        inst: InstId,
        addr: u64,
        size: u32,
        mem: &AddressSpace,
    ) {
    }

    /// After an allocation at static site `(func, inst)`.
    fn on_alloc(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        inst: InstId,
        addr: u64,
        size: u64,
        kind: AllocKind,
    ) {
    }

    /// Before a deallocation.
    fn on_free(&mut self, ctx: &ExecCtx, func: FuncId, inst: InstId, addr: u64) {}

    /// After a conditional branch resolves.
    fn on_cond_branch(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        block: privateer_ir::BlockId,
        taken: bool,
    ) {
    }

    /// On first entry to a loop (before iteration 0 begins).
    fn on_loop_enter(&mut self, ctx: &ExecCtx, func: FuncId, loop_id: LoopId) {}

    /// At the start of each loop iteration (including iteration 0). `mem`
    /// allows boundary-value sampling (the value-prediction profiler).
    fn on_loop_iter(
        &mut self,
        ctx: &ExecCtx,
        func: FuncId,
        loop_id: LoopId,
        iter: u64,
        mem: &AddressSpace,
    ) {
    }

    /// When control leaves a loop after `trips` iterations.
    fn on_loop_exit(&mut self, ctx: &ExecCtx, func: FuncId, loop_id: LoopId, trips: u64) {}

    /// When control enters a basic block.
    fn on_block(&mut self, ctx: &ExecCtx, func: FuncId, block: privateer_ir::BlockId) {}

    /// Before a call executes.
    fn on_call(&mut self, ctx: &ExecCtx, caller: FuncId, site: InstId, callee: FuncId) {}

    /// After a function returns.
    fn on_ret(&mut self, ctx: &ExecCtx, callee: FuncId) {}

    /// After every interpreted instruction (hot; implement only in
    /// profilers that need instruction-level attribution).
    fn on_inst(&mut self, ctx: &ExecCtx, func: FuncId) {}
}

/// The do-nothing hooks used for production runs; every callback inlines to
/// nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NopHooks;

impl Hooks for NopHooks {}

/// Hooks that record interpreted loops as [`Phase::Loop`] spans on a
/// telemetry track (one span per loop invocation, args: loop index, trip
/// count). Built from a [`WorkerTelemetry`] handle; with a disabled
/// handle every callback reduces to one branch, like [`NopHooks`].
///
/// [`Phase::Loop`]: privateer_telemetry::Phase::Loop
/// [`WorkerTelemetry`]: privateer_telemetry::WorkerTelemetry
#[derive(Debug)]
pub struct TraceHooks {
    tel: privateer_telemetry::WorkerTelemetry,
    starts: Vec<std::time::Instant>,
}

impl TraceHooks {
    /// Hooks recording onto `tel`'s track.
    pub fn new(tel: privateer_telemetry::WorkerTelemetry) -> TraceHooks {
        TraceHooks {
            tel,
            starts: Vec::new(),
        }
    }

    /// Recover the telemetry handle (e.g. to absorb its ring into a
    /// [`privateer_telemetry::Telemetry`] sink).
    pub fn into_telemetry(self) -> privateer_telemetry::WorkerTelemetry {
        self.tel
    }
}

impl Hooks for TraceHooks {
    fn on_loop_enter(&mut self, _ctx: &ExecCtx, _func: FuncId, _loop_id: LoopId) {
        if self.tel.enabled() {
            self.starts.push(std::time::Instant::now());
        }
    }

    fn on_loop_exit(&mut self, _ctx: &ExecCtx, _func: FuncId, loop_id: LoopId, trips: u64) {
        if let Some(t0) = self.starts.pop() {
            self.tel.span_since(
                privateer_telemetry::Phase::Loop,
                t0,
                loop_id.index() as i64,
                trips as i64,
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ctx_queries() {
        let mut ctx = ExecCtx::default();
        assert_eq!(ctx.innermost_loop(), None);
        assert_eq!(ctx.current_func(), None);
        ctx.call_stack.push((FuncId::new(0), None));
        ctx.call_stack.push((FuncId::new(1), Some(InstId::new(4))));
        ctx.loop_stack.push(LoopFrame {
            func: FuncId::new(1),
            loop_id: LoopId::new(0),
            invocation: 1,
            iter: 3,
        });
        assert_eq!(ctx.current_func(), Some(FuncId::new(1)));
        assert_eq!(ctx.innermost_loop().unwrap().iter, 3);
        assert_eq!(ctx.call_path(), vec![(FuncId::new(1), InstId::new(4))]);
    }

    #[test]
    fn trace_hooks_record_loop_spans() {
        let tel = privateer_telemetry::Telemetry::with_capacity(8);
        let mut h = TraceHooks::new(tel.worker(1));
        let ctx = ExecCtx::default();
        h.on_loop_enter(&ctx, FuncId::new(0), LoopId::new(2));
        h.on_loop_exit(&ctx, FuncId::new(0), LoopId::new(2), 7);
        tel.absorb(h.into_telemetry());
        let tr = tel.trace();
        assert_eq!(tr.events.len(), 1);
        assert_eq!(tr.events[0].phase, privateer_telemetry::Phase::Loop);
        assert_eq!(tr.events[0].a, 2);
        assert_eq!(tr.events[0].b, 7);
    }

    #[test]
    fn nop_hooks_compile() {
        let mut h = NopHooks;
        let ctx = ExecCtx::default();
        h.on_inst(&ctx, FuncId::new(0));
        h.on_loop_iter(
            &ctx,
            FuncId::new(0),
            LoopId::new(0),
            0,
            &AddressSpace::new(),
        );
    }
}
