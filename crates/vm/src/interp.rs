//! The IR interpreter.
//!
//! Generic over [`Hooks`] (profiling instrumentation) and [`RuntimeIface`]
//! (speculation runtime), both statically dispatched so production runs pay
//! nothing for the seams.

use crate::hooks::{AllocKind, ExecCtx, Hooks, LoopFrame};
use crate::mem::{AddressSpace, RegionAllocator, GLOBAL_BASE, MALLOC_BASE, PAGE_SIZE, STACK_BASE};
use crate::runtime::RuntimeIface;
use crate::trap::Trap;
use crate::val::Val;
use privateer_ir::cfg::Cfg;
use privateer_ir::dom::DomTree;
use privateer_ir::loops::{LoopId, LoopInfo};
use privateer_ir::verify::value_type;
use privateer_ir::{
    BinOp, BlockId, CastOp, CmpOp, FuncId, Function, Heap, InstId, InstKind, Intrinsic, Module,
    Term, Type, Value,
};
use std::collections::HashMap;

/// A module laid out in memory: globals placed (including heap-assigned
/// globals, per the replace-allocation transformation §4.4) and
/// initialized.
///
/// Workers fork [`ProgramImage::mem`]-derived spaces; addresses of globals
/// are identical in every fork, which is what gives the system replacement
/// transparency.
#[derive(Debug, Clone)]
pub struct ProgramImage {
    /// Address of each global, indexed by `GlobalId`.
    pub global_addrs: Vec<u64>,
    /// Memory with global initializers applied.
    pub mem: AddressSpace,
    /// For each logical heap, the first address *after* statically placed
    /// globals — heap allocators must start here.
    pub heap_start: HashMap<Heap, u64>,
}

/// Lay out and initialize the module's globals.
pub fn load_module(module: &Module) -> ProgramImage {
    let mut mem = AddressSpace::new();
    let mut global_addrs = Vec::with_capacity(module.globals.len());
    let mut untagged_next = GLOBAL_BASE;
    let mut heap_start: HashMap<Heap, u64> = HashMap::new();
    for g in &module.globals {
        let next = match g.heap {
            None => &mut untagged_next,
            Some(h) => heap_start.entry(h).or_insert(h.base() + PAGE_SIZE),
        };
        let addr = *next;
        *next += (g.size.max(1) + 15) & !15;
        global_addrs.push(addr);
        let bytes = g.init.to_bytes(g.size);
        if bytes.iter().any(|&b| b != 0) {
            mem.write_bytes(addr, &bytes);
        }
    }
    for h in Heap::ALL {
        heap_start.entry(h).or_insert(h.base() + PAGE_SIZE);
    }
    ProgramImage {
        global_addrs,
        mem,
        heap_start,
    }
}

/// Counters kept by the interpreter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InterpStats {
    /// Instructions executed.
    pub insts: u64,
    /// Loads executed.
    pub loads: u64,
    /// Stores executed.
    pub stores: u64,
}

/// Per-function control-flow metadata the interpreter precomputes.
#[derive(Debug)]
struct FuncMeta {
    /// Loop chain (outermost → innermost) containing each block.
    block_loops: Vec<Vec<LoopId>>,
    /// `LoopId` whose header is the block, per block.
    header_of: Vec<Option<LoopId>>,
}

fn func_meta(func: &Function) -> FuncMeta {
    let cfg = Cfg::new(func);
    let dom = DomTree::new(func, &cfg);
    let li = LoopInfo::new(func, &cfg, &dom);
    let n = func.blocks.len();
    let mut block_loops = vec![Vec::new(); n];
    let mut header_of = vec![None; n];
    for (id, lp) in li.iter() {
        header_of[lp.header.index()] = Some(id);
    }
    for (bb, chain_slot) in block_loops.iter_mut().enumerate() {
        // Chain: walk from innermost outward, then reverse.
        let mut chain = Vec::new();
        let mut cur = li.innermost(BlockId::new(bb));
        while let Some(l) = cur {
            chain.push(l);
            cur = li.get(l).parent;
        }
        chain.reverse();
        *chain_slot = chain;
    }
    FuncMeta {
        block_loops,
        header_of,
    }
}

/// The interpreter.
///
/// # Example
///
/// ```
/// use privateer_ir::{builder::FunctionBuilder, Module, Type, Value};
/// use privateer_vm::interp::{load_module, Interp};
/// use privateer_vm::hooks::NopHooks;
/// use privateer_vm::runtime::BasicRuntime;
///
/// let mut module = Module::new("demo");
/// let mut b = FunctionBuilder::new("main", vec![], None);
/// b.print_i64(Value::const_i64(42));
/// b.ret(None);
/// module.add_function(b.finish());
///
/// let image = load_module(&module);
/// let mut interp = Interp::new(&module, &image, NopHooks, BasicRuntime::strict());
/// interp.run_main().unwrap();
/// assert_eq!(interp.rt.output_bytes(), b"42\n");
/// ```
pub struct Interp<'m, H, R> {
    module: &'m Module,
    /// The simulated address space (owned; fork it for workers).
    pub mem: AddressSpace,
    /// Profiling hooks.
    pub hooks: H,
    /// Speculation runtime.
    pub rt: R,
    /// Execution counters.
    pub stats: InterpStats,
    global_addrs: Vec<u64>,
    meta: Vec<FuncMeta>,
    stack_alloc: RegionAllocator,
    malloc_alloc: RegionAllocator,
    ctx: ExecCtx,
    loop_invocations: HashMap<(FuncId, LoopId), u64>,
    steps: u64,
    step_limit: u64,
}

impl<'m, H: Hooks, R: RuntimeIface> Interp<'m, H, R> {
    /// Create an interpreter over a fork of the image's memory.
    pub fn new(module: &'m Module, image: &ProgramImage, hooks: H, rt: R) -> Interp<'m, H, R> {
        Interp::with_mem(
            module,
            image.mem.fork(),
            image.global_addrs.clone(),
            hooks,
            rt,
        )
    }

    /// Create an interpreter over an explicit memory (worker forks).
    pub fn with_mem(
        module: &'m Module,
        mem: AddressSpace,
        global_addrs: Vec<u64>,
        hooks: H,
        rt: R,
    ) -> Interp<'m, H, R> {
        let meta = module.functions.iter().map(func_meta).collect();
        Interp {
            module,
            mem,
            hooks,
            rt,
            stats: InterpStats::default(),
            global_addrs,
            meta,
            stack_alloc: RegionAllocator::new(STACK_BASE, MALLOC_BASE),
            malloc_alloc: RegionAllocator::new(MALLOC_BASE, MALLOC_BASE + (1 << 40)),
            ctx: ExecCtx::default(),
            loop_invocations: HashMap::new(),
            steps: 0,
            step_limit: u64::MAX,
        }
    }

    /// Limit execution to `limit` instructions ([`Trap::StepLimit`] after).
    pub fn set_step_limit(&mut self, limit: u64) {
        self.step_limit = limit;
    }

    /// The module being executed.
    pub fn module(&self) -> &'m Module {
        self.module
    }

    /// Address of a global.
    pub fn global_addr(&self, g: privateer_ir::GlobalId) -> u64 {
        self.global_addrs[g.index()]
    }

    /// Run `main()`.
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution, or [`Trap::Internal`] if the
    /// module has no `main`.
    pub fn run_main(&mut self) -> Result<(), Trap> {
        let main = self
            .module
            .main()
            .ok_or_else(|| Trap::Internal("module has no `main`".into()))?;
        self.call_function(main, &[])?;
        Ok(())
    }

    /// Call an arbitrary function with arguments (the DOALL engine uses
    /// this to invoke outlined loop bodies).
    ///
    /// # Errors
    ///
    /// Any [`Trap`] raised during execution.
    pub fn call_function(&mut self, func: FuncId, args: &[Val]) -> Result<Option<Val>, Trap> {
        self.ctx.call_stack.push((func, None));
        let result = self.exec_function(func, args.to_vec());
        self.ctx.call_stack.pop();
        result
    }

    fn resolve(
        &self,
        func: &Function,
        regs: &[Option<Val>],
        args: &[Val],
        v: Value,
    ) -> Result<Val, Trap> {
        match v {
            Value::Inst(i) => regs[i.index()]
                .ok_or_else(|| Trap::UndefValue(format!("%{} in `{}`", i.index(), func.name))),
            Value::Param(n) => args
                .get(n as usize)
                .copied()
                .ok_or_else(|| Trap::UndefValue(format!("parameter {n} of `{}`", func.name))),
            Value::ConstInt(k, ty) => Ok(Val::Int(k).normalize(ty)),
            Value::ConstF64(bits) => Ok(Val::Float(f64::from_bits(bits))),
            Value::Global(g) => Ok(Val::ptr(self.global_addrs[g.index()])),
            Value::Null => Ok(Val::Int(0)),
        }
    }

    /// Handle loop-nest bookkeeping for a control transfer within `func_id`
    /// from `prev` to `next` (`prev = None` on function entry).
    fn note_transfer(
        &mut self,
        func_id: FuncId,
        prev: Option<BlockId>,
        next: BlockId,
        floor: usize,
    ) {
        let meta = &self.meta[func_id.index()];
        let empty: &[LoopId] = &[];
        let prev_chain: &[LoopId] = match prev {
            Some(p) => &meta.block_loops[p.index()],
            None => empty,
        };
        let next_chain: &[LoopId] = &meta.block_loops[next.index()];
        let mut common = 0usize;
        while common < prev_chain.len()
            && common < next_chain.len()
            && prev_chain[common] == next_chain[common]
        {
            common += 1;
        }
        // Exit abandoned loops, innermost first.
        for &l in prev_chain[common..].iter().rev() {
            debug_assert!(self.ctx.loop_stack.len() > floor);
            let frame = self.ctx.loop_stack.pop().expect("loop stack underflow");
            debug_assert_eq!(frame.loop_id, l);
            self.hooks
                .on_loop_exit(&self.ctx, func_id, l, frame.iter + 1);
        }
        // Back edge to the header of a still-active loop?
        if common > 0
            && meta.header_of[next.index()] == Some(next_chain[common - 1])
            && prev.is_some()
        {
            let top = self.ctx.loop_stack.last_mut().expect("active loop frame");
            top.iter += 1;
            let (l, iter) = (top.loop_id, top.iter);
            self.hooks
                .on_loop_iter(&self.ctx, func_id, l, iter, &self.mem);
        }
        // Enter new loops, outermost first.
        for &l in &next_chain[common..] {
            let inv = self
                .loop_invocations
                .entry((func_id, l))
                .and_modify(|c| *c += 1)
                .or_insert(1);
            let frame = LoopFrame {
                func: func_id,
                loop_id: l,
                invocation: *inv,
                iter: 0,
            };
            self.ctx.loop_stack.push(frame);
            self.hooks.on_loop_enter(&self.ctx, func_id, l);
            self.hooks.on_loop_iter(&self.ctx, func_id, l, 0, &self.mem);
        }
    }

    fn exec_function(&mut self, func_id: FuncId, args: Vec<Val>) -> Result<Option<Val>, Trap> {
        let func: &'m Function = self.module.func(func_id);
        let mut regs: Vec<Option<Val>> = vec![None; func.insts.len()];
        let mut allocas: Vec<u64> = Vec::new();
        let loop_floor = self.ctx.loop_stack.len();

        let mut prev: Option<BlockId> = None;
        let mut cur = func.entry();
        let ret = 'outer: loop {
            self.note_transfer(func_id, prev, cur, loop_floor);
            self.hooks.on_block(&self.ctx, func_id, cur);
            let block = func.block(cur);

            // Phis evaluate as a parallel copy based on the edge taken.
            if let Some(p) = prev {
                let mut updates: Vec<(InstId, Val)> = Vec::new();
                for &i in &block.insts {
                    if let InstKind::Phi(ty, incoming) = &func.inst(i).kind {
                        let (_, v) =
                            incoming
                                .iter()
                                .find(|(pred, _)| *pred == p)
                                .ok_or_else(|| {
                                    Trap::Internal(format!(
                                        "phi %{} has no incoming edge from {p}",
                                        i.index()
                                    ))
                                })?;
                        let val = self.resolve(func, &regs, &args, *v)?.normalize(*ty);
                        updates.push((i, val));
                    } else {
                        break;
                    }
                }
                for (i, v) in updates {
                    regs[i.index()] = Some(v);
                }
            }

            for &i in &block.insts {
                let inst = func.inst(i);
                if matches!(inst.kind, InstKind::Phi(..)) {
                    continue;
                }
                self.steps += 1;
                self.stats.insts += 1;
                if self.steps > self.step_limit {
                    return Err(Trap::StepLimit);
                }
                self.hooks.on_inst(&self.ctx, func_id);
                let out = self.exec_inst(func_id, func, &mut regs, &args, &mut allocas, i)?;
                regs[i.index()] = out;
            }

            match &block.term {
                Term::Ret(v) => {
                    let rv = match v {
                        Some(v) => Some(self.resolve(func, &regs, &args, *v)?),
                        None => None,
                    };
                    break 'outer rv;
                }
                Term::Br(t) => {
                    prev = Some(cur);
                    cur = *t;
                }
                Term::CondBr(c, t, e) => {
                    let taken = self.resolve(func, &regs, &args, *c)?.as_bool();
                    self.hooks.on_cond_branch(&self.ctx, func_id, cur, taken);
                    prev = Some(cur);
                    cur = if taken { *t } else { *e };
                }
                Term::Unreachable => {
                    return Err(Trap::Internal(format!(
                        "reached `unreachable` in `{}` {cur}",
                        func.name
                    )))
                }
            }
        };

        // Unwind loop frames this function still holds (ret inside a loop).
        while self.ctx.loop_stack.len() > loop_floor {
            let frame = self.ctx.loop_stack.pop().expect("loop stack underflow");
            self.hooks
                .on_loop_exit(&self.ctx, func_id, frame.loop_id, frame.iter + 1);
        }
        for a in allocas {
            self.stack_alloc
                .free(a)
                .map_err(|e| Trap::AllocError(e.to_string()))?;
        }
        Ok(ret)
    }

    fn check_addr(addr: u64) -> Result<(), Trap> {
        if addr < PAGE_SIZE {
            Err(Trap::NullDeref { addr })
        } else {
            Ok(())
        }
    }

    #[allow(clippy::too_many_lines)]
    fn exec_inst(
        &mut self,
        func_id: FuncId,
        func: &'m Function,
        regs: &mut [Option<Val>],
        args: &[Val],
        allocas: &mut Vec<u64>,
        i: InstId,
    ) -> Result<Option<Val>, Trap> {
        let inst = func.inst(i);
        let rv = |v: Val| -> Result<Option<Val>, Trap> { Ok(Some(v)) };
        match &inst.kind {
            InstKind::Phi(..) => unreachable!("phis handled at block entry"),
            InstKind::Bin(op, a, b) => {
                let ty = inst.ty.expect("binop type");
                let a = self.resolve(func, regs, args, *a)?;
                let b = self.resolve(func, regs, args, *b)?;
                rv(eval_bin(*op, ty, a, b)?)
            }
            InstKind::Icmp(op, a, b) => {
                let a = self.resolve(func, regs, args, *a)?.as_int();
                let b = self.resolve(func, regs, args, *b)?.as_int();
                rv(Val::Int(op.eval(a.cmp(&b)) as i64))
            }
            InstKind::Fcmp(op, a, b) => {
                let a = self.resolve(func, regs, args, *a)?.as_f64();
                let b = self.resolve(func, regs, args, *b)?.as_f64();
                let r = match a.partial_cmp(&b) {
                    Some(ord) => op.eval(ord),
                    None => *op == CmpOp::Ne, // unordered
                };
                rv(Val::Int(r as i64))
            }
            InstKind::Cast(op, v, to) => {
                let src_ty = value_type(func, *v);
                let val = self.resolve(func, regs, args, *v)?;
                rv(eval_cast(*op, src_ty, val, *to))
            }
            InstKind::Load(ty, p) => {
                let addr = self.resolve(func, regs, args, *p)?.as_ptr();
                Self::check_addr(addr)?;
                self.stats.loads += 1;
                let val = load_typed(&self.mem, *ty, addr);
                self.hooks
                    .on_load(&self.ctx, func_id, i, addr, ty.size(), &self.mem);
                rv(val)
            }
            InstKind::Store(ty, v, p) => {
                let addr = self.resolve(func, regs, args, *p)?.as_ptr();
                Self::check_addr(addr)?;
                let val = self.resolve(func, regs, args, *v)?;
                self.stats.stores += 1;
                self.hooks
                    .on_store(&self.ctx, func_id, i, addr, ty.size(), &self.mem);
                store_typed(&mut self.mem, *ty, addr, val);
                Ok(None)
            }
            InstKind::Alloca { size, .. } => {
                let addr = self
                    .stack_alloc
                    .alloc(*size)
                    .map_err(|e| Trap::AllocError(e.to_string()))?;
                // Stack slots start zeroed each activation (freed slots may
                // be reused).
                self.mem.fill(addr, *size, 0);
                allocas.push(addr);
                self.hooks
                    .on_alloc(&self.ctx, func_id, i, addr, *size, AllocKind::Alloca);
                rv(Val::ptr(addr))
            }
            InstKind::Malloc(size) => {
                let size = self.resolve(func, regs, args, *size)?.as_int().max(0) as u64;
                let addr = self
                    .malloc_alloc
                    .alloc(size)
                    .map_err(|e| Trap::AllocError(e.to_string()))?;
                // C malloc does not zero; reused blocks keep stale bytes.
                self.hooks
                    .on_alloc(&self.ctx, func_id, i, addr, size, AllocKind::Malloc);
                rv(Val::ptr(addr))
            }
            InstKind::Free(p) => {
                let addr = self.resolve(func, regs, args, *p)?.as_ptr();
                if addr == 0 {
                    return Ok(None); // free(NULL) is a no-op
                }
                self.hooks.on_free(&self.ctx, func_id, i, addr);
                self.malloc_alloc
                    .free(addr)
                    .map_err(|e| Trap::AllocError(e.to_string()))?;
                Ok(None)
            }
            InstKind::Gep {
                base,
                index,
                scale,
                disp,
            } => {
                let base = self.resolve(func, regs, args, *base)?.as_ptr();
                let index = self.resolve(func, regs, args, *index)?.as_int();
                let addr = (base as i64)
                    .wrapping_add(index.wrapping_mul(*scale as i64))
                    .wrapping_add(*disp) as u64;
                rv(Val::ptr(addr))
            }
            InstKind::Call(callee, call_args) => {
                let mut vals = Vec::with_capacity(call_args.len());
                for &a in call_args {
                    vals.push(self.resolve(func, regs, args, a)?);
                }
                self.hooks.on_call(&self.ctx, func_id, i, *callee);
                self.ctx.call_stack.push((*callee, Some(i)));
                let r = self.exec_function(*callee, vals);
                self.ctx.call_stack.pop();
                self.hooks.on_ret(&self.ctx, *callee);
                r
            }
            InstKind::CallIntrinsic(which, call_args) => {
                let mut vals = Vec::with_capacity(call_args.len());
                for &a in call_args {
                    vals.push(self.resolve(func, regs, args, a)?);
                }
                self.exec_intrinsic(func_id, i, *which, &vals)
            }
            InstKind::Select(ty, c, t, e) => {
                let c = self.resolve(func, regs, args, *c)?.as_bool();
                let v = if c {
                    self.resolve(func, regs, args, *t)?
                } else {
                    self.resolve(func, regs, args, *e)?
                };
                rv(v.normalize(*ty))
            }
        }
    }

    fn exec_intrinsic(
        &mut self,
        func_id: FuncId,
        i: InstId,
        which: Intrinsic,
        vals: &[Val],
    ) -> Result<Option<Val>, Trap> {
        match which {
            Intrinsic::PrintI64 => {
                let s = format!("{}\n", vals[0].as_int());
                self.rt.output(s.as_bytes());
                Ok(None)
            }
            Intrinsic::PrintF64 => {
                let s = format!("{:.6}\n", vals[0].as_f64());
                self.rt.output(s.as_bytes());
                Ok(None)
            }
            Intrinsic::PrintChar => {
                self.rt.output(&[vals[0].as_int() as u8]);
                Ok(None)
            }
            Intrinsic::PrintStr => {
                let addr = vals[0].as_ptr();
                let len = vals[1].as_int().max(0) as usize;
                let mut buf = vec![0u8; len];
                self.mem.read_bytes(addr, &mut buf);
                self.rt.output(&buf);
                Ok(None)
            }
            Intrinsic::HAlloc(heap) => {
                let size = vals[0].as_int().max(0) as u64;
                let addr = self.rt.h_alloc(heap, size, &mut self.mem, (func_id, i))?;
                self.hooks
                    .on_alloc(&self.ctx, func_id, i, addr, size, AllocKind::HAlloc(heap));
                Ok(Some(Val::ptr(addr)))
            }
            Intrinsic::HFree(heap) => {
                let addr = vals[0].as_ptr();
                if addr != 0 {
                    self.hooks.on_free(&self.ctx, func_id, i, addr);
                    self.rt.h_free(heap, addr, &mut self.mem)?;
                }
                Ok(None)
            }
            Intrinsic::CheckHeap(heap) => {
                self.rt.check_heap(heap, vals[0].as_ptr())?;
                Ok(None)
            }
            Intrinsic::PrivateRead => {
                let size = vals[1].as_int().max(0) as u64;
                self.rt
                    .private_read(vals[0].as_ptr(), size, &mut self.mem)?;
                Ok(None)
            }
            Intrinsic::PrivateWrite => {
                let size = vals[1].as_int().max(0) as u64;
                self.rt
                    .private_write(vals[0].as_ptr(), size, &mut self.mem)?;
                Ok(None)
            }
            Intrinsic::Predict => {
                self.rt.predict(vals[0].as_bool())?;
                Ok(None)
            }
            Intrinsic::Misspec => {
                self.rt.misspec()?;
                Ok(None)
            }
            Intrinsic::ReduxRegister(op) => {
                let size = vals[1].as_int().max(0) as u64;
                self.rt
                    .redux_register(op, vals[0].as_ptr(), size, &mut self.mem)?;
                Ok(None)
            }
            Intrinsic::ParallelInvoke(plan) => {
                let plan = *self
                    .module
                    .plans
                    .get(plan as usize)
                    .ok_or_else(|| Trap::Internal(format!("unknown plan {plan}")))?;
                let (lo, hi) = (vals[0].as_int(), vals[1].as_int());
                self.rt.parallel_invoke(
                    self.module,
                    &self.global_addrs,
                    plan,
                    lo,
                    hi,
                    &mut self.mem,
                )?;
                Ok(None)
            }
            Intrinsic::Sqrt => Ok(Some(Val::Float(vals[0].as_f64().sqrt()))),
            Intrinsic::Exp => Ok(Some(Val::Float(vals[0].as_f64().exp()))),
            Intrinsic::Log => Ok(Some(Val::Float(vals[0].as_f64().ln()))),
            Intrinsic::FAbs => Ok(Some(Val::Float(vals[0].as_f64().abs()))),
        }
    }
}

fn width_bits(ty: Type) -> u32 {
    match ty {
        Type::I1 => 1,
        Type::I8 => 8,
        Type::I32 => 32,
        Type::I64 | Type::Ptr | Type::F64 => 64,
    }
}

fn eval_bin(op: BinOp, ty: Type, a: Val, b: Val) -> Result<Val, Trap> {
    if op.is_float() {
        let (x, y) = (a.as_f64(), b.as_f64());
        let r = match op {
            BinOp::FAdd => x + y,
            BinOp::FSub => x - y,
            BinOp::FMul => x * y,
            BinOp::FDiv => x / y,
            _ => unreachable!(),
        };
        return Ok(Val::Float(r));
    }
    let (x, y) = (a.as_int(), b.as_int());
    let bits = width_bits(ty);
    let mask = if bits == 64 {
        u64::MAX
    } else {
        (1u64 << bits) - 1
    };
    let r = match op {
        BinOp::Add => x.wrapping_add(y),
        BinOp::Sub => x.wrapping_sub(y),
        BinOp::Mul => x.wrapping_mul(y),
        BinOp::SDiv => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x.wrapping_div(y)
        }
        BinOp::SRem => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x.wrapping_rem(y)
        }
        BinOp::And => x & y,
        BinOp::Or => x | y,
        BinOp::Xor => x ^ y,
        BinOp::Shl => x.wrapping_shl((y as u32) % bits.max(1)),
        BinOp::LShr => {
            // Logical shift operates on the value truncated to its width.
            let ux = (x as u64) & mask;
            (ux >> ((y as u32) % bits.max(1))) as i64
        }
        BinOp::AShr => {
            let shift = (y as u32) % bits.max(1);
            x >> shift
        }
        _ => unreachable!(),
    };
    Ok(Val::Int(r).normalize(ty))
}

fn eval_cast(op: CastOp, src_ty: Option<Type>, v: Val, to: Type) -> Val {
    match op {
        CastOp::Zext => {
            let bits = src_ty.map_or(64, width_bits);
            let mask = if bits == 64 {
                u64::MAX
            } else {
                (1u64 << bits) - 1
            };
            Val::Int(((v.as_int() as u64) & mask) as i64).normalize(to)
        }
        CastOp::Sext => Val::Int(v.as_int()).normalize(to),
        CastOp::Trunc => Val::Int(v.as_int()).normalize(to),
        CastOp::SiToFp => Val::Float(v.as_int() as f64),
        CastOp::FpToSi => Val::Int(v.as_f64() as i64).normalize(to),
        CastOp::PtrToInt | CastOp::IntToPtr => Val::Int(v.as_int()),
        CastOp::Bitcast => match (v, to) {
            (Val::Int(x), Type::F64) => Val::Float(f64::from_bits(x as u64)),
            (Val::Float(f), _) => Val::Int(f.to_bits() as i64),
            (x, _) => x,
        },
    }
}

/// Load a typed value from memory (narrow integers sign-extend into the
/// register, matching the store/normalize convention; `i8` is treated as
/// unsigned bytes as C string code expects).
pub fn load_typed(mem: &AddressSpace, ty: Type, addr: u64) -> Val {
    match ty {
        Type::I1 => Val::Int((mem.read_u8(addr) & 1) as i64),
        Type::I8 => Val::Int(mem.read_u8(addr) as i64),
        Type::I32 => {
            let mut b = [0u8; 4];
            mem.read_bytes(addr, &mut b);
            Val::Int(i32::from_le_bytes(b) as i64)
        }
        Type::I64 | Type::Ptr => Val::Int(mem.read_i64(addr)),
        Type::F64 => Val::Float(mem.read_f64(addr)),
    }
}

/// Store a typed value to memory.
pub fn store_typed(mem: &mut AddressSpace, ty: Type, addr: u64, v: Val) {
    match ty {
        Type::I1 | Type::I8 => mem.write_u8(addr, v.as_int() as u8),
        Type::I32 => mem.write_bytes(addr, &(v.as_int() as i32).to_le_bytes()),
        Type::I64 | Type::Ptr => mem.write_u64(addr, v.as_int() as u64),
        Type::F64 => mem.write_f64(addr, v.as_f64()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hooks::NopHooks;
    use crate::runtime::BasicRuntime;
    use privateer_ir::builder::FunctionBuilder;
    use privateer_ir::GlobalInit;

    fn run(module: &Module) -> (Result<(), Trap>, Vec<u8>) {
        let image = load_module(module);
        let mut interp = Interp::new(module, &image, NopHooks, BasicRuntime::strict());
        let r = interp.run_main();
        let out = interp.rt.take_output();
        (r, out)
    }

    #[test]
    fn hello_sum_loop() {
        // Sum 0..10 and print.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        let (s, s_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        b.add_phi_incoming(s_phi, b.entry_block(), Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(10));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let s2 = b.add(Type::I64, s, i);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.add_phi_incoming(s_phi, body, s2);
        b.br(header);
        b.switch_to(exit);
        b.print_i64(s);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"45\n");
    }

    #[test]
    fn recursion_factorial() {
        let mut m = Module::new("t");
        // fact(n) = n <= 1 ? 1 : n * fact(n-1); pre-assign id 0 to fact.
        let fact_id = FuncId::new(0);
        let mut f = FunctionBuilder::new("fact", vec![Type::I64], Some(Type::I64));
        let n = f.param(0);
        let rec = f.new_block();
        let basecase = f.new_block();
        let c = f.icmp(CmpOp::Le, n, Value::const_i64(1));
        f.cond_br(c, basecase, rec);
        f.switch_to(basecase);
        f.ret(Some(Value::const_i64(1)));
        f.switch_to(rec);
        let nm1 = f.sub(Type::I64, n, Value::const_i64(1));
        let r = f.call(fact_id, vec![nm1], Some(Type::I64)).unwrap();
        let prod = f.mul(Type::I64, n, r);
        f.ret(Some(prod));
        m.add_function(f.finish());

        let mut b = FunctionBuilder::new("main", vec![], None);
        let r = b
            .call(fact_id, vec![Value::const_i64(10)], Some(Type::I64))
            .unwrap();
        b.print_i64(r);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"3628800\n");
    }

    #[test]
    fn memory_and_globals() {
        let mut m = Module::new("t");
        let g = m.add_global_init("tbl", 16, GlobalInit::I64s(vec![7, 9]));
        let mut b = FunctionBuilder::new("main", vec![], None);
        let second = b.gep(Value::Global(g), Value::const_i64(1), 8, 0);
        let v = b.load(Type::I64, second);
        b.print_i64(v);
        let p = b.malloc(Value::const_i64(8));
        b.store(Type::I64, v, p);
        let w = b.load(Type::I64, p);
        b.print_i64(w);
        b.free(p);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"9\n9\n");
    }

    #[test]
    fn i32_narrowing_semantics() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        // i32 overflow wraps: 2^31 - 1 + 1 = -2^31.
        let x = b.add(Type::I32, Value::const_i32(i32::MAX), Value::const_i32(1));
        b.print_i64(x);
        // Store/load round-trips the 32-bit value.
        let p = b.alloca(4, "x");
        b.store(Type::I32, Value::const_i32(-5), p);
        let v = b.load(Type::I32, p);
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"-2147483648\n-5\n");
    }

    #[test]
    fn float_ops_and_intrinsics() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let s = b
            .intrinsic(Intrinsic::Sqrt, vec![Value::const_f64(9.0)])
            .unwrap();
        b.print_f64(s);
        let e = b
            .intrinsic(Intrinsic::Exp, vec![Value::const_f64(0.0)])
            .unwrap();
        b.print_f64(e);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"3.000000\n1.000000\n");
    }

    #[test]
    fn null_deref_traps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let v = b.load(Type::I64, Value::Null);
        b.print_i64(v);
        b.ret(None);
        m.add_function(b.finish());
        let (r, _) = run(&m);
        assert!(matches!(r, Err(Trap::NullDeref { .. })));
    }

    #[test]
    fn div_by_zero_traps() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![Type::I64], None);
        b.ret(None);
        m.add_function(b.finish());
        // Call div through a function so the divisor is dynamic.
        let mut b = FunctionBuilder::new("div", vec![Type::I64], Some(Type::I64));
        let q = b.bin(BinOp::SDiv, Type::I64, Value::const_i64(1), b.param(0));
        b.ret(Some(q));
        let div = m.add_function(b.finish());
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        let r = interp.call_function(div, &[Val::Int(0)]);
        assert_eq!(r, Err(Trap::DivByZero));
    }

    #[test]
    fn step_limit() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let bb = b.new_block();
        b.br(bb);
        b.switch_to(bb);
        let x = b.add(Type::I64, Value::const_i64(0), Value::const_i64(0));
        let c = b.icmp(CmpOp::Eq, x, Value::const_i64(0));
        b.cond_br(c, bb, bb);
        m.add_function(b.finish());
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        interp.set_step_limit(1000);
        assert_eq!(interp.run_main(), Err(Trap::StepLimit));
    }

    #[test]
    fn phi_parallel_copy_swap() {
        // (a, b) = (b, a) each iteration; after 3 swaps a=2 b=1 -> a=1... check.
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, i_phi) = b.phi(Type::I64);
        let (a, a_phi) = b.phi(Type::I64);
        let (bb_, b_phi) = b.phi(Type::I64);
        b.add_phi_incoming(i_phi, b.entry_block(), Value::const_i64(0));
        b.add_phi_incoming(a_phi, b.entry_block(), Value::const_i64(1));
        b.add_phi_incoming(b_phi, b.entry_block(), Value::const_i64(2));
        let c = b.icmp(CmpOp::Lt, i, Value::const_i64(3));
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(i_phi, body, i2);
        b.add_phi_incoming(a_phi, body, bb_); // a <- b
        b.add_phi_incoming(b_phi, body, a); // b <- a (old a!)
        b.br(header);
        b.switch_to(exit);
        b.print_i64(a);
        b.print_i64(bb_);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        // After 3 swaps: a=2, b=1.
        assert_eq!(out, b"2\n1\n");
    }

    #[test]
    fn halloc_and_checks_through_runtime() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b
            .intrinsic(
                Intrinsic::HAlloc(Heap::ShortLived),
                vec![Value::const_i64(16)],
            )
            .unwrap();
        b.intrinsic(Intrinsic::CheckHeap(Heap::ShortLived), vec![p]);
        b.store(Type::I64, Value::const_i64(11), p);
        let v = b.load(Type::I64, p);
        b.print_i64(v);
        b.intrinsic(Intrinsic::HFree(Heap::ShortLived), vec![p]);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"11\n");
    }

    #[test]
    fn wrong_heap_check_misspeculates() {
        let mut m = Module::new("t");
        let mut b = FunctionBuilder::new("main", vec![], None);
        let p = b.malloc(Value::const_i64(8));
        b.intrinsic(Intrinsic::CheckHeap(Heap::Private), vec![p]);
        b.ret(None);
        m.add_function(b.finish());
        let (r, _) = run(&m);
        assert!(matches!(r, Err(Trap::Misspec(_))));
    }

    #[test]
    fn alloca_zeroed_per_activation() {
        let mut m = Module::new("t");
        // leaf() allocates, writes, returns; second call must see zeros.
        let leaf_id = FuncId::new(0);
        let mut f = FunctionBuilder::new("leaf", vec![], Some(Type::I64));
        let p = f.alloca(8, "slot");
        let v = f.load(Type::I64, p);
        f.store(Type::I64, Value::const_i64(99), p);
        f.ret(Some(v));
        m.add_function(f.finish());
        let mut b = FunctionBuilder::new("main", vec![], None);
        let a = b.call(leaf_id, vec![], Some(Type::I64)).unwrap();
        let c = b.call(leaf_id, vec![], Some(Type::I64)).unwrap();
        b.print_i64(a);
        b.print_i64(c);
        b.ret(None);
        m.add_function(b.finish());
        let (r, out) = run(&m);
        r.unwrap();
        assert_eq!(out, b"0\n0\n");
    }
}
