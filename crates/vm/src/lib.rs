#![warn(missing_docs)]
//! # privateer-vm
//!
//! An instrumentable interpreter for the `privateer-ir` IR, built on a
//! simulated, paged, copy-on-write 64-bit address space.
//!
//! This crate substitutes for native execution in the Privateer
//! reproduction (PLDI 2012): the paper manipulates *real* virtual memory
//! (shm/mmap/fork) to replicate logical heaps per worker; here the same
//! semantics — fixed heap address ranges with tag bits 44–46, COW
//! replication, shadow metadata at `addr | SHADOW_BIT` — are provided by
//! [`mem::AddressSpace`].
//!
//! Key pieces:
//!
//! * [`mem`] — the paged COW address space and a region allocator;
//! * [`val`] — runtime values;
//! * [`interp`] — the interpreter, generic over [`hooks::Hooks`]
//!   (profiling) and [`runtime::RuntimeIface`] (speculation runtime);
//! * [`trap`] — misspeculation and error traps.
//!
//! See the crate-level example on [`interp::Interp`].

pub mod hooks;
pub mod interp;
pub mod mem;
pub mod runtime;
pub mod trap;
pub mod val;

pub use hooks::{AllocKind, ExecCtx, Hooks, LoopFrame, NopHooks, TraceHooks};
pub use interp::{load_module, Interp, InterpStats, ProgramImage};
pub use mem::{AddressSpace, Page, RegionAllocator, PAGE_SIZE};
pub use runtime::{BasicRuntime, CheckMode, RuntimeIface};
pub use trap::{Misspec, MisspecKind, Trap};
pub use val::Val;
