//! The simulated 64-bit address space: paged storage with copy-on-write
//! forking.
//!
//! The paper's runtime replicates heap storage by remapping virtual pages
//! with copy-on-write protection (§5.1). This module gives the interpreter
//! the same capability in safe Rust: an [`AddressSpace`] is a map from page
//! numbers to reference-counted 4 KiB pages. [`AddressSpace::fork`] clones
//! the map (O(#pages), sharing every page); the first write to a shared
//! page copies it (`Arc::make_mut`) — exactly the OS's COW fault, in user
//! space.

use std::collections::HashMap;
use std::sync::Arc;

/// Size of a simulated page in bytes.
pub const PAGE_SIZE: u64 = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

/// One simulated page.
pub type Page = [u8; PAGE_SIZE as usize];

/// Base of the (untagged) globals region.
pub const GLOBAL_BASE: u64 = 0x0000_1000_0000;
/// Base of the (untagged) stack region used for allocas.
pub const STACK_BASE: u64 = 0x0000_2000_0000;
/// Base of the (untagged) general `malloc` region.
pub const MALLOC_BASE: u64 = 0x0000_4000_0000;

/// A paged, copy-on-write, byte-addressed 64-bit address space.
///
/// Reads from unmapped pages return zeros; writes materialize pages on
/// demand. Addresses below [`PAGE_SIZE`] form a null guard page — accessing
/// them is a fault surfaced by the interpreter, not here.
#[derive(Debug, Clone, Default)]
pub struct AddressSpace {
    pages: HashMap<u64, Arc<Page>>,
}

impl AddressSpace {
    /// An empty address space.
    pub fn new() -> AddressSpace {
        AddressSpace::default()
    }

    /// Fork this address space: the child shares every page
    /// copy-on-write with `self`.
    ///
    /// ```
    /// use privateer_vm::mem::AddressSpace;
    /// let mut parent = AddressSpace::new();
    /// parent.write_bytes(0x10_000, b"hello");
    /// let mut child = parent.fork();
    /// child.write_bytes(0x10_000, b"world");
    /// let mut buf = [0u8; 5];
    /// parent.read_bytes(0x10_000, &mut buf);
    /// assert_eq!(&buf, b"hello"); // parent unaffected
    /// ```
    pub fn fork(&self) -> AddressSpace {
        AddressSpace {
            pages: self.pages.clone(),
        }
    }

    /// Number of pages currently materialized.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Read `buf.len()` bytes starting at `addr`. Unmapped bytes read as 0.
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) {
        let mut done = 0usize;
        while done < buf.len() {
            let a = addr + done as u64;
            let page_no = a >> PAGE_SHIFT;
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let n = (buf.len() - done).min(PAGE_SIZE as usize - off);
            match self.pages.get(&page_no) {
                Some(p) => buf[done..done + n].copy_from_slice(&p[off..off + n]),
                None => buf[done..done + n].fill(0),
            }
            done += n;
        }
    }

    /// Write `data` starting at `addr`, materializing and copying pages as
    /// needed.
    pub fn write_bytes(&mut self, addr: u64, data: &[u8]) {
        let mut done = 0usize;
        while done < data.len() {
            let a = addr + done as u64;
            let page_no = a >> PAGE_SHIFT;
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let n = (data.len() - done).min(PAGE_SIZE as usize - off);
            let page = self
                .pages
                .entry(page_no)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize]));
            let page = Arc::make_mut(page);
            page[off..off + n].copy_from_slice(&data[done..done + n]);
            done += n;
        }
    }

    /// Fill `len` bytes starting at `addr` with `byte`.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) {
        // Page-at-a-time to avoid a large temporary.
        let mut done = 0u64;
        while done < len {
            let a = addr + done;
            let page_no = a >> PAGE_SHIFT;
            let off = (a & (PAGE_SIZE - 1)) as usize;
            let n = ((len - done) as usize).min(PAGE_SIZE as usize - off);
            if byte == 0 && !self.pages.contains_key(&page_no) {
                // Unmapped already reads as zero.
                done += n as u64;
                continue;
            }
            let page = self
                .pages
                .entry(page_no)
                .or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize]));
            let page = Arc::make_mut(page);
            page[off..off + n].fill(byte);
            done += n as u64;
        }
    }

    /// Read one byte.
    pub fn read_u8(&self, addr: u64) -> u8 {
        let page_no = addr >> PAGE_SHIFT;
        let off = (addr & (PAGE_SIZE - 1)) as usize;
        match self.pages.get(&page_no) {
            Some(p) => p[off],
            None => 0,
        }
    }

    /// Write one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        self.write_bytes(addr, &[v]);
    }

    /// Read a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write_bytes(addr, &v.to_le_bytes());
    }

    /// Read a little-endian `i64`.
    pub fn read_i64(&self, addr: u64) -> i64 {
        self.read_u64(addr) as i64
    }

    /// Read a little-endian `f64`.
    pub fn read_f64(&self, addr: u64) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Write a little-endian `f64`.
    pub fn write_f64(&mut self, addr: u64, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// The materialized page containing `addr`, if any. `None` means the
    /// whole page reads as zeros.
    pub fn page(&self, addr: u64) -> Option<&Page> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|p| &**p)
    }

    /// A cheap reference-counted handle to the materialized page
    /// containing `addr`, if any — the zero-copy way to ship a page into
    /// a checkpoint contribution.
    pub fn page_arc(&self, addr: u64) -> Option<Arc<Page>> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(Arc::clone)
    }

    /// Mutable access to the page containing `addr`, materializing a zero
    /// page if absent and copying a shared one (the COW fault).
    ///
    /// Word-granular scans use [`Self::page`] first and only take this
    /// mutable path when a byte actually changes, so read-only validation
    /// never materializes or copies pages.
    pub fn page_make_mut(&mut self, addr: u64) -> &mut Page {
        let page = self
            .pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Arc::new([0u8; PAGE_SIZE as usize]));
        Arc::make_mut(page)
    }

    /// Materialized pages whose base address lies in `[lo, hi)`, as
    /// `(page_base, page)` pairs in ascending address order.
    pub fn pages_in_range(&self, lo: u64, hi: u64) -> Vec<(u64, Arc<Page>)> {
        let mut out: Vec<(u64, Arc<Page>)> = self
            .pages
            .iter()
            .filter_map(|(&no, p)| {
                let base = no << PAGE_SHIFT;
                (base >= lo && base < hi).then(|| (base, Arc::clone(p)))
            })
            .collect();
        out.sort_by_key(|&(base, _)| base);
        out
    }

    /// Replace or insert a whole page by its base address.
    ///
    /// # Panics
    ///
    /// Panics if `base` is not page-aligned.
    pub fn install_page(&mut self, base: u64, page: Arc<Page>) {
        assert_eq!(base & (PAGE_SIZE - 1), 0, "page base must be aligned");
        self.pages.insert(base >> PAGE_SHIFT, page);
    }

    /// Drop every materialized page whose base lies in `[lo, hi)` (the
    /// range reverts to zeros).
    pub fn clear_range(&mut self, lo: u64, hi: u64) {
        self.pages.retain(|&no, _| {
            let base = no << PAGE_SHIFT;
            !(base >= lo && base < hi)
        });
    }

    /// Whether two address spaces have byte-identical contents in `[lo, hi)`
    /// (missing pages compare as zeros).
    pub fn range_eq(&self, other: &AddressSpace, lo: u64, hi: u64) -> bool {
        let mut bases: Vec<u64> = self
            .pages_in_range(lo, hi)
            .into_iter()
            .map(|(b, _)| b)
            .chain(other.pages_in_range(lo, hi).into_iter().map(|(b, _)| b))
            .collect();
        bases.sort_unstable();
        bases.dedup();
        let zero = [0u8; PAGE_SIZE as usize];
        for base in bases {
            let a = self
                .pages
                .get(&(base >> PAGE_SHIFT))
                .map(|p| &**p)
                .unwrap_or(&zero);
            let b = other
                .pages
                .get(&(base >> PAGE_SHIFT))
                .map(|p| &**p)
                .unwrap_or(&zero);
            if a != b {
                return false;
            }
        }
        true
    }
}

/// A simple allocator handing out blocks from a fixed address range of an
/// [`AddressSpace`].
///
/// Allocation is bump-pointer with size-class free lists; all blocks are
/// 16-byte aligned. The allocator stores no metadata in the simulated
/// memory itself, so distinct allocators can manage distinct ranges of one
/// space.
#[derive(Debug, Clone)]
pub struct RegionAllocator {
    base: u64,
    end: u64,
    next: u64,
    free: HashMap<u64, Vec<u64>>,
    sizes: HashMap<u64, u64>,
    /// Total bytes currently live.
    pub live_bytes: u64,
    /// Count of live allocations.
    pub live_count: u64,
}

/// Error returned when a [`RegionAllocator`] operation fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The region is exhausted.
    OutOfMemory,
    /// `free` of an address this allocator did not hand out.
    BadFree(u64),
}

impl std::fmt::Display for AllocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AllocError::OutOfMemory => write!(f, "region allocator out of memory"),
            AllocError::BadFree(a) => write!(f, "free of unallocated address {a:#x}"),
        }
    }
}

impl std::error::Error for AllocError {}

impl RegionAllocator {
    /// An allocator over `[base, end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn new(base: u64, end: u64) -> RegionAllocator {
        assert!(base < end, "empty allocator range");
        RegionAllocator {
            base,
            end,
            next: base.max(16), // never hand out address 0
            free: HashMap::new(),
            sizes: HashMap::new(),
            live_bytes: 0,
            live_count: 0,
        }
    }

    /// Start of the managed range.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// End (exclusive) of the managed range.
    pub fn end(&self) -> u64 {
        self.end
    }

    /// Allocate `size` bytes (zero-size allocations are rounded up to 1).
    ///
    /// # Errors
    ///
    /// [`AllocError::OutOfMemory`] if the region is exhausted.
    pub fn alloc(&mut self, size: u64) -> Result<u64, AllocError> {
        let rounded = round_up(size.max(1), 16);
        let addr = match self.free.get_mut(&rounded).and_then(Vec::pop) {
            Some(a) => a,
            None => {
                let a = self.next;
                if a + rounded > self.end {
                    return Err(AllocError::OutOfMemory);
                }
                self.next = a + rounded;
                a
            }
        };
        self.sizes.insert(addr, rounded);
        self.live_bytes += rounded;
        self.live_count += 1;
        Ok(addr)
    }

    /// Free a previously allocated block.
    ///
    /// # Errors
    ///
    /// [`AllocError::BadFree`] for addresses not currently allocated.
    pub fn free(&mut self, addr: u64) -> Result<(), AllocError> {
        match self.sizes.remove(&addr) {
            Some(size) => {
                self.free.entry(size).or_default().push(addr);
                self.live_bytes -= size;
                self.live_count -= 1;
                Ok(())
            }
            None => Err(AllocError::BadFree(addr)),
        }
    }

    /// Size of the live block at `addr`, if any.
    pub fn size_of(&self, addr: u64) -> Option<u64> {
        self.sizes.get(&addr).copied()
    }

    /// Forget all allocations (the arena-reset operation used for
    /// short-lived heaps between iterations).
    pub fn reset(&mut self) {
        self.next = self.base.max(16);
        self.free.clear();
        self.sizes.clear();
        self.live_bytes = 0;
        self.live_count = 0;
    }

    /// Highest address handed out so far (exclusive).
    pub fn high_water(&self) -> u64 {
        self.next
    }
}

fn round_up(v: u64, align: u64) -> u64 {
    (v + align - 1) & !(align - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = AddressSpace::new();
        let mut buf = [7u8; 16];
        m.read_bytes(0x5000, &mut buf);
        assert_eq!(buf, [0u8; 16]);
        assert_eq!(m.read_u64(0xdead_beef), 0);
    }

    #[test]
    fn rw_across_page_boundary() {
        let mut m = AddressSpace::new();
        let addr = 2 * PAGE_SIZE - 3;
        m.write_bytes(addr, &[1, 2, 3, 4, 5, 6]);
        let mut buf = [0u8; 6];
        m.read_bytes(addr, &mut buf);
        assert_eq!(buf, [1, 2, 3, 4, 5, 6]);
        assert_eq!(m.page_count(), 2);
    }

    #[test]
    fn scalar_round_trips() {
        let mut m = AddressSpace::new();
        m.write_u64(0x8000, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u64(0x8000), 0x0123_4567_89ab_cdef);
        m.write_f64(0x8008, -2.5);
        assert_eq!(m.read_f64(0x8008), -2.5);
        assert_eq!(m.read_i64(0x8000), 0x0123_4567_89ab_cdefu64 as i64);
        m.write_u8(0x8010, 0xAA);
        assert_eq!(m.read_u8(0x8010), 0xAA);
    }

    #[test]
    fn page_accessors() {
        let mut m = AddressSpace::new();
        assert!(m.page(0x5000).is_none());
        // page_make_mut materializes a zero page; the index is the offset
        // within the page, regardless of which in-page address named it.
        m.page_make_mut(0x5abc)[4] = 9;
        assert_eq!(m.read_u8(0x5004), 9);
        assert_eq!(m.page(0x5abc).expect("materialized")[4], 9);
        // page_arc shares the underlying page rather than copying it.
        assert!(m.page_arc(0x6000).is_none());
        let handle = m.page_arc(0x5abc).expect("materialized");
        assert!(std::ptr::eq(&*handle, m.page(0x5000).unwrap()));
        // Mutating through page_make_mut does not leak into a fork.
        let child = m.fork();
        m.page_make_mut(0x5000)[0] = 1;
        assert_eq!(child.read_u8(0x5000), 0);
        assert_eq!(m.read_u8(0x5000), 1);
    }

    #[test]
    fn fork_is_copy_on_write_both_ways() {
        let mut a = AddressSpace::new();
        a.write_u64(0x10_000, 1);
        let mut b = a.fork();
        // Writes in either space are invisible to the other.
        b.write_u64(0x10_000, 2);
        a.write_u64(0x10_008, 3);
        assert_eq!(a.read_u64(0x10_000), 1);
        assert_eq!(b.read_u64(0x10_000), 2);
        assert_eq!(b.read_u64(0x10_008), 0);
    }

    #[test]
    fn fork_shares_pages_until_write() {
        let mut a = AddressSpace::new();
        a.write_u64(0x10_000, 1);
        let b = a.fork();
        // Same underlying Arc until a write happens.
        let pa = a.pages_in_range(0x10_000, 0x11_000);
        let pb = b.pages_in_range(0x10_000, 0x11_000);
        assert!(Arc::ptr_eq(&pa[0].1, &pb[0].1));
    }

    #[test]
    fn fill_and_clear_range() {
        let mut m = AddressSpace::new();
        m.fill(0x3000, 8192, 0xFF);
        assert_eq!(m.read_u8(0x3000), 0xFF);
        assert_eq!(m.read_u8(0x3000 + 8191), 0xFF);
        assert_eq!(m.read_u8(0x3000 + 8192), 0);
        m.clear_range(0x3000, 0x3000 + 8192);
        assert_eq!(m.read_u8(0x3000), 0);
        // Zero fill of unmapped pages stays unmapped.
        let before = m.page_count();
        m.fill(0x100_000, 4096, 0);
        assert_eq!(m.page_count(), before);
    }

    #[test]
    fn range_eq_ignores_materialization() {
        let mut a = AddressSpace::new();
        let b = AddressSpace::new();
        a.fill(0x2000, 64, 0); // materialize nothing (zero fill skips)
        assert!(a.range_eq(&b, 0, 1 << 40));
        a.write_u8(0x2000, 1);
        assert!(!a.range_eq(&b, 0, 1 << 40));
        a.write_u8(0x2000, 0); // back to zero: page exists but is zero
        assert!(a.range_eq(&b, 0, 1 << 40));
    }

    #[test]
    fn allocator_basics() {
        let mut a = RegionAllocator::new(0x1000, 0x10_000);
        let p = a.alloc(24).unwrap();
        let q = a.alloc(24).unwrap();
        assert_ne!(p, q);
        assert_eq!(p % 16, 0);
        assert_eq!(a.size_of(p), Some(32));
        assert_eq!(a.live_count, 2);
        a.free(p).unwrap();
        assert_eq!(a.live_count, 1);
        // Reuse freed block of same size class.
        let r = a.alloc(20).unwrap();
        assert_eq!(r, p);
        assert_eq!(a.free(0xdead), Err(AllocError::BadFree(0xdead)));
    }

    #[test]
    fn allocator_exhaustion() {
        let mut a = RegionAllocator::new(0x1000, 0x1040);
        a.alloc(16).unwrap();
        a.alloc(16).unwrap();
        assert_eq!(a.alloc(64), Err(AllocError::OutOfMemory));
    }

    #[test]
    fn allocator_reset() {
        let mut a = RegionAllocator::new(0x1000, 0x10_000);
        let p = a.alloc(16).unwrap();
        a.reset();
        assert_eq!(a.live_count, 0);
        let q = a.alloc(16).unwrap();
        assert_eq!(p, q);
    }
}
