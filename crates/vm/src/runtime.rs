//! The runtime interface the interpreter calls for intrinsics with runtime
//! support, plus a basic sequential implementation.
//!
//! The speculative implementation (workers, shadow metadata, checkpoints)
//! lives in the `privateer-runtime` crate; this trait is the seam between
//! the interpreter and that machinery.

use crate::mem::{AddressSpace, RegionAllocator};
use crate::trap::{MisspecKind, Trap};
use privateer_ir::{FuncId, Heap, InstId, Module, PlanEntry, ReduxOp};
use std::collections::HashMap;

/// Services the interpreter requests from the runtime system.
///
/// One implementation exists per execution mode: sequential
/// ([`BasicRuntime`]), speculative worker, and recovery (both in
/// `privateer-runtime`).
pub trait RuntimeIface {
    /// `h_alloc(size)` from a logical heap (§4.4). `site` is the static
    /// allocation site for bookkeeping.
    ///
    /// # Errors
    ///
    /// Traps with [`Trap::OutOfMemory`] when the heap range is exhausted.
    fn h_alloc(
        &mut self,
        heap: Heap,
        size: u64,
        mem: &mut AddressSpace,
        site: (FuncId, InstId),
    ) -> Result<u64, Trap>;

    /// `h_dealloc(ptr)` into a logical heap (§4.4).
    ///
    /// # Errors
    ///
    /// Traps on frees of unallocated addresses.
    fn h_free(&mut self, heap: Heap, addr: u64, mem: &mut AddressSpace) -> Result<(), Trap>;

    /// Separation check (§4.5): validate that `addr` lies in `heap`.
    ///
    /// # Errors
    ///
    /// Traps with a separation misspeculation on tag mismatch.
    fn check_heap(&mut self, heap: Heap, addr: u64) -> Result<(), Trap>;

    /// Privacy check before a load of `size` bytes (§4.6).
    ///
    /// # Errors
    ///
    /// Traps with a privacy misspeculation when the fast phase detects a
    /// cross-iteration flow dependence.
    fn private_read(&mut self, addr: u64, size: u64, mem: &mut AddressSpace) -> Result<(), Trap>;

    /// Privacy check before a store of `size` bytes (§4.6).
    ///
    /// # Errors
    ///
    /// Traps with a privacy misspeculation in the conservative
    /// write-after-read-live-in case (Table 2).
    fn private_write(&mut self, addr: u64, size: u64, mem: &mut AddressSpace) -> Result<(), Trap>;

    /// Value-prediction check: `ok` is the predicted condition's outcome.
    ///
    /// # Errors
    ///
    /// Traps with a prediction misspeculation when `ok` is false (in
    /// speculative modes).
    fn predict(&mut self, ok: bool) -> Result<(), Trap>;

    /// Unconditional misspeculation report.
    ///
    /// # Errors
    ///
    /// Always traps in speculative modes.
    fn misspec(&mut self) -> Result<(), Trap>;

    /// Program output (possibly deferred until commit in speculative
    /// modes).
    fn output(&mut self, bytes: &[u8]);

    /// `redux_register(ptr, size)`: declare a reduction object (§3.2). The
    /// default accepts and ignores the registration (sequential execution
    /// needs no expansion).
    ///
    /// # Errors
    ///
    /// Implementations may trap on malformed registrations.
    fn redux_register(
        &mut self,
        op: ReduxOp,
        addr: u64,
        size: u64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        let _ = (op, addr, size, mem);
        Ok(())
    }

    /// `parallel_invoke(lo, hi)`: run the outlined loop body over
    /// iterations `lo..hi` (§5). The speculative DOALL engine implements
    /// this; runtimes without an engine trap.
    ///
    /// # Errors
    ///
    /// The default always traps with [`Trap::Internal`].
    fn parallel_invoke(
        &mut self,
        module: &Module,
        global_addrs: &[u64],
        plan: PlanEntry,
        lo: i64,
        hi: i64,
        mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        let _ = (module, global_addrs, plan, lo, hi, mem);
        Err(Trap::Internal(
            "this runtime does not support parallel invocation".into(),
        ))
    }
}

/// How [`BasicRuntime`] treats failed speculation checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Failed checks trap (useful for testing transformed code
    /// sequentially: a failure indicates a transformation bug or a genuine
    /// misspeculation).
    Strict,
    /// Failed `predict`/`misspec` checks are ignored (used for
    /// non-speculative re-execution, where the sequential order makes
    /// speculation irrelevant).
    Lenient,
}

/// A sequential runtime: real logical-heap allocation, direct output,
/// no shadow metadata.
#[derive(Debug)]
pub struct BasicRuntime {
    mode: CheckMode,
    allocators: HashMap<Heap, RegionAllocator>,
    out: Vec<u8>,
}

impl BasicRuntime {
    /// A runtime that traps on failed checks.
    pub fn strict() -> BasicRuntime {
        BasicRuntime::with_mode(CheckMode::Strict)
    }

    /// A runtime that ignores failed prediction checks.
    pub fn lenient() -> BasicRuntime {
        BasicRuntime::with_mode(CheckMode::Lenient)
    }

    /// Build with an explicit [`CheckMode`].
    pub fn with_mode(mode: CheckMode) -> BasicRuntime {
        BasicRuntime {
            mode,
            allocators: HashMap::new(),
            out: Vec::new(),
        }
    }

    /// Bytes printed so far.
    pub fn output_bytes(&self) -> &[u8] {
        &self.out
    }

    /// Take the output buffer, leaving it empty.
    pub fn take_output(&mut self) -> Vec<u8> {
        std::mem::take(&mut self.out)
    }

    fn allocator(&mut self, heap: Heap) -> &mut RegionAllocator {
        self.allocators.entry(heap).or_insert_with(|| {
            // Skip the first page of each heap so "heap base" is never a
            // valid object address.
            RegionAllocator::new(heap.base() + crate::mem::PAGE_SIZE, heap.base() + (1 << 40))
        })
    }
}

impl RuntimeIface for BasicRuntime {
    fn h_alloc(
        &mut self,
        heap: Heap,
        size: u64,
        _mem: &mut AddressSpace,
        _site: (FuncId, InstId),
    ) -> Result<u64, Trap> {
        self.allocator(heap)
            .alloc(size)
            .map_err(|_| Trap::OutOfMemory(heap))
    }

    fn h_free(&mut self, heap: Heap, addr: u64, _mem: &mut AddressSpace) -> Result<(), Trap> {
        self.allocator(heap)
            .free(addr)
            .map_err(|e| Trap::AllocError(e.to_string()))
    }

    fn check_heap(&mut self, heap: Heap, addr: u64) -> Result<(), Trap> {
        // Null names no object; separation is vacuous (the paper's checks
        // likewise pass NULL through — e.g. the dequeue path guarded by
        // value prediction).
        if addr == 0 || heap.contains(addr) || self.mode == CheckMode::Lenient {
            Ok(())
        } else {
            Err(Trap::misspec(
                MisspecKind::Separation,
                format!("pointer {addr:#x} is not in heap `{heap}`"),
            ))
        }
    }

    fn private_read(
        &mut self,
        _addr: u64,
        _size: u64,
        _mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        Ok(())
    }

    fn private_write(
        &mut self,
        _addr: u64,
        _size: u64,
        _mem: &mut AddressSpace,
    ) -> Result<(), Trap> {
        Ok(())
    }

    fn predict(&mut self, ok: bool) -> Result<(), Trap> {
        if ok || self.mode == CheckMode::Lenient {
            Ok(())
        } else {
            Err(Trap::misspec(
                MisspecKind::Prediction,
                "predicted condition was false",
            ))
        }
    }

    fn misspec(&mut self) -> Result<(), Trap> {
        if self.mode == CheckMode::Lenient {
            Ok(())
        } else {
            Err(Trap::misspec(MisspecKind::Explicit, "explicit misspec()"))
        }
    }

    fn output(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_lands_in_heap_range() {
        let mut rt = BasicRuntime::strict();
        let mut mem = AddressSpace::new();
        let site = (FuncId::new(0), InstId::new(0));
        let p = rt.h_alloc(Heap::Private, 64, &mut mem, site).unwrap();
        assert!(Heap::Private.contains(p));
        rt.check_heap(Heap::Private, p).unwrap();
        assert!(rt.check_heap(Heap::ReadOnly, p).is_err());
        rt.h_free(Heap::Private, p, &mut mem).unwrap();
    }

    #[test]
    fn null_passes_separation() {
        let mut rt = BasicRuntime::strict();
        rt.check_heap(Heap::ShortLived, 0).unwrap();
    }

    #[test]
    fn strict_vs_lenient_predict() {
        let mut strict = BasicRuntime::strict();
        assert!(strict.predict(false).is_err());
        assert!(strict.predict(true).is_ok());
        let mut lenient = BasicRuntime::lenient();
        assert!(lenient.predict(false).is_ok());
        assert!(lenient.misspec().is_ok());
        assert!(strict.misspec().is_err());
    }

    #[test]
    fn output_accumulates() {
        let mut rt = BasicRuntime::strict();
        rt.output(b"a");
        rt.output(b"bc");
        assert_eq!(rt.output_bytes(), b"abc");
        assert_eq!(rt.take_output(), b"abc");
        assert!(rt.output_bytes().is_empty());
    }

    #[test]
    fn distinct_heaps_use_distinct_ranges() {
        let mut rt = BasicRuntime::strict();
        let mut mem = AddressSpace::new();
        let site = (FuncId::new(0), InstId::new(0));
        let p = rt.h_alloc(Heap::Private, 8, &mut mem, site).unwrap();
        let q = rt.h_alloc(Heap::ShortLived, 8, &mut mem, site).unwrap();
        assert_ne!(p >> 44, q >> 44);
    }
}
