//! Execution traps: misspeculation and genuine errors.

use privateer_ir::Heap;
use std::fmt;

/// Why a speculative check failed (§5.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisspecKind {
    /// A pointer carried the wrong heap tag (`check_heap`).
    Separation,
    /// A cross-iteration flow dependence on a private byte, or the
    /// conservative write-after-read-live-in case (Table 2).
    Privacy,
    /// A short-lived object outlived its iteration.
    Lifetime,
    /// A value prediction failed (`predict`).
    Prediction,
    /// Explicit `misspec()` call.
    Explicit,
    /// Artificially injected misspeculation (the Figure 9 experiment).
    Injected,
    /// A speculative worker faulted (e.g. dereferenced a stale pointer);
    /// treated as misspeculation and repaired by re-execution.
    Fault,
}

impl fmt::Display for MisspecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MisspecKind::Separation => "separation",
            MisspecKind::Privacy => "privacy",
            MisspecKind::Lifetime => "lifetime",
            MisspecKind::Prediction => "value prediction",
            MisspecKind::Explicit => "explicit",
            MisspecKind::Injected => "injected",
            MisspecKind::Fault => "speculative fault",
        };
        f.write_str(s)
    }
}

/// A misspeculation report.
#[derive(Debug, Clone, PartialEq)]
pub struct Misspec {
    /// Which check failed.
    pub kind: MisspecKind,
    /// Human-readable detail.
    pub detail: String,
}

/// A trap ends the current execution attempt.
#[derive(Debug, Clone, PartialEq)]
pub enum Trap {
    /// A speculation check failed; the parallel engine rolls back.
    Misspec(Misspec),
    /// Load or store through (or near) the null page.
    NullDeref {
        /// The faulting address.
        addr: u64,
    },
    /// Use of an instruction result that was never computed.
    UndefValue(String),
    /// Integer division by zero.
    DivByZero,
    /// The configured step budget was exhausted.
    StepLimit,
    /// Heap allocation failed.
    OutOfMemory(Heap),
    /// General `malloc`/stack exhaustion or a bad `free`.
    AllocError(String),
    /// Anything else that should not happen in well-formed programs.
    Internal(String),
}

impl Trap {
    /// Shorthand for a misspeculation trap.
    pub fn misspec(kind: MisspecKind, detail: impl Into<String>) -> Trap {
        Trap::Misspec(Misspec {
            kind,
            detail: detail.into(),
        })
    }

    /// Whether this trap is a misspeculation (recoverable by rollback)
    /// rather than a genuine error.
    pub fn is_misspec(&self) -> bool {
        matches!(self, Trap::Misspec(_))
    }
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Misspec(m) => write!(f, "misspeculation ({}): {}", m.kind, m.detail),
            Trap::NullDeref { addr } => write!(f, "null-page dereference at {addr:#x}"),
            Trap::UndefValue(what) => write!(f, "use of undefined value: {what}"),
            Trap::DivByZero => write!(f, "integer division by zero"),
            Trap::StepLimit => write!(f, "step limit exhausted"),
            Trap::OutOfMemory(h) => write!(f, "logical heap `{h}` out of memory"),
            Trap::AllocError(e) => write!(f, "allocation error: {e}"),
            Trap::Internal(e) => write!(f, "internal error: {e}"),
        }
    }
}

impl std::error::Error for Trap {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn misspec_classification() {
        let t = Trap::misspec(MisspecKind::Privacy, "byte 12");
        assert!(t.is_misspec());
        assert!(!Trap::DivByZero.is_misspec());
        assert!(t.to_string().contains("privacy"));
    }

    #[test]
    fn display_is_informative() {
        assert!(Trap::NullDeref { addr: 8 }.to_string().contains("0x8"));
        assert!(Trap::OutOfMemory(Heap::Private)
            .to_string()
            .contains("priv"));
    }
}
