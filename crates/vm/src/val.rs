//! Runtime values.

use privateer_ir::Type;
use std::fmt;

/// A runtime register value.
///
/// Integers, booleans and pointers are carried as `Int` (pointers are
/// addresses in the simulated space, reinterpreted as `i64` bits); floats as
/// `Float`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    /// Integer / boolean / pointer payload.
    Int(i64),
    /// `f64` payload.
    Float(f64),
}

impl Val {
    /// A pointer value.
    pub fn ptr(addr: u64) -> Val {
        Val::Int(addr as i64)
    }

    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is a float.
    pub fn as_int(self) -> i64 {
        match self {
            Val::Int(v) => v,
            Val::Float(f) => panic!("expected integer value, found float {f}"),
        }
    }

    /// The pointer payload.
    ///
    /// # Panics
    ///
    /// Panics if this is a float.
    pub fn as_ptr(self) -> u64 {
        self.as_int() as u64
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if this is an integer.
    pub fn as_f64(self) -> f64 {
        match self {
            Val::Float(f) => f,
            Val::Int(v) => panic!("expected float value, found integer {v}"),
        }
    }

    /// The boolean payload (any nonzero integer is `true`).
    ///
    /// # Panics
    ///
    /// Panics if this is a float.
    pub fn as_bool(self) -> bool {
        self.as_int() != 0
    }

    /// Truncate an integer value to the in-memory width of `ty`, preserving
    /// the sign-extended register convention (narrow integers live
    /// sign-extended in registers, like C's integer promotion).
    pub fn normalize(self, ty: Type) -> Val {
        match (self, ty) {
            (Val::Int(v), Type::I1) => Val::Int((v & 1 != 0) as i64),
            (Val::Int(v), Type::I8) => Val::Int(v as i8 as i64),
            (Val::Int(v), Type::I32) => Val::Int(v as i32 as i64),
            (v, _) => v,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(v) => write!(f, "{v}"),
            Val::Float(v) => write!(f, "{v}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Val::Int(5).as_int(), 5);
        assert_eq!(Val::ptr(0xFFFF_FFFF_FFFF_FFFF).as_ptr(), u64::MAX);
        assert_eq!(Val::Float(1.5).as_f64(), 1.5);
        assert!(Val::Int(2).as_bool());
        assert!(!Val::Int(0).as_bool());
    }

    #[test]
    fn normalize_widths() {
        assert_eq!(Val::Int(300).normalize(Type::I8), Val::Int(44)); // 300 wraps to 44
        assert_eq!(Val::Int(-1).normalize(Type::I32), Val::Int(-1));
        assert_eq!(
            Val::Int(i64::from(u32::MAX)).normalize(Type::I32),
            Val::Int(-1)
        );
        assert_eq!(Val::Int(3).normalize(Type::I1), Val::Int(1));
        assert_eq!(Val::Int(2).normalize(Type::I1), Val::Int(0));
        assert_eq!(Val::Float(2.0).normalize(Type::F64), Val::Float(2.0));
    }

    #[test]
    #[should_panic(expected = "expected integer")]
    fn type_confusion_panics() {
        Val::Float(1.0).as_int();
    }
}
