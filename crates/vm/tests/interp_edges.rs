//! Interpreter edge cases: integer width semantics, float comparisons with
//! NaN, casts, string output, and context tracking across calls and loops.

use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{BinOp, CastOp, CmpOp, GlobalInit, Module, Type, Value};
use privateer_vm::hooks::{ExecCtx, Hooks};
use privateer_vm::{load_module, AddressSpace, BasicRuntime, Interp, NopHooks};

fn run(m: &Module) -> Vec<u8> {
    let image = load_module(m);
    let mut interp = Interp::new(m, &image, NopHooks, BasicRuntime::strict());
    interp.run_main().unwrap();
    interp.rt.take_output()
}

#[test]
fn logical_shift_respects_width() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], None);
    // i32 logical shift right of a negative value must not smear the i64
    // sign extension: (-2 as u32) >> 1 = 0x7FFFFFFF.
    let v = b.bin(
        BinOp::LShr,
        Type::I32,
        Value::const_i32(-2),
        Value::const_i32(1),
    );
    b.print_i64(v);
    // Arithmetic shift keeps the sign.
    let a = b.bin(
        BinOp::AShr,
        Type::I32,
        Value::const_i32(-8),
        Value::const_i32(2),
    );
    b.print_i64(a);
    // i64 logical shift of a negative value.
    let w = b.bin(
        BinOp::LShr,
        Type::I64,
        Value::const_i64(-1),
        Value::const_i64(60),
    );
    b.print_i64(w);
    b.ret(None);
    m.add_function(b.finish());
    assert_eq!(run(&m), b"2147483647\n-2\n15\n");
}

#[test]
fn fcmp_nan_is_unordered() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], None);
    let nan = Value::const_f64(f64::NAN);
    let one = Value::const_f64(1.0);
    for (op, want) in [
        (CmpOp::Eq, 0),
        (CmpOp::Lt, 0),
        (CmpOp::Ge, 0),
        (CmpOp::Ne, 1), // the only predicate true of unordered operands
    ] {
        let c = b.fcmp(op, nan, one);
        let z = b.select(Type::I64, c, Value::const_i64(1), Value::const_i64(0));
        b.print_i64(z);
        let _ = want;
    }
    b.ret(None);
    m.add_function(b.finish());
    assert_eq!(run(&m), b"0\n0\n0\n1\n");
}

#[test]
fn casts_round_trip() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], None);
    // zext of an i8 -1 -> 255.
    let x = b.zext(Value::const_i8(-1), Type::I64);
    b.print_i64(x);
    // trunc 0x1FF to i8 (sign-extended register convention) -> -1.
    let t = b.trunc(Value::const_i64(0x1FF), Type::I8);
    b.print_i64(t);
    // fptosi saturates toward zero.
    let f = b.fptosi(Value::const_f64(-3.99), Type::I64);
    b.print_i64(f);
    // bitcast f64 <-> i64 is exact.
    let bits = b.cast(CastOp::Bitcast, Value::const_f64(2.5), Type::I64);
    let back = b.cast(CastOp::Bitcast, bits, Type::F64);
    b.print_f64(back);
    // ptrtoint/inttoptr round-trips an address.
    let p = b.malloc(Value::const_i64(8));
    let pi = b.cast(CastOp::PtrToInt, p, Type::I64);
    let p2 = b.cast(CastOp::IntToPtr, pi, Type::Ptr);
    b.store(Type::I64, Value::const_i64(77), p2);
    let v = b.load(Type::I64, p);
    b.print_i64(v);
    b.ret(None);
    m.add_function(b.finish());
    assert_eq!(run(&m), b"255\n-1\n-3\n2.500000\n77\n");
}

#[test]
fn print_str_reads_memory() {
    let mut m = Module::new("t");
    let g = m.add_global_init("msg", 14, GlobalInit::Bytes(b"hello, world!\n".to_vec()));
    let mut b = FunctionBuilder::new("main", vec![], None);
    b.print_str(Value::Global(g), Value::const_i64(14));
    b.ret(None);
    m.add_function(b.finish());
    assert_eq!(run(&m), b"hello, world!\n");
}

#[test]
fn srem_and_sdiv_signs() {
    let mut m = Module::new("t");
    let mut b = FunctionBuilder::new("main", vec![], None);
    for (x, y) in [(7i64, 3i64), (-7, 3), (7, -3), (-7, -3)] {
        let q = b.bin(
            BinOp::SDiv,
            Type::I64,
            Value::const_i64(x),
            Value::const_i64(y),
        );
        let r = b.bin(
            BinOp::SRem,
            Type::I64,
            Value::const_i64(x),
            Value::const_i64(y),
        );
        b.print_i64(q);
        b.print_i64(r);
    }
    b.ret(None);
    m.add_function(b.finish());
    // Rust/C truncated division semantics.
    assert_eq!(run(&m), b"2\n1\n-2\n-1\n-2\n1\n2\n-1\n");
}

/// Loop/call context bookkeeping: a hook observing loop events sees
/// balanced enter/exit nesting even when functions return from inside
/// loops, and invocation counts increase per entry.
#[derive(Default)]
struct NestingCheck {
    depth: i64,
    max_depth: i64,
    enters: u64,
    exits: u64,
    iters: u64,
}

impl Hooks for NestingCheck {
    fn on_loop_enter(
        &mut self,
        _: &ExecCtx,
        _: privateer_ir::FuncId,
        _: privateer_ir::loops::LoopId,
    ) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
        self.enters += 1;
    }
    fn on_loop_exit(
        &mut self,
        _: &ExecCtx,
        _: privateer_ir::FuncId,
        _: privateer_ir::loops::LoopId,
        _: u64,
    ) {
        self.depth -= 1;
        assert!(self.depth >= 0, "loop exit without enter");
        self.exits += 1;
    }
    fn on_loop_iter(
        &mut self,
        _: &ExecCtx,
        _: privateer_ir::FuncId,
        _: privateer_ir::loops::LoopId,
        _: u64,
        _: &AddressSpace,
    ) {
        self.iters += 1;
    }
}

#[test]
fn loop_events_balance_across_early_returns() {
    let mut m = Module::new("t");
    // leaf(n): loops n times, RETURNS FROM INSIDE the loop when i == 2.
    let leaf_id = privateer_ir::FuncId::new(0);
    {
        let mut b = FunctionBuilder::new("leaf", vec![Type::I64], Some(Type::I64));
        let n = b.param(0);
        let pre = b.current_block();
        let header = b.new_block();
        let body = b.new_block();
        let exit = b.new_block();
        let early = b.new_block();
        b.br(header);
        b.switch_to(header);
        let (i, phi) = b.phi(Type::I64);
        b.add_phi_incoming(phi, pre, Value::const_i64(0));
        let c = b.icmp(CmpOp::Lt, i, n);
        b.cond_br(c, body, exit);
        b.switch_to(body);
        let is2 = b.icmp(CmpOp::Eq, i, Value::const_i64(2));
        let cont = b.new_block();
        b.cond_br(is2, early, cont);
        b.switch_to(early);
        b.ret(Some(Value::const_i64(-1)));
        b.switch_to(cont);
        let i2 = b.add(Type::I64, i, Value::const_i64(1));
        b.add_phi_incoming(phi, cont, i2);
        b.br(header);
        b.switch_to(exit);
        b.ret(Some(i));
        m.add_function(b.finish());
    }
    {
        let mut b = FunctionBuilder::new("main", vec![], None);
        // Call leaf 3 times: n=1 (normal exit), n=5 (early return), n=0.
        for n in [1i64, 5, 0] {
            let r = b
                .call(leaf_id, vec![Value::const_i64(n)], Some(Type::I64))
                .unwrap();
            b.print_i64(r);
        }
        b.ret(None);
        m.add_function(b.finish());
    }
    let image = load_module(&m);
    let mut interp = Interp::new(&m, &image, NestingCheck::default(), BasicRuntime::strict());
    interp.run_main().unwrap();
    assert_eq!(interp.rt.take_output(), b"1\n-1\n0\n");
    let h = &interp.hooks;
    assert_eq!(h.depth, 0, "unbalanced loop events");
    assert_eq!(h.enters, h.exits);
    assert_eq!(h.enters, 3, "the loop was entered once per call");
    assert_eq!(h.max_depth, 1);
    // Iterations: n=1 -> 2 header visits; n=5 -> 3 (0,1,2-early);
    // n=0 -> 1.
    assert_eq!(h.iters, 2 + 3 + 1);
}
