//! Property tests for the simulated address space: equivalence with a
//! naive byte-map model, and copy-on-write fork isolation.

use privateer_vm::{AddressSpace, PAGE_SIZE};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum MemOp {
    Write { addr: u64, bytes: Vec<u8> },
    Fill { addr: u64, len: u64, byte: u8 },
    Read { addr: u64, len: usize },
}

fn op_strategy() -> impl Strategy<Value = MemOp> {
    // Cluster addresses near page boundaries to stress the split logic.
    let addr = (0u64..6, 0u64..(2 * PAGE_SIZE)).prop_map(|(p, off)| p * PAGE_SIZE + off / 2);
    prop_oneof![
        (addr.clone(), prop::collection::vec(any::<u8>(), 1..64))
            .prop_map(|(addr, bytes)| MemOp::Write { addr, bytes }),
        (addr.clone(), 1u64..300, any::<u8>()).prop_map(|(addr, len, byte)| MemOp::Fill {
            addr,
            len,
            byte
        }),
        (addr, 1usize..64).prop_map(|(addr, len)| MemOp::Read { addr, len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The paged space behaves exactly like a flat byte map with
    /// zero-default reads.
    #[test]
    fn matches_naive_model(ops in prop::collection::vec(op_strategy(), 0..60)) {
        let mut mem = AddressSpace::new();
        let mut model: HashMap<u64, u8> = HashMap::new();
        for op in ops {
            match op {
                MemOp::Write { addr, bytes } => {
                    mem.write_bytes(addr, &bytes);
                    for (i, &b) in bytes.iter().enumerate() {
                        model.insert(addr + i as u64, b);
                    }
                }
                MemOp::Fill { addr, len, byte } => {
                    mem.fill(addr, len, byte);
                    for i in 0..len {
                        model.insert(addr + i, byte);
                    }
                }
                MemOp::Read { addr, len } => {
                    let mut buf = vec![0u8; len];
                    mem.read_bytes(addr, &mut buf);
                    for (i, &b) in buf.iter().enumerate() {
                        let want = model.get(&(addr + i as u64)).copied().unwrap_or(0);
                        prop_assert_eq!(b, want, "byte at {:#x}", addr + i as u64);
                    }
                }
            }
        }
    }

    /// Forks are fully isolated in both directions, and `range_eq` agrees
    /// with byte-level comparison.
    #[test]
    fn fork_isolation(
        parent_writes in prop::collection::vec((0u64..0x4000, any::<u8>()), 1..30),
        child_writes in prop::collection::vec((0u64..0x4000, any::<u8>()), 1..30),
    ) {
        let mut parent = AddressSpace::new();
        for &(a, b) in &parent_writes {
            parent.write_u8(a, b);
        }
        let snapshot: Vec<(u64, u8)> = (0..0x4000u64).step_by(97).map(|a| (a, parent.read_u8(a))).collect();

        let mut child = parent.fork();
        prop_assert!(parent.range_eq(&child, 0, 0x8000));
        for &(a, b) in &child_writes {
            child.write_u8(a, b.wrapping_add(1));
        }
        // Parent unchanged regardless of child writes.
        for &(a, b) in &snapshot {
            prop_assert_eq!(parent.read_u8(a), b);
        }
        // Parent writes after the fork are invisible to the child.
        let probe = 0x3f00u64;
        let before = child.read_u8(probe);
        parent.write_u8(probe, before.wrapping_add(7));
        prop_assert_eq!(child.read_u8(probe), before);
    }

    /// install_page + pages_in_range round-trip.
    #[test]
    fn page_round_trip(page_no in 0u64..16, fill in any::<u8>()) {
        let mut mem = AddressSpace::new();
        let base = page_no * PAGE_SIZE;
        mem.fill(base, PAGE_SIZE, fill);
        let pages = mem.pages_in_range(base, base + PAGE_SIZE);
        if fill == 0 {
            prop_assert!(pages.is_empty()); // zero-fill never materializes
        } else {
            prop_assert_eq!(pages.len(), 1);
            prop_assert_eq!(pages[0].0, base);
            prop_assert!(pages[0].1.iter().all(|&b| b == fill));
        }
    }
}
