//! The `052.alvinn` kernel (SPEC): back-propagation training of a small
//! feed-forward network.
//!
//! Per the paper (§6.1): the hot loop (over training examples, invoked
//! once per epoch — many invocations) privatizes *stack-allocated arrays*
//! reached through pointers (activations and net inputs, allocated in
//! `main` and passed by reference through globals, defeating static
//! analysis), and carries reductions on two arrays plus a scalar (the
//! weight-delta accumulators and the epoch error).
//!
//! Substitution note (DESIGN.md): the paper's accumulators are
//! floating-point; ours accumulate in fixed-point `i64`, which keeps the
//! reduction exactly associative so parallel output is bit-identical to
//! sequential output. The reduction *structure* (array expansion + merge)
//! is identical.

use crate::util::{for_loop, Xorshift};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{CmpOp, FuncId, GlobalInit, Intrinsic, Module, Type, Value};

/// Network and training sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Input units.
    pub inputs: usize,
    /// Hidden units.
    pub hidden: usize,
    /// Output units.
    pub outputs: usize,
    /// Training examples (hot-loop iterations).
    pub examples: usize,
    /// Epochs (parallel-region invocations).
    pub epochs: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// Train scale.
    pub fn train() -> Params {
        Params {
            inputs: 12,
            hidden: 8,
            outputs: 4,
            examples: 48,
            epochs: 6,
            seed: 31,
        }
    }

    /// Ref scale.
    pub fn reference() -> Params {
        Params {
            inputs: 16,
            hidden: 10,
            outputs: 4,
            examples: 96,
            epochs: 10,
            seed: 32,
        }
    }
}

/// Fixed-point scale for the deterministic accumulators.
const FIX: f64 = 1_000_000_000.0;
/// Learning-rate numerator applied when deltas are folded into weights.
const LR: f64 = 0.05;

fn gen_inputs(p: &Params) -> (Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>) {
    let mut rng = Xorshift(p.seed);
    let xs: Vec<f64> = (0..p.examples * p.inputs)
        .map(|_| rng.unit_f64() * 2.0 - 1.0)
        .collect();
    let ts: Vec<f64> = (0..p.examples * p.outputs)
        .map(|_| rng.unit_f64())
        .collect();
    let w1: Vec<f64> = (0..p.inputs * p.hidden)
        .map(|_| (rng.unit_f64() - 0.5) * 0.5)
        .collect();
    let w2: Vec<f64> = (0..p.hidden * p.outputs)
        .map(|_| (rng.unit_f64() - 0.5) * 0.5)
        .collect();
    (xs, ts, w1, w2)
}

/// Build the IR program.
#[allow(clippy::too_many_lines)]
pub fn build(p: &Params) -> Module {
    let (xs, ts, w1v, w2v) = gen_inputs(p);
    let (ni, nh, no) = (p.inputs as i64, p.hidden as i64, p.outputs as i64);
    let mut m = Module::new("alvinn");

    let g_x = m.add_global_init("inputs", (xs.len() * 8) as u64, GlobalInit::F64s(xs));
    let g_t = m.add_global_init("targets", (ts.len() * 8) as u64, GlobalInit::F64s(ts));
    let g_w1 = m.add_global_init("w1", (w1v.len() * 8) as u64, GlobalInit::F64s(w1v));
    let g_w2 = m.add_global_init("w2", (w2v.len() * 8) as u64, GlobalInit::F64s(w2v));
    // Fixed-point reduction accumulators (two arrays + a scalar, §6.1).
    let g_wd1 = m.add_global("wd1_fix", (p.inputs * p.hidden * 8) as u64);
    let g_wd2 = m.add_global("wd2_fix", (p.hidden * p.outputs * 8) as u64);
    let g_err = m.add_global("err_fix", 8);
    // Pointer cells to the stack-allocated work arrays.
    let g_hid = m.add_global("hid_ptr", 8);
    let g_out = m.add_global("out_ptr", 8);
    let g_onet = m.add_global("onet_ptr", 8);
    let g_odelta = m.add_global("odelta_ptr", 8);

    // fn sigmoid(x) = 1 / (1 + exp(-x))
    let sigmoid_id = FuncId::new(0);
    {
        let mut b = FunctionBuilder::new("sigmoid", vec![Type::F64], Some(Type::F64));
        let x = b.param(0);
        let nx = b.fsub(Value::const_f64(0.0), x);
        let e = b.intrinsic(Intrinsic::Exp, vec![nx]).unwrap();
        let d = b.fadd(Value::const_f64(1.0), e);
        let r = b.fdiv(Value::const_f64(1.0), d);
        b.ret(Some(r));
        m.add_function(b.finish());
    }

    // fn train_epoch(): the hot loop over examples.
    let train_id = FuncId::new(1);
    {
        let mut b = FunctionBuilder::new("train_epoch", vec![], None);
        for_loop(
            &mut b,
            Value::const_i64(0),
            Value::const_i64(p.examples as i64),
            |b, ex| {
                let hid = b.load(Type::Ptr, Value::Global(g_hid));
                let out = b.load(Type::Ptr, Value::Global(g_out));
                let onet = b.load(Type::Ptr, Value::Global(g_onet));
                let odelta = b.load(Type::Ptr, Value::Global(g_odelta));
                let xbase = b.mul(Type::I64, ex, Value::const_i64(ni));
                let tbase = b.mul(Type::I64, ex, Value::const_i64(no));

                // Forward, hidden layer: hid[j] = sigmoid(Σ_k x[k]·w1[k·H+j]).
                for_loop(b, Value::const_i64(0), Value::const_i64(nh), |b, j| {
                    let slot = b.gep(hid, j, 8, 0);
                    b.store(Type::F64, Value::const_f64(0.0), slot);
                });
                for_loop(b, Value::const_i64(0), Value::const_i64(ni), |b, k| {
                    let xi = b.add(Type::I64, xbase, k);
                    let xslot = b.gep(Value::Global(g_x), xi, 8, 0);
                    let x = b.load(Type::F64, xslot);
                    let wrow = b.mul(Type::I64, k, Value::const_i64(nh));
                    for_loop(b, Value::const_i64(0), Value::const_i64(nh), |b, j| {
                        let wi = b.add(Type::I64, wrow, j);
                        let wslot = b.gep(Value::Global(g_w1), wi, 8, 0);
                        let w = b.load(Type::F64, wslot);
                        let hslot = b.gep(hid, j, 8, 0);
                        let h = b.load(Type::F64, hslot);
                        let xw = b.fmul(x, w);
                        let h2 = b.fadd(h, xw);
                        b.store(Type::F64, h2, hslot);
                    });
                });
                for_loop(b, Value::const_i64(0), Value::const_i64(nh), |b, j| {
                    let hslot = b.gep(hid, j, 8, 0);
                    let h = b.load(Type::F64, hslot);
                    let s = b.call(sigmoid_id, vec![h], Some(Type::F64)).unwrap();
                    b.store(Type::F64, s, hslot);
                });

                // Forward, output layer.
                for_loop(b, Value::const_i64(0), Value::const_i64(no), |b, o| {
                    let oslot = b.gep(onet, o, 8, 0);
                    b.store(Type::F64, Value::const_f64(0.0), oslot);
                });
                for_loop(b, Value::const_i64(0), Value::const_i64(nh), |b, j| {
                    let hslot = b.gep(hid, j, 8, 0);
                    let h = b.load(Type::F64, hslot);
                    let wrow = b.mul(Type::I64, j, Value::const_i64(no));
                    for_loop(b, Value::const_i64(0), Value::const_i64(no), |b, o| {
                        let wi = b.add(Type::I64, wrow, o);
                        let wslot = b.gep(Value::Global(g_w2), wi, 8, 0);
                        let w = b.load(Type::F64, wslot);
                        let oslot = b.gep(onet, o, 8, 0);
                        let acc = b.load(Type::F64, oslot);
                        let hw = b.fmul(h, w);
                        let a2 = b.fadd(acc, hw);
                        b.store(Type::F64, a2, oslot);
                    });
                });
                for_loop(b, Value::const_i64(0), Value::const_i64(no), |b, o| {
                    let oslot = b.gep(onet, o, 8, 0);
                    let v = b.load(Type::F64, oslot);
                    let s = b.call(sigmoid_id, vec![v], Some(Type::F64)).unwrap();
                    let dst = b.gep(out, o, 8, 0);
                    b.store(Type::F64, s, dst);
                });

                // Error + output deltas; err_fix += round(d² · FIX).
                for_loop(b, Value::const_i64(0), Value::const_i64(no), |b, o| {
                    let ti = b.add(Type::I64, tbase, o);
                    let tslot = b.gep(Value::Global(g_t), ti, 8, 0);
                    let t = b.load(Type::F64, tslot);
                    let oslot = b.gep(out, o, 8, 0);
                    let y = b.load(Type::F64, oslot);
                    let d = b.fsub(t, y);
                    let d2 = b.fmul(d, d);
                    let scaled = b.fmul(d2, Value::const_f64(FIX));
                    let fx = b.fptosi(scaled, Type::I64);
                    let e0 = b.load(Type::I64, Value::Global(g_err));
                    let e1 = b.add(Type::I64, e0, fx);
                    b.store(Type::I64, e1, Value::Global(g_err));
                    // delta = d · y · (1-y)
                    let one_y = b.fsub(Value::const_f64(1.0), y);
                    let yy = b.fmul(y, one_y);
                    let delta = b.fmul(d, yy);
                    let dslot = b.gep(odelta, o, 8, 0);
                    b.store(Type::F64, delta, dslot);
                });

                // Backward: wd2_fix[j·O+o] += round(delta[o]·hid[j]·FIX).
                for_loop(b, Value::const_i64(0), Value::const_i64(nh), |b, j| {
                    let hslot = b.gep(hid, j, 8, 0);
                    let h = b.load(Type::F64, hslot);
                    let wrow = b.mul(Type::I64, j, Value::const_i64(no));
                    for_loop(b, Value::const_i64(0), Value::const_i64(no), |b, o| {
                        let dslot = b.gep(odelta, o, 8, 0);
                        let d = b.load(Type::F64, dslot);
                        let dh = b.fmul(d, h);
                        let scaled = b.fmul(dh, Value::const_f64(FIX));
                        let fx = b.fptosi(scaled, Type::I64);
                        let wi = b.add(Type::I64, wrow, o);
                        let wslot = b.gep(Value::Global(g_wd2), wi, 8, 0);
                        let a = b.load(Type::I64, wslot);
                        let a2 = b.add(Type::I64, a, fx);
                        b.store(Type::I64, a2, wslot);
                    });
                });
                // Backward to inputs: wd1_fix[k·H+j] += round(x[k]·hdelta_j·FIX)
                // with hdelta_j = hid[j]·(1-hid[j])·Σ_o delta[o]·w2[j·O+o],
                // the inner sum kept in SSA (no extra private array needed).
                for_loop(b, Value::const_i64(0), Value::const_i64(nh), |b, j| {
                    let hslot = b.gep(hid, j, 8, 0);
                    let h = b.load(Type::F64, hslot);
                    // Σ_o delta[o]·w2[j·O+o] via a memory cell on odelta's
                    // scratch tail? Keep it in the hidden array slot's
                    // recomputation: use onet[0..] is taken; use a plain
                    // sequential SSA loop:
                    let wrow = b.mul(Type::I64, j, Value::const_i64(no));
                    // SSA accumulation loop.
                    let pre = b.current_block();
                    let header = b.new_block();
                    let body_bb = b.new_block();
                    let exit = b.new_block();
                    let _ = pre;
                    let entry_block = b.current_block();
                    b.br(header);
                    b.switch_to(header);
                    let (o, o_phi) = b.phi(Type::I64);
                    let (sum, sum_phi) = b.phi(Type::F64);
                    b.add_phi_incoming(o_phi, entry_block, Value::const_i64(0));
                    b.add_phi_incoming(sum_phi, entry_block, Value::const_f64(0.0));
                    let c = b.icmp(CmpOp::Lt, o, Value::const_i64(no));
                    b.cond_br(c, body_bb, exit);
                    b.switch_to(body_bb);
                    let dslot = b.gep(odelta, o, 8, 0);
                    let d = b.load(Type::F64, dslot);
                    let wi = b.add(Type::I64, wrow, o);
                    let wslot = b.gep(Value::Global(g_w2), wi, 8, 0);
                    let w = b.load(Type::F64, wslot);
                    let dw = b.fmul(d, w);
                    let sum2 = b.fadd(sum, dw);
                    let o2 = b.add(Type::I64, o, Value::const_i64(1));
                    let latch = b.current_block();
                    b.add_phi_incoming(o_phi, latch, o2);
                    b.add_phi_incoming(sum_phi, latch, sum2);
                    b.br(header);
                    b.switch_to(exit);

                    let one_h = b.fsub(Value::const_f64(1.0), h);
                    let hh = b.fmul(h, one_h);
                    let hdelta = b.fmul(sum, hh);
                    for_loop(b, Value::const_i64(0), Value::const_i64(ni), |b, k| {
                        let xi = b.add(Type::I64, xbase, k);
                        let xslot = b.gep(Value::Global(g_x), xi, 8, 0);
                        let x = b.load(Type::F64, xslot);
                        let xd = b.fmul(x, hdelta);
                        let scaled = b.fmul(xd, Value::const_f64(FIX));
                        let fx = b.fptosi(scaled, Type::I64);
                        let wrow2 = b.mul(Type::I64, k, Value::const_i64(nh));
                        let wi = b.add(Type::I64, wrow2, j);
                        let wslot = b.gep(Value::Global(g_wd1), wi, 8, 0);
                        let a = b.load(Type::I64, wslot);
                        let a2 = b.add(Type::I64, a, fx);
                        b.store(Type::I64, a2, wslot);
                    });
                });
            },
        );
        b.ret(None);
        m.add_function(b.finish());
    }

    // fn main: allocate the work arrays on the stack, publish pointers,
    // then run epochs: train, fold deltas into weights, print error.
    {
        let mut b = FunctionBuilder::new("main", vec![], None);
        let hid = b.alloca((p.hidden * 8) as u64, "hidden_acts");
        let out = b.alloca((p.outputs * 8) as u64, "output_acts");
        let onet = b.alloca((p.outputs * 8) as u64, "output_net");
        let odelta = b.alloca((p.outputs * 8) as u64, "output_delta");
        b.store(Type::Ptr, hid, Value::Global(g_hid));
        b.store(Type::Ptr, out, Value::Global(g_out));
        b.store(Type::Ptr, onet, Value::Global(g_onet));
        b.store(Type::Ptr, odelta, Value::Global(g_odelta));

        for_loop(
            &mut b,
            Value::const_i64(0),
            Value::const_i64(p.epochs as i64),
            |b, _| {
                b.call(train_id, vec![], None);
                // Fold: w += LR · (wd / FIX) / EX; wd = 0. (Affine loops —
                // these are what the DOALL-only baseline manages to pick up.)
                let fold = |b: &mut FunctionBuilder, w, wd, count: i64| {
                    for_loop(b, Value::const_i64(0), Value::const_i64(count), |b, i| {
                        let ds = b.gep(Value::Global(wd), i, 8, 0);
                        let dfix = b.load(Type::I64, ds);
                        let df = b.sitofp(dfix);
                        let d = b.fdiv(df, Value::const_f64(FIX));
                        let lr = b.fmul(d, Value::const_f64(LR));
                        let ws = b.gep(Value::Global(w), i, 8, 0);
                        let wv = b.load(Type::F64, ws);
                        let w2 = b.fadd(wv, lr);
                        b.store(Type::F64, w2, ws);
                        let ds2 = b.gep(Value::Global(wd), i, 8, 0);
                        b.store(Type::I64, Value::const_i64(0), ds2);
                    });
                };
                fold(b, g_w1, g_wd1, ni * nh);
                fold(b, g_w2, g_wd2, nh * no);
                let e = b.load(Type::I64, Value::Global(g_err));
                b.print_i64(e);
                b.store(Type::I64, Value::const_i64(0), Value::Global(g_err));
            },
        );
        b.ret(None);
        m.add_function(b.finish());
    }
    privateer_ir::verify::verify_module(&m).expect("alvinn module is well-formed");
    m
}

/// The expected output, computed natively with matching operation order.
pub fn reference_output(p: &Params) -> Vec<u8> {
    let (xs, ts, mut w1, mut w2) = gen_inputs(p);
    let (ni, nh, no) = (p.inputs, p.hidden, p.outputs);
    let sigmoid = |x: f64| 1.0 / (1.0 + (0.0 - x).exp());
    let mut out_bytes = Vec::new();
    let mut wd1 = vec![0i64; ni * nh];
    let mut wd2 = vec![0i64; nh * no];
    let mut err: i64 = 0;
    for _ in 0..p.epochs {
        for ex in 0..p.examples {
            let x = &xs[ex * ni..(ex + 1) * ni];
            let t = &ts[ex * no..(ex + 1) * no];
            let mut hid = vec![0.0f64; nh];
            for (k, &xk) in x.iter().enumerate() {
                for j in 0..nh {
                    hid[j] += xk * w1[k * nh + j];
                }
            }
            for h in hid.iter_mut() {
                *h = sigmoid(*h);
            }
            let mut onet = vec![0.0f64; no];
            for j in 0..nh {
                for o in 0..no {
                    onet[o] += hid[j] * w2[j * no + o];
                }
            }
            let out: Vec<f64> = onet.iter().map(|&v| sigmoid(v)).collect();
            let mut odelta = vec![0.0f64; no];
            for o in 0..no {
                let d = t[o] - out[o];
                err += (d * d * FIX) as i64;
                odelta[o] = d * (out[o] * (1.0 - out[o]));
            }
            for j in 0..nh {
                for o in 0..no {
                    wd2[j * no + o] += (odelta[o] * hid[j] * FIX) as i64;
                }
            }
            for j in 0..nh {
                let mut sum = 0.0f64;
                for o in 0..no {
                    sum += odelta[o] * w2[j * no + o];
                }
                let hdelta = sum * (hid[j] * (1.0 - hid[j]));
                for k in 0..ni {
                    wd1[k * nh + j] += (x[k] * hdelta * FIX) as i64;
                }
            }
        }
        for i in 0..ni * nh {
            w1[i] += (wd1[i] as f64 / FIX) * LR;
            wd1[i] = 0;
        }
        for i in 0..nh * no {
            w2[i] += (wd2[i] as f64 / FIX) * LR;
            wd2[i] = 0;
        }
        out_bytes.extend(format!("{err}\n").into_bytes());
        err = 0;
    }
    out_bytes
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

    #[test]
    fn sequential_matches_reference() {
        let p = Params {
            inputs: 6,
            hidden: 5,
            outputs: 3,
            examples: 10,
            epochs: 3,
            seed: 4,
        };
        let m = build(&p);
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        interp.run_main().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&reference_output(&p))
        );
    }

    #[test]
    fn training_reduces_error() {
        let p = Params::train();
        let out = reference_output(&p);
        let errs: Vec<i64> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| l.parse().unwrap())
            .collect();
        assert!(errs.len() == p.epochs);
        assert!(errs.last().unwrap() < errs.first().unwrap(), "{errs:?}");
    }
}
