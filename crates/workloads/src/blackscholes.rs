//! The `blackscholes` kernel (PARSEC), sequential version.
//!
//! The inner loop prices every option (embarrassingly parallel, and
//! provable by static affine analysis — the paper's DOALL-only baseline
//! parallelizes it). The outer loop repeats the run and copies results
//! into a *pricing buffer allocated in a different function* through a
//! pointer loaded from a global — output dependences on that buffer block
//! the outer loop for non-speculative systems, and Privateer privatizes
//! it (§6.1).

use crate::util::{for_loop, Xorshift};
use privateer_ir::builder::FunctionBuilder;
use privateer_ir::{FuncId, GlobalInit, Module, Type, Value};

/// Kernel parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Params {
    /// Number of options.
    pub options: usize,
    /// Outer-loop repetitions.
    pub runs: usize,
    /// Input seed.
    pub seed: u64,
}

impl Params {
    /// Train scale.
    pub fn train() -> Params {
        Params {
            options: 64,
            runs: 20,
            seed: 21,
        }
    }

    /// Ref scale.
    pub fn reference() -> Params {
        Params {
            options: 128,
            runs: 40,
            seed: 22,
        }
    }
}

/// The option inputs, generated deterministically.
struct Inputs {
    sptprice: Vec<f64>,
    strike: Vec<f64>,
    rate: Vec<f64>,
    volatility: Vec<f64>,
    time: Vec<f64>,
    otype: Vec<i64>,
}

fn inputs(p: &Params) -> Inputs {
    let mut rng = Xorshift(p.seed);
    let n = p.options;
    let mut w = |lo: f64, hi: f64| -> Vec<f64> {
        (0..n).map(|_| lo + (hi - lo) * rng.unit_f64()).collect()
    };
    let sptprice = w(20.0, 120.0);
    let strike = w(20.0, 120.0);
    let rate = w(0.01, 0.06);
    let volatility = w(0.1, 0.6);
    let time = w(0.25, 2.0);
    let otype = {
        let mut rng2 = Xorshift(p.seed ^ 0xabcd);
        (0..n).map(|_| (rng2.below(2)) as i64).collect()
    };
    Inputs {
        sptprice,
        strike,
        rate,
        volatility,
        time,
        otype,
    }
}

const INV_SQRT_2PI: f64 = 0.398_942_280_401_432_7;

/// The cumulative normal distribution, Abramowitz–Stegun style (the
/// PARSEC `CNDF`), in a fixed operation order mirrored by the IR build.
fn cndf(x: f64) -> f64 {
    let ax = x.abs();
    let k = 1.0 / (1.0 + 0.231_641_9 * ax);
    let poly = k
        * (0.319_381_530
            + k * (-0.356_563_782
                + k * (1.781_477_937 + k * (-1.821_255_978 + k * 1.330_274_429))));
    // Parenthesized to match the IR build's operation order exactly
    // (floating-point multiplication is not associative).
    let n = 1.0 - INV_SQRT_2PI * ((-ax * ax / 2.0).exp() * poly);
    if x < 0.0 {
        1.0 - n
    } else {
        n
    }
}

fn price_one(s: f64, k: f64, r: f64, v: f64, t: f64, otype: i64) -> f64 {
    let sqrt_t = t.sqrt();
    let d1 = ((s / k).ln() + (r + v * v / 2.0) * t) / (v * sqrt_t);
    let d2 = d1 - v * sqrt_t;
    let nd1 = cndf(d1);
    let nd2 = cndf(d2);
    let e = (-r * t).exp();
    if otype == 0 {
        s * nd1 - k * e * nd2
    } else {
        k * e * (1.0 - nd2) - s * (1.0 - nd1)
    }
}

/// Build the IR program.
pub fn build(p: &Params) -> Module {
    let n = p.options as i64;
    let runs = p.runs as i64;
    let inp = inputs(p);
    let mut m = Module::new("blackscholes");

    let g_spt = m.add_global_init(
        "sptprice",
        (p.options * 8) as u64,
        GlobalInit::F64s(inp.sptprice),
    );
    let g_strike = m.add_global_init(
        "strike",
        (p.options * 8) as u64,
        GlobalInit::F64s(inp.strike),
    );
    let g_rate = m.add_global_init("rate", (p.options * 8) as u64, GlobalInit::F64s(inp.rate));
    let g_vol = m.add_global_init(
        "volatility",
        (p.options * 8) as u64,
        GlobalInit::F64s(inp.volatility),
    );
    let g_time = m.add_global_init("time", (p.options * 8) as u64, GlobalInit::F64s(inp.time));
    let g_otype = m.add_global_init("otype", (p.options * 8) as u64, GlobalInit::I64s(inp.otype));
    let g_tmp = m.add_global("tmp_out", (p.options * 8) as u64);
    let g_prices_ptr = m.add_global("prices_ptr", 8);

    // fn alloc_prices(): the pricing buffer comes from a different
    // function, reachable only through a pointer cell.
    let alloc_prices = FuncId::new(0);
    {
        let mut b = FunctionBuilder::new("alloc_prices", vec![], None);
        let buf = b.malloc(Value::const_i64(n * 8));
        b.store(Type::Ptr, buf, Value::Global(g_prices_ptr));
        b.ret(None);
        m.add_function(b.finish());
    }

    // fn main.
    {
        let mut b = FunctionBuilder::new("main", vec![], None);
        b.call(alloc_prices, vec![], None);
        for_loop(
            &mut b,
            Value::const_i64(0),
            Value::const_i64(runs),
            |b, _run| {
                // Inner compute loop: statically provable DOALL.
                for_loop(b, Value::const_i64(0), Value::const_i64(n), |b, i| {
                    let ld = |b: &mut FunctionBuilder, g| {
                        let slot = b.gep(Value::Global(g), i, 8, 0);
                        b.load(Type::F64, slot)
                    };
                    let s = ld(b, g_spt);
                    let k = ld(b, g_strike);
                    let r = ld(b, g_rate);
                    let v = ld(b, g_vol);
                    let t = ld(b, g_time);
                    let oslot = b.gep(Value::Global(g_otype), i, 8, 0);
                    let oty = b.load(Type::I64, oslot);

                    let sqrt_t = b.intrinsic(privateer_ir::Intrinsic::Sqrt, vec![t]).unwrap();
                    let s_over_k = b.fdiv(s, k);
                    let ln_sk = b
                        .intrinsic(privateer_ir::Intrinsic::Log, vec![s_over_k])
                        .unwrap();
                    let vv = b.fmul(v, v);
                    let vv2 = b.fdiv(vv, Value::const_f64(2.0));
                    let rv = b.fadd(r, vv2);
                    let rvt = b.fmul(rv, t);
                    let num = b.fadd(ln_sk, rvt);
                    let den = b.fmul(v, sqrt_t);
                    let d1 = b.fdiv(num, den);
                    let vsq = b.fmul(v, sqrt_t);
                    let d2 = b.fsub(d1, vsq);

                    // Branch-free CNDF(x), twice.
                    let cndf_ir = |b: &mut FunctionBuilder, x: Value| -> Value {
                        let ax = b.intrinsic(privateer_ir::Intrinsic::FAbs, vec![x]).unwrap();
                        let kx = b.fmul(Value::const_f64(0.231_641_9), ax);
                        let k1 = b.fadd(Value::const_f64(1.0), kx);
                        let kk = b.fdiv(Value::const_f64(1.0), k1);
                        let p4 = b.fmul(kk, Value::const_f64(1.330_274_429));
                        let p3a = b.fadd(Value::const_f64(-1.821_255_978), p4);
                        let p3 = b.fmul(kk, p3a);
                        let p2a = b.fadd(Value::const_f64(1.781_477_937), p3);
                        let p2 = b.fmul(kk, p2a);
                        let p1a = b.fadd(Value::const_f64(-0.356_563_782), p2);
                        let p1 = b.fmul(kk, p1a);
                        let p0a = b.fadd(Value::const_f64(0.319_381_530), p1);
                        let poly = b.fmul(kk, p0a);
                        let ax2 = b.fmul(ax, ax);
                        let mh = b.fdiv(ax2, Value::const_f64(2.0));
                        let negmh = b.fsub(Value::const_f64(0.0), mh);
                        let ex = b
                            .intrinsic(privateer_ir::Intrinsic::Exp, vec![negmh])
                            .unwrap();
                        let ep = b.fmul(ex, poly);
                        let c = b.fmul(Value::const_f64(INV_SQRT_2PI), ep);
                        let nn = b.fsub(Value::const_f64(1.0), c);
                        let flip = b.fsub(Value::const_f64(1.0), nn);
                        let neg = b.fcmp(privateer_ir::CmpOp::Lt, x, Value::const_f64(0.0));
                        b.select(Type::F64, neg, flip, nn)
                    };
                    let nd1 = cndf_ir(b, d1);
                    let nd2 = cndf_ir(b, d2);

                    let rt = b.fmul(r, t);
                    let nrt = b.fsub(Value::const_f64(0.0), rt);
                    let e = b
                        .intrinsic(privateer_ir::Intrinsic::Exp, vec![nrt])
                        .unwrap();
                    let snd1 = b.fmul(s, nd1);
                    let ke = b.fmul(k, e);
                    let kend2 = b.fmul(ke, nd2);
                    let call = b.fsub(snd1, kend2);
                    let one_nd2 = b.fsub(Value::const_f64(1.0), nd2);
                    let one_nd1 = b.fsub(Value::const_f64(1.0), nd1);
                    let kp = b.fmul(ke, one_nd2);
                    let sp = b.fmul(s, one_nd1);
                    let put = b.fsub(kp, sp);
                    let is_call = b.icmp(privateer_ir::CmpOp::Eq, oty, Value::const_i64(0));
                    let price = b.select(Type::F64, is_call, call, put);
                    let tslot = b.gep(Value::Global(g_tmp), i, 8, 0);
                    b.store(Type::F64, price, tslot);
                });
                // Copy loop: through the pointer loaded from the global — this
                // is what blocks static analysis on the outer loop.
                for_loop(b, Value::const_i64(0), Value::const_i64(n), |b, i| {
                    let buf = b.load(Type::Ptr, Value::Global(g_prices_ptr));
                    let t = b.gep(Value::Global(g_tmp), i, 8, 0);
                    let v = b.load(Type::F64, t);
                    let d = b.gep(buf, i, 8, 0);
                    b.store(Type::F64, v, d);
                });
            },
        );
        // Checksum over the pricing buffer.
        let buf = b.load(Type::Ptr, Value::Global(g_prices_ptr));
        let acc = b.alloca(8, "acc");
        b.store(Type::F64, Value::const_f64(0.0), acc);
        for_loop(&mut b, Value::const_i64(0), Value::const_i64(n), |b, i| {
            let slot = b.gep(buf, i, 8, 0);
            let v = b.load(Type::F64, slot);
            let a = b.load(Type::F64, acc);
            let a2 = b.fadd(a, v);
            b.store(Type::F64, a2, acc);
        });
        let total = b.load(Type::F64, acc);
        b.print_f64(total);
        b.ret(None);
        m.add_function(b.finish());
    }
    privateer_ir::verify::verify_module(&m).expect("blackscholes module is well-formed");
    m
}

/// The expected output, computed natively with the same operation order.
pub fn reference_output(p: &Params) -> Vec<u8> {
    let inp = inputs(p);
    let n = p.options;
    let mut prices = vec![0.0f64; n];
    for _ in 0..p.runs {
        for (i, price) in prices.iter_mut().enumerate() {
            *price = price_one(
                inp.sptprice[i],
                inp.strike[i],
                inp.rate[i],
                inp.volatility[i],
                inp.time[i],
                inp.otype[i],
            );
        }
    }
    let mut total = 0.0f64;
    for &v in &prices {
        total += v;
    }
    format!("{total:.6}\n").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;
    use privateer_vm::{load_module, BasicRuntime, Interp, NopHooks};

    #[test]
    fn sequential_matches_reference() {
        let p = Params {
            options: 16,
            runs: 3,
            seed: 7,
        };
        let m = build(&p);
        let image = load_module(&m);
        let mut interp = Interp::new(&m, &image, NopHooks, BasicRuntime::strict());
        interp.run_main().unwrap();
        assert_eq!(
            String::from_utf8_lossy(&interp.rt.take_output()),
            String::from_utf8_lossy(&reference_output(&p))
        );
    }

    #[test]
    fn prices_are_sane() {
        // Black-Scholes prices are non-negative and below the spot+strike.
        let p = Params::train();
        let inp = inputs(&p);
        for i in 0..p.options {
            let v = price_one(
                inp.sptprice[i],
                inp.strike[i],
                inp.rate[i],
                inp.volatility[i],
                inp.time[i],
                inp.otype[i],
            );
            assert!(v.is_finite() && v >= -1e-9, "option {i}: {v}");
            assert!(v <= inp.sptprice[i] + inp.strike[i]);
        }
    }
}
